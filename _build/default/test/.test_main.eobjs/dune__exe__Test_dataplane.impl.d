test/test_dataplane.ml: Alcotest Asn Bgp Dataplane Helpers List Net Prefix
