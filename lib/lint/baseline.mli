(** The checked-in grandfather list ([lint.baseline]).

    Entries are per (rule, file) {e counts}, not per line, so unrelated
    edits that shift line numbers never invalidate the baseline; only an
    {e additional} violation of a rule in a file trips [--check]. *)

type t

val empty : t

val of_violations : Source_scan.violation list -> t

val load : string -> (t, string) result
(** A missing file loads as {!empty} (everything is "new"). *)

val save : string -> t -> unit

type verdict = {
  fresh : (string * int * int * Source_scan.violation list) list;
      (** (["RULE file"], allowed, found, violations) for every key whose
          count now exceeds the baseline — these fail the build *)
  stale : (string * int * int) list;
      (** baseline keys whose count dropped below the grandfathered
          number — a nudge to regenerate, never a failure *)
}

val check : t -> Source_scan.violation list -> verdict
