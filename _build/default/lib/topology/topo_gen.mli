(** Synthetic Internet topology generation.

    The paper's simulations run over measured AS graphs (UCLA topology,
    BGP feeds augmented with BitTorrent traceroutes). Those datasets are
    not available offline, so experiments here run over synthetic graphs
    with the same structural features that matter for poisoning: a full
    clique of tier-1 transit ASes, a transit hierarchy beneath it with
    power-law-ish degrees, lateral peering at every level, and multi-homed
    stub/edge networks. The generator is fully deterministic given its
    seed. *)

open Net

type params = {
  tier1 : int;  (** Size of the top clique (all peers of each other). *)
  tier2 : int;  (** Large transit providers. *)
  tier3 : int;  (** Regional transit providers. *)
  stubs : int;  (** Edge networks (no customers). *)
  tier2_peer_prob : float;  (** Probability a tier-2 pair peers. *)
  tier3_peer_prob : float;  (** Probability a tier-3 pair peers. *)
  multihoming : (float * int) list;
      (** Distribution of stub provider counts, e.g. [[ (0.30, 1); (0.45, 2);
          (0.25, 3) ]]. Weights must sum to ~1. *)
}

val default_params : params
(** A ~320-AS Internet: 8 tier-1s, 40 tier-2s, 70 tier-3s, 200 stubs —
    large enough for stable poisoning statistics, small enough that a full
    evaluation run completes in seconds. *)

val sized : int -> params
(** [sized n] scales {!default_params} to roughly [n] ASes, preserving the
    tier proportions. *)

type t = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  tier2 : Asn.t list;
  tier3 : Asn.t list;
  stub_list : Asn.t list;
}

val generate : ?params:params -> seed:int -> unit -> t
(** Generate a topology. The graph is always connected: every AS has a
    chain of providers reaching the tier-1 clique. *)

val transit_ases : t -> Asn.t list
(** All non-stub ASes (tiers 1–3). *)
