lib/core/load_model.ml: Array List
