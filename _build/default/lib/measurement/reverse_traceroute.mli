(** Reverse traceroute (Katz-Bassett et al., NSDI 2010) — the measurement
    system LIFEGUARD leans on for reverse-path visibility.

    Traceroute shows the forward path only; the reverse path must be
    assembled hop by hop from the destination back to the source using
    three techniques, in decreasing order of preference:

    - {b spoofed record-route}: a vantage point within RR range of the
      current hop pings it spoofing the source's address; the reply
      travels the {e reverse} path and records the next hops into the
      packet's remaining record-route slots;
    - {b IP timestamp queries}: ask the current hop to timestamp a guessed
      adjacency, confirming whether it is the next reverse hop;
    - {b assumed symmetry}: when no option-capable router or vantage point
      helps, fall back to mirroring the forward path for one hop (and
      flag the hop as assumed, since reverse paths are frequently
      asymmetric).

    Routers support IP options unevenly; support here is modeled as a
    deterministic per-router property with configurable rates. The module
    also implements the paper's (§5.4) incremental refresh: re-confirming
    a previously known path costs far fewer probes than measuring from
    scratch (the paper reports an amortized ~10 option probes vs 35). *)

open Net

type how =
  | Spoofed_record_route  (** Revealed by a spoofed RR ping. *)
  | Timestamp  (** Confirmed by an IP-timestamp query. *)
  | Assumed_symmetric  (** Mirrored from the forward path: unverified. *)
  | Confirmed_cached  (** Re-confirmed from a previous measurement. *)

val how_to_string : how -> string

type hop = { asn : Asn.t; how : how }

type measurement = {
  path : hop list;  (** Destination first, source last. *)
  complete : bool;  (** Reached the source. *)
  probes_used : int;  (** Option probes + supporting pings consumed. *)
  assumed_hops : int;  (** Hops taken on faith via symmetry. *)
}

type config = {
  rr_support : float;  (** Fraction of routers answering record-route (default 0.75). *)
  ts_support : float;  (** Fraction answering timestamp queries (default 0.55). *)
  rr_range : int;  (** Hop budget for record-route slots (default 8). *)
}

val default_config : config

type t
(** A measurer: probe environment, vantage points and support model. *)

val create :
  ?config:config -> env:Dataplane.Probe.env -> vantage_points:Asn.t list -> unit -> t

val supports_rr : t -> Asn.t -> bool
(** Whether an AS's border router answers record-route (deterministic per
    router address). *)

val supports_ts : t -> Asn.t -> bool

val measure :
  t -> from_:Asn.t -> to_ip:Ipv4.t -> ?cached:Asn.t list -> unit -> measurement option
(** Measure the path from [from_] back to [to_ip]'s network.

    Returns [None] when the mechanism cannot start: no vantage point can
    deliver the spoofed stimuli to [from_]. With [cached] (a previously
    measured reverse path, destination first) the measurer first tries to
    re-confirm it hop by hop at one probe per hop, falling back to the
    full mechanism from the first divergence — the paper's amortization.

    Hops measured via [Assumed_symmetric] may be wrong when routing is
    asymmetric; [assumed_hops] counts them so callers can judge
    confidence. *)
