(* Recovery observability: appends and replays are per-domain counters
   (a journal lives inside one trial world, so the shards never mix). *)
let m_appends = Obs.Metrics.counter "recover.appends"
let m_replayed = Obs.Metrics.counter "recover.replayed"
let m_crashes = Obs.Metrics.counter "recover.crashes"

exception
  Divergence of { seq : int; expected : string option; got : string }

let () =
  Printexc.register_printer (function
    | Divergence { seq; expected; got } ->
        Some
          (Printf.sprintf "Recover.Journal.Divergence(seq %d, expected %s, got %S)" seq
             (match expected with Some s -> Printf.sprintf "%S" s | None -> "<end>")
             got)
    | _ -> None)

type t = {
  sink : string -> unit;
  expected : string array;  (** replay prefix; [||] for a fresh journal *)
  crash : Crash.spec option;
  mutable seq : int;  (** next record's journal position *)
  mutable appends : int;  (** logged actions so far, for the crash spec *)
  mutable lines : string list;  (** persisted lines, newest first *)
  mutable replay_started : float;
      (** simulation time of the first replayed append (for the
          [recover.replay] span); NaN until replay begins *)
}

let create ?(sink = fun (_ : string) -> ()) ?crash () =
  { sink; expected = [||]; crash; seq = 0; appends = 0; lines = []; replay_started = Float.nan }

let replaying ?(sink = fun (_ : string) -> ()) ?crash ~expected () =
  {
    sink;
    expected = Array.of_list expected;
    crash;
    seq = 0;
    appends = 0;
    lines = [];
    replay_started = Float.nan;
  }

let check_crash j boundary =
  match j.crash with
  | Some spec when spec.Crash.append = j.appends && Crash.boundary_equal spec.Crash.boundary boundary
    ->
      Obs.Metrics.incr m_crashes;
      raise (Crash.Crashed { boundary; append = j.appends })
  | _ -> ()

let prefix_len j = Array.length j.expected
let replaying_now j = j.seq < Array.length j.expected

let trace_replay_done j ~at =
  if Obs.Trace.on () then
    Obs.Trace.event ~ts:at ~span:"recover.replay"
      [
        ("phase", Obs.Trace.Str "end");
        ("records", Obs.Trace.Int (Array.length j.expected));
        ("started", Obs.Trace.Float j.replay_started);
      ]

let logged j ~at action ~effect =
  j.appends <- j.appends + 1;
  check_crash j Crash.Before_write;
  let line = Record.to_line { Record.seq = j.seq; at; action } in
  (* Replay verification: while inside the persisted prefix, the
     re-executed run must reproduce the stored line byte-for-byte.
     Divergence means the resumed world is not the crashed world (wrong
     seed or config, or a nondeterminism bug) — refuse to continue
     rather than silently double-announce. *)
  let in_prefix = replaying_now j in
  if in_prefix then begin
    let want = j.expected.(j.seq) in
    if not (String.equal want line) then
      raise (Divergence { seq = j.seq; expected = Some want; got = line });
    if j.seq = 0 then j.replay_started <- at;
    Obs.Metrics.incr m_replayed
  end
  else Obs.Metrics.incr m_appends;
  j.seq <- j.seq + 1;
  j.lines <- line :: j.lines;
  j.sink line;
  check_crash j Crash.After_write;
  effect ();
  check_crash j Crash.After_effect;
  if in_prefix && not (replaying_now j) then trace_replay_done j ~at

let length j = j.seq
let appended j = max 0 (j.seq - Array.length j.expected)
let replayed j = min j.seq (Array.length j.expected)
let lines j = List.rev j.lines

let records j =
  List.rev_map
    (fun line ->
      match Record.of_line line with
      | Ok r -> r
      | Error msg -> invalid_arg (Printf.sprintf "Journal.records: %s" msg))
    j.lines

(* A journal file recovered after a crash may end mid-line (the process
   died inside a write). Parsing tolerates exactly that: a trailing
   malformed line is dropped; a malformed line in the interior is
   corruption and refuses to load. *)
let parse_lines lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        match (Record.of_line line, rest) with
        | Ok r, _ -> go (r :: acc) rest
        | Error _, [] -> Ok (List.rev acc)
        | Error msg, _ :: _ -> Error msg
      end
  in
  go [] (List.filter (fun l -> String.length l > 0) lines)
