(** Bounded exponential backoff for lost or denied isolation attempts. *)

type policy = {
  max_attempts : int;  (** Attempts per outage before giving up (>= 1). *)
  base_delay : float;  (** Delay after the first lost attempt (s). *)
  multiplier : float;  (** Exponential factor between consecutive delays. *)
  max_delay : float;  (** Delay ceiling (s). *)
}

val default : policy
(** 3 attempts, 60 s first delay, doubling, capped at 600 s. *)

val validate : policy -> policy
(** Returns the policy; raises [Invalid_argument] on nonsense. *)

val delay_for : policy -> attempt:int -> float
(** Backoff after failed attempt number [attempt] (counting from 1):
    [min max_delay (base_delay * multiplier^(attempt-1))]. *)

val exhausted : policy -> attempt:int -> bool
(** Has attempt number [attempt] used up the budget? *)

val total_delay_bound : policy -> float
(** Sum of every backoff a pipeline can possibly wait — an upper bound on
    retry-induced latency before the terminal give-up. *)
