(** The BGP best-route decision process.

    Standard ordering: highest local preference, then shortest AS path
    (counting prepended copies — which is what makes prepending a traffic
    steering tool), then lowest MED among routes from the same neighboring
    AS, then lowest neighbor ASN as the deterministic tiebreak standing in
    for IGP cost / router-id. Two properties the paper leans on emerge
    from this ordering: a poisoned path [O-A-O] ties with the prepended
    baseline [O-O-O] (same length, same preference), so ASes not routing
    through [A] have no reason to explore alternatives.

    The per-speaker tiebreak salt is no longer a parameter here: it is
    baked into each entry at import time ([Route.make_entry ?salt]), so
    comparisons read the cached [path_len] and [tiebreak] fields instead
    of recomputing path length and a hash per comparison. *)

open Net

val compare_entries : Route.entry -> Route.entry -> int
(** [compare_entries a b > 0] when [a] is preferred over [b]. Total order
    over candidate entries for one prefix (entries built with the same
    salt). *)

val best : Route.entry list -> Route.entry option
(** Most preferred entry, [None] on the empty list. Entries carry their
    speaker's tiebreak rank (see {!Route.make_entry}): each AS breaks
    exact ties in its own idiosyncratic (but deterministic) order, which
    is what makes real forward and reverse routes asymmetric. Entries
    built without a salt fall back to lowest-neighbor-ASN. *)

val best_in_table : Route.entry Asn.Table.t -> Route.entry option
(** Most preferred entry among a neighbor-indexed table of candidates. *)
