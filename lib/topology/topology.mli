(** AS-level Internet topology: business relationships, the annotated AS
    graph, synthetic topology generation and valley-free path analysis. *)

module Relationship = Relationship
module As_graph = As_graph
module Topo_gen = Topo_gen
module Splice = Splice
module Partition = Partition
