(* Discrete-event engine semantics. *)

let test_time_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log);
  Sim.Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0001)) "clock at last event" 3.0 (Sim.Engine.now e)

let test_fifo_at_equal_times () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "FIFO among ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_schedule_during_run () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~at:1.0 (fun () ->
      log := "a" :: !log;
      Sim.Engine.schedule_after e ~delay:0.5 (fun () -> log := "b" :: !log));
  Sim.Engine.schedule e ~at:2.0 (fun () -> log := "c" :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested events interleave" [ "a"; "b"; "c" ] (List.rev !log)

let test_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~at:1.0 (fun () -> incr fired);
  Sim.Engine.schedule e ~at:10.0 (fun () -> incr fired);
  Sim.Engine.run ~until:5.0 e;
  Alcotest.(check int) "only events before deadline" 1 !fired;
  Alcotest.(check (float 0.0001)) "clock advanced to deadline" 5.0 (Sim.Engine.now e);
  Alcotest.(check int) "one still pending" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "resumes" 2 !fired

let test_schedule_every_stop () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  Sim.Engine.schedule_every e ~every:1.0 (fun _ ->
      incr count;
      if !count >= 3 then `Stop else `Continue);
  Sim.Engine.run e;
  Alcotest.(check int) "stops on `Stop" 3 !count

let test_schedule_every_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  Sim.Engine.schedule_every e ~every:1.0 ~until:4.5 (fun _ ->
      incr count;
      `Continue);
  Sim.Engine.run e;
  Alcotest.(check int) "bounded by until" 4 !count

let test_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~at:5.0 ignore;
  Sim.Engine.run e;
  Alcotest.check Alcotest.bool "scheduling in the past raises" true
    (try
       Sim.Engine.schedule e ~at:1.0 ignore;
       false
     with Invalid_argument _ -> true);
  Alcotest.check Alcotest.bool "negative delay raises" true
    (try
       Sim.Engine.schedule_after e ~delay:(-1.0) ignore;
       false
     with Invalid_argument _ -> true)

let test_step () =
  let e = Sim.Engine.create () in
  Alcotest.(check bool) "empty step" false (Sim.Engine.step e);
  Sim.Engine.schedule e ~at:1.0 ignore;
  Alcotest.(check bool) "step runs one" true (Sim.Engine.step e);
  Alcotest.(check bool) "then empty" false (Sim.Engine.step e)

let prop_heap_order =
  QCheck.Test.make ~name:"arbitrary schedules run in order" ~count:200
    QCheck.(small_list (float_range 0.0 1000.0))
    (fun times ->
      let e = Sim.Engine.create () in
      let fired = ref [] in
      List.iter (fun t -> Sim.Engine.schedule e ~at:t (fun () -> fired := t :: !fired)) times;
      Sim.Engine.run e;
      let fired = List.rev !fired in
      List.sort compare times = List.stable_sort compare fired
      &&
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted fired)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_time_ordering;
    Alcotest.test_case "FIFO at equal times" `Quick test_fifo_at_equal_times;
    Alcotest.test_case "nested scheduling" `Quick test_schedule_during_run;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "schedule_every stop" `Quick test_schedule_every_stop;
    Alcotest.test_case "schedule_every until" `Quick test_schedule_every_until;
    Alcotest.test_case "past rejected" `Quick test_past_rejected;
    Alcotest.test_case "step" `Quick test_step;
    QCheck_alcotest.to_alcotest prop_heap_order;
  ]
