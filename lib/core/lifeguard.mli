(** LIFEGUARD: Locating Internet Failures Effectively and Generating
    Usable Alternate Routes Dynamically — the paper's core system.

    {!Isolation} locates a failure's AS and direction from one side;
    {!Decide} gates poisoning on outage age and alternate-path existence;
    {!Remediate} crafts the baseline/poisoned/selective announcements and
    the sentinel machinery; {!Orchestrator} runs the whole loop on the
    simulation clock; {!Load_model} estimates deployment-scale update
    load (Table 2). *)

module Isolation = Isolation
module Decide = Decide
module Remediate = Remediate
module Orchestrator = Orchestrator
module Load_model = Load_model
