open Net

type direction =
  | Forward_failure
  | Reverse_failure
  | Bidirectional
  | Destination_unreachable
  | No_failure

let direction_to_string = function
  | Forward_failure -> "forward"
  | Reverse_failure -> "reverse"
  | Bidirectional -> "bidirectional"
  | Destination_unreachable -> "destination-unreachable"
  | No_failure -> "no-failure"

let pp_direction fmt d = Format.pp_print_string fmt (direction_to_string d)

type blame = Blamed_as of Asn.t | Blamed_link of Asn.t * Asn.t | Unlocated

let pp_blame fmt = function
  | Blamed_as a -> Asn.pp fmt a
  | Blamed_link (near, far) -> Format.fprintf fmt "link %a-%a" Asn.pp near Asn.pp far
  | Unlocated -> Format.pp_print_string fmt "unlocated"

let blamed_as = function
  | Blamed_as a -> Some a
  | Blamed_link (_, far) -> Some far
  | Unlocated -> None

type hop_status = Reachable_from_src | Reachable_elsewhere | Unreachable | Silent

type diagnosis = {
  src : Asn.t;
  dst : Asn.t;
  direction : direction;
  blame : blame;
  suspects : (Asn.t * hop_status) list;
  working_path : Asn.t list option;
  traceroute_blame : Asn.t option;
  probes_used : int;
  elapsed : float;
}

let pp_diagnosis fmt d =
  Format.fprintf fmt "%a -> %a: %a failure, blame %a (%d probes, %.0fs)" Asn.pp d.src Asn.pp
    d.dst pp_direction d.direction pp_blame d.blame d.probes_used d.elapsed

type context = {
  env : Dataplane.Probe.env;
  atlas : Measurement.Atlas.t;
  responsiveness : Measurement.Responsiveness.t;
  vantage_points : Asn.t list;
  source_overrides : (Asn.t * Ipv4.t) list;
}

let source_of ctx asn =
  match List.find_opt (fun (a, _) -> Asn.equal a asn) ctx.source_overrides with
  | Some (_, ip) -> ip
  | None -> Dataplane.Forward.probe_address ctx.env.Dataplane.Probe.net asn

(* Wall-clock latency model: a confirmation round plus rate-limited
   probing. Calibrated so a typical reverse isolation (~280 probes)
   lands near the paper's reported 140 s average. *)
let elapsed_of_probes probes = 30.0 +. (0.4 *. float_of_int probes)

let exists_vp vps f = List.exists f vps

(* Step 1: direction isolation with spoofed pings (§4.1.2). *)
let isolate_direction ctx ~src ~dst_addr vps =
  let env = ctx.env in
  let net = env.Dataplane.Probe.net in
  let src_addr = source_of ctx src in
  let forward_ok =
    exists_vp vps (fun vp ->
        Dataplane.Probe.spoofed_ping env ~sender:src
          ~spoof_src:(Dataplane.Forward.probe_address net vp)
          ~dst:dst_addr)
  in
  let reverse_ok =
    exists_vp vps (fun vp ->
        Dataplane.Probe.spoofed_ping env ~sender:vp ~spoof_src:src_addr ~dst:dst_addr)
  in
  let dst_alive = exists_vp vps (fun vp -> Dataplane.Probe.ping env ~src:vp ~dst:dst_addr) in
  match (forward_ok, reverse_ok) with
  | true, false -> Reverse_failure
  | false, true -> Forward_failure
  | true, true -> No_failure
  | false, false -> if dst_alive then Bidirectional else Destination_unreachable

(* Step 2: measure the working direction. *)
let measure_working_path ctx ~src ~dst ~dst_addr ~direction vps =
  let env = ctx.env in
  let net = env.Dataplane.Probe.net in
  match direction with
  | Reverse_failure -> begin
      (* Spoofed traceroute: probes flow src -> dst, TTL replies to a
         vantage point that can hear them. *)
      let receiver =
        List.find_opt
          (fun vp ->
            Dataplane.Probe.spoofed_ping env ~sender:src
              ~spoof_src:(Dataplane.Forward.probe_address net vp)
              ~dst:dst_addr)
          vps
      in
      match receiver with
      | None -> None
      | Some vp ->
          let trace =
            Dataplane.Probe.spoofed_traceroute env ~sender:src
              ~spoof_src:(Dataplane.Forward.probe_address net vp)
              ~dst:dst_addr
          in
          Some (Dataplane.Probe.visible_path trace)
    end
  | Forward_failure -> begin
      let to_ip = source_of ctx src in
      match Dataplane.Probe.reverse_traceroute env ~vantage_points:vps ~from_:dst ~to_ip with
      | Some trace -> Some (Dataplane.Probe.visible_path trace)
      | None -> None
    end
  | Bidirectional | Destination_unreachable | No_failure -> None

(* Step 3: probe the candidate hops of historical (and working-direction)
   paths and classify each AS's reachability evidence. *)
let classify_hops ctx ~src ~candidates vps =
  let env = ctx.env in
  let net = env.Dataplane.Probe.net in
  Asn.Set.fold
    (fun hop acc ->
      if Asn.equal hop src then acc
      else begin
        let address = Dataplane.Forward.probe_address net hop in
        let status =
          if not (Measurement.Responsiveness.expect_response ctx.responsiveness address) then
            Silent
          else if Dataplane.Probe.ping_from env ~src ~src_ip:(source_of ctx src) ~dst:address
          then Reachable_from_src
          else if exists_vp vps (fun vp -> Dataplane.Probe.ping env ~src:vp ~dst:address) then
            Reachable_elsewhere
          else Unreachable
        in
        (hop, status) :: acc
      end)
    candidates []
  |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)

let status_of suspects hop =
  match List.assoc_opt hop suspects with
  | Some s -> s
  | None -> Silent

(* Step 4: find the reachability horizon along a historical path ordered
   from the source side outward, and blame the first hop past it. *)
let blame_along_path ~suspects path_from_src_side =
  let rec scan prev_reachable = function
    | [] -> None
    | hop :: rest -> begin
        match status_of suspects hop with
        | Reachable_from_src -> scan (Some hop) rest
        | Silent -> scan prev_reachable rest
        | Reachable_elsewhere | Unreachable -> Some (prev_reachable, hop)
      end
  in
  scan None path_from_src_side

let drop_src src path =
  match path with
  | hd :: rest when Asn.equal hd src -> rest
  | _ -> path

(* Reverse / bidirectional blame: walk historical reverse paths from the
   source side and blame the first hop past the reachability horizon.
   The paper's validated granularity is the AS ([Blamed_link] comes from
   operator input for selective-poisoning plans, not from isolation). *)
let locate_reverse ctx ~src ~dst ~suspects =
  let snapshots_reverse = Measurement.Atlas.reverse_history ctx.atlas ~vp:src ~dst in
  let paths = List.map (fun s -> List.rev s.Measurement.Atlas.path) snapshots_reverse in
  let rec first_blame = function
    | [] -> Unlocated
    | path :: rest -> begin
        match blame_along_path ~suspects (drop_src src path) with
        | Some (_, hop) -> Blamed_as hop
        | None -> first_blame rest
      end
  in
  first_blame paths

(* Forward / bidirectional blame: the failure sits between the last hop
   the traceroute toward the destination reached and the next hop of the
   historical forward path — blame that next hop, skipping routers that
   never answer probes (their silence is not evidence). *)
let locate_forward ctx ~src ~dst ~forward_reached =
  let net = ctx.env.Dataplane.Probe.net in
  let snapshots_forward = Measurement.Atlas.forward_history ctx.atlas ~vp:src ~dst in
  let expected hop =
    Measurement.Responsiveness.expect_response ctx.responsiveness
      (Dataplane.Forward.probe_address net hop)
  in
  let rec scan = function
    | [] -> None
    | hop :: rest ->
        if Asn.Set.mem hop forward_reached then scan rest
        else if expected hop then Some hop
        else scan rest
  in
  let rec first_blame = function
    | [] -> Unlocated
    | snapshot :: rest -> begin
        match scan (drop_src src snapshot.Measurement.Atlas.path) with
        | Some hop -> Blamed_as hop
        | None -> first_blame rest
      end
  in
  first_blame snapshots_forward

(* What a traceroute-only operator would conclude: the AS just past the
   last responsive hop on the known (historical) forward path, defaulting
   to the last responsive AS itself. *)
let traceroute_only_view ctx ~src ~dst ~dst_addr =
  let env = ctx.env in
  (* Equivalent to a traceroute whose replies are addressed to the
     source's (possibly overridden) probe address. *)
  let trace =
    Dataplane.Probe.spoofed_traceroute env ~sender:src ~spoof_src:(source_of ctx src)
      ~dst:dst_addr
  in
  match Dataplane.Probe.last_responsive_as trace with
  | None -> None
  | Some last -> begin
      match Measurement.Atlas.latest_forward ctx.atlas ~vp:src ~dst () with
      | None -> Some last
      | Some snap -> begin
          let rec after = function
            | a :: (b :: _ as rest) ->
                if Asn.equal a last then Some b else after rest
            | _ -> None
          in
          match after snap.Measurement.Atlas.path with
          | Some next -> Some next
          | None -> Some last
        end
    end

let isolate ctx ~src ~dst =
  let env = ctx.env in
  let net = env.Dataplane.Probe.net in
  let start_probes = env.Dataplane.Probe.probes_sent in
  let dst_addr = Dataplane.Forward.probe_address net dst in
  let vps = List.filter (fun v -> not (Asn.equal v src)) ctx.vantage_points in
  let finish ~direction ~blame ~suspects ~working_path ~traceroute_blame =
    let probes_used = env.Dataplane.Probe.probes_sent - start_probes in
    {
      src;
      dst;
      direction;
      blame;
      suspects;
      working_path;
      traceroute_blame;
      probes_used;
      elapsed = elapsed_of_probes probes_used;
    }
  in
  if Dataplane.Probe.ping_from env ~src ~src_ip:(source_of ctx src) ~dst:dst_addr then
    finish ~direction:No_failure ~blame:Unlocated ~suspects:[] ~working_path:None
      ~traceroute_blame:None
  else begin
    let direction = isolate_direction ctx ~src ~dst_addr vps in
    match direction with
    | No_failure | Destination_unreachable ->
        finish ~direction ~blame:Unlocated ~suspects:[] ~working_path:None
          ~traceroute_blame:None
    | Forward_failure | Reverse_failure | Bidirectional ->
        let working_path = measure_working_path ctx ~src ~dst ~dst_addr ~direction vps in
        let candidates =
          let from_atlas = Measurement.Atlas.candidate_hops ctx.atlas ~vp:src ~dst in
          let with_working =
            match working_path with
            | Some path -> List.fold_left (fun acc a -> Asn.Set.add a acc) from_atlas path
            | None -> from_atlas
          in
          Asn.Set.add dst with_working
        in
        let suspects = classify_hops ctx ~src ~candidates vps in
        (* For hops still reachable from the source during a reverse
           failure, LIFEGUARD measures their current reverse paths — the
           dominant share of its probing budget (§5.4). *)
        (match direction with
        | Reverse_failure ->
            List.iter
              (fun (hop, status) ->
                if status = Reachable_from_src then
                  ignore
                    (Dataplane.Probe.reverse_traceroute env ~vantage_points:(src :: vps)
                       ~from_:hop ~to_ip:(source_of ctx src)))
              suspects
        | Forward_failure | Bidirectional | Destination_unreachable | No_failure -> ());
        let blame =
          match direction with
          | Reverse_failure -> locate_reverse ctx ~src ~dst ~suspects
          | Forward_failure | Bidirectional ->
              (* Which hops does the forward path still reach? Replies are
                 collected both at the source and at a vantage point so a
                 broken reply direction cannot hide forward progress. *)
              let reached_via reply_to =
                let trace =
                  Dataplane.Probe.spoofed_traceroute env ~sender:src ~spoof_src:reply_to
                    ~dst:dst_addr
                in
                List.fold_left
                  (fun acc th ->
                    if th.Dataplane.Probe.responded then
                      Asn.Set.add th.Dataplane.Probe.hop.Dataplane.Forward.asn acc
                    else acc)
                  Asn.Set.empty trace.Dataplane.Probe.hops
              in
              let reached = reached_via (source_of ctx src) in
              let reached =
                match vps with
                | vp :: _ ->
                    Asn.Set.union reached
                      (reached_via (Dataplane.Forward.probe_address net vp))
                | [] -> reached
              in
              let by_trace = locate_forward ctx ~src ~dst ~forward_reached:reached in
              (match by_trace with
              | Unlocated -> locate_reverse ctx ~src ~dst ~suspects
              | located -> located)
          | Destination_unreachable | No_failure -> Unlocated
        in
        let traceroute_blame = traceroute_only_view ctx ~src ~dst ~dst_addr in
        finish ~direction ~blame ~suspects ~working_path ~traceroute_blame
  end
