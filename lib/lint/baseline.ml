(* The baseline grandfathers existing violations per (rule, file) COUNT
   rather than per line, so unrelated edits that shift line numbers do
   not invalidate it; only introducing an additional violation of a rule
   in a file (or in a new file) trips --check. *)

module M = Map.Make (String)

type t = int M.t

let key rule file = Rule.id rule ^ " " ^ file

let empty = M.empty

let of_violations vs =
  List.fold_left
    (fun m (v : Source_scan.violation) ->
      let k = key v.rule v.file in
      M.add k (1 + Option.value ~default:0 (M.find_opt k m)) m)
    M.empty vs

let load path =
  if not (Sys.file_exists path) then Ok M.empty
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go m lineno =
          match input_line ic with
          | exception End_of_file -> Ok m
          | line ->
              let line = String.trim line in
              if String.length line = 0 || line.[0] = '#' then go m (lineno + 1)
              else begin
                match String.split_on_char ' ' line with
                | [ rule; file; count ] -> (
                    match (Rule.of_id rule, int_of_string_opt count) with
                    | Some r, Some c when c > 0 -> go (M.add (key r file) c m) (lineno + 1)
                    | _ ->
                        Error (Printf.sprintf "%s:%d: malformed baseline entry" path lineno))
                | _ -> Error (Printf.sprintf "%s:%d: malformed baseline entry" path lineno)
              end
        in
        go M.empty 1)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# lifeguard-lint baseline: grandfathered violations as `RULE FILE COUNT`.\n\
         # Regenerate with: dune exec bin/lifeguard_lint.exe -- --update-baseline\n\
         # Only *new* violations (count above baseline) fail `lifeguard_lint --check`.\n";
      M.iter (fun k c -> Printf.fprintf oc "%s %d\n" k c) t)

type verdict = {
  fresh : (string * int * int * Source_scan.violation list) list;
      (* key, allowed, found, the violations at that key *)
  stale : (string * int * int) list; (* key, allowed, found *)
}

let check t vs =
  let current = of_violations vs in
  let fresh =
    M.fold
      (fun k found acc ->
        let allowed = Option.value ~default:0 (M.find_opt k t) in
        if found > allowed then
          let here =
            List.filter (fun (v : Source_scan.violation) -> String.equal (key v.rule v.file) k) vs
          in
          (k, allowed, found, here) :: acc
        else acc)
      current []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
  in
  let stale =
    M.fold
      (fun k allowed acc ->
        let found = Option.value ~default:0 (M.find_opt k current) in
        if found < allowed then (k, allowed, found) :: acc else acc)
      t []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  { fresh; stale }
