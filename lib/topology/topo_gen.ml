open Net

type params = {
  tier1 : int;
  tier2 : int;
  tier3 : int;
  stubs : int;
  tier2_peer_prob : float;
  tier3_peer_prob : float;
  multihoming : (float * int) list;
}

let default_params =
  {
    tier1 = 8;
    tier2 = 40;
    tier3 = 70;
    stubs = 200;
    tier2_peer_prob = 0.30;
    tier3_peer_prob = 0.10;
    multihoming = [ (0.30, 1); (0.45, 2); (0.25, 3) ];
  }

let sized n =
  if n < 20 then invalid_arg "Topo_gen.sized: need at least 20 ASes";
  let scale part = max 1 (part * n / 318) in
  {
    default_params with
    tier1 = max 3 (scale 8);
    tier2 = scale 40;
    tier3 = scale 70;
    stubs = scale 200;
  }

type t = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  tier2 : Asn.t list;
  tier3 : Asn.t list;
  stub_list : Asn.t list;
}

let sample_multihoming rng dist =
  let u = Prng.float rng in
  let rec go acc = function
    | [] -> 1
    | [ (_, k) ] -> k
    | (w, k) :: rest ->
        let acc = acc +. w in
        if u < acc then k else go acc rest
  in
  go 0.0 dist

(* Weighted provider choice: higher-degree transit ASes attract more
   customers, reproducing the power-law degree skew of the real AS graph
   (preferential attachment). *)
let pick_providers rng graph pool k =
  let pool = Array.of_list pool in
  let weights = Array.map (fun asn -> float_of_int (1 + As_graph.degree graph asn)) pool in
  let chosen = ref Asn.Set.empty in
  let total = ref (Array.fold_left ( +. ) 0.0 weights) in
  let k = min k (Array.length pool) in
  while Asn.Set.cardinal !chosen < k do
    let target = Prng.float rng *. !total in
    let acc = ref 0.0 in
    let found = ref None in
    (try
       Array.iteri
         (fun i _asn ->
           if weights.(i) > 0.0 then begin
             acc := !acc +. weights.(i);
             if !acc >= target then begin
               found := Some i;
               raise Exit
             end
           end)
         pool
     with Exit -> ());
    match !found with
    | None -> chosen := Asn.Set.add pool.(0) !chosen
    | Some i ->
        chosen := Asn.Set.add pool.(i) !chosen;
        total := !total -. weights.(i);
        weights.(i) <- 0.0
  done;
  Asn.Set.elements !chosen

let generate ?(params = default_params) ~seed () =
  let rng = Prng.create ~seed in
  let graph = As_graph.create () in
  let next_asn = ref 100 in
  let fresh tier routers =
    let asn = Asn.of_int !next_asn in
    incr next_asn;
    As_graph.add_as graph ~tier ~routers asn;
    asn
  in
  let tier1 = List.init params.tier1 (fun _ -> fresh 1 4) in
  let tier2 = List.init params.tier2 (fun _ -> fresh 2 3) in
  let tier3 = List.init params.tier3 (fun _ -> fresh 3 2) in
  let stub_list = List.init params.stubs (fun _ -> fresh 4 1) in
  (* Tier-1: full peering clique. *)
  let rec clique = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> As_graph.add_link graph ~a ~b ~rel:Relationship.Peer) rest;
        clique rest
  in
  clique tier1;
  (* Tier-2: one or two tier-1 providers, lateral peering. *)
  List.iter
    (fun asn ->
      let nproviders = 1 + Prng.int rng 2 in
      List.iter
        (fun p -> As_graph.add_link graph ~a:asn ~b:p ~rel:Relationship.Provider)
        (pick_providers rng graph tier1 nproviders))
    tier2;
  let maybe_peer prob a b =
    if
      (not (Asn.equal a b))
      && Option.is_none (As_graph.relationship graph ~a ~b)
      && Prng.bernoulli rng ~p:prob
    then As_graph.add_link graph ~a ~b ~rel:Relationship.Peer
  in
  let rec pairwise f = function
    | [] -> ()
    | a :: rest ->
        List.iter (f a) rest;
        pairwise f rest
  in
  pairwise (maybe_peer params.tier2_peer_prob) tier2;
  (* Tier-3: providers drawn mostly from tier-2, sometimes tier-1. *)
  List.iter
    (fun asn ->
      let nproviders = 1 + Prng.int rng 2 in
      let pool = if Prng.bernoulli rng ~p:0.15 then tier1 @ tier2 else tier2 in
      List.iter
        (fun p -> As_graph.add_link graph ~a:asn ~b:p ~rel:Relationship.Provider)
        (pick_providers rng graph pool nproviders))
    tier3;
  pairwise (maybe_peer params.tier3_peer_prob) tier3;
  (* Stubs: multi-homed onto tier-2/3 per the configured distribution. *)
  List.iter
    (fun asn ->
      let k = sample_multihoming rng params.multihoming in
      let pool = tier2 @ tier3 in
      List.iter
        (fun p -> As_graph.add_link graph ~a:asn ~b:p ~rel:Relationship.Provider)
        (pick_providers rng graph pool k))
    stub_list;
  { graph; tier1; tier2; tier3; stub_list }

let transit_ases t = t.tier1 @ t.tier2 @ t.tier3
