open Net

type config = {
  probe_loss : float;
  vp_mtbf : float;
  vp_mttr : float;
  atlas_staleness : float;
}

let none = { probe_loss = 0.0; vp_mtbf = 0.0; vp_mttr = 1800.0; atlas_staleness = 0.0 }

let validate c =
  if c.probe_loss < 0.0 || c.probe_loss > 1.0 then
    invalid_arg "Chaos: probe_loss must be in [0,1]";
  if c.atlas_staleness < 0.0 || c.atlas_staleness > 1.0 then
    invalid_arg "Chaos: atlas_staleness must be in [0,1]";
  if c.vp_mtbf < 0.0 then invalid_arg "Chaos: negative vp_mtbf";
  if c.vp_mtbf > 0.0 && c.vp_mttr <= 0.0 then
    invalid_arg "Chaos: vp_mttr must be positive when crashes are on";
  c

type t = {
  config : config;
  rng : Prng.t;
  engine : Sim.Engine.t;
  dead : (Asn.t, unit) Hashtbl.t;
  mutable crashes : int;
  mutable lost_probes : int;
  mutable stale_refreshes : int;
}

let create ?(config = none) ~rng ~engine () =
  let config = validate config in
  {
    config;
    rng;
    engine;
    dead = Hashtbl.create 8;
    crashes = 0;
    lost_probes = 0;
    stale_refreshes = 0;
  }

let lose_probe t =
  t.config.probe_loss > 0.0
  && Prng.bernoulli t.rng ~p:t.config.probe_loss
  && begin
       t.lost_probes <- t.lost_probes + 1;
       true
     end

let skip_refresh t =
  t.config.atlas_staleness > 0.0
  && Prng.bernoulli t.rng ~p:t.config.atlas_staleness
  && begin
       t.stale_refreshes <- t.stale_refreshes + 1;
       true
     end

let vp_alive t vp = not (Hashtbl.mem t.dead vp)

(* Crash/recover renewal process per vantage point: exponential uptimes
   (mean [vp_mtbf]) and downtimes (mean [vp_mttr]), scheduled on the
   simulation clock until the horizon. *)
let rec schedule_crash t vp ~until =
  let at = Sim.Engine.now t.engine +. Prng.Dist.exponential t.rng ~mean:t.config.vp_mtbf in
  if at < until then
    Sim.Engine.schedule t.engine ~at (fun () ->
        Hashtbl.replace t.dead vp ();
        t.crashes <- t.crashes + 1;
        let downtime = Prng.Dist.exponential t.rng ~mean:t.config.vp_mttr in
        Sim.Engine.schedule_after t.engine ~delay:downtime (fun () ->
            Hashtbl.remove t.dead vp;
            schedule_crash t vp ~until))

let start t ~vantage_points ~until =
  if t.config.vp_mtbf > 0.0 then
    List.iter (fun vp -> schedule_crash t vp ~until) vantage_points

let crash_count t = t.crashes
let lost_probe_count t = t.lost_probes
let stale_refresh_count t = t.stale_refreshes
