(* Must-pass corpus for LG-ROB-SNAPSHOT: every mutable or container
   field is read inside [capture] — including through a local helper
   defined in its body and a record pattern. *)

type t = {
  name : string;
  mutable hits : int;
  mutable last : float;
  pending : (int, int) Hashtbl.t;
  log : string list ref;
}

let capture t =
  let entries { log; _ } = List.length !log in
  Printf.sprintf "%s hits=%d last=%f pending=%d log=%d" t.name t.hits t.last
    (Hashtbl.length t.pending) (entries t)
