open Net

type classification = Partial | Complete

type incident = {
  target : Asn.t;
  started_at : float;
  detected_at : float;
  mutable ended_at : float option;
  mutable classification : classification;
  mutable reachable_vps : int;
  mutable total_vps : int;
}

let duration i ~now =
  match i.ended_at with
  | Some ended -> ended -. i.started_at
  | None -> now -. i.started_at

let is_poisonable i = i.classification = Partial

type target_state = {
  asn : Asn.t;
  address : Ipv4.t;
  mutable consecutive_failures : int;
  mutable first_failure_at : float;
  mutable open_incident : incident option;
}

type t = {
  env : Dataplane.Probe.env;
  engine : Sim.Engine.t;
  central : Asn.t;
  vantage_points : Asn.t list;
  states : target_state list;
  mutable history : incident list;  (** newest first *)
  mutable probes : int;
}

(* Distributed classification: which vantage points still reach the
   target? *)
let classify t state now =
  let reachable =
    List.length
      (List.filter
         (fun vp ->
           t.probes <- t.probes + 1;
           Dataplane.Probe.ping t.env ~src:vp ~dst:state.address)
         t.vantage_points)
  in
  let classification = if reachable > 0 then Partial else Complete in
  match state.open_incident with
  | Some incident ->
      incident.classification <- classification;
      incident.reachable_vps <- reachable;
      incident.total_vps <- List.length t.vantage_points
  | None ->
      let incident =
        {
          target = state.asn;
          started_at = state.first_failure_at;
          detected_at = now;
          ended_at = None;
          classification;
          reachable_vps = reachable;
          total_vps = List.length t.vantage_points;
        }
      in
      state.open_incident <- Some incident;
      t.history <- incident :: t.history

let tick t now =
  List.iter
    (fun state ->
      t.probes <- t.probes + 1;
      let ok = Dataplane.Probe.ping t.env ~src:t.central ~dst:state.address in
      if ok then begin
        (match state.open_incident with
        | Some incident -> incident.ended_at <- Some now
        | None -> ());
        state.open_incident <- None;
        state.consecutive_failures <- 0
      end
      else begin
        if state.consecutive_failures = 0 then state.first_failure_at <- now;
        state.consecutive_failures <- state.consecutive_failures + 1
      end)
    t.states;
  (* Trigger classification after the threshold; re-classify open
     incidents each round so a complete outage that becomes partial is
     upgraded (Hubble re-probes continuously). *)
  t

let create ~env ~engine ?(ping_interval = 120.0) ?(fail_threshold = 3) ~central
    ~vantage_points ~targets () =
  let states =
    List.map
      (fun asn ->
        {
          asn;
          address = Dataplane.Forward.probe_address env.Dataplane.Probe.net asn;
          consecutive_failures = 0;
          first_failure_at = 0.0;
          open_incident = None;
        })
      targets
  in
  let t =
    { env; engine; central; vantage_points; states; history = []; probes = 0 }
  in
  Sim.Engine.schedule_every engine ~every:ping_interval (fun now ->
      ignore (tick t now);
      List.iter
        (fun state ->
          if state.consecutive_failures >= fail_threshold then classify t state now)
        t.states;
      `Continue);
  t

let incidents t = List.rev t.history

let h_of_d t ~observed_days ~d_minutes =
  if observed_days <= 0.0 then invalid_arg "Hubble.h_of_d: need a positive window";
  let threshold = d_minutes *. 60.0 in
  let qualifying =
    List.filter
      (fun i ->
        is_poisonable i
        &&
        match i.ended_at with
        | Some ended -> ended -. i.started_at >= threshold
        | None -> false)
      t.history
  in
  float_of_int (List.length qualifying) /. observed_days

let probe_count t = t.probes
