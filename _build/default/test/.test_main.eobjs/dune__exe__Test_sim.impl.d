test/test_sim.ml: Alcotest List QCheck QCheck_alcotest Sim
