(* must-pass fixture: linear spellings of perf_bad.ml. *)

let rec dedup seen acc = function
  | [] -> List.rev acc
  | x :: tl ->
      if Int_set.mem x seen then dedup seen acc tl
      else dedup (Int_set.add x seen) (x :: acc) tl

let index pairs keys =
  let tbl = table_of_pairs pairs in
  List.map (fun k -> Tbl.find tbl k) keys

let flatten groups = List.concat groups
