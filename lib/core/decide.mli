(** Deciding whether (and when) to poison — §4.2.

    Two gates. First, age: most outages resolve themselves within minutes,
    so LIFEGUARD only treats an outage as poison-worthy once it has
    survived detection plus isolation (the paper shows that an outage that
    has already lasted a few minutes will most likely last several more —
    Fig. 5). Second, feasibility: poisoning an AS only helps if a
    policy-compliant path avoiding it exists, which is checked on the AS
    graph before announcing anything. *)

open Net
open Topology

type config = {
  min_outage_age : float;
      (** Only poison outages at least this old (default 300 s: detection
          plus the ~140 s isolation pipeline, as in §4.2). *)
  require_alternate_path : bool;  (** Skip poisoning when no path exists (default true). *)
}

val default_config : config

type verdict =
  | Poison of Asn.t  (** Go: poison this AS. *)
  | Wait of string  (** The outage is too young; give routing time. *)
  | Hopeless of string  (** Poisoning cannot help (no alternate path, ...). *)

val pp_verdict : Format.formatter -> verdict -> unit

val alternate_path_exists :
  As_graph.t -> src:Asn.t -> origin:Asn.t -> avoid:Asn.t -> bool
(** Would [src] still have a valley-free path to [origin] if every route
    through [avoid] disappeared? The a-priori feasibility check behind the
    paper's 90%-of-simulated-poisonings result (§5.1). *)

val decide :
  ?feasible:(src:Asn.t -> avoid:Asn.t -> bool) ->
  config ->
  As_graph.t ->
  origin:Asn.t ->
  diagnosis:Isolation.diagnosis ->
  outage_age:float ->
  verdict
(** Combine the isolation result with the outage's age. Only reverse and
    bidirectional failures are poison candidates here — forward failures
    are better fixed by switching egress (§2.3), which the origin can do
    locally. [feasible] overrides the alternate-path check (default
    {!alternate_path_exists} on [graph]); a precomputed plan passes its
    memoized feasibility bit here so a cache hit routes through the exact
    same verdict construction as a fresh decision. *)

(** Residual-duration analysis over a set of outage durations (Fig. 5):
    given that an outage has lasted [elapsed], how much longer will it
    last? *)
module Residual : sig
  type stats = {
    elapsed : float;  (** Conditioning point, seconds. *)
    count : int;  (** Outages that survived to [elapsed]. *)
    mean : float;
    median : float;
    p25 : float;
  }

  val at : durations:float array -> elapsed:float -> stats option
  (** [None] when no outage lasted to [elapsed]. *)

  val survival_fraction : durations:float array -> elapsed:float -> horizon:float -> float
  (** Among outages alive at [elapsed], the share still alive at
      [elapsed + horizon] — e.g. the paper's "of the problems that
      persisted 5 minutes, 51% lasted at least 5 more". *)
end
