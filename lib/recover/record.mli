(** Typed write-ahead journal records.

    One record per externally-visible controller action — the
    announcements the rest of the Internet can observe (poison,
    re-announce, unpoison) plus the controller decisions that change
    what it will announce later (breaker trips, plan demotions, terminal
    per-outage outcomes). The journal appends the record {e before} the
    action takes effect, so after a crash the persisted prefix is always
    a superset of the effects actually applied (minus at most the one
    record whose effect was still pending).

    Serialization is deterministic and byte-stable: integers in decimal,
    floats as ["%h"] hex floats (bit-exact round trips, infinities
    included), free text percent-escaped so every record is exactly one
    ['|']-separated line. A deterministic re-execution of the same world
    therefore reproduces the journal byte-for-byte — which is the
    property the replay verifier checks. *)

open Net

type outcome_kind = Repaired | Stood_down | Gave_up

type action =
  | Poison_announce of { target : Asn.t; poison : Asn.t; planned : bool }
      (** [poison] announced for the production prefix to repair
          [target]'s outage; [planned] when served from the plan cache. *)
  | Poison_reannounce of { poison : Asn.t; announcement : int }
      (** Idempotent watchdog re-announcement; [announcement] is the
          cumulative announcement count including this one. *)
  | Unpoison of { poison : Asn.t; repaired : bool; reason : string }
      (** Withdrawal back to baseline: [repaired] after a confirmed
          recovery, otherwise a rollback with its cause. *)
  | Breaker_trip of { poison : Asn.t; reason : string }
      (** The circuit breaker opened for [poison]: never poison it again. *)
  | Plan_demotion of { poison : Asn.t; reason : string }
      (** A served plan diverged from its watchdog outcome; the cache
          entry is demoted back to compute-fresh. *)
  | Outcome of { target : Asn.t; kind : outcome_kind; reason : string }
      (** Terminal per-outage outcome ([reason] is empty for
          [Repaired]). *)

type t = { seq : int; at : float; action : action }
(** [seq] is the journal position (0-based), [at] simulation time. *)

val to_line : t -> string
(** One line, no trailing newline. *)

val of_line : string -> (t, string) result

val poison_of : action -> Asn.t option
(** The poisoned AS the action concerns, when it concerns one. *)

val escape : string -> string
(** Percent-encode ['%'], ['|'], [' '] and line breaks (exposed for the
    snapshot codec, which reuses the framing). *)

val unescape : string -> string option

val float_field : float -> string
(** ["%h"] rendering used for every float in the journal and snapshot. *)

val kind_to_string : outcome_kind -> string
val kind_of_string : string -> outcome_kind option
