lib/experiments/hubble_study.ml: Dataplane List Measurement Outage_gen Prng Scenarios Sim Stats Workloads
