open Net

type config = {
  decide : Decide.config;
  recheck_interval : float;
  monitor_interval : float;
  announce_spacing : float;
  max_isolation_attempts : int;
  retry_backoff : float;
  backoff_multiplier : float;
  max_backoff : float;
  pipeline_timeout : float;
  poison_deadline : float;
  max_poison_announcements : int;
  decision_latency : float;
}

let default_config =
  {
    decide = Decide.default_config;
    recheck_interval = 120.0;
    monitor_interval = 30.0;
    announce_spacing = 0.0;
    max_isolation_attempts = 3;
    retry_backoff = 60.0;
    backoff_multiplier = 2.0;
    max_backoff = 600.0;
    pipeline_timeout = 21600.0;
    poison_deadline = 3600.0;
    max_poison_announcements = 3;
    decision_latency = 0.0;
  }

type hooks = {
  probe_gate : (now:float -> cost:int -> bool) option;
  monitor_loss : (unit -> bool) option;
  isolation_attempt : (target:Asn.t -> attempt:int -> [ `Proceed | `Lost | `Denied ]) option;
  vantage_filter : (Asn.t -> bool) option;
  plan_consult :
    (target:Asn.t ->
    diagnosis:Isolation.diagnosis ->
    outage_age:float ->
    breaker_open:(Asn.t -> bool) ->
    Decide.verdict option)
    option;
  plan_record :
    (target:Asn.t -> diagnosis:Isolation.diagnosis -> verdict:Decide.verdict -> unit) option;
  plan_outcome : (poison:Asn.t -> [ `Confirmed | `Diverged of string ] -> unit) option;
}

let no_hooks =
  {
    probe_gate = None;
    monitor_loss = None;
    isolation_attempt = None;
    vantage_filter = None;
    plan_consult = None;
    plan_record = None;
    plan_outcome = None;
  }

type event =
  | Outage_detected of { vp : Asn.t; target : Asn.t }
  | Diagnosed of Isolation.diagnosis
  | Decision of Decide.verdict
  | Isolation_retry of { target : Asn.t; attempt : int; delay : float }
  | Poison_queued of { target : Asn.t; poison : Asn.t }
  | Poison_announced of Asn.t
  | Poison_confirmed of Asn.t
  | Repair_confirmed of { target : Asn.t; poison : Asn.t }
  | Poison_reannounced of { target : Asn.t; announcement : int }
  | Poison_rolled_back of { target : Asn.t; reason : string }
  | Breaker_open of Asn.t
  | Recovery_detected of Asn.t
  | Unpoisoned
  | Gave_up of string

let pp_event fmt = function
  | Outage_detected { vp; target } ->
      Format.fprintf fmt "outage detected: %a cannot reach %a" Asn.pp target Asn.pp vp
  | Diagnosed d -> Format.fprintf fmt "diagnosed: %a" Isolation.pp_diagnosis d
  | Decision v -> Format.fprintf fmt "decision: %a" Decide.pp_verdict v
  | Isolation_retry { target; attempt; delay } ->
      Format.fprintf fmt "isolation toward %a lost (attempt %d); retrying in %.0fs" Asn.pp
        target attempt delay
  | Poison_queued { target; poison } ->
      Format.fprintf fmt "queued poison of %a for %a behind an active announcement" Asn.pp
        poison Asn.pp target
  | Poison_announced a -> Format.fprintf fmt "poisoned %a" Asn.pp a
  | Poison_confirmed a ->
      Format.fprintf fmt "poison of %a confirmed in force at the vantage feeds" Asn.pp a
  | Repair_confirmed { target; poison } ->
      Format.fprintf fmt "repair of %a confirmed: traffic rerouted around %a" Asn.pp target
        Asn.pp poison
  | Poison_reannounced { target; announcement } ->
      Format.fprintf fmt "re-announced poison of %a (announcement %d)" Asn.pp target
        announcement
  | Poison_rolled_back { target; reason } ->
      Format.fprintf fmt "rolled back poison of %a: %s" Asn.pp target reason
  | Breaker_open a ->
      Format.fprintf fmt "circuit breaker open for %a; refusing to re-poison" Asn.pp a
  | Recovery_detected a -> Format.fprintf fmt "recovery detected through %a" Asn.pp a
  | Unpoisoned -> Format.pp_print_string fmt "unpoisoned: back to baseline"
  | Gave_up reason -> Format.fprintf fmt "gave up: %s" reason

type state = Idle | Isolating | Poisoned of Asn.t

type outcome = Repaired | Stood_down of string | Gave_up_on of string

let pp_outcome fmt = function
  | Repaired -> Format.pp_print_string fmt "repaired"
  | Stood_down reason -> Format.fprintf fmt "stood down: %s" reason
  | Gave_up_on reason -> Format.fprintf fmt "gave up: %s" reason

let log_src = Logs.Src.create "lifeguard.orchestrator" ~doc:"LIFEGUARD control loop"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* One in-flight isolate/decide pipeline per affected target. The phase
   and deadline mirror what would otherwise live only inside an engine
   timer closure: they are what the snapshot schema records and what
   [restore] re-arms. *)
type pipeline = {
  p_vp : Asn.t;
  p_target : Asn.t;
  p_started : float;
  mutable p_attempt : int;
  mutable p_phase : Recover.Snapshot.pipeline_phase;
  mutable p_due : float;
}

(* The single poison currently announced for the production prefix, with
   every target it is meant to repair: concurrent outages blamed on the
   same AS attach here instead of queueing a duplicate announcement. The
   watchdog fields supervise the announcement itself: when it was first
   sent, how many times (initial + idempotent re-announces), whether the
   vantage feeds ever showed it in force, and whether a rollback is
   already scheduled (awaiting spacing). *)
type active_poison = {
  ap_target : Asn.t;
  mutable ap_affected : Asn.t list;
  ap_first : float;
  ap_planned : bool;  (** Served from the plan cache rather than computed fresh. *)
  mutable ap_announcements : int;
  mutable ap_confirmed : bool;
  mutable ap_rolling_back : bool;
  mutable ap_rollback_reason : string;  (** cause recorded when the rollback was decided *)
  mutable ap_next_check : float;  (** deadline of the armed recovery/watchdog check *)
  mutable ap_unpoison_due : float option;  (** paced unpoison pending at this time *)
  mutable ap_rollback_due : float option;  (** paced rollback pending at this time *)
}

type t = {
  config : config;
  hooks : hooks;
  env : Dataplane.Probe.env;
  atlas : Measurement.Atlas.t;
  responsiveness : Measurement.Responsiveness.t;
  plan : Remediate.plan;
  vantage_points : Asn.t list;
  pipelines : (Asn.t, pipeline) Hashtbl.t;
  mutable active : active_poison option;
  queue : (Asn.t * Asn.t * bool) Queue.t;
      (** (target, poison, planned) FIFO awaiting the prefix *)
  mutable last_announce : float;
  mutable events : (float * event) list;  (** newest first *)
  mutable outcomes : (float * Asn.t * outcome) list;  (** newest first *)
  mutable monitors : Measurement.Monitor.t list;
  outage_started : (Asn.t, float) Hashtbl.t;
      (** First-failure estimate per target, persisted across isolation
          rounds so the age gate measures the true outage age. *)
  collector : Bgp.Network.Collector.t;
      (** The watchdog's BGP feed: loc-RIB views of the vantage points,
          attached before the baseline goes out so every view is known.
          This is how LIFEGUARD verifies a poison actually propagated —
          public route collectors, not data-plane probes (the data plane
          is exactly what's broken during an outage). *)
  breaker : (Asn.t, unit) Hashtbl.t;
      (** Per-target circuit breaker: ASes whose poisons were rolled back
          (flushed, filtered, never propagated, or collateral) are not
          poisoned again. *)
  mutable reannounced : int;
  mutable rolled_back : int;
  mutable breaker_trips : int;
  journal : Recover.Journal.t option;
      (** Write-ahead journal for externally-visible actions; [None] runs
          the exact pre-journal code path. *)
}

let engine t = Bgp.Network.engine t.env.Dataplane.Probe.net
let now t = Sim.Engine.now (engine t)

(* Route an externally-visible action through the write-ahead journal:
   record first, effect second. With no journal the effect runs bare —
   byte-identical to the pre-journal controller. *)
let journaled t action ~effect =
  match t.journal with
  | None -> effect ()
  | Some j -> Recover.Journal.logged j ~at:(now t) action ~effect

let log t event =
  Log.info (fun m -> m "t=%.0f %a" (now t) pp_event event);
  t.events <- (now t, event) :: t.events

let finish t target outcome =
  let kind, reason =
    match outcome with
    | Repaired -> (Recover.Record.Repaired, "")
    | Stood_down reason -> (Recover.Record.Stood_down, reason)
    | Gave_up_on reason -> (Recover.Record.Gave_up, reason)
  in
  journaled t
    (Recover.Record.Outcome { target; kind; reason })
    ~effect:(fun () -> t.outcomes <- (now t, target, outcome) :: t.outcomes)

let create ?(config = default_config) ?(hooks = no_hooks) ?journal ~env ~atlas ~responsiveness
    ~plan ~vantage_points () =
  (* Attach the watchdog feed before the baseline goes out, so the
     vantage views are populated by the baseline convergence itself. *)
  let collector =
    Bgp.Network.Collector.attach env.Dataplane.Probe.net ~name:"lifeguard-watchdog"
      ~peers:vantage_points
  in
  Remediate.announce_baseline env.Dataplane.Probe.net plan;
  {
    config;
    hooks;
    env;
    atlas;
    responsiveness;
    plan;
    vantage_points;
    pipelines = Hashtbl.create 8;
    active = None;
    queue = Queue.create ();
    last_announce = neg_infinity;
    events = [];
    outcomes = [];
    monitors = [];
    outage_started = Hashtbl.create 8;
    collector;
    breaker = Hashtbl.create 4;
    reannounced = 0;
    rolled_back = 0;
    breaker_trips = 0;
    journal;
  }

(* The origin's probes are sourced from its production prefix: reverse
   failures scoped to the announced space must be visible to them. *)
let origin_source t = Prefix.nth_address t.plan.Remediate.production 1

let live_vantage_points t =
  match t.hooks.vantage_filter with
  | Some alive -> List.filter alive t.vantage_points
  | None -> t.vantage_points

let isolation_context t =
  {
    Isolation.env = t.env;
    atlas = t.atlas;
    responsiveness = t.responsiveness;
    vantage_points = live_vantage_points t;
    source_overrides = [ (t.plan.Remediate.origin, origin_source t) ];
  }

let target_address t target = Dataplane.Forward.probe_address t.env.Dataplane.Probe.net target

let target_reachable t ~vp ~target =
  Dataplane.Probe.ping_from t.env ~src:vp ~src_ip:(origin_source t)
    ~dst:(target_address t target)

(* Announcement pacing: BGP speakers damp flappy prefixes, so poisons and
   unpoisons alike keep [announce_spacing] (the paper suggests ~90 min
   between poisonings) from the previous announcement. *)
let announce_delay t = Float.max 0.0 (t.last_announce +. t.config.announce_spacing -. now t)

let backoff_delay config attempt =
  let d = config.retry_backoff *. (config.backoff_multiplier ** float_of_int (attempt - 1)) in
  Float.min config.max_backoff d

let stand_down t ~target reason =
  Hashtbl.remove t.outage_started target;
  Hashtbl.remove t.pipelines target;
  log t (Gave_up reason);
  finish t target (Stood_down reason)

(* A terminal failure of the repair itself (retry budgets, deadlines,
   the circuit breaker): same bookkeeping as a stand-down, but the
   outcome records the give-up reason so operators can tell "nothing to
   do" from "tried and failed". *)
let give_up t ~target reason =
  Hashtbl.remove t.outage_started target;
  Hashtbl.remove t.pipelines target;
  log t (Gave_up reason);
  finish t target (Gave_up_on reason)

(* The paced half of a rollback: withdraw, give up on every covered
   target, free the prefix. Split out of [rollback] so a restored
   controller can re-arm a rollback that was pending at capture time. *)
let roll_now t ap ~pump =
  match t.active with
  | Some current when current == ap ->
      ap.ap_rollback_due <- None;
      journaled t
        (Recover.Record.Unpoison
           { poison = ap.ap_target; repaired = false; reason = ap.ap_rollback_reason })
        ~effect:(fun () -> Remediate.unpoison t.env.Dataplane.Probe.net t.plan);
      t.active <- None;
      t.last_announce <- now t;
      t.rolled_back <- t.rolled_back + 1;
      log t Unpoisoned;
      List.iter
        (fun target -> give_up t ~target ap.ap_rollback_reason)
        (List.rev ap.ap_affected);
      pump ()
  | _ -> ()

(* Withdraw a failed poison (paced like any announcement), give up on
   every target it covered, and open the breaker for the poisoned AS:
   its routers flushed, filtered or choked on the announcement, so
   re-poisoning it would repeat the failure. *)
let rollback t ap ~pump reason =
  if not ap.ap_rolling_back then begin
    ap.ap_rolling_back <- true;
    ap.ap_rollback_reason <- reason;
    log t (Poison_rolled_back { target = ap.ap_target; reason });
    journaled t
      (Recover.Record.Breaker_trip { poison = ap.ap_target; reason })
      ~effect:(fun () -> Hashtbl.replace t.breaker ap.ap_target ());
    (* A served plan whose watchdog outcome diverged: demote it back to
       compute-fresh. *)
    (match t.hooks.plan_outcome with
    | Some f when ap.ap_planned ->
        journaled t
          (Recover.Record.Plan_demotion { poison = ap.ap_target; reason })
          ~effect:(fun () -> f ~poison:ap.ap_target (`Diverged reason))
    | _ -> ());
    let delay = announce_delay t in
    if delay <= 0.0 then roll_now t ap ~pump
    else begin
      ap.ap_rollback_due <- Some (now t +. delay);
      ignore
        (Sim.Engine.after_named (engine t) ~name:"orch.rollback" ~delay (fun () ->
             roll_now t ap ~pump))
    end
  end

(* The poison watchdog: one tick per recheck while the poison stands and
   the sentinel shows no repair. The vantage-point BGP feeds say whether
   the announcement actually took — every known view's route for the
   production prefix should carry the poisoned AS. A view with a route
   that avoids it is stale (some router flushed or lost the poison):
   re-announce idempotently, paced by the spacing and capped by the
   per-target breaker. A majority of views with no route at all is
   collateral damage; no poisoned view anywhere past the deadline means
   the poison never propagated. Both roll back. *)
let watchdog_tick t ap ~pump =
  if not ap.ap_rolling_back then begin
    let prefix = t.plan.Remediate.production in
    let views =
      List.filter_map
        (fun vp ->
          match Bgp.Network.Collector.route_view t.collector ~peer:vp ~prefix with
          | Some view -> Some (vp, view)
          | None -> None)
        t.vantage_points
    in
    match views with
    | [] -> ()  (* no feed data: the watchdog has no evidence to act on *)
    | _ :: _ ->
        let carries_poison = function
          | Some entry -> Bgp.As_path.contains ap.ap_target entry.Bgp.Route.ann.Bgp.Route.path
          | None -> false
        in
        let poisoned, rest = List.partition (fun (_, v) -> carries_poison v) views in
        let stale, lost =
          List.partition (fun (_, v) -> match v with Some _ -> true | None -> false) rest
        in
        (* Let a fresh announcement converge before judging the views. *)
        let settled = now t -. t.last_announce >= 2.0 *. t.config.recheck_interval in
        if 2 * List.length lost > List.length views then begin
          if settled then
            rollback t ap ~pump
              (Printf.sprintf "collateral damage: %d of %d vantage feeds lost the route"
                 (List.length lost) (List.length views))
        end
        else if poisoned = [] && now t -. ap.ap_first > t.config.poison_deadline then
          rollback t ap ~pump "poison never propagated within deadline"
        else if stale = [] then begin
          match poisoned with
          | [] -> ()  (* not propagated yet; the deadline above arbitrates *)
          | _ :: _ ->
              if not ap.ap_confirmed then begin
                ap.ap_confirmed <- true;
                log t (Poison_confirmed ap.ap_target);
                List.iter
                  (fun target ->
                    log t (Repair_confirmed { target; poison = ap.ap_target }))
                  (List.rev ap.ap_affected);
                match t.hooks.plan_outcome with
                | Some f when ap.ap_planned -> f ~poison:ap.ap_target `Confirmed
                | _ -> ()
              end
        end
        else if settled then begin
          (* Stale views: some router flushed or filtered the poison. *)
          if ap.ap_announcements >= t.config.max_poison_announcements then
            rollback t ap ~pump
              (Printf.sprintf "poison flushed or filtered after %d announcements"
                 ap.ap_announcements)
          else if announce_delay t <= 0.0 then begin
            journaled t
              (Recover.Record.Poison_reannounce
                 { poison = ap.ap_target; announcement = ap.ap_announcements + 1 })
              ~effect:(fun () -> Remediate.reannounce t.env.Dataplane.Probe.net t.plan);
            t.last_announce <- now t;
            ap.ap_announcements <- ap.ap_announcements + 1;
            t.reannounced <- t.reannounced + 1;
            log t (Poison_reannounced { target = ap.ap_target; announcement = ap.ap_announcements })
          end
          (* else: spacing not yet satisfied; the next tick retries *)
        end
  end

(* The paced half of a repair-confirmed withdrawal; standalone so a
   restored controller can re-arm an unpoison pending at capture time. *)
let unpoison_now t ap ~pump =
  match t.active with
  | Some current when current == ap ->
      ap.ap_unpoison_due <- None;
      journaled t
        (Recover.Record.Unpoison { poison = ap.ap_target; repaired = true; reason = "" })
        ~effect:(fun () -> Remediate.unpoison t.env.Dataplane.Probe.net t.plan);
      t.active <- None;
      t.last_announce <- now t;
      log t Unpoisoned;
      List.iter (fun target -> finish t target Repaired) (List.rev ap.ap_affected);
      pump ()
  | _ -> ()

(* While poisoned, test the sentinel periodically; unpoison on repair,
   otherwise let the watchdog supervise the announcement itself. The
   armed deadline lives in [ap_next_check] (and the engine's named timer
   set), so a snapshot records it and a restore re-arms it. *)
let rec arm_recovery_check t ap ~pump ~delay =
  ap.ap_next_check <- now t +. delay;
  ignore
    (Sim.Engine.after_named (engine t) ~name:"orch.recheck" ~delay (fun () ->
         recovery_tick t ap ~pump))

and recovery_tick t ap ~pump =
  match t.active with
  | Some current when current == ap ->
      if
        (not ap.ap_rolling_back)
        && Remediate.is_recovered t.env t.plan ~through:ap.ap_target ~targets:ap.ap_affected
      then begin
        log t (Recovery_detected ap.ap_target);
        let delay = announce_delay t in
        if delay <= 0.0 then unpoison_now t ap ~pump
        else begin
          ap.ap_unpoison_due <- Some (now t +. delay);
          ignore
            (Sim.Engine.after_named (engine t) ~name:"orch.unpoison" ~delay (fun () ->
                 unpoison_now t ap ~pump))
        end
      end
      else begin
        watchdog_tick t ap ~pump;
        match t.active with
        | Some current when current == ap ->
            arm_recovery_check t ap ~pump ~delay:t.config.recheck_interval
        | _ -> ()
      end
  | _ -> ()

let schedule_recovery_checks t ap ~pump =
  arm_recovery_check t ap ~pump ~delay:t.config.recheck_interval

(* Apply a poison now (spacing already satisfied), unless the outage
   resolved while the announcement waited its turn or the blamed AS has
   already proven unpoisonable. *)
let rec apply_poison t ~vp ~target ~poison_target ~planned =
  if Hashtbl.mem t.breaker poison_target then begin
    t.breaker_trips <- t.breaker_trips + 1;
    log t (Breaker_open poison_target);
    give_up t ~target
      (Printf.sprintf "circuit breaker open for %s" (Asn.to_string poison_target));
    pump_queue t
  end
  else if target_reachable t ~vp ~target then begin
    Hashtbl.remove t.outage_started target;
    log t (Gave_up "outage resolved before poisoning");
    finish t target (Stood_down "outage resolved before poisoning");
    pump_queue t
  end
  else begin
    Hashtbl.remove t.outage_started target;
    journaled t
      (Recover.Record.Poison_announce { target; poison = poison_target; planned })
      ~effect:(fun () ->
        Remediate.poison t.env.Dataplane.Probe.net t.plan ~target:poison_target);
    let ap =
      {
        ap_target = poison_target;
        ap_affected = [ target ];
        ap_first = now t;
        ap_planned = planned;
        ap_announcements = 1;
        ap_confirmed = false;
        ap_rolling_back = false;
        ap_rollback_reason = "";
        ap_next_check = now t;
        ap_unpoison_due = None;
        ap_rollback_due = None;
      }
    in
    t.active <- Some ap;
    t.last_announce <- now t;
    log t (Poison_announced poison_target);
    schedule_recovery_checks t ap ~pump:(fun () -> pump_queue t)
  end

(* Drain the remediation queue once the prefix is free: the next poison
   goes out after the damping-aware spacing, re-checked at send time. The
   head stays queued until its announcement actually goes out, so the
   unfinished accounting and notify_outage's re-entrancy guard keep seeing
   it while it waits out the spacing, and FIFO order is preserved. *)
and pump_queue t =
  match t.active with
  | Some _ -> ()
  | None ->
      if Queue.is_empty t.queue then ()
      else begin
        let delay = announce_delay t in
        if delay > 0.0 then
          ignore
            (Sim.Engine.after_named (engine t) ~name:"orch.pump" ~delay (fun () ->
                 pump_queue t))
        else
          match Queue.take_opt t.queue with
          | None -> ()
          | Some (target, poison_target, planned) ->
              apply_poison t ~vp:t.plan.Remediate.origin ~target ~poison_target ~planned
      end

(* A pipeline reached a Poison verdict: announce, attach, or queue —
   unless the breaker already proved the blamed AS unpoisonable. *)
let request_poison t ~vp ~target ~poison_target ~planned =
  Hashtbl.remove t.pipelines target;
  if Hashtbl.mem t.breaker poison_target then begin
    t.breaker_trips <- t.breaker_trips + 1;
    log t (Breaker_open poison_target);
    give_up t ~target
      (Printf.sprintf "circuit breaker open for %s" (Asn.to_string poison_target))
  end
  else
  match t.active with
  | Some ap when Asn.equal ap.ap_target poison_target ->
      (* Same blamed AS: the standing poison already works around it. *)
      Hashtbl.remove t.outage_started target;
      ap.ap_affected <- target :: ap.ap_affected
  | Some _ ->
      log t (Poison_queued { target; poison = poison_target });
      Queue.add (target, poison_target, planned) t.queue
  | None ->
      let delay = announce_delay t in
      if delay <= 0.0 then apply_poison t ~vp ~target ~poison_target ~planned
      else begin
        log t (Poison_queued { target; poison = poison_target });
        Queue.add (target, poison_target, planned) t.queue;
        ignore
          (Sim.Engine.after_named (engine t) ~name:"orch.pump" ~delay (fun () ->
               pump_queue t))
      end

let pipeline_alive t p =
  match Hashtbl.find_opt t.pipelines p.p_target with Some q -> q == p | None -> false

let run_decision t p diagnosis =
  let vp = p.p_vp and target = p.p_target in
  let graph = Bgp.Network.graph t.env.Dataplane.Probe.net in
  let outage_age () =
    let outage_started =
      match Hashtbl.find_opt t.outage_started target with
      | Some started -> started
      | None -> p.p_started
    in
    now t -. outage_started
  in
  (* Consult the precomputed plan cache (when wired) before paying for a
     fresh decision: a hit is a ready verdict, byte-identical to what the
     decision process would compute. *)
  let consult () =
    match t.hooks.plan_consult with
    | None -> None
    | Some f ->
        f ~target ~diagnosis ~outage_age:(outage_age ())
          ~breaker_open:(fun a -> Hashtbl.mem t.breaker a)
  in
  let decide_fresh () =
    let verdict =
      Decide.decide t.config.decide graph ~origin:t.plan.Remediate.origin ~diagnosis
        ~outage_age:(outage_age ())
    in
    (* Hand the fresh verdict back to the cache so the next outage of the
       same class becomes a hit. *)
    (match t.hooks.plan_record with Some f -> f ~target ~diagnosis ~verdict | None -> ());
    verdict
  in
  (* While the verdict is Wait, keep rechecking: stand down if the outage
     resolves on its own, poison once it has aged past the gate. *)
  let rec act ~planned verdict =
    log t (Decision verdict);
    match verdict with
    | Decide.Poison poison_target -> request_poison t ~vp ~target ~poison_target ~planned
    | Decide.Hopeless reason -> stand_down t ~target reason
    | Decide.Wait _ ->
        p.p_phase <- Recover.Snapshot.Waiting;
        p.p_due <- now t +. t.config.recheck_interval;
        ignore
          (Sim.Engine.after_named (engine t) ~name:"orch.wait"
             ~delay:t.config.recheck_interval (fun () ->
               if not (pipeline_alive t p) then ()
               else if target_reachable t ~vp ~target then
                 stand_down t ~target "outage resolved on its own"
               else decide_and_act ()))
  and decide_and_act () =
    if now t -. p.p_started > t.config.pipeline_timeout then
      give_up t ~target "pipeline timeout"
    else begin
      match consult () with
      | Some verdict -> act ~planned:true verdict
      | None ->
          (* [decision_latency] models the wall-clock cost of running the
             decision process from scratch; a plan hit above skips it. At
             the default 0 the fresh path is inline and event ordering is
             exactly the pre-planning one. *)
          if t.config.decision_latency <= 0.0 then act ~planned:false (decide_fresh ())
          else begin
            p.p_phase <- Recover.Snapshot.Deciding;
            p.p_due <- now t +. t.config.decision_latency;
            ignore
              (Sim.Engine.after_named (engine t) ~name:"orch.decide"
                 ~delay:t.config.decision_latency (fun () ->
                   if pipeline_alive t p then act ~planned:false (decide_fresh ())))
          end
    end
  in
  decide_and_act ()

(* Isolation with bounded retries: a chaos- or budget-denied attempt backs
   off exponentially; exhausting the budget is a terminal give-up, so every
   pipeline ends in a terminal state. *)
let rec attempt_isolation t p =
  if not (pipeline_alive t p) then ()
  else begin
    p.p_attempt <- p.p_attempt + 1;
    p.p_phase <- Recover.Snapshot.Isolating;
    p.p_due <- now t;
    let outcome =
      match t.hooks.isolation_attempt with
      | Some f -> f ~target:p.p_target ~attempt:p.p_attempt
      | None -> `Proceed
    in
    match outcome with
    | `Proceed ->
        let diagnosis = Isolation.isolate (isolation_context t) ~src:p.p_vp ~dst:p.p_target in
        log t (Diagnosed diagnosis);
        (* The decision happens once isolation completes; model its latency
           by scheduling the decision after [elapsed]. *)
        p.p_phase <- Recover.Snapshot.Deciding;
        p.p_due <- now t +. diagnosis.Isolation.elapsed;
        ignore
          (Sim.Engine.after_named (engine t) ~name:"orch.decide"
             ~delay:diagnosis.Isolation.elapsed (fun () ->
               if pipeline_alive t p then run_decision t p diagnosis))
    | `Lost | `Denied ->
        if p.p_attempt >= t.config.max_isolation_attempts then
          give_up t ~target:p.p_target "isolation retry budget exhausted"
        else begin
          let delay = backoff_delay t.config p.p_attempt in
          log t (Isolation_retry { target = p.p_target; attempt = p.p_attempt; delay });
          p.p_phase <- Recover.Snapshot.Backoff;
          p.p_due <- now t +. delay;
          ignore
            (Sim.Engine.after_named (engine t) ~name:"orch.backoff" ~delay (fun () ->
                 attempt_isolation t p))
        end
  end

let covered_by_active t target =
  match t.active with
  | Some ap -> List.exists (Asn.equal target) ap.ap_affected
  | None -> false

let queued t target =
  Queue.fold (fun acc (qt, _, _) -> acc || Asn.equal qt target) false t.queue

let notify_outage t ~vp ~target =
  if Hashtbl.mem t.pipelines target || covered_by_active t target || queued t target then ()
  else begin
    log t (Outage_detected { vp; target });
    (* The monitor crossed its threshold after several failed rounds;
       the outage began roughly threshold x interval earlier — unless a
       previous isolation round already pinned the start time. *)
    (match Hashtbl.find_opt t.outage_started target with
    | Some _ -> ()
    | None ->
        Hashtbl.replace t.outage_started target (now t -. (4.0 *. t.config.monitor_interval)));
    let p =
      {
        p_vp = vp;
        p_target = target;
        p_started = now t;
        p_attempt = 0;
        p_phase = Recover.Snapshot.Isolating;
        p_due = now t;
      }
    in
    Hashtbl.replace t.pipelines target p;
    attempt_isolation t p
  end

let watch t ~targets =
  let origin = t.plan.Remediate.origin in
  Measurement.Atlas.refresh_all t.atlas t.env ~vps:[ origin ] ~dsts:targets ~now:(now t);
  let monitor =
    Measurement.Monitor.create ~env:t.env ~engine:(engine t)
      ~interval:t.config.monitor_interval ~responsiveness:t.responsiveness
      ~on_outage:(fun outage ->
        match
          Bgp.Network.owner_of_address t.env.Dataplane.Probe.net
            outage.Measurement.Monitor.target
        with
        | Some (_, target_as) -> notify_outage t ~vp:origin ~target:target_as
        | None -> begin
            match
              Topology.As_graph.owner_of_address
                (Bgp.Network.graph t.env.Dataplane.Probe.net)
                outage.Measurement.Monitor.target
            with
            | Some target_as -> notify_outage t ~vp:origin ~target:target_as
            | None -> ()
          end)
      ~src_ip:(origin_source t) ?gate:t.hooks.probe_gate ?loss:t.hooks.monitor_loss ~vp:origin
      ~targets:(List.map (target_address t) targets)
      ()
  in
  t.monitors <- monitor :: t.monitors

let state t =
  match t.active with
  | Some ap -> Poisoned ap.ap_target
  | None -> if Hashtbl.length t.pipelines > 0 then Isolating else Idle

let active_pipelines t = Hashtbl.length t.pipelines
let queued_poisons t = Queue.length t.queue

let awaiting_repair t =
  match t.active with Some ap -> List.length ap.ap_affected | None -> 0

let reannounce_count t = t.reannounced
let rollback_count t = t.rolled_back
let breaker_trip_count t = t.breaker_trips
let breaker_open t ~target = Hashtbl.mem t.breaker target
let events t = List.rev t.events
let outcomes t = List.rev t.outcomes
let monitors t = List.rev t.monitors
let plan t = t.plan
let collector t = t.collector

(* The state-ownership contract: everything mutable in this module that
   is not reconstructible from the world goes through here. The
   LG-ROB-SNAPSHOT lint rule holds this function to that promise — every
   mutable field of the records above must be referenced below. *)
let capture t : Recover.Snapshot.orch =
  let pipelines =
    Hashtbl.fold
      (fun _ p acc ->
        {
          Recover.Snapshot.sp_vp = p.p_vp;
          sp_target = p.p_target;
          sp_started = p.p_started;
          sp_attempt = p.p_attempt;
          sp_phase = p.p_phase;
          sp_due = p.p_due;
        }
        :: acc)
      t.pipelines []
    |> List.sort (fun a b ->
           Asn.compare a.Recover.Snapshot.sp_target b.Recover.Snapshot.sp_target)
  in
  let active =
    match t.active with
    | None -> None
    | Some ap ->
        Some
          {
            Recover.Snapshot.sa_poison = ap.ap_target;
            sa_affected = ap.ap_affected;
            sa_first = ap.ap_first;
            sa_planned = ap.ap_planned;
            sa_announcements = ap.ap_announcements;
            sa_confirmed = ap.ap_confirmed;
            sa_rolling_back = ap.ap_rolling_back;
            sa_rollback_reason = ap.ap_rollback_reason;
            sa_next_check = ap.ap_next_check;
            sa_unpoison_due = ap.ap_unpoison_due;
            sa_rollback_due = ap.ap_rollback_due;
          }
  in
  let queue = List.rev (Queue.fold (fun acc entry -> entry :: acc) [] t.queue) in
  let outage_started =
    Hashtbl.fold (fun target started acc -> (target, started) :: acc) t.outage_started []
    |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)
  in
  let breaker =
    Hashtbl.fold (fun target () acc -> target :: acc) t.breaker [] |> List.sort Asn.compare
  in
  {
    Recover.Snapshot.so_pipelines = pipelines;
    so_active = active;
    so_queue = queue;
    so_last_announce = t.last_announce;
    so_outage_started = outage_started;
    so_breaker = breaker;
    so_reannounced = t.reannounced;
    so_rolled_back = t.rolled_back;
    so_breaker_trips = t.breaker_trips;
    so_events = List.length t.events;
    so_outcomes = List.length t.outcomes;
    so_monitors = List.length t.monitors;
  }

(* Warm restore from a snapshot: rebuild the controller's tables and
   re-arm its deadlines against the (already restored) engine clock.
   The baseline is NOT re-announced and no new collector is attached —
   the world (including any standing poison) is assumed to carry the
   announcements the journal says went out; [restore] only rebuilds the
   controller's own view of them.

   Pipelines are restored by re-running isolation at the recorded
   deadline: the diagnosis closure itself died with the process, and
   isolation is a read-only measurement, so re-measuring is safe. For
   phases past the attempt gate (Isolating/Deciding/Waiting) the
   recorded attempt had already succeeded, so it is handed back —
   re-running it must not burn retry budget. A Backoff attempt had
   failed; its count stands. *)
let restore ?(config = default_config) ?(hooks = no_hooks) ?journal ~env ~atlas
    ~responsiveness ~plan ~vantage_points ~collector (s : Recover.Snapshot.orch) () =
  let t =
    {
      config;
      hooks;
      env;
      atlas;
      responsiveness;
      plan;
      vantage_points;
      pipelines = Hashtbl.create 8;
      active = None;
      queue = Queue.create ();
      last_announce = s.Recover.Snapshot.so_last_announce;
      events = [];
      outcomes = [];
      monitors = [];
      outage_started = Hashtbl.create 8;
      collector;
      breaker = Hashtbl.create 4;
      reannounced = s.Recover.Snapshot.so_reannounced;
      rolled_back = s.Recover.Snapshot.so_rolled_back;
      breaker_trips = s.Recover.Snapshot.so_breaker_trips;
      journal;
    }
  in
  List.iter
    (fun (target, started) -> Hashtbl.replace t.outage_started target started)
    s.Recover.Snapshot.so_outage_started;
  List.iter (fun target -> Hashtbl.replace t.breaker target ()) s.Recover.Snapshot.so_breaker;
  List.iter (fun entry -> Queue.add entry t.queue) s.Recover.Snapshot.so_queue;
  let delay_until due = Float.max 0.0 (due -. now t) in
  (match s.Recover.Snapshot.so_active with
  | None -> ()
  | Some sa ->
      let ap =
        {
          ap_target = sa.Recover.Snapshot.sa_poison;
          ap_affected = sa.Recover.Snapshot.sa_affected;
          ap_first = sa.Recover.Snapshot.sa_first;
          ap_planned = sa.Recover.Snapshot.sa_planned;
          ap_announcements = sa.Recover.Snapshot.sa_announcements;
          ap_confirmed = sa.Recover.Snapshot.sa_confirmed;
          ap_rolling_back = sa.Recover.Snapshot.sa_rolling_back;
          ap_rollback_reason = sa.Recover.Snapshot.sa_rollback_reason;
          ap_next_check = sa.Recover.Snapshot.sa_next_check;
          ap_unpoison_due = sa.Recover.Snapshot.sa_unpoison_due;
          ap_rollback_due = sa.Recover.Snapshot.sa_rollback_due;
        }
      in
      t.active <- Some ap;
      let pump () = pump_queue t in
      if ap.ap_rolling_back then begin
        let delay =
          match ap.ap_rollback_due with Some due -> delay_until due | None -> 0.0
        in
        ignore
          (Sim.Engine.after_named (engine t) ~name:"orch.rollback" ~delay (fun () ->
               roll_now t ap ~pump))
      end
      else begin
        match ap.ap_unpoison_due with
        | Some due ->
            ignore
              (Sim.Engine.after_named (engine t) ~name:"orch.unpoison"
                 ~delay:(delay_until due) (fun () -> unpoison_now t ap ~pump))
        | None -> arm_recovery_check t ap ~pump ~delay:(delay_until ap.ap_next_check)
      end);
  List.iter
    (fun sp ->
      let attempt =
        match sp.Recover.Snapshot.sp_phase with
        | Recover.Snapshot.Isolating | Recover.Snapshot.Deciding | Recover.Snapshot.Waiting
          ->
            Int.max 0 (sp.Recover.Snapshot.sp_attempt - 1)
        | Recover.Snapshot.Backoff -> sp.Recover.Snapshot.sp_attempt
      in
      let p =
        {
          p_vp = sp.Recover.Snapshot.sp_vp;
          p_target = sp.Recover.Snapshot.sp_target;
          p_started = sp.Recover.Snapshot.sp_started;
          p_attempt = attempt;
          p_phase = sp.Recover.Snapshot.sp_phase;
          p_due = sp.Recover.Snapshot.sp_due;
        }
      in
      Hashtbl.replace t.pipelines p.p_target p;
      ignore
        (Sim.Engine.after_named (engine t) ~name:"orch.restart"
           ~delay:(delay_until sp.Recover.Snapshot.sp_due) (fun () ->
             attempt_isolation t p)))
    s.Recover.Snapshot.so_pipelines;
  (match t.active with
  | None -> if not (Queue.is_empty t.queue) then pump_queue t
  | Some _ -> ());
  t
