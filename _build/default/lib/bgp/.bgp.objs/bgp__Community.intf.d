lib/bgp/community.mli: Format
