(* The laundering wrapper: the direct clock read is caught by the
   syntactic LG-DET-CLOCK; the interprocedural pass must catch everyone
   calling through it. *)
let now () = Unix.gettimeofday ()
