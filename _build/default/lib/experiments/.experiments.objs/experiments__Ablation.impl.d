lib/experiments/ablation.ml: Array Asn Bgp Dataplane List Net Prefix Prng Scenarios Sim Stats Workloads
