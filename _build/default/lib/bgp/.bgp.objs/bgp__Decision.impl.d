lib/bgp/decision.ml: As_path Asn Hashtbl Int List Net Option Route
