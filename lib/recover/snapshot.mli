(** Snapshot schema: the controller's full declarative state.

    A snapshot is the explicit state-ownership contract between the
    fleet service and recovery: everything the controller owns that is
    not reconstructible from the world itself is named here — per-target
    isolation pipelines (with the phase and deadline previously buried
    in engine timers), the active poison and its watchdog state
    (next-check, pending-unpoison and pending-rollback deadlines,
    re-announce budget), the queued poisons, pacing ([last_announce]),
    outage-start estimates, breaker set, budget token levels, the plan
    cache's fingerprint + demotion set, and the counter baselines that
    let a resumed run compute its segment report.

    The heap of the discrete-event engine holds closures and therefore
    cannot be serialized; recovery of a {e byte-identical} run goes
    through deterministic re-execution verified against the journal
    ({!Journal.replaying}). The snapshot plays three roles there:
    replay-fidelity check (when re-execution reaches the snapshot's
    mark, the freshly captured snapshot must render byte-identically —
    {!Mismatch} otherwise), counter baselines for segment reports, and
    the warm-restore schema for [Orchestrator.restore].

    Rendering is line-based, deterministic and byte-stable (floats as
    hex floats, free text percent-escaped); {!equal} is byte equality
    of {!render}. *)

open Net

type pipeline_phase =
  | Isolating  (** mid-isolation (transient; re-isolate on restore) *)
  | Deciding  (** decision scheduled at [sp_due] *)
  | Waiting  (** Wait verdict; recheck at [sp_due] *)
  | Backoff  (** lost/denied attempt; retry at [sp_due] *)

type pipeline = {
  sp_vp : Asn.t;
  sp_target : Asn.t;
  sp_started : float;
  sp_attempt : int;
  sp_phase : pipeline_phase;
  sp_due : float;
}

type active = {
  sa_poison : Asn.t;
  sa_affected : Asn.t list;  (** newest first, as the controller holds it *)
  sa_first : float;
  sa_planned : bool;
  sa_announcements : int;
  sa_confirmed : bool;
  sa_rolling_back : bool;
  sa_rollback_reason : string;
  sa_next_check : float;  (** next watchdog/recovery check *)
  sa_unpoison_due : float option;  (** pending paced unpoison *)
  sa_rollback_due : float option;  (** pending paced rollback *)
}

type orch = {
  so_pipelines : pipeline list;  (** sorted by target *)
  so_active : active option;
  so_queue : (Asn.t * Asn.t * bool) list;  (** (target, poison, planned), FIFO *)
  so_last_announce : float;
  so_outage_started : (Asn.t * float) list;  (** sorted by target *)
  so_breaker : Asn.t list;  (** sorted *)
  so_reannounced : int;
  so_rolled_back : int;
  so_breaker_trips : int;
  so_events : int;  (** event-log length (the log itself is observability, not state) *)
  so_outcomes : int;
  so_monitors : int;
}

type bucket = {
  bk_name : string;  (** ["global"] or ["vp:<asn>"] *)
  bk_tokens : float;
  bk_updated : float;
  bk_granted : int;
  bk_denied : int;
}

type t = {
  version : int;
  at : float;  (** simulation time of the capture *)
  mark : int;  (** 1-based snapshot index within the run *)
  seed : int;
  config_fp : string;  (** fingerprint of (config, seed); resume refuses a mismatch *)
  journal_len : int;  (** journal records persisted at capture time *)
  orch : orch;
  counters : (string * int) list;  (** absolute counter values at capture, sorted *)
  buckets : bucket list;
  plan : string option;  (** opaque [Plan.Cache.capture] rendering *)
  head : string list;  (** rendered head-segment report *)
}

exception Mismatch of { mark : int }
(** Re-execution reached [mark] but captured a different snapshot. *)

val version : int

val render : t -> string
(** Deterministic multi-line rendering (ends with ["end\n"]). *)

val parse : string -> t option
val parse_result : string -> (t, string) result

val equal : t -> t -> bool
(** Byte equality of {!render}. *)

val counter : t -> string -> int
(** Baseline lookup; 0 when absent. *)

val phase_to_string : pipeline_phase -> string
val phase_of_string : string -> pipeline_phase option
