(** lifeguard-lint: stdlib-only static analysis (compiler-libs) enforcing
    the domain-safety, determinism and hot-path rules the parallel
    experiment runner depends on — per-file syntactic rules plus the
    interprocedural {!Callgraph}/{!Effects} pass behind the [LG-EFF-*]
    family. See DESIGN.md, "Static analysis". *)

module Rule = Rule
module Source_scan = Source_scan
module Baseline = Baseline
module Callgraph = Callgraph
module Effects = Effects
module Pragma = Pragma
module Report = Report

val default_dirs : string list
(** [["lib"; "bin"; "bench"; "examples"]] *)

val collect_ml_files : string list -> string -> string list
(** [collect_ml_files acc path] prepends every [.ml] under [path] to
    [acc], skipping hidden and [_]-prefixed directories. *)

type report = {
  violations : Source_scan.violation list;
  errors : (string * string) list;  (** file, parse error *)
}

val scan : ?kind:Source_scan.file_kind -> dirs:string list -> unit -> report
(** Scan every [.ml] under [dirs] (sorted, deterministic): each file is
    parsed once and shared between the syntactic pass, the
    [LG-MLI-MISSING] filesystem pass, and the interprocedural
    [LG-EFF-*] pass over the library files. Pragma-suppressed
    violations are dropped. [kind] overrides per-path classification —
    tests use {!Source_scan.lib_kind} to force library strictness on
    fixtures. *)

val analyse : ?kind:Source_scan.file_kind -> dirs:string list -> unit -> Effects.t * (string * string) list
(** Build the callgraph over the library files under [dirs] and infer
    effect summaries; also returns parse errors. *)

val effects_table : ?kind:Source_scan.file_kind -> dirs:string list -> unit -> string * (string * string) list
(** The [--effects] table: one deterministic row per exported library
    definition, plus parse errors. *)

val run_check :
  ?format:Report.format -> oc:out_channel -> baseline_path:string -> report -> int
(** Diff a report against a baseline file; print fresh violations and
    staleness notes ([Report.Github] adds [::error] workflow commands);
    return the process exit code (0 clean, 1 fresh violations, 2
    unreadable baseline). *)

val main : ?out:Format.formatter -> string array -> int
(** The CLI ([bin/lifeguard_lint]): returns the exit code. Informational
    output (help, rule listing, baseline-write confirmation, the
    [--effects] table) goes to [out] (default [Format.std_formatter]);
    reports go to stdout/stderr as before. *)
