(** A day of continuous fleet operations, at deployment scale.

    Every other experiment injects one failure and watches one pipeline.
    This one runs {!Fleet.Service} — Poisson outage arrivals, budgeted
    monitoring, concurrent isolation with retry/backoff, damping-paced
    remediation — over enough targets that the paper's Table 2 load
    model can be checked against a {e measured} update stream rather
    than a closed-form cell.

    The fleet shards into share-nothing worlds of
    [config.target_count] targets each (a decomposition fixed by
    [targets], never by [jobs]), so the study parallelises across
    domains while every table stays byte-identical for any worker
    count. Worlds run the same observation window in parallel, so
    per-day rates (injected outages, announced updates) merge as plain
    sums and repair latencies pool into one CDF. *)

type result = {
  shards : int;
  targets : int;
  days : float;
  injected : int;
  drawn : int;
  unplaceable : int;
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  unfinished : int;
  poisons : int;
  unpoisons : int;
  time_to_repair : float list;  (** Pooled across worlds, ascending. *)
  monitor_pairs : int;
  monitor_skipped : int;
  probes_sent : int;
  budget_granted : int;
  budget_denied : int;
  isolation_retries : int;
  vp_crashes : int;
  lost_probes : int;
  stale_refreshes : int;
  collector_updates : int;
  injected_h15 : float;
  measured_updates_per_day : float;
  predicted_updates_per_day : float;
  reannounced : int;
  rolled_back : int;
  breaker_trips : int;
  session_flaps : int;
  link_failures : int;
  router_crashes : int;
  updates_dropped : int;
  updates_duplicated : int;
}

let run ?(config = Fleet.Service.default_config) ?(targets = 250) ?(jobs = 1) ~seed () =
  if targets <= 0 then invalid_arg "Fleet_study.run: targets must be positive";
  let per_world = max 1 config.Fleet.Service.target_count in
  let shards = (targets + per_world - 1) / per_world in
  let reports =
    Runner.run_trials ~jobs
      (List.init shards (fun shard ->
           (* The last world takes the remainder so the fleet monitors
              exactly [targets] networks. *)
           let count =
             if shard = shards - 1 then targets - (per_world * (shards - 1)) else per_world
           in
           fun () ->
             Fleet.Service.run
               ~config:{ config with Fleet.Service.target_count = count }
               ~seed:(seed + shard) ()))
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 reports in
  let open Fleet.Service in
  {
    shards;
    targets;
    days = config.duration /. 86400.0;
    injected = sum (fun r -> r.injected);
    drawn = sum (fun r -> r.drawn);
    unplaceable = sum (fun r -> r.unplaceable);
    detected = sum (fun r -> r.detected);
    repaired = sum (fun r -> r.repaired);
    stood_down = sum (fun r -> r.stood_down);
    gave_up = sum (fun r -> r.gave_up);
    unfinished = sum (fun r -> r.unfinished);
    poisons = sum (fun r -> r.poisons);
    unpoisons = sum (fun r -> r.unpoisons);
    time_to_repair =
      List.sort Float.compare (List.concat_map (fun r -> r.time_to_repair) reports);
    monitor_pairs = sum (fun r -> r.monitor_pairs);
    monitor_skipped = sum (fun r -> r.monitor_skipped);
    probes_sent = sum (fun r -> r.probes_sent);
    budget_granted = sum (fun r -> r.budget_granted);
    budget_denied = sum (fun r -> r.budget_denied);
    isolation_retries = sum (fun r -> r.isolation_retries);
    vp_crashes = sum (fun r -> r.vp_crashes);
    lost_probes = sum (fun r -> r.lost_probes);
    stale_refreshes = sum (fun r -> r.stale_refreshes);
    collector_updates = sum (fun r -> r.collector_updates);
    (* Worlds observe the same window in parallel, so fleet-wide daily
       rates are the sums of the per-world rates, and the Table 2
       prediction (linear in its H(15) anchor) sums the same way. *)
    injected_h15 = sumf (fun r -> r.injected_h15);
    measured_updates_per_day = sumf (fun r -> r.measured_updates_per_day);
    predicted_updates_per_day = sumf (fun r -> r.predicted_updates_per_day);
    reannounced = sum (fun r -> r.reannounced);
    rolled_back = sum (fun r -> r.rolled_back);
    breaker_trips = sum (fun r -> r.breaker_trips);
    session_flaps = sum (fun r -> r.session_flaps);
    link_failures = sum (fun r -> r.link_failures);
    router_crashes = sum (fun r -> r.router_crashes);
    updates_dropped = sum (fun r -> r.updates_dropped);
    updates_duplicated = sum (fun r -> r.updates_duplicated);
  }

let ttr_cdf r =
  match r.time_to_repair with
  | [] -> None
  | samples -> Some (Stats.Ecdf.of_samples (Array.of_list samples))

let to_tables r =
  let ops =
    Stats.Table.create ~title:"Fleet operations: one observation window (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  let pct num den =
    if den = 0 then "-" else Stats.Table.cell_pct (float_of_int num /. float_of_int den)
  in
  Stats.Table.add_rows ops
    [
      [ "observation window (days)"; "-"; Stats.Table.cell_float ~decimals:2 r.days ];
      [ "worlds x targets"; "-"; Printf.sprintf "%d x ~%d" r.shards (r.targets / r.shards) ];
      [ "outages injected"; "-"; Stats.Table.cell_int r.injected ];
      [ "  >= 15 min (H15, per day)"; "-"; Stats.Table.cell_float ~decimals:1 r.injected_h15 ];
      [ "pipelines opened (detections)"; "-"; Stats.Table.cell_int r.detected ];
      [ "  repaired (sentinel-confirmed)"; "-"; Stats.Table.cell_int r.repaired ];
      [ "  stood down (resolved/unpoisonable)"; "-"; Stats.Table.cell_int r.stood_down ];
      [ "  gave up (retries/timeout)"; "-"; Stats.Table.cell_int r.gave_up ];
      [ "  open at horizon"; "-"; Stats.Table.cell_int r.unfinished ];
      [
        "terminal-state share";
        "every pipeline terminates";
        pct (r.repaired + r.stood_down + r.gave_up) r.detected;
      ];
    ];
  let spend =
    Stats.Table.create ~title:"Fleet probe spend under the budget"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows spend
    [
      [ "monitor ping pairs sent"; "-"; Stats.Table.cell_int r.monitor_pairs ];
      [ "monitor rounds budget-refused"; "-"; Stats.Table.cell_int r.monitor_skipped ];
      [ "data-plane probes (all)"; "-"; Stats.Table.cell_int r.probes_sent ];
      [ "budget grants / denials"; "-";
        Printf.sprintf "%d / %d" r.budget_granted r.budget_denied ];
      [ "isolation retries"; "-"; Stats.Table.cell_int r.isolation_retries ];
      [ "chaos: VP crashes"; "-"; Stats.Table.cell_int r.vp_crashes ];
      [ "chaos: probe pairs lost"; "-"; Stats.Table.cell_int r.lost_probes ];
      [ "chaos: stale atlas refreshes"; "-"; Stats.Table.cell_int r.stale_refreshes ];
    ];
  let ttr =
    Stats.Table.create
      ~title:"Time to repair, detection -> sentinel-confirmed (pooled CDF)"
      ~columns:[ "quantile"; "seconds" ]
  in
  (match ttr_cdf r with
  | None -> Stats.Table.add_row ttr [ "(no repaired outages)"; "-" ]
  | Some cdf ->
      List.iter
        (fun q ->
          Stats.Table.add_row ttr
            [
              Stats.Table.cell_pct ~decimals:0 q;
              Stats.Table.cell_float ~decimals:0 (Stats.Ecdf.quantile cdf q);
            ])
        [ 0.25; 0.5; 0.75; 0.9; 1.0 ]);
  let load =
    Stats.Table.create ~title:"Measured daily update load vs Table 2 model"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  let ratio =
    if r.predicted_updates_per_day > 0.0 then
      r.measured_updates_per_day /. r.predicted_updates_per_day
    else 0.0
  in
  Stats.Table.add_rows load
    [
      [ "poisons / unpoisons announced"; "-";
        Printf.sprintf "%d / %d" r.poisons r.unpoisons ];
      [ "route-collector records"; "-"; Stats.Table.cell_int r.collector_updates ];
      [
        "updates per day, measured";
        "-";
        Stats.Table.cell_float ~decimals:1 r.measured_updates_per_day;
      ];
      [
        "updates per day, Table 2 model";
        "(I*T*P(d) anchored at this run's H15)";
        Stats.Table.cell_float ~decimals:1 r.predicted_updates_per_day;
      ];
      [ "measured / modelled"; "within 2x"; Stats.Table.cell_float ~decimals:2 ratio ];
    ];
  [ ops; spend; ttr; load ]
