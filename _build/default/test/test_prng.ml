(* Determinism and distribution sanity of the PRNG layer. *)

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done;
  let c = Prng.create ~seed:124 in
  Alcotest.(check bool) "different seed, different stream" true
    (Prng.bits64 (Prng.create ~seed:123) <> Prng.bits64 c)

let test_copy_and_split () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Prng.bits64 a) (Prng.bits64 b);
  let parent = Prng.create ~seed:9 in
  let child1 = Prng.split parent in
  let child2 = Prng.split parent in
  Alcotest.(check bool) "split children differ" true
    (Prng.bits64 child1 <> Prng.bits64 child2)

let test_int_bounds () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.(check int) "bound 1 is constant" 0 (Prng.int rng 1);
  Alcotest.check Alcotest.bool "bound 0 rejected" true
    (try
       ignore (Prng.int rng 0);
       false
     with Invalid_argument _ -> true)

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:11 in
  let arr = Array.init 50 (fun i -> i) in
  let shuffled = Array.copy arr in
  Prng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" arr sorted

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:13 in
  let arr = Array.init 20 (fun i -> i) in
  let sample = Prng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length sample);
  let distinct = List.sort_uniq compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 8 (List.length distinct);
  let oversized = Prng.sample_without_replacement rng 100 arr in
  Alcotest.(check int) "clamped to population" 20 (Array.length oversized)

let test_exponential_mean () =
  let rng = Prng.create ~seed:17 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.Dist.exponential rng ~mean:42.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~42 (got %.1f)" mean)
    true
    (mean > 39.0 && mean < 45.0)

let test_pareto_support () =
  let rng = Prng.create ~seed:19 in
  for _ = 1 to 1000 do
    let x = Prng.Dist.pareto rng ~shape:1.2 ~scale:10.0 in
    Alcotest.(check bool) "x >= scale" true (x >= 10.0)
  done

let test_normal_moments () =
  let rng = Prng.create ~seed:23 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Prng.Dist.normal rng ~mu:5.0 ~sigma:2.0) in
  let mean = Stats.Descriptive.mean xs in
  let sd = Stats.Descriptive.stddev xs in
  Alcotest.(check bool) "mean ~5" true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "sd ~2" true (Float.abs (sd -. 2.0) < 0.1)

let test_zipf_range () =
  let rng = Prng.create ~seed:29 in
  for _ = 1 to 500 do
    let k = Prng.Dist.zipf rng ~n:50 ~s:1.1 in
    Alcotest.(check bool) "in [1,50]" true (k >= 1 && k <= 50)
  done

let test_mixture_weights () =
  let rng = Prng.create ~seed:31 in
  let n = 10000 in
  let low = ref 0 in
  for _ = 1 to n do
    let x = Prng.Dist.mixture rng [ (0.7, fun _ -> 1.0); (0.3, fun _ -> 2.0) ] in
    if x = 1.0 then incr low
  done;
  let f = float_of_int !low /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "~70%% low component (got %.2f)" f) true
    (f > 0.66 && f < 0.74)

let prop_float_unit =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let x = Prng.float rng in
      x >= 0.0 && x < 1.0)

let prop_int_uniformish =
  QCheck.Test.make ~name:"int respects bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let prop_bernoulli_extremes =
  QCheck.Test.make ~name:"bernoulli 0 and 1 are constant" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      (not (Prng.bernoulli rng ~p:0.0)) && Prng.bernoulli rng ~p:1.0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy and split" `Quick test_copy_and_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "zipf range" `Quick test_zipf_range;
    Alcotest.test_case "mixture weights" `Quick test_mixture_weights;
    QCheck_alcotest.to_alcotest prop_float_unit;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
    QCheck_alcotest.to_alcotest prop_bernoulli_extremes;
  ]
