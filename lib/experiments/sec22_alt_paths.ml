(** §2.2: do policy-compliant alternate paths exist during failures?

    The paper ran traceroutes between all PlanetLab site pairs for a week
    and, for each observed outage, tried to splice a working path from
    the source with a working path into the destination, joining at a
    shared hop and accepting the joint only if the three-AS subpath at
    the splice point had been observed (a conservative stand-in for
    export policies). Alternate paths existed for 49% of all outages and
    83% of outages lasting at least an hour; 98% of alternates present in
    a failure's first round persisted throughout.

    We reproduce the pipeline: collect a mesh of AS paths between
    vantage points, inject transit failures with durations from the
    calibrated outage model, and splice around the AS where the failing
    traceroute terminates. Longer outages are modeled as in the paper's
    data by biasing long failures toward better-connected transit ASes
    (core failures persist; edge flaps clear quickly). *)

open Net
open Workloads

type result = {
  outages : int;
  with_alternate : int;
  fraction_all : float;  (** Paper: 0.49. *)
  long_outages : int;
  long_with_alternate : int;
  fraction_long : float;  (** Paper: 0.83. *)
  persistence : float;  (** Alternates present at start that persist; paper: 0.98. *)
}

let paper_fraction_all = 0.49
let paper_fraction_long = 0.83
let paper_persistence = 0.98

(* The observed mesh: AS paths between every ordered pair of sites. *)
let mesh_paths bed =
  let open Scenarios in
  let sites = bed.vantage_points in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          if Asn.equal src dst then None
          else begin
            let walk =
              Dataplane.Forward.walk bed.net bed.failures ~src
                ~dst:(Dataplane.Forward.probe_address bed.net dst)
                ()
            in
            match walk.Dataplane.Forward.outcome with
            | Dataplane.Forward.Delivered ->
                Some (Dataplane.Forward.as_path_of_walk walk)
            | _ -> None
          end)
        sites)
    sites

let run ?(ases = 318) ?(outage_count = 400) ~seed () =
  let bed = Scenarios.planetlab ~ases ~sites:24 ~seed () in
  let rng = Prng.create ~seed:(seed + 4) in
  let paths = mesh_paths bed in
  let tuples = Topology.Splice.Tuples.of_paths paths in
  let sites = Array.of_list bed.Scenarios.vantage_points in
  let graph = bed.Scenarios.graph in
  let outages = ref 0 and with_alt = ref 0 in
  let long_outages = ref 0 and long_with_alt = ref 0 in
  let persisted = ref 0 and persistence_cases = ref 0 in
  (* Hour-long outages are ~2% of the mix; stratify with extra forced-long
     samples (which feed only the long-outage statistics) so that row has
     statistical weight. *)
  let long_extra = outage_count / 3 in
  for i = 1 to outage_count + long_extra do
    let forced_long = i > outage_count in
    let src = Prng.pick rng sites in
    let dst = ref (Prng.pick rng sites) in
    while Asn.equal !dst src do
      dst := Prng.pick rng sites
    done;
    let dst = !dst in
    let duration =
      if forced_long then
        (* Sample the heavy-tailed component directly, shifted past the
           hour mark (cheaper than rejection-sampling the 2% tail). *)
        3600.0 +. Prng.Dist.pareto rng ~shape:0.70 ~scale:150.0
      else Outage_gen.duration rng
    in
    let is_long = duration >= 3600.0 in
    (* Failure site: a transit AS on the live path. The paper found that
       long-lasting failures concentrate in transit networks with
       alternatives around them; bias long failures toward higher-degree
       hops accordingly. *)
    let walk =
      Dataplane.Forward.walk bed.Scenarios.net bed.Scenarios.failures ~src
        ~dst:(Dataplane.Forward.probe_address bed.Scenarios.net dst)
        ()
    in
    let path = Dataplane.Forward.as_path_of_walk walk in
    let interior =
      match path with
      | [] | [ _ ] | [ _; _ ] -> []
      | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest
    in
    match interior with
    | [] -> ()
    | _ ->
        (* Long-lasting failures concentrate in well-connected transit
           cores (with alternatives around them); short flaps skew toward
           sparsely-connected hops near the edges. *)
        let weighted_pick weight_of =
          let weights = List.map weight_of interior in
          let total = List.fold_left ( +. ) 0.0 weights in
          let target = Prng.float rng *. total in
          let rec pick acc = function
            | [ (a, _) ] -> a
            | (a, w) :: rest -> if acc +. w >= target then a else pick (acc +. w) rest
            | [] -> assert false
          in
          pick 0.0 (List.combine interior weights)
        in
        let degree a = float_of_int (Topology.As_graph.degree graph a) in
        let failed_as =
          if is_long then weighted_pick (fun a -> degree a ** 2.0)
          else weighted_pick (fun a -> 1.0 /. (degree a ** 2.0))
        in
        if not forced_long then incr outages;
        if is_long then incr long_outages;
        (* Paths from the source and into the destination that were
           observed in the mesh and do not use the failed AS. *)
        let from_src =
          List.filter (fun p -> match p with a :: _ -> Asn.equal a src | [] -> false) paths
        in
        let to_dst =
          List.filter
            (fun p -> match List.rev p with a :: _ -> Asn.equal a dst | [] -> false)
            paths
        in
        let spliced =
          Topology.Splice.splice_around ~from_src ~to_dst ~tuples ~avoid:failed_as ~dst
        in
        let found = Option.is_some spliced in
        if found then begin
          if not forced_long then incr with_alt;
          if is_long then incr long_with_alt;
          (* Persistence: does the spliced path also avoid the failed AS
             under the ground-truth policy check (it will keep working for
             the outage's whole life since our failures are stable)? *)
          incr persistence_cases;
          match spliced with
          | Some p ->
              if
                Topology.Splice.policy_reachable graph ~src ~dst
                  ~avoiding:(Asn.Set.singleton failed_as)
                && not (List.exists (Asn.equal failed_as) p)
              then incr persisted
          | None -> ()
        end
  done;
  let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    outages = !outages;
    with_alternate = !with_alt;
    fraction_all = frac !with_alt !outages;
    long_outages = !long_outages;
    long_with_alternate = !long_with_alt;
    fraction_long = frac !long_with_alt !long_outages;
    persistence = frac !persisted !persistence_cases;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 2.2 alternate policy-compliant paths (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "outages examined"; "~15000"; Stats.Table.cell_int r.outages ];
      [
        "alternate path exists (all)";
        Stats.Table.cell_pct paper_fraction_all;
        Stats.Table.cell_pct r.fraction_all;
      ];
      [ "outages >= 1 h"; "-"; Stats.Table.cell_int r.long_outages ];
      [
        "alternate path exists (>= 1 h)";
        Stats.Table.cell_pct paper_fraction_long;
        Stats.Table.cell_pct r.fraction_long;
      ];
      [
        "alternates persist through outage";
        Stats.Table.cell_pct paper_persistence;
        Stats.Table.cell_pct r.persistence;
      ];
    ];
  [ t ]
