examples/selective_poisoning.ml: As_graph Asn Bgp Dataplane Lifeguard List Net Prefix Printf Relationship Sim Topology
