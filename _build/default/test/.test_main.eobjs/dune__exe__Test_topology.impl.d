test/test_topology.ml: Alcotest Array As_graph Asn Ipv4 List Net Printf Prng QCheck QCheck_alcotest Relationship Splice Topo_gen Topology
