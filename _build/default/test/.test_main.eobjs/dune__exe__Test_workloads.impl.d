test/test_workloads.ml: Alcotest Asn Bgp Dataplane Float Lifeguard List Net Outage_gen Printf Prng QCheck QCheck_alcotest Scenarios Sim Stats Topology Workloads
