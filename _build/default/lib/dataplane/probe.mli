(** Measurement probes over the simulated data plane.

    The vocabulary of §4.1: pings, traceroutes, their {e spoofed} variants
    (send with someone else's source address so the reply takes — and
    therefore tests — a different direction than the request), and an
    emulated reverse traceroute. Each primitive also accrues a probe-packet
    count in the environment, feeding the paper's §5.4 overhead
    accounting. *)

open Net

type env = { net : Bgp.Network.t; failures : Failure.set; mutable probes_sent : int }
(** A probing context: the control plane, the active failures and a
    running count of probe packets. *)

val env : Bgp.Network.t -> Failure.set -> env
val reset_probe_count : env -> unit

val responder : env -> Ipv4.t -> Asn.t option
(** The AS that would answer probes to this address: the owner of the
    router address, or the AS originating the covering prefix. *)

val ping : env -> src:Asn.t -> dst:Ipv4.t -> bool
(** Echo request from [src]'s first router to [dst] and reply back to
    [src]'s infrastructure address. True iff both directions deliver. *)

val ping_from : env -> src:Asn.t -> src_ip:Ipv4.t -> dst:Ipv4.t -> bool
(** Like {!ping} but the reply is routed to [src_ip] — how LIFEGUARD's
    sentinel tests repairs: probes sourced from the sentinel's unused
    sub-prefix draw their replies over the unpoisoned sentinel route. *)

val spoofed_ping : env -> sender:Asn.t -> spoof_src:Ipv4.t -> dst:Ipv4.t -> bool
(** [sender] probes [dst] with source address [spoof_src]; true iff the
    request delivers and the reply delivers to [spoof_src]'s owner. With
    [spoof_src] at a vantage point this tests the forward direction
    [sender -> dst] in isolation; with the roles swapped it isolates the
    reverse direction. *)

type trace_hop = { hop : Forward.hop; responded : bool }
(** A traceroute hop: [responded] means the hop's TTL-expired reply
    actually made it back to wherever replies were addressed. *)

type trace = {
  hops : trace_hop list;  (** Forward hops, source first. *)
  reached : bool;  (** The destination answered (forward + reply ok). *)
  outcome : Forward.outcome;  (** The raw forward-walk outcome. *)
}

val last_responsive_as : trace -> Asn.t option
(** The AS of the last hop that responded — what an operator reading the
    traceroute would blame (possibly wrongly, cf. §5.3). *)

val visible_path : trace -> Asn.t list
(** AS path as the measuring host sees it: hops up to and including the
    last responsive one. *)

val traceroute : env -> src:Asn.t -> dst:Ipv4.t -> trace
(** Classic traceroute: forward hops probe by TTL; each hop's reply must
    travel back to [src]. Unidirectional reverse failures make hops appear
    silent even though the forward path works — the misleading case
    motivating LIFEGUARD's isolation. *)

val spoofed_traceroute : env -> sender:Asn.t -> spoof_src:Ipv4.t -> dst:Ipv4.t -> trace
(** Traceroute whose replies flow to [spoof_src]'s owner instead of the
    sender, measuring the forward path even when the sender's reverse
    direction is broken. *)

val reverse_traceroute :
  env -> vantage_points:Asn.t list -> from_:Asn.t -> to_ip:Ipv4.t -> trace option
(** Emulation of reverse traceroute [19]: measure the path {e from}
    [from_] back to [to_ip]. Requires at least one vantage point with a
    working forward path to [from_] (to deliver the spoofed stimuli);
    costs ~10 option probes plus 2 traceroutes (per the paper's §5.4
    amortized figures). Returns the hop-annotated walk, truncated where
    the reverse path fails. *)
