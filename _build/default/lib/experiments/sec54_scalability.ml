(** §5.4 Scalability: atlas refresh cost and isolation overhead.

    Paper figures: the reverse-path atlas refreshes an average (peak) of
    225 (502) paths per minute within its probing budget, using an
    amortized ~10 IP-option probes and ~2 forward traceroutes per path
    (vs. 35 option probes for a from-scratch reverse traceroute); fault
    isolation costs ~280 probe packets per outage and completes in 140 s
    on average for reverse failures. *)

open Workloads

type result = {
  pairs_refreshed : int;
  probes_total : int;
  probes_per_path : float;  (** Paper: ~10 option probes + ~2 traceroutes. *)
  paths_per_minute : float;  (** At the modeled probing budget; paper: 225 avg. *)
  isolation_probes_mean : float;  (** Paper: ~280. *)
  isolation_elapsed_mean : float;  (** Paper: 140 s. *)
  rtr_scratch_mean : float;
      (** Mean probes for a from-scratch reverse-traceroute measurement;
          paper: ~35 option probes. *)
  rtr_cached_mean : float;  (** With a cached path to confirm; paper: ~10. *)
}

(* The deployment's sustainable probing budget (packets/s across the
   vantage-point pool), matching the scale of the paper's deployment. *)
let probing_budget_pps = 150.0

let run ?(ases = 318) ~seed ~accuracy:(acc : Sec53_accuracy.result) () =
  let bed = Scenarios.planetlab ~ases ~sites:24 ~seed () in
  let atlas = Measurement.Atlas.create () in
  let sites = bed.Scenarios.vantage_points in
  let vps, targets =
    let arr = Array.of_list sites in
    let n = Array.length arr in
    ( Array.to_list (Array.sub arr 0 (n / 2)),
      Array.to_list (Array.sub arr (n / 2) (n - (n / 2))) )
  in
  Dataplane.Probe.reset_probe_count bed.Scenarios.probe;
  Measurement.Atlas.refresh_all atlas bed.Scenarios.probe ~vps ~dsts:targets ~now:0.0;
  let pairs = Measurement.Atlas.pair_count atlas in
  let probes = bed.Scenarios.probe.Dataplane.Probe.probes_sent in
  let per_path = float_of_int probes /. float_of_int (max 1 pairs) in
  (* The full reverse-traceroute mechanism: from-scratch vs cache-assisted
     cost over the same (target, vp) pairs. *)
  let rtr = Measurement.Reverse_traceroute.create ~env:bed.Scenarios.probe ~vantage_points:vps () in
  let scratch = ref [] and cached_costs = ref [] in
  List.iter
    (fun vp ->
      List.iter
        (fun target ->
          let to_ip = Dataplane.Forward.probe_address bed.Scenarios.net vp in
          match Measurement.Reverse_traceroute.measure rtr ~from_:target ~to_ip () with
          | Some m when m.Measurement.Reverse_traceroute.complete ->
              scratch := float_of_int m.Measurement.Reverse_traceroute.probes_used :: !scratch;
              let cached =
                List.map
                  (fun h -> h.Measurement.Reverse_traceroute.asn)
                  m.Measurement.Reverse_traceroute.path
              in
              (match Measurement.Reverse_traceroute.measure rtr ~from_:target ~to_ip ~cached () with
              | Some m2 ->
                  cached_costs :=
                    float_of_int m2.Measurement.Reverse_traceroute.probes_used :: !cached_costs
              | None -> ())
          | Some _ | None -> ())
        targets)
    vps;
  let mean l = if l = [] then 0.0 else Stats.Descriptive.mean (Array.of_list l) in
  {
    pairs_refreshed = pairs;
    probes_total = probes;
    probes_per_path = per_path;
    paths_per_minute = probing_budget_pps *. 60.0 /. per_path;
    isolation_probes_mean = acc.Sec53_accuracy.mean_probes;
    isolation_elapsed_mean = acc.Sec53_accuracy.mean_elapsed;
    rtr_scratch_mean = mean !scratch;
    rtr_cached_mean = mean !cached_costs;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.4 scalability (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "atlas pairs refreshed"; "-"; Stats.Table.cell_int r.pairs_refreshed ];
      [
        "probe packets per refreshed path";
        "~10 option probes + ~2 traceroutes (~40 pkts)";
        Stats.Table.cell_float ~decimals:1 r.probes_per_path;
      ];
      [
        "refresh rate at probing budget (paths/min)";
        "225 (502 peak)";
        Stats.Table.cell_float ~decimals:0 r.paths_per_minute;
      ];
      [
        "probes per fault isolation";
        "~280";
        Stats.Table.cell_float ~decimals:0 r.isolation_probes_mean;
      ];
      [
        "isolation latency (s, mean)";
        "140";
        Stats.Table.cell_float ~decimals:0 r.isolation_elapsed_mean;
      ];
      [
        "reverse traceroute, from scratch (probes)";
        "~35";
        Stats.Table.cell_float ~decimals:0 r.rtr_scratch_mean;
      ];
      [
        "reverse traceroute, cache-assisted (probes)";
        "~10";
        Stats.Table.cell_float ~decimals:0 r.rtr_cached_mean;
      ];
    ];
  [ t ]
