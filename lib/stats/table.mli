(** Plain-text table rendering for experiment output.

    The benchmark harness prints one table per reproduced paper table or
    figure; this module keeps the formatting in one place so the output
    stays aligned and diff-friendly. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title line and a header row. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_rows : t -> string list list -> unit
(** Append several rows. *)

val render : t -> string
(** Render with a title, a header, a separator and aligned columns. *)

val print : ?out:Format.formatter -> t -> unit
(** [render] to [out] (default [Format.std_formatter]) followed by a
    blank line. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 2). *)

val cell_pct : ?decimals:int -> float -> string
(** Format a fraction in [\[0,1\]] as a percentage cell, e.g. ["76.5%"]. *)

val cell_int : int -> string
(** Format an int cell. *)
