(* lifeguard-lint: fixture corpus (one must-flag and one must-pass file
   per rule family), baseline semantics, and the --check exit codes. *)

module Rule = Lint.Rule
module Scan = Lint.Source_scan
module Baseline = Lint.Baseline

let fixture name = Filename.concat "lint_fixtures" name

let scan_fixture name =
  match Scan.scan_file ~kind:Scan.lib_kind (fixture name) with
  | Ok vs -> vs
  | Error e -> Alcotest.failf "parse error in %s: %s" name e

let count rule vs =
  List.length (List.filter (fun (v : Scan.violation) -> String.equal (Rule.id v.rule) (Rule.id rule)) vs)

let check_rule name vs rule expected =
  Alcotest.(check int) (name ^ ": " ^ Rule.id rule) expected (count rule vs)

let test_det_fixtures () =
  let bad = scan_fixture "det_bad.ml" in
  check_rule "det_bad" bad Rule.Det_random 1;
  check_rule "det_bad" bad Rule.Det_clock 2;
  check_rule "det_bad" bad Rule.Det_polyeq 3;
  check_rule "det_bad" bad Rule.Det_hashkey 1;
  Alcotest.(check int) "det_good is clean" 0 (List.length (scan_fixture "det_good.ml"))

let test_dom_fixtures () =
  let bad = scan_fixture "dom_bad.ml" in
  check_rule "dom_bad" bad Rule.Dom_mut 5;
  Alcotest.(check int) "dom_good is clean" 0 (List.length (scan_fixture "dom_good.ml"));
  (* outside lib/, module-level state is the executable's business *)
  (match
     Scan.scan_file
       ~kind:{ Scan.in_lib = false; prng_exempt = false; obs_exempt = false; bgp_exempt = false }
       (fixture "dom_bad.ml")
   with
  | Ok vs -> check_rule "dom_bad outside lib" vs Rule.Dom_mut 0
  | Error e -> Alcotest.fail e);
  (* lib/obs is the sanctioned home for cross-domain shards: exempt. *)
  match Scan.scan_file ~kind:(Scan.classify "lib/obs/metrics.ml") (fixture "dom_bad.ml") with
  | Ok vs -> check_rule "dom_bad under lib/obs" vs Rule.Dom_mut 0
  | Error e -> Alcotest.fail e

let test_obs_fixtures () =
  let bad = scan_fixture "obs_bad.ml" in
  check_rule "obs_bad" bad Rule.Obs_printf 4;
  Alcotest.(check int) "obs_good is clean" 0 (List.length (scan_fixture "obs_good.ml"));
  (* outside lib/, printing is the executable's business *)
  match Scan.scan_file ~kind:(Scan.classify "bench/main.ml") (fixture "obs_bad.ml") with
  | Ok vs -> check_rule "obs_bad outside lib" vs Rule.Obs_printf 0
  | Error e -> Alcotest.fail e

let test_perf_fixtures () =
  let bad = scan_fixture "perf_bad.ml" in
  check_rule "perf_bad" bad Rule.Perf_append 2;
  check_rule "perf_bad" bad Rule.Perf_scan 2;
  Alcotest.(check int) "perf_good is clean" 0 (List.length (scan_fixture "perf_good.ml"))

let test_structeq_fixtures () =
  let bad = scan_fixture "structeq_bad.ml" in
  check_rule "structeq_bad" bad Rule.Perf_structeq 4;
  Alcotest.(check int) "structeq_good is clean" 0
    (count Rule.Perf_structeq (scan_fixture "structeq_good.ml"));
  (* inside lib/bgp, structural comparison of the interned reps is legal *)
  match Scan.scan_file ~kind:(Scan.classify "lib/bgp/as_path.ml") (fixture "structeq_bad.ml") with
  | Ok vs -> check_rule "structeq_bad under lib/bgp" vs Rule.Perf_structeq 0
  | Error e -> Alcotest.fail e

let test_rob_fixtures () =
  let bad = scan_fixture "rob_bad.ml" in
  check_rule "rob_bad" bad Rule.Rob_exn 4;
  Alcotest.(check int) "rob_good is clean" 0 (List.length (scan_fixture "rob_good.ml"));
  (* outside lib/, defensive catch-alls in a binary are its business *)
  match Scan.scan_file ~kind:(Scan.classify "bench/main.ml") (fixture "rob_bad.ml") with
  | Ok vs -> check_rule "rob_bad outside lib" vs Rule.Rob_exn 0
  | Error e -> Alcotest.fail e

let test_mli_fixtures () =
  let files = Lint.collect_ml_files [] (fixture "mli") in
  let vs = Scan.mli_violations ~force_lib:true files in
  Alcotest.(check int) "one orphan" 1 (List.length vs);
  match vs with
  | [ v ] ->
      Alcotest.(check bool) "orphan.ml flagged" true
        (Filename.basename v.Scan.file = "orphan.ml")
  | _ -> Alcotest.fail "expected exactly orphan.ml"

let test_baseline_semantics () =
  let vs = scan_fixture "perf_bad.ml" in
  let base = Baseline.of_violations vs in
  let clean = Baseline.check base vs in
  Alcotest.(check int) "own violations grandfathered" 0 (List.length clean.Baseline.fresh);
  let fresh = Baseline.check Baseline.empty vs in
  Alcotest.(check bool) "empty baseline flags everything" true
    (List.length fresh.Baseline.fresh > 0);
  let stale = Baseline.check base [] in
  Alcotest.(check bool) "fixed violations reported stale, not fatal" true
    (List.length stale.Baseline.stale > 0 && List.length stale.Baseline.fresh = 0)

let test_check_exit_codes () =
  let tmp = Filename.temp_file "lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let run args = Lint.main (Array.of_list ("lifeguard_lint" :: args)) in
      Alcotest.(check int) "--check is 1 on fixtures not in the baseline" 1
        (run [ "--check"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]);
      Alcotest.(check int) "--update-baseline is 0" 0
        (run [ "--update-baseline"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]);
      Alcotest.(check int) "--check is 0 once grandfathered" 0
        (run [ "--check"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]))

(* The gate the build runs: the real tree is clean against the shipped
   baseline. Exercised from the test binary's sandbox (_build/default),
   where dune has copied the sources and lint.baseline next to test/. *)
let test_real_tree () =
  if Sys.file_exists "../lint.baseline" && Sys.file_exists "../lib" then
    Alcotest.(check int) "--check is 0 on the real tree with the shipped baseline" 0
      (Lint.main [| "lifeguard_lint"; "--check"; "--root"; ".." |])
  else print_endline "real-tree fixture not materialized; covered by `dune build @lint`"

let suite =
  [
    Alcotest.test_case "determinism fixtures" `Quick test_det_fixtures;
    Alcotest.test_case "domain-safety fixtures" `Quick test_dom_fixtures;
    Alcotest.test_case "perf fixtures" `Quick test_perf_fixtures;
    Alcotest.test_case "perf/structeq fixtures" `Quick test_structeq_fixtures;
    Alcotest.test_case "obs/printf fixtures" `Quick test_obs_fixtures;
    Alcotest.test_case "robustness/exception fixtures" `Quick test_rob_fixtures;
    Alcotest.test_case "mli fixtures" `Quick test_mli_fixtures;
    Alcotest.test_case "baseline semantics" `Quick test_baseline_semantics;
    Alcotest.test_case "check exit codes" `Quick test_check_exit_codes;
    Alcotest.test_case "real tree vs shipped baseline" `Quick test_real_tree;
  ]
