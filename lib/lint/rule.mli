(** The rule catalogue of [lifeguard-lint]. See DESIGN.md, "Static
    analysis: domain-safety and determinism rules" for the rationale
    behind each family. *)

type t =
  | Dom_mut  (** module-level mutable containers in a Par-reachable library *)
  | Det_random  (** [Random.*] outside [lib/prng] *)
  | Det_clock  (** wall-clock reads inside [lib/] *)
  | Det_polyeq  (** polymorphic compare / hash / option-sentinel equality *)
  | Det_hashkey  (** [Hashtbl.t] keyed by a structured or boxed type *)
  | Perf_append  (** [@] building an accumulator inside a [let rec] or fold *)
  | Perf_scan  (** [List.mem]/[List.assoc] inside a [let rec] or iteration closure *)
  | Perf_structeq
      (** structural [=]/[compare] on an interned BGP value ([As_path.t],
          [Route] entry fields) outside [lib/bgp] *)
  | Mli_missing  (** library [.ml] without a matching [.mli] *)
  | Obs_printf  (** bare stdout printing in [lib/] outside [lib/obs] *)
  | Rob_exn  (** catch-all [try ... with _ ->] handler inside [lib/] *)
  | Rob_snapshot
      (** in a [lib/] file defining a toplevel [capture] (the
          crash-recovery snapshot contract): a mutable or container-typed
          field of a locally declared record type that [capture]'s body
          never references — restore would silently reset it *)
  | Eff_clock
      (** exported [lib/] function {e transitively} reaches the wall clock
          outside [Obs.Clock] — the interprocedural closure of
          {!Det_clock} (see {!Effects}) *)
  | Eff_random
      (** exported [lib/] function transitively reaches [Random] outside
          [lib/prng] *)
  | Eff_globalmut
      (** exported [lib/] function transitively reaches module-level
          mutable state outside the declared-exempt modules — the
          share-nothing invariant, proven interprocedurally *)
  | Plan_stale
      (** planner entry point (exported def in a plan subsystem's
          [planner.ml]) reaches the clock, [Random], or module-level
          mutable state — directly or transitively, exemptions
          notwithstanding. Precomputed plans must be pure functions of
          the world (see {!Effects.planner_file}). *)

val all : t list

val id : t -> string
(** Stable identifier, e.g. ["LG-DET-POLYEQ"]. Used in diagnostics and in
    [lint.baseline]. *)

val of_id : string -> t option

val describe : t -> string
(** One-line rationale printed alongside a diagnostic. *)
