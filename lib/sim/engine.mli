(** Discrete-event simulation engine.

    The BGP network, the monitoring loops and LIFEGUARD's orchestrator all
    run on a single shared clock: events are closures scheduled at absolute
    times and executed in time order (FIFO among equal times). Time is in
    seconds as a float.

    The engine feeds three {!Obs.Metrics} instruments: the [sim.events]
    counter (one per dispatched event), the [sim.queue_depth] max-gauge
    (high-watermark of the pending heap) and the [sim.time_advance]
    histogram (virtual-time jump per dispatch). All are free when metrics
    are disabled. *)

type t

val create : ?now:float -> unit -> t
(** A fresh engine whose clock starts at [now] (default 0). *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] when the clock reaches [at]. Scheduling in
    the past raises [Invalid_argument]. Events at equal times run in
    scheduling order. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] = [schedule t ~at:(now t +. delay) f];
    [delay] must be non-negative. *)

val schedule_every :
  t -> every:float -> ?until:float -> (float -> [ `Continue | `Stop ]) -> unit
(** [schedule_every t ~every f] runs [f now] at the current time plus
    [every], then repeatedly every [every] seconds while it returns
    [`Continue] (and, if [until] is given, while the clock is before it). *)

(** {2 Cancellable timers}

    The fleet service arms per-target timeouts and retry backoffs that it
    must be able to disarm when the pipeline reaches a terminal state
    first. Timers are cancellation flags checked at fire time: the event
    stays in the heap but does nothing (one-shot) or stops rescheduling
    (recurring). *)

type timer

val after : t -> delay:float -> (unit -> unit) -> timer
(** Like {!schedule_after}, but returns a handle that {!cancel} disarms. *)

val every :
  t -> every:float -> ?until:float -> (float -> [ `Continue | `Stop ]) -> timer
(** Like {!schedule_every}, but returns a handle that {!cancel} stops at
    the next tick. *)

val cancel : timer -> unit
(** Disarm a timer; idempotent. A cancelled one-shot never runs its
    action; a cancelled recurring timer stops rescheduling. *)

val active : timer -> bool
(** [true] until {!cancel} is called. *)

val after_named : t -> name:string -> delay:float -> (unit -> unit) -> timer
(** {!after}, registered in the engine's {e named timer set}: the
    snapshotable subset of the pending events. The heap holds closures
    and cannot be serialized; a control plane that schedules its
    deadlines through [after_named] can capture them as (name, due)
    pairs and re-arm them against a restored engine clock. The entry is
    removed when the timer fires (cancelled timers drop out of
    {!named_pending} immediately). Scheduling behavior — event order,
    sequence numbers — is identical to {!after}. *)

val named_pending : t -> (string * float) list
(** Live named timers as (name, due-time) pairs, sorted by (due, name).
    Cancelled and already-fired timers are excluded. *)

val run : ?until:float -> t -> unit
(** Execute events in order until the queue empties, or until the clock
    would pass [until] (remaining events stay queued and the clock is left
    at [until]). *)

val run_before : t -> before:float -> unit
(** Barrier-windowed stepping: execute events with [time < before] only
    — strictly half-open, so an event at exactly [before] is left for
    the next window — then set the clock to [before] (even when the
    queue ran dry earlier, or was empty). This is the primitive the
    sharded-world runtime ({!Shard.Barrier}) drives each shard engine
    with: after [run_before ~before:b] the shard has observed every
    event before the frontier [b] and nothing at or after it. *)

val next_time : t -> float option
(** Timestamp of the earliest queued event, without executing it;
    [None] when the queue is empty. Used by the barrier scheduler to
    pick the next window start across shard engines. *)

val step : t -> bool
(** Execute the single next event; [false] if the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
