(* Deeper BGP mechanics: MRAI pacing, convergence metrics, collectors,
   sessions, FIB install delay, path asymmetry. *)

open Net
open Helpers

let test_traversed_strips_origination_tail () =
  let path = Bgp.As_path.of_list (List.map asn [ 12; 13; 10; 30; 10 ]) in
  Alcotest.(check (list int)) "traversed" [ 12; 13 ]
    (List.map Asn.to_int (Bgp.As_path.to_list (Bgp.As_path.traversed ~origin:(asn 10) path)));
  Alcotest.(check bool) "does not traverse the poison" false
    (Bgp.As_path.traverses ~origin:(asn 10) ~target:(asn 30) path);
  Alcotest.(check bool) "traverses a real transit" true
    (Bgp.As_path.traverses ~origin:(asn 10) ~target:(asn 13) path)

let test_collector_records_changes () =
  let w = fig2_world () in
  let collector = Bgp.Network.Collector.attach w.net ~name:"rv" ~peers:[ e; d ] in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let log = Bgp.Network.Collector.log collector in
  Alcotest.(check bool) "records exist" true (List.length log >= 2);
  List.iter
    (fun (r : Bgp.Network.update_record) ->
      Alcotest.(check bool) "only subscribed peers" true
        (Asn.equal r.Bgp.Network.speaker e || Asn.equal r.Bgp.Network.speaker d))
    log;
  (match Bgp.Network.Collector.current_route collector ~peer:e ~prefix:production with
  | Some entry ->
      check_path "collector sees E's final route" [ 30; 20; 10 ]
        (Bgp.As_path.to_list entry.Bgp.Route.ann.Bgp.Route.path)
  | None -> Alcotest.fail "collector lost E's route");
  Bgp.Network.Collector.clear collector;
  Alcotest.(check int) "clear empties the log" 0
    (List.length (Bgp.Network.Collector.log collector))

let test_convergence_metrics () =
  let w = fig2_world () in
  let collector = Bgp.Network.Collector.attach w.net ~name:"rv" ~peers:[ b; c; d; e; f ] in
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.prepended ~origin:o ~copies:3))
    ();
  converge w;
  let t0 = Sim.Engine.now w.engine in
  Bgp.Network.Collector.clear collector;
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:o ~poison:a))
    ();
  converge w;
  let reports =
    Bgp.Convergence.analyze collector ~event_time:t0 ~prefix:production ~affected:(fun p ->
        Asn.equal p e || Asn.equal p f)
  in
  Alcotest.(check bool) "reports for updated peers" true (List.length reports >= 3);
  let for_peer p = List.find (fun r -> Asn.equal r.Bgp.Convergence.peer p) reports in
  let rb = for_peer b in
  Alcotest.(check bool) "B updates once: instant" true (rb.Bgp.Convergence.convergence_time = 0.0);
  Alcotest.(check bool) "B keeps a route" true rb.Bgp.Convergence.has_final_route;
  let rf = for_peer f in
  Alcotest.(check bool) "F (captive) loses its route" false rf.Bgp.Convergence.has_final_route;
  Alcotest.(check bool) "global convergence positive" true
    (match Bgp.Convergence.global_convergence_time reports with
    | Some g -> g >= 0.0
    | None -> false);
  Alcotest.(check bool) "fraction_instant sane" true
    (let f = Bgp.Convergence.fraction_instant reports in
     f >= 0.0 && f <= 1.0)

let test_mrai_coalesces () =
  (* Three quick re-announcements within one MRAI window: the far AS must
     see far fewer updates than announcements. *)
  let w = world_of_graph ~mrai:30.0 (fig2_graph ()) in
  let collector = Bgp.Network.Collector.attach w.net ~name:"rv" ~peers:[ d ] in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  Bgp.Network.Collector.clear collector;
  let reannounce copies =
    Bgp.Network.announce w.net ~origin:o ~prefix:production
      ~per_neighbor:(fun _ -> Some (Bgp.As_path.prepended ~origin:o ~copies))
      ()
  in
  reannounce 2;
  reannounce 3;
  reannounce 4;
  converge w;
  let updates_at_d =
    List.length
      (List.filter
         (fun (r : Bgp.Network.update_record) -> Asn.equal r.Bgp.Network.speaker d)
         (Bgp.Network.Collector.log collector))
  in
  Alcotest.(check bool)
    (Printf.sprintf "D saw %d < 3 updates" updates_at_d)
    true (updates_at_d < 3 && updates_at_d >= 1);
  (match Bgp.Network.best_route w.net d production with
  | Some entry ->
      Alcotest.(check int) "final state is the last announcement" 6
        (Bgp.As_path.length entry.Bgp.Route.ann.Bgp.Route.path)
  | None -> Alcotest.fail "D lost the route")

let test_session_down_up_readvertises () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  Bgp.Network.fail_link w.net ~a:e ~b:a;
  converge w;
  check_path "E falls to D path while session down" [ 50; 40; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  Bgp.Network.restore_link w.net ~a:e ~b:a;
  converge w;
  check_path "E recovers the short path after session up" [ 30; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production))

let test_fib_install_delay () =
  let engine = Sim.Engine.create () in
  let graph = fig2_graph () in
  let net = Bgp.Network.create ~engine ~graph ~mrai:5.0 ~fib_install_delay:10.0 () in
  Bgp.Network.announce net ~origin:o ~prefix:production ();
  Bgp.Network.run_until_quiet net;
  (* Control plane converged; data plane trails by up to 10 s. *)
  let target = Net.Prefix.nth_address production 1 in
  Alcotest.(check bool) "loc-RIB has the route" true
    (Bgp.Network.best_route net e production <> None);
  let before = Bgp.Network.fib_lookup net e target <> None in
  (* Drain the pending FIB install events. *)
  let wake = Sim.Engine.now engine +. 30.0 in
  Sim.Engine.schedule engine ~at:wake ignore;
  Sim.Engine.run ~until:wake engine;
  let after = Bgp.Network.fib_lookup net e target <> None in
  Alcotest.(check bool) "FIB eventually installed" true after;
  (* The interesting assertion: immediately after control-plane
     convergence the FIB may or may not have been committed yet, but it
     must never precede the loc-RIB. *)
  Alcotest.(check bool) "fib never ahead of rib" true (after || not before)

let test_pref_jitter_deterministic_and_bounded () =
  let config = { Bgp.Policy.default with Bgp.Policy.pref_jitter = 8 } in
  let self = asn 1 and neighbor = asn 2 in
  let p1 =
    Bgp.Policy.local_pref_for config ~self ~neighbor ~rel:Topology.Relationship.Customer
  in
  let p2 =
    Bgp.Policy.local_pref_for config ~self ~neighbor ~rel:Topology.Relationship.Customer
  in
  Alcotest.(check int) "deterministic" p1 p2;
  Alcotest.(check bool) "within class band" true (p1 >= 300 && p1 <= 308);
  let provider_pref =
    Bgp.Policy.local_pref_for config ~self ~neighbor ~rel:Topology.Relationship.Provider
  in
  Alcotest.(check bool) "classes stay separated" true (provider_pref < p1)

let test_peer_route_not_exported_to_peer () =
  (* Classic valley-free: a route learned from one peer must not be
     announced to another peer. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3 ];
  As_graph.add_link g ~a:(asn 1) ~b:(asn 2) ~rel:Relationship.Peer;
  As_graph.add_link g ~a:(asn 2) ~b:(asn 3) ~rel:Relationship.Peer;
  let w = world_of_graph g in
  Bgp.Network.announce w.net ~origin:(asn 1) ~prefix:production ();
  converge w;
  Alcotest.(check bool) "peer 2 has the route" true
    (Bgp.Network.best_route w.net (asn 2) production <> None);
  Alcotest.(check bool) "peer-of-peer 3 does not" true
    (Bgp.Network.best_route w.net (asn 3) production = None)

let test_message_accounting () =
  let w = fig2_world () in
  let before = Bgp.Network.message_count w.net in
  let t0 = Sim.Engine.now w.engine in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let after = Bgp.Network.message_count w.net in
  Alcotest.(check bool) "messages flowed" true (after > before);
  let windowed =
    Bgp.Network.messages_between w.net ~since:t0 ~until:(Sim.Engine.now w.engine)
  in
  Alcotest.(check int) "window covers them" (after - before) windowed

let test_delivery_buckets () =
  (* Delivery accounting is bucketed, not per-event: a window covering
     all activity equals the global counter, bucket-aligned windows
     partition it, and empty/inverted windows count nothing. *)
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let now = Sim.Engine.now w.engine in
  let total = Bgp.Network.message_count w.net in
  Alcotest.(check bool) "messages flowed" true (total > 0);
  Alcotest.(check int) "full window = total" total
    (Bgp.Network.messages_between w.net ~since:0.0 ~until:(now +. 10.0));
  let width = Bgp.Network.delivery_bucket_width in
  Alcotest.(check int) "window after quiescence is empty" 0
    (Bgp.Network.messages_between w.net
       ~since:(now +. (2.0 *. width))
       ~until:(now +. 100.0));
  Alcotest.(check int) "inverted window is empty" 0
    (Bgp.Network.messages_between w.net ~since:10.0 ~until:5.0);
  (* Split at a bucket boundary: [0, m].(m+1, end] partition the total. *)
  let m = int_of_float (now /. (2.0 *. width)) in
  let first =
    Bgp.Network.messages_between w.net ~since:0.0
      ~until:((float_of_int m *. width) +. (width /. 2.0))
  in
  let second =
    Bgp.Network.messages_between w.net
      ~since:(float_of_int (m + 1) *. width)
      ~until:(now +. 10.0)
  in
  Alcotest.(check int) "bucket-aligned windows partition the total" total (first + second)

let test_selective_advertising () =
  (* Announcing via only one provider: the withheld provider must not
     even have the route in its RIB from the origin (though it may learn
     it transitively). *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3 ];
  As_graph.add_link g ~a:(asn 1) ~b:(asn 2) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 1) ~b:(asn 3) ~rel:Relationship.Provider;
  let w = world_of_graph g in
  Bgp.Network.announce w.net ~origin:(asn 1) ~prefix:production
    ~per_neighbor:(fun n ->
      if Asn.equal n (asn 2) then Some (Bgp.As_path.plain ~origin:(asn 1)) else None)
    ();
  converge w;
  Alcotest.(check bool) "advertised provider has it" true
    (Bgp.Network.best_route w.net (asn 2) production <> None);
  Alcotest.(check bool) "withheld provider does not" true
    (Bgp.Network.best_route w.net (asn 3) production = None)

let prop_poisoned_path_ties_baseline_length =
  QCheck.Test.make ~name:"poisoned and 3-prepended paths tie in length" ~count:100
    QCheck.(pair (int_range 1 60000) (int_range 1 60000))
    (fun (o', a') ->
      QCheck.assume (o' <> a');
      Bgp.As_path.length (Bgp.As_path.poisoned ~origin:(asn o') ~poison:(asn a'))
      = Bgp.As_path.length (Bgp.As_path.prepended ~origin:(asn o') ~copies:3))

let prop_decision_total_order =
  (* best of a list never depends on list order. *)
  let entry_gen =
    QCheck.map
      (fun (neighbor, rel_ix, len) ->
        let rel =
          match rel_ix mod 3 with
          | 0 -> Topology.Relationship.Customer
          | 1 -> Topology.Relationship.Peer
          | _ -> Topology.Relationship.Provider
        in
        Bgp.Route.make_entry ~salt:7
          ~ann:
            (Bgp.Route.announcement ~prefix:production
               ~path:(Bgp.As_path.of_list (List.init (1 + len) (fun i -> asn (500 + i))))
               ())
          ~neighbor:(asn (1 + neighbor))
          ~rel
          ~local_pref:(Topology.Relationship.local_pref rel)
          ~learned_at:0.0 ())
      QCheck.(triple (int_range 0 50) (int_range 0 2) (int_range 0 5))
  in
  QCheck.Test.make ~name:"decision independent of candidate order" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) entry_gen)
    (fun entries ->
      let best1 = Bgp.Decision.best entries in
      let best2 = Bgp.Decision.best (List.rev entries) in
      match (best1, best2) with
      | Some x, Some y ->
          Asn.equal x.Bgp.Route.neighbor y.Bgp.Route.neighbor
          && Bgp.As_path.equal x.Bgp.Route.ann.Bgp.Route.path y.Bgp.Route.ann.Bgp.Route.path
      | None, None -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "traversed strips origination tail" `Quick
      test_traversed_strips_origination_tail;
    Alcotest.test_case "collector records" `Quick test_collector_records_changes;
    Alcotest.test_case "convergence metrics" `Quick test_convergence_metrics;
    Alcotest.test_case "MRAI coalesces bursts" `Quick test_mrai_coalesces;
    Alcotest.test_case "session down/up" `Quick test_session_down_up_readvertises;
    Alcotest.test_case "FIB install delay" `Quick test_fib_install_delay;
    Alcotest.test_case "pref jitter bounded" `Quick test_pref_jitter_deterministic_and_bounded;
    Alcotest.test_case "peer route not re-peered" `Quick test_peer_route_not_exported_to_peer;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "delivery bucket counters" `Quick test_delivery_buckets;
    Alcotest.test_case "selective advertising" `Quick test_selective_advertising;
    QCheck_alcotest.to_alcotest prop_poisoned_path_ties_baseline_length;
    QCheck_alcotest.to_alcotest prop_decision_total_order;
  ]

(* Route-flap damping at the speaker level. *)
let damped_config =
  { Bgp.Policy.default with Bgp.Policy.damping = Some Bgp.Policy.default_damping }

let test_flap_damping_suppresses_and_reuses () =
  let open Topology in
  let speaker =
    Bgp.Speaker.create ~asn:(asn 100) ~config:damped_config
      ~neighbors:[ (asn 200, Relationship.Provider); (asn 201, Relationship.Provider) ]
      ()
  in
  let scheduled = ref [] in
  Bgp.Speaker.set_reuse_scheduler speaker (fun ~delay prefix ->
      scheduled := (delay, prefix) :: !scheduled);
  let announce ~now path =
    ignore
      (Bgp.Speaker.receive speaker ~now ~from:(asn 200)
         (Bgp.Speaker.Announce
            (Bgp.Route.announcement ~prefix:production ~path:(Bgp.As_path.of_list path) ())))
  in
  (* Also a stable candidate from the other neighbor. *)
  ignore
    (Bgp.Speaker.receive speaker ~now:0.0 ~from:(asn 201)
       (Bgp.Speaker.Announce
          (Bgp.Route.announcement ~prefix:production
             ~path:(Bgp.As_path.of_list [ asn 201; asn 900; asn 901 ])
             ())));
  announce ~now:1.0 [ asn 200; asn 901; asn 900 ];
  (* Three changed announcements in quick succession: ~3000 penalty,
     over the 2000 suppression threshold (two would decay to ~1990);
     the final state is the short two-hop path. *)
  announce ~now:10.0 [ asn 200; asn 900 ];
  announce ~now:20.0 [ asn 200; asn 902; asn 900 ];
  announce ~now:30.0 [ asn 200; asn 900 ];
  Alcotest.(check (list int)) "neighbor 200 suppressed" [ 200 ]
    (List.map Asn.to_int (Bgp.Speaker.suppressed_candidates speaker production));
  (match Bgp.Speaker.best speaker production with
  | Some e ->
      Alcotest.(check int) "falls back to the stable (longer) route" 201
        (Asn.to_int e.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no route at all");
  Alcotest.(check bool) "reuse timer requested" true (!scheduled <> []);
  (* After the penalty half-lives away, the better route is usable
     again. *)
  let out = Bgp.Speaker.reevaluate speaker ~now:4000.0 production in
  ignore out;
  match Bgp.Speaker.best speaker production with
  | Some e ->
      Alcotest.(check int) "shorter route restored after decay" 200
        (Asn.to_int e.Bgp.Route.neighbor)
  | None -> Alcotest.fail "route lost after reuse"

let test_no_damping_without_config () =
  let open Topology in
  let speaker =
    Bgp.Speaker.create ~asn:(asn 100) ~config:Bgp.Policy.default
      ~neighbors:[ (asn 200, Relationship.Provider) ]
      ()
  in
  for i = 1 to 10 do
    ignore
      (Bgp.Speaker.receive speaker ~now:(float_of_int i) ~from:(asn 200)
         (Bgp.Speaker.Announce
            (Bgp.Route.announcement ~prefix:production
               ~path:(Bgp.As_path.of_list [ asn 200; asn (900 + (i mod 2)) ])
               ())))
  done;
  Alcotest.(check (list int)) "nothing suppressed without damping" []
    (List.map Asn.to_int (Bgp.Speaker.suppressed_candidates speaker production));
  Alcotest.(check bool) "route intact" true (Bgp.Speaker.best speaker production <> None)

(* Regression for the session_up fast path (Fig. 2 world): a poison
   re-announced by the watchdog and a session restore landing at the same
   simulated instant must converge to the same routes in either order.
   With no damping state session_up exports the current loc-RIB toward
   only the revived neighbor; the audit showed that path equivalent to
   the full per-prefix refresh, including when the loc-RIB it exports
   already holds a poison applied moments earlier in the same window —
   this pins that equivalence, for the fast path and (with flap history
   forcing {!Bgp.Speaker.damping_pending}) the slow path. *)
let session_up_poison_run ~damping ~poison_first =
  let config_of _ =
    if damping then
      { Bgp.Policy.default with Bgp.Policy.damping = Some Bgp.Policy.default_damping }
    else Bgp.Policy.default
  in
  let w = world_of_graph ~config_of (fig2_graph ()) in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  if damping then begin
    (* One clean route flap first — withdraw and re-announce, which lands
       at E as real Withdraw/Announce updates — so damping records exist
       (slow path) without suppressing anything yet. *)
    Bgp.Network.withdraw w.net ~origin:o ~prefix:production;
    converge w;
    Bgp.Network.announce w.net ~origin:o ~prefix:production ();
    converge w
  end;
  Bgp.Network.fail_link w.net ~a:e ~b:a;
  converge w;
  let poison () =
    Bgp.Network.announce w.net ~origin:o ~prefix:production
      ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:o ~poison:a))
      ()
  in
  let restore () = Bgp.Network.restore_link w.net ~a:e ~b:a in
  if poison_first then begin
    poison ();
    restore ()
  end
  else begin
    restore ();
    poison ()
  end;
  if damping then
    Alcotest.(check bool)
      "flap history forces the session_up slow path" true
      (Bgp.Speaker.damping_pending (Bgp.Network.speaker w.net e));
  converge w;
  List.map
    (fun n ->
      ( Asn.to_int n,
        List.map Asn.to_int (path_of_best (Bgp.Network.best_route w.net n production)) ))
    [ o; b; a; c; d; e; f ]

let test_session_up_poison_same_window () =
  let fast1 = session_up_poison_run ~damping:false ~poison_first:true in
  let fast2 = session_up_poison_run ~damping:false ~poison_first:false in
  Alcotest.(check (list (pair int (list int))))
    "fast path: poison/restore order is immaterial" fast1 fast2;
  (* The poison survives the same-window session_up: E stays on the D
     chain (A's route is loop-rejected), and F — captive behind A — has
     nothing. *)
  Alcotest.(check (list int))
    "E on the alternate chain, carrying the poison tail" [ 50; 40; 20; 10; 30; 10 ]
    (List.assoc 60 fast1);
  Alcotest.(check (list int)) "F is captive" [] (List.assoc 70 fast1);
  let slow1 = session_up_poison_run ~damping:true ~poison_first:true in
  let slow2 = session_up_poison_run ~damping:true ~poison_first:false in
  Alcotest.(check (list (pair int (list int))))
    "slow path: poison/restore order is immaterial" slow1 slow2

let suite =
  suite
  @ [
      Alcotest.test_case "flap damping suppresses and reuses" `Quick
        test_flap_damping_suppresses_and_reuses;
      Alcotest.test_case "no damping unless configured" `Quick test_no_damping_without_config;
      Alcotest.test_case "session_up vs same-window poison (fig2)" `Quick
        test_session_up_poison_same_window;
    ]
