lib/measurement/atlas.ml: Asn Dataplane Hashtbl List Net
