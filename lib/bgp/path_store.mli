(** Per-world interner for AS paths and announcements.

    One store per simulated world: {!Network.create} builds it and threads
    it through every {!Speaker.create}, so structurally-equal paths and
    announcements inside a world collapse to one physical value and
    [As_path.equal] / [Route.announcement_equal] settle on the [==] fast
    path. There is deliberately no module-level default store — lib/par
    worlds are share-nothing (LG-DOM-MUT), and a shared table would make
    interner ids depend on world scheduling. Interning never changes what
    a table prints, so experiment output stays byte-identical at any
    [--jobs]. *)

type t

val create : unit -> t

val intern_path : t -> As_path.t -> As_path.t
(** The store's canonical physical value for this path; stamps a fresh
    world-local id on first sight. Idempotent. *)

val intern_ann : t -> Route.announcement -> Route.announcement
(** Canonical announcement (its path interned too). Idempotent. *)

val path_count : t -> int
(** Distinct paths interned so far. *)

val ann_count : t -> int
(** Distinct announcements interned so far. *)
