(** Hop-by-hop data-plane forwarding.

    A packet walk starts at a source AS and repeatedly applies the current
    AS's FIB (longest-prefix match over its loc-RIB) to pick the next AS,
    until the destination's originating AS delivers it, no route exists, a
    forwarding loop is detected, or an injected failure drops it. This is
    the substrate for every probe primitive: what the paper measures with
    pings and traceroutes, this module computes from simulator state. *)

open Net

type hop = { asn : Asn.t; address : Ipv4.t }
(** One AS-level hop; [address] is the responding border router. *)

type outcome =
  | Delivered  (** Reached the AS originating the destination's prefix. *)
  | No_route of Asn.t  (** An AS had no FIB entry (and no default). *)
  | Loop  (** The walk revisited an AS: a forwarding loop. *)
  | Dropped of { at : Asn.t; by : Failure.spec }
      (** An injected failure consumed the packet at [at]. *)

type walk = { hops : hop list; outcome : outcome }
(** [hops] lists the traversed ASes in order, starting with the source. *)

val pp_walk : Format.formatter -> walk -> unit

val walk :
  Bgp.Network.t -> Failure.set -> src:Asn.t -> dst:Ipv4.t -> ?max_hops:int -> unit -> walk
(** Forward a packet from [src] toward [dst]. [max_hops] (default 64)
    bounds the walk; exceeding it reports [Loop]. Stub ASes with a
    configured default provider forward unmatched packets there. *)

val delivers : Bgp.Network.t -> Failure.set -> src:Asn.t -> dst:Ipv4.t -> bool
(** Whether the walk outcome is [Delivered]. *)

val as_path_of_walk : walk -> Asn.t list
(** The AS-level path traversed (source first, duplicates collapsed). *)

val infrastructure_prefix : Asn.t -> Prefix.t
(** The /24 covering an AS's router addresses (10.x.y.0/24 derived from
    the ASN). Announcing it makes the AS's routers pingable — every
    experiment topology announces one per AS. *)

val announce_infrastructure : Bgp.Network.t -> unit
(** Originate every AS's infrastructure prefix (plain, unpoisoned). Run
    the network to convergence afterwards. *)

val announce_infrastructure_for : Bgp.Network.t -> Asn.t list -> unit
(** Originate infrastructure prefixes for the given ASes only. Converging
    the full per-AS announcement dominates testbed construction cost, and
    probes only ever target (and hop replies only ever return to) the
    {e endpoints'} infrastructure prefixes — so experiments that rebuild a
    world per trial announce just the ASes they will probe between. *)

val probe_address : Bgp.Network.t -> Asn.t -> Ipv4.t
(** The address probes from this AS use as their source (its first router
    address, which lies inside its infrastructure prefix). *)
