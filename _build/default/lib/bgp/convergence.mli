(** Convergence metrics from route-collector feeds.

    Reproduces the paper's Fig. 6 measurement method: after an event
    (e.g. a poisoned announcement at a known time), each collector peer's
    convergence time is the delay from its first post-event update to its
    stable post-event route, "instant" (0) meaning a single update that
    merely passed the new path along. Peers are split into those that had
    been routing through the poisoned AS ("change") and those that had not
    ("no change"). *)

open Net

type peer_report = {
  peer : Asn.t;
  updates : int;  (** loc-RIB changes observed in the window. *)
  first_update : float;
  last_update : float;
  convergence_time : float;  (** [last_update - first_update]; 0 = instant. *)
  affected : bool;  (** Was routing through the event's target beforehand. *)
  has_final_route : bool;  (** Still holds a route at the end. *)
}

val analyze :
  Network.Collector.t ->
  event_time:float ->
  prefix:Prefix.t ->
  affected:(Asn.t -> bool) ->
  peer_report list
(** One report per collector peer that saw at least one update for
    [prefix] at or after [event_time]. [affected peer] classifies the peer
    from its pre-event route (computed by the caller, who can snapshot
    RIBs before triggering the event). *)

val global_convergence_time : peer_report list -> float option
(** Span from the earliest first update to the latest last update across
    peers; [None] when no peer saw updates. *)

val fraction_instant : peer_report list -> float
(** Share of peers with zero convergence time. *)

val fraction_single_update : peer_report list -> float
(** Share of peers that made exactly one update. *)

val mean_updates : peer_report list -> float
(** Average number of updates per peer ([0.] on empty input). *)
