(** §7.2 Sentinel prefix variants.

    The paper weighs three designs for the sentinel. (1) A covering
    less-specific with an unused sub-prefix — the deployed choice — gives
    both a {e backup route} for networks captive behind the poisoned AS
    (longest-prefix match falls through to the less-specific) and
    {e repair detection} (probe replies sourced in the unused space ride
    the unpoisoned route through the poisoned AS). (2) A disjoint unused
    prefix detects repairs but leaves captives with no route. (3) No
    sentinel at all gives neither. This experiment exercises all three on
    the Fig. 2 topology and reports which property each provides. *)

open Net
open Topology

type variant = Covering_less_specific | Disjoint_unused | No_sentinel | Dns_redirection

let variant_name = function
  | Covering_less_specific -> "covering less-specific (deployed)"
  | Disjoint_unused -> "disjoint unused prefix"
  | No_sentinel -> "no sentinel"
  | Dns_redirection -> "DNS redirection (second production prefix)"

type row = {
  variant : variant;
  captive_has_route : bool;  (** F (captive behind A) keeps a covering route. *)
  repair_detectable : bool;  (** Probes notice when A heals, while still poisoned. *)
}

type result = { rows : row list }

let production = Prefix.of_string_exn "203.0.113.0/24"
let covering = Prefix.of_string_exn "203.0.112.0/23"
let disjoint = Prefix.of_string_exn "198.51.100.0/24"

let second_production = Prefix.of_string_exn "198.51.100.0/24"
(* For DNS redirection the "sentinel" is simply another production prefix
   serving the same service from the same routes; clients affected by the
   poisoned P1 are steered to P2 by the resolver, and reachability of P2
   through the poisoned AS doubles as the repair signal (paper checked
   Google's routing satisfies the consistent-path assumption). *)

(* Fig. 2 world: O--B--{A,C}; C--D--E; E--A; F--A (captive). *)
let build () =
  let asn = Asn.of_int in
  let g = As_graph.create () in
  let o = asn 10 and b = asn 20 and a = asn 30 and c = asn 40 in
  let d = asn 50 and e = asn 60 and f = asn 70 in
  List.iter (fun x -> As_graph.add_as g x) [ o; b; a; c; d; e; f ];
  As_graph.add_link g ~a:o ~b ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:c ~rel:Relationship.Provider;
  As_graph.add_link g ~a:c ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:f ~b:a ~rel:Relationship.Provider;
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph:g ~mrai:5.0 () in
  let failures = Dataplane.Failure.create () in
  let probe = Dataplane.Probe.env net failures in
  Dataplane.Forward.announce_infrastructure net;
  Bgp.Network.run_until_quiet net;
  (net, failures, probe, (o, a, e, f))

let try_variant variant =
  let net, failures, probe, (o, a, e, f) = build () in
  (* Announce per variant, then poison A during its (silent) failure.
     The failure affects all of O's announced space, so one spec per
     announced prefix. *)
  let failure_scopes =
    match variant with
    | Covering_less_specific -> [ covering ]
    | Disjoint_unused -> [ production; disjoint ]
    | No_sentinel -> [ production ]
    | Dns_redirection -> [ production; second_production ]
  in
  (match variant with
  | Covering_less_specific -> Bgp.Network.announce net ~origin:o ~prefix:covering ()
  | Disjoint_unused -> Bgp.Network.announce net ~origin:o ~prefix:disjoint ()
  | No_sentinel -> ()
  | Dns_redirection -> Bgp.Network.announce net ~origin:o ~prefix:second_production ());
  Bgp.Network.announce net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.prepended ~origin:o ~copies:3))
    ();
  Bgp.Network.run_until_quiet net;
  let specs =
    List.map
      (fun toward -> Dataplane.Failure.spec ~toward (Dataplane.Failure.Node a))
      failure_scopes
  in
  List.iter (Dataplane.Failure.add failures) specs;
  Bgp.Network.announce net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:o ~poison:a))
    ();
  Bgp.Network.run_until_quiet net;
  let captive_has_route =
    match variant with
    | Dns_redirection ->
        (* The captive's service continuity comes from the resolver
           steering it to the unpoisoned second prefix. *)
        Option.is_some (Bgp.Network.fib_lookup net f (Prefix.nth_address second_production 9))
    | Covering_less_specific | Disjoint_unused | No_sentinel ->
        Option.is_some (Bgp.Network.fib_lookup net f (Prefix.nth_address production 9))
  in
  (* Repair detection: the probe source whose replies can traverse A
     while the production prefix is poisoned. *)
  let detection_source =
    match variant with
    | Covering_less_specific -> Some (Prefix.first_address covering)
    | Disjoint_unused -> Some (Prefix.first_address disjoint)
    | No_sentinel -> None
    | Dns_redirection -> Some (Prefix.nth_address second_production 1)
  in
  let detect () =
    match detection_source with
    | None -> false
    | Some src_ip ->
        Dataplane.Probe.ping_from probe ~src:o ~src_ip
          ~dst:(Dataplane.Forward.probe_address net e)
  in
  let detects_during_failure = detect () in
  List.iter (Dataplane.Failure.remove failures) specs;
  let detects_after_heal = detect () in
  {
    variant;
    captive_has_route;
    (* Detectable = silent while broken, positive once healed. *)
    repair_detectable = (not detects_during_failure) && detects_after_heal;
  }

let run () =
  {
    rows =
      List.map try_variant
        [ Covering_less_specific; Disjoint_unused; No_sentinel; Dns_redirection ];
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 7.2 sentinel variants"
      ~columns:[ "variant"; "captive keeps a route"; "repair detectable" ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row t
        [
          variant_name row.variant;
          (if row.captive_has_route then "yes" else "no");
          (if row.repair_detectable then "yes" else "no");
        ])
    r.rows;
  [ t ]
