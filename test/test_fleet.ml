(* The fleet layer: probe budgets, retry policies, chaos knobs, and the
   continuous service loop end to end. *)

open Net

(* ------------------------------------------------------------------ *)
(* Token buckets. *)

let test_budget_bucket () =
  let b = Fleet.Budget.create ~rate:2.0 ~burst:10.0 () in
  (* Starts full: 10 tokens. *)
  Alcotest.(check bool) "full bucket admits" true (Fleet.Budget.admit b ~now:0.0 ~cost:10);
  Alcotest.(check bool) "empty bucket refuses" false (Fleet.Budget.admit b ~now:0.0 ~cost:1);
  (* Refusal consumes nothing; 3 s at 2/s refills 6. *)
  Alcotest.(check bool) "refill admits" true (Fleet.Budget.admit b ~now:3.0 ~cost:6);
  Alcotest.(check bool) "but no more" false (Fleet.Budget.admit b ~now:3.0 ~cost:1);
  (* The bucket never overflows [burst]. *)
  Alcotest.(check bool) "capped at burst" false (Fleet.Budget.admit b ~now:1000.0 ~cost:11);
  Alcotest.(check bool) "burst itself fits" true (Fleet.Budget.admit b ~now:1000.0 ~cost:10);
  Alcotest.(check int) "granted accounting" 26 (Fleet.Budget.granted b);
  Alcotest.(check int) "denied accounting" 13 (Fleet.Budget.denied b)

let test_budget_scheduler () =
  let global = Fleet.Budget.create ~rate:1.0 ~burst:100.0 () in
  let s = Fleet.Budget.scheduler ~per_vp_rate:1.0 ~per_vp_burst:5.0 ~global () in
  let vp1 = Asn.of_int 101 and vp2 = Asn.of_int 102 in
  Alcotest.(check bool) "vp1 within cap" true (Fleet.Budget.admit_vp s ~vp:vp1 ~now:0.0 ~cost:5);
  Alcotest.(check bool) "vp1 over cap" false (Fleet.Budget.admit_vp s ~vp:vp1 ~now:0.0 ~cost:1);
  (* Per-VP refusal must not drain the global bucket. *)
  Alcotest.(check bool) "vp2 unaffected" true (Fleet.Budget.admit_vp s ~vp:vp2 ~now:0.0 ~cost:5);
  Alcotest.(check int) "global spent only admitted cost" 10 (Fleet.Budget.granted global)

let test_budget_validation () =
  let raises f = Alcotest.(check bool) "rejects" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  raises (fun () -> Fleet.Budget.create ~rate:(-1.0) ~burst:10.0 ());
  raises (fun () -> Fleet.Budget.create ~rate:1.0 ~burst:0.0 ())

(* ------------------------------------------------------------------ *)
(* Retry policy. *)

let test_retry_policy () =
  let p = { Fleet.Retry.max_attempts = 4; base_delay = 60.0; multiplier = 2.0; max_delay = 200.0 } in
  Alcotest.(check (float 0.001)) "first delay" 60.0 (Fleet.Retry.delay_for p ~attempt:1);
  Alcotest.(check (float 0.001)) "doubles" 120.0 (Fleet.Retry.delay_for p ~attempt:2);
  Alcotest.(check (float 0.001)) "capped" 200.0 (Fleet.Retry.delay_for p ~attempt:3);
  Alcotest.(check bool) "not exhausted early" false (Fleet.Retry.exhausted p ~attempt:3);
  Alcotest.(check bool) "exhausted at budget" true (Fleet.Retry.exhausted p ~attempt:4);
  Alcotest.(check (float 0.001)) "total bound" (60.0 +. 120.0 +. 200.0)
    (Fleet.Retry.total_delay_bound p);
  let raises f = Alcotest.(check bool) "rejects" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  raises (fun () -> Fleet.Retry.validate { p with Fleet.Retry.max_attempts = 0 });
  raises (fun () -> Fleet.Retry.validate { p with Fleet.Retry.multiplier = 0.5 })

(* ------------------------------------------------------------------ *)
(* Chaos. *)

let test_chaos_determinism () =
  let sample seed =
    let engine = Sim.Engine.create () in
    let chaos =
      Fleet.Chaos.create
        ~config:{ Fleet.Chaos.none with Fleet.Chaos.probe_loss = 0.3; atlas_staleness = 0.5 }
        ~rng:(Prng.create ~seed) ~engine ()
    in
    List.init 64 (fun _ -> Fleet.Chaos.lose_probe chaos)
  in
  Alcotest.(check (list bool)) "same seed, same coins" (sample 7) (sample 7);
  let losses = List.length (List.filter Fun.id (sample 7)) in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate plausible (got %d/64)" losses)
    true
    (losses > 8 && losses < 32)

let test_chaos_vp_crashes () =
  let engine = Sim.Engine.create () in
  let chaos =
    Fleet.Chaos.create
      ~config:{ Fleet.Chaos.none with Fleet.Chaos.vp_mtbf = 600.0; vp_mttr = 300.0 }
      ~rng:(Prng.create ~seed:11) ~engine ()
  in
  let vp = Asn.of_int 77 in
  Fleet.Chaos.start chaos ~vantage_points:[ vp ] ~until:86400.0;
  Alcotest.(check bool) "alive initially" true (Fleet.Chaos.vp_alive chaos vp);
  (* Over a day with a 10-minute MTBF the VP must crash many times, and
     every crash must eventually recover (alive at the horizon whenever
     the last sampled downtime has elapsed). *)
  Sim.Engine.run ~until:86400.0 engine;
  Alcotest.(check bool)
    (Printf.sprintf "many crashes (got %d)" (Fleet.Chaos.crash_count chaos))
    true
    (Fleet.Chaos.crash_count chaos > 20);
  Sim.Engine.run ~until:172800.0 engine;
  Alcotest.(check bool) "recovered once the process stops" true (Fleet.Chaos.vp_alive chaos vp)

let test_chaos_validation () =
  let raises f = Alcotest.(check bool) "rejects" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  raises (fun () -> Fleet.Chaos.validate { Fleet.Chaos.none with Fleet.Chaos.probe_loss = 1.5 });
  raises (fun () -> Fleet.Chaos.validate { Fleet.Chaos.none with Fleet.Chaos.vp_mtbf = -1.0 })

(* ------------------------------------------------------------------ *)
(* The service loop. *)

(* Small worlds keep the suite fast: 10 targets, a quarter-day window,
   arrivals brisk enough that pipelines actually open. *)
let small_config =
  {
    Fleet.Service.default_config with
    Fleet.Service.target_count = 10;
    duration = 21600.0;
    outages_per_day = 48.0;
  }

let test_service_deterministic () =
  let a = Fleet.Service.run ~config:small_config ~seed:5 () in
  let b = Fleet.Service.run ~config:small_config ~seed:5 () in
  Alcotest.(check int) "same injected" a.Fleet.Service.injected b.Fleet.Service.injected;
  Alcotest.(check int) "same detected" a.Fleet.Service.detected b.Fleet.Service.detected;
  Alcotest.(check int) "same probes" a.Fleet.Service.probes_sent b.Fleet.Service.probes_sent;
  Alcotest.(check int) "same poisons" a.Fleet.Service.poisons b.Fleet.Service.poisons;
  Alcotest.(check bool) "something happened" true (a.Fleet.Service.detected > 0)

let test_service_accounting () =
  let r = Fleet.Service.run ~config:small_config ~seed:5 () in
  let open Fleet.Service in
  Alcotest.(check int) "every pipeline accounted for" r.detected
    (r.repaired + r.stood_down + r.gave_up + r.unfinished);
  Alcotest.(check int) "each repair has a latency" r.repaired (List.length r.time_to_repair);
  List.iter
    (fun ttr -> Alcotest.(check bool) "repair latency positive" true (ttr > 0.0))
    r.time_to_repair;
  Alcotest.(check bool) "unpoisons never exceed poisons" true (r.unpoisons <= r.poisons);
  Alcotest.(check bool) "budget was consulted" true (r.budget_granted > 0)

let test_service_chaos_terminates () =
  (* The acceptance bar: with 20% probe loss every opened pipeline still
     reaches a terminal state within the retry budget — nothing wedges.
     Arrivals that open near the horizon are the only open pipelines
     allowed, and the window ends with a quiet tail longer than the
     retry bound, so here [unfinished] must be zero. *)
  let config =
    {
      small_config with
      Fleet.Service.chaos = { Fleet.Chaos.none with Fleet.Chaos.probe_loss = 0.2 };
    }
  in
  let r = Fleet.Service.run ~config ~seed:9 () in
  let open Fleet.Service in
  Alcotest.(check bool) "pipelines opened" true (r.detected > 0);
  Alcotest.(check bool) "chaos actually bit" true (r.lost_probes > 0);
  Alcotest.(check int) "all pipelines terminal" r.detected
    (r.repaired + r.stood_down + r.gave_up + r.unfinished);
  Alcotest.(check bool)
    (Printf.sprintf "only horizon-adjacent pipelines open (got %d)" r.unfinished)
    true
    (r.unfinished <= 2)

(* ------------------------------------------------------------------ *)
(* Control-plane fault injection. *)

let test_faults_validation () =
  let raises f =
    Alcotest.(check bool) "rejects" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  let p = Experiments.Fault_study.default_profile in
  raises (fun () -> Bgp.Faults.validate { p with Bgp.Faults.session_flap_mtbf = -1.0 });
  raises (fun () -> Bgp.Faults.validate { p with Bgp.Faults.session_flap_downtime = 0.0 });
  raises (fun () -> Bgp.Faults.validate { p with Bgp.Faults.update_loss = 1.5 });
  raises (fun () -> Bgp.Faults.validate { p with Bgp.Faults.update_loss = 0.7; update_dup = 0.7 });
  raises (fun () -> Bgp.Faults.validate { p with Bgp.Faults.link_mttr = -5.0 });
  (* Scaling to zero intensity disables every class. *)
  let z = Bgp.Faults.scale p 0.0 in
  Alcotest.(check (float 0.0)) "mtbf off" 0.0 z.Bgp.Faults.session_flap_mtbf;
  Alcotest.(check (float 0.0)) "loss off" 0.0 z.Bgp.Faults.update_loss;
  ignore (Bgp.Faults.validate z)

(* The PR's acceptance bar: under a session-flap schedule (plus link,
   router and wire faults) every detected outage still reaches the
   terminal accounting identity, the injected-fault counters are live,
   and the whole thing is deterministic. *)
let test_service_faults_terminal () =
  let faults = Bgp.Faults.scale Experiments.Fault_study.default_profile 2.0 in
  let config = { small_config with Fleet.Service.faults } in
  let r = Fleet.Service.run ~config ~seed:5 () in
  let open Fleet.Service in
  Alcotest.(check bool) "pipelines opened" true (r.detected > 0);
  Alcotest.(check bool) "sessions flapped" true (r.session_flaps > 0);
  Alcotest.(check bool) "links failed" true (r.link_failures > 0);
  Alcotest.(check bool) "updates lost on the wire" true (r.updates_dropped > 0);
  Alcotest.(check int) "every pipeline accounted for" r.detected
    (r.repaired + r.stood_down + r.gave_up + r.unfinished);
  let r' = Fleet.Service.run ~config ~seed:5 () in
  Alcotest.(check int) "deterministic: detected" r.detected r'.detected;
  Alcotest.(check int) "deterministic: flaps" r.session_flaps r'.session_flaps;
  Alcotest.(check int) "deterministic: crashes" r.router_crashes r'.router_crashes;
  Alcotest.(check int) "deterministic: dropped" r.updates_dropped r'.updates_dropped;
  Alcotest.(check int) "deterministic: poisons" r.poisons r'.poisons

let test_service_faults_off_inert () =
  (* [Faults.none] draws nothing: all five counters stay zero and so do
     the watchdog's fault-recovery counters. *)
  let r = Fleet.Service.run ~config:small_config ~seed:5 () in
  let open Fleet.Service in
  Alcotest.(check int) "no flaps" 0 r.session_flaps;
  Alcotest.(check int) "no link failures" 0 r.link_failures;
  Alcotest.(check int) "no crashes" 0 r.router_crashes;
  Alcotest.(check int) "no lost updates" 0 r.updates_dropped;
  Alcotest.(check int) "no duplicated updates" 0 r.updates_duplicated;
  Alcotest.(check int) "no re-announces" 0 r.reannounced;
  Alcotest.(check int) "no rollbacks" 0 r.rolled_back;
  Alcotest.(check int) "no breaker trips" 0 r.breaker_trips

let test_fault_study_validation () =
  let raises f =
    Alcotest.(check bool) "rejects" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises (fun () -> Experiments.Fault_study.run ~intensities:[] ~seed:1 ());
  raises (fun () -> Experiments.Fault_study.run ~intensities:[ 1.0; -0.5 ] ~seed:1 ());
  raises (fun () ->
      Experiments.Fault_study.run
        ~profile:{ Experiments.Fault_study.default_profile with Bgp.Faults.update_loss = 2.0 }
        ~seed:1 ())

let test_fault_study_jobs_invariant () =
  let render ~jobs =
    let config = { small_config with Fleet.Service.duration = 10800.0 } in
    let r =
      Experiments.Fault_study.run ~config ~intensities:[ 0.0; 1.0 ] ~targets:10 ~jobs ~seed:7 ()
    in
    String.concat "\n" (List.map Stats.Table.render (Experiments.Fault_study.to_tables r))
  in
  Alcotest.(check string) "jobs 1 = jobs 2" (render ~jobs:1) (render ~jobs:2)

(* ------------------------------------------------------------------ *)
(* The fleet study: jobs-invariance is the whole point of sharding. *)

let render_study ~jobs =
  let config = { small_config with Fleet.Service.duration = 10800.0 } in
  let r = Experiments.Fleet_study.run ~config ~targets:20 ~jobs ~seed:3 () in
  String.concat "\n" (List.map Stats.Table.render (Experiments.Fleet_study.to_tables r))

let test_study_jobs_invariant () =
  let t1 = render_study ~jobs:1 in
  let t2 = render_study ~jobs:2 in
  let t4 = render_study ~jobs:4 in
  Alcotest.(check string) "jobs 1 = jobs 2" t1 t2;
  Alcotest.(check string) "jobs 1 = jobs 4" t1 t4

let test_study_merge () =
  let config = { small_config with Fleet.Service.duration = 10800.0 } in
  let merged = Experiments.Fleet_study.run ~config ~targets:20 ~jobs:1 ~seed:3 () in
  Alcotest.(check int) "two worlds" 2 merged.Experiments.Fleet_study.shards;
  let w0 = Fleet.Service.run ~config ~seed:3 () in
  let w1 = Fleet.Service.run ~config ~seed:4 () in
  Alcotest.(check int) "injected sums across worlds"
    (w0.Fleet.Service.injected + w1.Fleet.Service.injected)
    merged.Experiments.Fleet_study.injected;
  Alcotest.(check int) "poisons sum across worlds"
    (w0.Fleet.Service.poisons + w1.Fleet.Service.poisons)
    merged.Experiments.Fleet_study.poisons

let suite =
  [
    Alcotest.test_case "budget: token bucket" `Quick test_budget_bucket;
    Alcotest.test_case "budget: per-VP scheduler" `Quick test_budget_scheduler;
    Alcotest.test_case "budget: validation" `Quick test_budget_validation;
    Alcotest.test_case "retry: backoff policy" `Quick test_retry_policy;
    Alcotest.test_case "chaos: deterministic coins" `Quick test_chaos_determinism;
    Alcotest.test_case "chaos: VP crash/recover" `Quick test_chaos_vp_crashes;
    Alcotest.test_case "chaos: validation" `Quick test_chaos_validation;
    Alcotest.test_case "service: deterministic" `Quick test_service_deterministic;
    Alcotest.test_case "service: pipeline accounting" `Quick test_service_accounting;
    Alcotest.test_case "service: terminates under chaos" `Quick test_service_chaos_terminates;
    Alcotest.test_case "faults: validation" `Quick test_faults_validation;
    Alcotest.test_case "faults: terminal outcomes under fault schedule" `Quick
      test_service_faults_terminal;
    Alcotest.test_case "faults: disabled injector is inert" `Quick test_service_faults_off_inert;
    Alcotest.test_case "fault study: validation" `Quick test_fault_study_validation;
    Alcotest.test_case "fault study: jobs-invariant" `Quick test_fault_study_jobs_invariant;
    Alcotest.test_case "study: byte-identical across jobs" `Quick test_study_jobs_invariant;
    Alcotest.test_case "study: worlds merge by summation" `Quick test_study_merge;
  ]
