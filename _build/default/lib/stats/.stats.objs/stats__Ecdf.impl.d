lib/stats/ecdf.ml: Array List
