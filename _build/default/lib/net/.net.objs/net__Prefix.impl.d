lib/net/prefix.ml: Format Int Int32 Ipv4 Map Printf Set String
