lib/net/prefix.mli: Format Ipv4 Map Set
