lib/bgp/speaker.mli: As_path Asn Ipv4 Net Policy Prefix Relationship Route Topology
