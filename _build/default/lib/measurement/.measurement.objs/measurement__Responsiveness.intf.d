lib/measurement/responsiveness.mli: Ipv4 Net Prng Topology
