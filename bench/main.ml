(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printing paper-vs-measured rows), then runs
   bechamel micro-benchmarks of the hot code paths.

   Usage: main.exe [--quick] [--seed N] [--only NAME[,NAME...]] [--no-micro]
                   [--jobs N] [--shards K] [--json [PATH]] [--trace FILE]
                   [--metrics] [--no-shard-sweep]
   Experiment names: fig1 fig5 alt-paths efficacy fig6 loss selective
   accuracy scalability load hubble anomalies sentinel ablation damping
   fleet faults plan case-study table1.

   --jobs N shards experiment trials over N domains (default: the
   machine's recommended domain count; 1 forces the sequential path).
   Output tables are identical for every jobs value. --shards K
   partitions each fleet/faults world over K shard domains advanced
   between deterministic time barriers (0, the default, keeps the legacy
   single-queue engine); tables are byte-identical for every K >= 1.
   --json writes a machine-readable run summary (per-experiment
   wall-clock, jobs, seed, micro-benchmark medians, a faults shard sweep
   at K = 1/2/4, the plan study's hit rate, and — when metrics are on —
   per-experiment counter totals) to PATH, defaulting to
   BENCH_<date>.json. The shard sweep runs only on full (non --quick)
   runs; --no-shard-sweep skips it there too. --trace streams
   structured JSONL events to FILE (and implies --metrics); --metrics
   records Obs counters and prints a summary table. *)

let seed = ref 42
let quick = ref false
let only : string list ref = ref []
let run_micro = ref true
let jobs = ref (Par.Pool.default_jobs ())
let shards = ref 0
let json_path : string option ref = ref None
let trace_path : string option ref = ref None
let show_metrics = ref false
let shard_sweep = ref true

(* The run date is read from the wall clock exactly once, at the top of
   [main], and threaded everywhere a date is rendered — so the default
   --json filename and the "date" field inside it can never disagree
   across a midnight rollover mid-run. *)
let parse_args ~date =
  let default_json_path = Printf.sprintf "BENCH_%s.json" date in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--no-micro" :: rest ->
        run_micro := false;
        go rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := max 1 (int_of_string n);
        go rest
    | "--shards" :: n :: rest ->
        shards := max 0 (int_of_string n);
        go rest
    | "--json" :: path :: rest when String.length path < 2 || String.sub path 0 2 <> "--"
      ->
        json_path := Some path;
        go rest
    | "--json" :: rest ->
        json_path := Some default_json_path;
        go rest
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        go rest
    | "--metrics" :: rest ->
        show_metrics := true;
        go rest
    | "--no-shard-sweep" :: rest ->
        shard_sweep := false;
        go rest
    | "--only" :: names :: rest ->
        only := String.split_on_char ',' names;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let wanted name =
  match !only with
  | [] -> true
  | names -> List.mem name names

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Wall-clock per experiment, in run order, for the JSON summary. *)
let timings : (string * float) list ref = ref []

(* --json only: the faults study re-run at K = 1/2/4 shard domains —
   (shards, seconds, tables byte-identical to K=1) per row. *)
let faults_shards : (int * float * bool) list ref = ref []

(* --json only: the plan study's headline numbers — (hit rate, planned
   median reroute s, computed median reroute s). *)
let plan_summary : (float * float option * float option) option ref = ref None

(* --json only: the durable-run section's headline numbers —
   (snapshot_bytes, journal_lines, capture_ms, resume_seconds,
   crash_resume_identical). *)
let recover_summary : (int * int * float * float * bool) option ref = ref None

let shards_opt () = if !shards = 0 then None else Some !shards

(* Per-experiment counter deltas (name, counters), newest first. Metrics
   accumulate across the whole run; [timed] diffs consecutive snapshots
   so each experiment gets only what it recorded. Snapshots are taken
   between experiments, when no worker domain is mid-trial. *)
let exp_metrics : (string * (string * int) list) list ref = ref []
let last_counters : (string * int) list ref = ref []

let counter_deltas (snap : Obs.Metrics.snapshot) =
  let prev name = Option.value ~default:0 (List.assoc_opt name !last_counters) in
  List.filter_map
    (fun (name, v) ->
      let d = v - prev name in
      if d = 0 then None else Some (name, d))
    snap.Obs.Metrics.counters

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := (name, dt) :: !timings;
  if Obs.Metrics.on () then begin
    let snap = Obs.Metrics.snapshot () in
    exp_metrics := (name, counter_deltas snap) :: !exp_metrics;
    last_counters := snap.Obs.Metrics.counters
  end;
  Printf.printf "[%s completed in %.1fs]\n" name dt;
  result

let print_tables tables = List.iter Stats.Table.print tables

(* ------------------------------------------------------------------ *)
(* Experiment sizes: the default regenerates stable statistics; --quick
   shrinks everything for smoke runs. *)

type sizes = {
  dataset : int;
  ases : int;
  poisons : int;
  loss_poisons : int;
  feeds : int;
  failures : int;
  outages : int;
}

let sizes () =
  if !quick then
    {
      dataset = 2000;
      ases = 150;
      poisons = 8;
      loss_poisons = 5;
      feeds = 15;
      failures = 30;
      outages = 80;
    }
  else
    {
      dataset = 10308;
      ases = 318;
      poisons = 25;
      loss_poisons = 15;
      feeds = 40;
      failures = 120;
      outages = 400;
    }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths. *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  let seed = !seed in
  (* Decision process over a populated candidate set. *)
  let decision_test =
    let entries =
      List.init 8 (fun i ->
          Bgp.Route.make_entry ~salt:64500
            ~ann:
              (Bgp.Route.announcement
                 ~prefix:(Net.Prefix.of_string_exn "203.0.113.0/24")
                 ~path:
                   (Bgp.As_path.of_list
                      (List.init (3 + (i mod 4)) (fun j -> Net.Asn.of_int (100 + i + j))))
                 ())
            ~neighbor:(Net.Asn.of_int (100 + i))
            ~rel:
              (if i mod 3 = 0 then Topology.Relationship.Customer
               else if i mod 3 = 1 then Topology.Relationship.Peer
               else Topology.Relationship.Provider)
            ~local_pref:(Topology.Relationship.local_pref Topology.Relationship.Peer)
            ~learned_at:0.0 ())
    in
    Test.make ~name:"decision: best of 8 candidates"
      (Staged.stage (fun () -> ignore (Bgp.Decision.best entries)))
  in
  (* Longest-prefix-match trie. *)
  let trie_test =
    let rng = Prng.create ~seed in
    let trie =
      List.fold_left
        (fun acc i ->
          let p =
            Net.Prefix.make
              (Net.Ipv4.of_octets 10 (i mod 256) ((i * 7) mod 256) 0)
              (16 + (i mod 9))
          in
          Net.Prefix_trie.add p i acc)
        Net.Prefix_trie.empty
        (List.init 500 (fun i -> i))
    in
    let addresses =
      Array.init 64 (fun _ ->
          Net.Ipv4.of_octets 10 (Prng.int rng 256) (Prng.int rng 256) (Prng.int rng 256))
    in
    let i = ref 0 in
    Test.make ~name:"prefix trie: longest-prefix match"
      (Staged.stage (fun () ->
           incr i;
           ignore (Net.Prefix_trie.lookup addresses.(!i land 63) trie)))
  in
  (* Valley-free reachability on a realistic topology. *)
  let gen = Topology.Topo_gen.generate ~seed () in
  let graph = gen.Topology.Topo_gen.graph in
  let stubs = Array.of_list gen.Topology.Topo_gen.stub_list in
  let reach_test =
    let i = ref 0 in
    Test.make ~name:"policy_reachable on 318-AS graph"
      (Staged.stage (fun () ->
           incr i;
           let src = stubs.(!i mod Array.length stubs) in
           let dst = stubs.((!i * 13 + 7) mod Array.length stubs) in
           ignore
             (Topology.Splice.policy_reachable graph ~src ~dst ~avoiding:Net.Asn.Set.empty)))
  in
  (* Event engine throughput. *)
  let engine_test =
    Test.make ~name:"event engine: schedule+run 100 events"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to 100 do
             Sim.Engine.schedule e ~at:(float_of_int i) ignore
           done;
           Sim.Engine.run e))
  in
  (* Data-plane forwarding walk. *)
  let bed = Workloads.Scenarios.planetlab ~ases:150 ~seed () in
  let vps = Array.of_list bed.Workloads.Scenarios.vantage_points in
  let walk_test =
    let i = ref 0 in
    Test.make ~name:"data plane: forwarding walk"
      (Staged.stage (fun () ->
           incr i;
           let src = vps.(!i mod Array.length vps) in
           let dst = vps.((!i * 5 + 3) mod Array.length vps) in
           ignore
             (Dataplane.Forward.delivers bed.Workloads.Scenarios.net
                bed.Workloads.Scenarios.failures ~src
                ~dst:(Dataplane.Forward.probe_address bed.Workloads.Scenarios.net dst))))
  in
  (* O(1) interned equality vs a structural list walk, across path
     lengths: the interned timings stay flat while the baseline grows.
     The list representation survives only here, as the yardstick. *)
  let equality_tests =
    let store = Bgp.Path_store.create () in
    let mk_pair len =
      let asns = List.init len (fun i -> Net.Asn.of_int (64000 + i)) in
      let p = Bgp.Path_store.intern_path store (Bgp.As_path.of_list asns) in
      let q = Bgp.Path_store.intern_path store (Bgp.As_path.of_list asns) in
      let l1 = List.init len (fun i -> Net.Asn.of_int (64000 + i)) in
      let l2 = List.init len (fun i -> Net.Asn.of_int (64000 + i)) in
      let rec list_eq a b =
        match (a, b) with
        | [], [] -> true
        | x :: xs, y :: ys -> Net.Asn.equal x y && list_eq xs ys
        | _ -> false
      in
      [
        Test.make ~name:(Printf.sprintf "as_path equal: interned, len %d" len)
          (Staged.stage (fun () -> ignore (Bgp.As_path.equal p q)));
        Test.make ~name:(Printf.sprintf "as_path equal: list baseline, len %d" len)
          (Staged.stage (fun () -> ignore (list_eq l1 l2)));
      ]
    in
    List.concat_map mk_pair [ 4; 64; 512 ]
  in
  let ann_equal_test =
    let store = Bgp.Path_store.create () in
    let mk () =
      Bgp.Route.announcement
        ~prefix:(Net.Prefix.of_string_exn "203.0.113.0/24")
        ~path:(Bgp.As_path.of_list (List.init 6 (fun i -> Net.Asn.of_int (65000 + i))))
        ()
    in
    let a1 = Bgp.Path_store.intern_ann store (mk ()) in
    let a2 = Bgp.Path_store.intern_ann store (mk ()) in
    Test.make ~name:"announcement equal: interned"
      (Staged.stage (fun () -> ignore (Bgp.Route.announcement_equal a1 a2)))
  in
  (* Incremental export sync: a full session flap only touches the flapped
     neighbor's adj-RIB-out, not every (prefix x neighbor) pair. *)
  let session_flap_test =
    let neighbors =
      List.init 4 (fun i -> (Net.Asn.of_int (200 + i), Topology.Relationship.Customer))
    in
    let sp =
      Bgp.Speaker.create ~asn:(Net.Asn.of_int 100) ~config:Bgp.Policy.default ~neighbors ()
    in
    let plain = Bgp.As_path.plain ~origin:(Net.Asn.of_int 100) in
    List.iter
      (fun i ->
        let prefix = Net.Prefix.make (Net.Ipv4.of_octets 10 i 0 0) 24 in
        ignore
          (Bgp.Speaker.originate sp ~now:0.0 ~prefix ~per_neighbor:(fun _ -> Some plain)))
      (List.init 50 (fun i -> i));
    let flapper = Net.Asn.of_int 200 in
    Test.make ~name:"speaker: session flap, 50 prefixes x 4 neighbors"
      (Staged.stage (fun () ->
           ignore (Bgp.Speaker.session_down sp ~now:1.0 ~neighbor:flapper);
           ignore (Bgp.Speaker.session_up sp ~now:2.0 ~neighbor:flapper)))
  in
  (* Barrier exchange: a 2-shard world converging one announcement, with
     every delivery crossing the barrier and on the order of 100 updates
     crossing the shard boundary itself. Times the full partition →
     window → exchange → re-intern loop. *)
  let shard_test =
    let sgen = Topology.Topo_gen.generate ~params:(Topology.Topo_gen.sized 150) ~seed () in
    let sgraph = sgen.Topology.Topo_gen.graph in
    let origin = List.hd sgen.Topology.Topo_gen.stub_list in
    let prefix = Net.Prefix.of_string_exn "203.0.113.0/24" in
    let converge () =
      let net =
        Bgp.Network.create ~engine:(Sim.Engine.create ()) ~graph:sgraph ~shards:2 ()
      in
      Bgp.Network.announce net ~origin ~prefix ();
      Bgp.Network.run_until_quiet ~timeout:36000.0 net;
      net
    in
    let boundary = Bgp.Network.cut_message_count (converge ()) in
    Test.make
      ~name:(Printf.sprintf "shard: 2-shard barrier exchange, %d boundary msgs" boundary)
      (Staged.stage (fun () -> ignore (converge ())))
  in
  let tests =
    Test.make_grouped ~name:"lifeguard"
      ([ decision_test; trie_test; reach_test; engine_test; walk_test ]
      @ equality_tests
      @ [ ann_equal_test; session_flap_test; shard_test ])
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  let medians = ref [] in
  Hashtbl.iter
    (fun measure_name tbl ->
      if measure_name = Bechamel.Measure.label Bechamel.Toolkit.Instance.monotonic_clock
      then
        Hashtbl.iter
          (fun test_name ols ->
            let ns =
              match Bechamel.Analyze.OLS.estimates ols with
              | Some [ e ] -> Some e
              | Some _ | None -> None
            in
            medians := (test_name, ns) :: !medians)
          tbl)
    results;
  let table =
    Stats.Table.create ~title:"Micro-benchmarks (bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  List.iter
    (fun (test_name, ns) ->
      let cell = match ns with Some e -> Printf.sprintf "%.1f" e | None -> "-" in
      Stats.Table.add_row table [ test_name; cell ])
    !medians;
  Stats.Table.print table;
  !medians

(* ------------------------------------------------------------------ *)
(* Metrics summary (--metrics). *)

let print_metrics_summary () =
  let snap = Obs.Metrics.snapshot () in
  let table =
    Stats.Table.create ~title:"Obs metrics (cumulative, merged over domains)"
      ~columns:[ "metric"; "kind"; "value" ]
  in
  List.iter
    (fun (n, v) -> Stats.Table.add_row table [ n; "counter"; string_of_int v ])
    snap.Obs.Metrics.counters;
  List.iter
    (fun (n, v) -> Stats.Table.add_row table [ n; "gauge (max)"; string_of_int v ])
    snap.Obs.Metrics.gauges;
  List.iter
    (fun (h : Obs.Metrics.hist_row) ->
      Stats.Table.add_row table [ h.hname; "histogram"; Printf.sprintf "n=%d" h.total ])
    snap.Obs.Metrics.hists;
  Stats.Table.print table

(* ------------------------------------------------------------------ *)
(* Machine-readable run summary. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~date ~path ~micro =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"date\": \"%s\",\n" date);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" !seed);
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" !quick);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" !jobs);
  Buffer.add_string buf (Printf.sprintf "  \"shards\": %d,\n" !shards);
  Buffer.add_string buf "  \"experiments\": [\n";
  let rows = List.rev !timings in
  List.iteri
    (fun i (name, dt) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"seconds\": %.3f }%s\n" (json_escape name)
           dt
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ],\n";
  (match !faults_shards with
  | [] -> ()
  | rows ->
      Buffer.add_string buf "  \"faults_shards\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i (k, dt, same) ->
          Buffer.add_string buf
            (Printf.sprintf "    { \"shards\": %d, \"seconds\": %.3f, \"identical\": %b }%s\n" k dt
               same
               (if i < n - 1 then "," else "")))
        rows;
      Buffer.add_string buf "  ],\n");
  (match !plan_summary with
  | None -> ()
  | Some (hit_rate, planned_p50, computed_p50) ->
      let opt = function None -> "null" | Some v -> Printf.sprintf "%.1f" v in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"plan\": { \"hit_rate\": %.4f, \"reroute_p50_planned\": %s, \
            \"reroute_p50_computed\": %s },\n"
           hit_rate (opt planned_p50) (opt computed_p50)));
  (match !recover_summary with
  | None -> ()
  | Some (snapshot_bytes, journal_lines, capture_ms, resume_seconds, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"recover\": { \"snapshot_bytes\": %d, \"journal_lines\": %d, \"capture_ms\": \
            %.3f, \"resume_seconds\": %.3f, \"crash_resume_identical\": %b },\n"
           snapshot_bytes journal_lines capture_ms resume_seconds identical));
  (match List.rev !exp_metrics with
  | [] -> ()
  | per_exp ->
      Buffer.add_string buf "  \"metrics\": [\n";
      let n_exp = List.length per_exp in
      List.iteri
        (fun i (name, counters) ->
          let pairs =
            List.map
              (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
              counters
          in
          Buffer.add_string buf
            (Printf.sprintf "    { \"name\": \"%s\", \"counters\": { %s } }%s\n"
               (json_escape name) (String.concat ", " pairs)
               (if i < n_exp - 1 then "," else "")))
        per_exp;
      Buffer.add_string buf "  ],\n");
  Buffer.add_string buf "  \"micro_ns\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (match ns with Some e -> Printf.sprintf "%.1f" e | None -> "null")
           (if i < List.length micro - 1 then "," else "")))
    micro;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\n[wrote %s]\n" path

(* ------------------------------------------------------------------ *)

let () =
  (* The single wall-clock date read of the run (see parse_args). *)
  let date =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  parse_args ~date;
  if !show_metrics || !trace_path <> None then begin
    (* Libraries read time through the injected Obs.Clock only; the
       binary is the one place the real clock is installed. *)
    Obs.Clock.set Unix.gettimeofday;
    Obs.Metrics.enable ()
  end;
  (match !trace_path with Some path -> Obs.Trace.enable_file path | None -> ());
  let s = sizes () in
  let seed = !seed in
  Printf.printf "LIFEGUARD reproduction benchmark harness (seed %d%s)\n" seed
    (if !quick then ", quick mode" else "");

  if wanted "fig1" then begin
    banner "Figure 1: outage durations vs unavailability";
    let r = timed "fig1" (fun () -> Experiments.Fig1_durations.run ~n:s.dataset ~seed ()) in
    print_tables (Experiments.Fig1_durations.to_tables r)
  end;

  if wanted "fig5" then begin
    banner "Figure 5: residual outage duration";
    let r = timed "fig5" (fun () -> Experiments.Fig5_residual.run ~n:s.dataset ~seed ()) in
    print_tables (Experiments.Fig5_residual.to_tables r)
  end;

  if wanted "alt-paths" then begin
    banner "Section 2.2: alternate policy-compliant paths";
    let r =
      timed "alt-paths" (fun () ->
          Experiments.Sec22_alt_paths.run ~ases:s.ases ~outage_count:s.outages ~seed ())
    in
    print_tables (Experiments.Sec22_alt_paths.to_tables r)
  end;

  let efficacy =
    if wanted "efficacy" || wanted "table1" then begin
      banner "Section 5.1: poisoning efficacy";
      let r =
        timed "efficacy" (fun () ->
            Experiments.Sec51_efficacy.run ~ases:s.ases ~max_poisons:s.poisons ~jobs:!jobs
              ~seed ())
      in
      print_tables (Experiments.Sec51_efficacy.to_tables r);
      Some r
    end
    else None
  in

  let convergence =
    if wanted "fig6" || wanted "table1" then begin
      banner "Figure 6: convergence after poisoned announcements";
      let r =
        timed "fig6" (fun () ->
            Experiments.Fig6_convergence.run ~ases:s.ases ~max_poisons:s.poisons ~jobs:!jobs
              ~seed ())
      in
      print_tables (Experiments.Fig6_convergence.to_tables r);
      Some r
    end
    else None
  in

  let loss =
    if wanted "loss" || wanted "table1" then begin
      banner "Section 5.2: loss during convergence";
      let r =
        timed "loss" (fun () ->
            Experiments.Sec52_loss.run ~ases:s.ases ~max_poisons:s.loss_poisons ~jobs:!jobs
              ~seed ())
      in
      print_tables (Experiments.Sec52_loss.to_tables r);
      Some r
    end
    else None
  in

  let selective =
    if wanted "selective" || wanted "table1" then begin
      banner "Section 5.2: selective poisoning + forward diversity";
      let r =
        timed "selective" (fun () ->
            Experiments.Sec52_selective.run ~ases:s.ases ~max_feeds:s.feeds ~jobs:!jobs
              ~seed ())
      in
      print_tables (Experiments.Sec52_selective.to_tables r);
      Some r
    end
    else None
  in

  let accuracy =
    if wanted "accuracy" || wanted "scalability" || wanted "table1" then begin
      banner "Section 5.3: isolation accuracy";
      let r =
        timed "accuracy" (fun () ->
            Experiments.Sec53_accuracy.run ~ases:s.ases ~failure_count:s.failures ~jobs:!jobs
              ~seed ())
      in
      print_tables (Experiments.Sec53_accuracy.to_tables r);
      Some r
    end
    else None
  in

  let scalability =
    match accuracy with
    | Some acc when wanted "scalability" || wanted "table1" ->
        banner "Section 5.4: scalability";
        let r =
          timed "scalability" (fun () ->
              Experiments.Sec54_scalability.run ~ases:s.ases ~seed ~accuracy:acc ())
        in
        print_tables (Experiments.Sec54_scalability.to_tables r);
        Some r
    | _ -> None
  in

  if wanted "load" then begin
    banner "Table 2: update load at deployment scale";
    let r = timed "load" (fun () -> Experiments.Tab2_load.run ~n:s.dataset ~seed ()) in
    print_tables (Experiments.Tab2_load.to_tables r)
  end;

  if wanted "hubble" then begin
    banner "Hubble-style monitoring: deriving H(d) for Table 2";
    let r =
      timed "hubble" (fun () ->
          Experiments.Hubble_study.run ~ases:(min s.ases 200)
            ~days:(if !quick then 2.0 else 7.0)
            ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Hubble_study.to_tables r)
  end;

  if wanted "anomalies" then begin
    banner "Section 7.1: poisoning anomalies";
    let r =
      timed "anomalies" (fun () ->
          Experiments.Sec71_anomalies.run ~ases:(min s.ases 200) ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Sec71_anomalies.to_tables r)
  end;

  if wanted "sentinel" then begin
    banner "Section 7.2: sentinel variants";
    let r = timed "sentinel" (fun () -> Experiments.Sec72_sentinel.run ()) in
    print_tables (Experiments.Sec72_sentinel.to_tables r)
  end;

  if wanted "ablation" then begin
    banner "Ablation: prepending / MRAI / FIB latency";
    let r =
      timed "ablation" (fun () ->
          Experiments.Ablation.run ~ases:(min s.ases 200) ~poisons:(min s.poisons 10)
            ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Ablation.to_tables r)
  end;

  if wanted "damping" then begin
    banner "Route-flap damping: why announcements were spaced 90 minutes";
    let r =
      timed "damping" (fun () ->
          Experiments.Damping.run ~ases:(min s.ases 150) ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Damping.to_tables r)
  end;

  if wanted "fleet" then begin
    banner "Fleet operations: continuous multi-outage service loop";
    let config =
      {
        Fleet.Service.default_config with
        Fleet.Service.duration = (if !quick then 10800.0 else 86400.0);
        shards = shards_opt ();
      }
    in
    let r =
      timed "fleet" (fun () ->
          Experiments.Fleet_study.run ~config
            ~targets:(if !quick then 50 else 250)
            ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Fleet_study.to_tables r)
  end;

  if wanted "faults" then begin
    banner "Fault study: repair robustness under control-plane faults";
    let config =
      {
        Fleet.Service.default_config with
        Fleet.Service.duration = (if !quick then 10800.0 else 21600.0);
        shards = shards_opt ();
      }
    in
    let r =
      timed "faults" (fun () ->
          Experiments.Fault_study.run ~config
            ~intensities:(if !quick then [ 0.0; 1.0 ] else Experiments.Fault_study.default_intensities)
            ~targets:(if !quick then 25 else 100)
            ~jobs:!jobs ~seed ())
    in
    print_tables (Experiments.Fault_study.to_tables r)
  end;

  if wanted "plan" then begin
    banner "Plan study: precomputed remediation vs compute-from-scratch";
    let config =
      {
        Experiments.Plan_study.default_config with
        Fleet.Service.duration = (if !quick then 21600.0 else 43200.0);
        shards = shards_opt ();
      }
    in
    let r =
      timed "plan" (fun () ->
          Experiments.Plan_study.run ~config
            ~targets:(if !quick then 20 else 40)
            ~jobs:!jobs ~seed ())
    in
    let median samples =
      match samples with
      | [] -> None
      | _ ->
          Some
            (Stats.Ecdf.quantile
               (Stats.Ecdf.of_samples (Array.of_list samples))
               0.5)
    in
    plan_summary :=
      Some
        ( Experiments.Plan_study.hit_rate r.Experiments.Plan_study.planned,
          median r.Experiments.Plan_study.planned.Experiments.Plan_study.time_to_confirm,
          median r.Experiments.Plan_study.computed.Experiments.Plan_study.time_to_confirm );
    print_tables (Experiments.Plan_study.to_tables r)
  end;

  if wanted "recover" then begin
    banner "Recover: durable journal + snapshots, crash-and-resume fidelity";
    let config =
      {
        Fleet.Service.default_config with
        Fleet.Service.duration = (if !quick then 10800.0 else 21600.0);
        target_count = 12;
        outages_per_day = 96.0;
        shards = shards_opt ();
      }
    in
    let snapshot_every = config.Fleet.Service.duration /. 4.0 in
    let last_snap = ref None in
    let reference =
      timed "recover" (fun () ->
          Fleet.Service.run_durable ~config ~seed ~snapshot_every
            ~snapshot_sink:(fun s -> last_snap := Some s)
            ())
    in
    match reference with
    | Fleet.Service.Interrupted _ -> assert false (* no crash injected *)
    | Fleet.Service.Finished { report; recovery } ->
        let journal_lines = List.length recovery.Fleet.Service.rc_journal in
        let snapshot_bytes, capture_ms =
          match !last_snap with
          | None -> (0, 0.0)
          | Some s ->
              let bytes = String.length (Recover.Snapshot.render s) in
              let reps = 100 in
              let t0 = Unix.gettimeofday () in
              for _ = 1 to reps do
                ignore (Recover.Snapshot.render s)
              done;
              (bytes, (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int reps)
        in
        (* Crash mid-journal at the after-write boundary (record persisted,
           effect lost — the boundary recovery must heal), then resume and
           demand byte-identity with the uninterrupted report. *)
        let crash_append = Int.max 1 (journal_lines / 2) in
        let crashed =
          Fleet.Service.run_durable ~config ~seed
            ~crash:{ Recover.Crash.boundary = Recover.Crash.After_write; append = crash_append }
            ~snapshot_every
            ()
        in
        let t0 = Unix.gettimeofday () in
        let resumed =
          match crashed with
          | Fleet.Service.Finished _ -> assert false (* crash_append <= journal length *)
          | Fleet.Service.Interrupted { journal; snapshot; _ } ->
              Fleet.Service.run_durable ~config ~seed ~journal ?snapshot ~snapshot_every ()
        in
        let resume_seconds = Unix.gettimeofday () -. t0 in
        let identical =
          match resumed with
          | Fleet.Service.Interrupted _ -> false
          | Fleet.Service.Finished { report = r2; recovery = rc2 } ->
              List.equal String.equal
                (Fleet.Service.render_report report)
                (Fleet.Service.render_report r2)
              && rc2.Fleet.Service.rc_reconcile.Recover.Reconcile.clean
        in
        recover_summary :=
          Some (snapshot_bytes, journal_lines, capture_ms, resume_seconds, identical);
        Printf.printf
          "[recover: %d journal lines, %d snapshot bytes, capture %.3f ms, crash@%d resume \
           %.1fs, %s]\n"
          journal_lines snapshot_bytes capture_ms crash_append resume_seconds
          (if identical then "byte-identical" else "DIVERGED")
  end;

  (* The shard sweep re-runs the fault study three times; keep it out of
     smoke runs (--quick) and behind an explicit opt-out for full runs. *)
  if wanted "faults" && !json_path <> None && !shard_sweep && not !quick then begin
    (* Per-shard-count rows for the JSON summary: the same (reduced)
       fault study at K = 1, 2 and 4 shard domains, with the rendered
       tables compared byte-for-byte against K=1 — the invariance tests'
       discipline, enforced on every --json bench run. *)
    banner "Fault study: shard sweep (K = 1/2/4)";
    let run_k k =
      let config =
        {
          Fleet.Service.default_config with
          Fleet.Service.duration = 10800.0;
          shards = Some k;
        }
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Experiments.Fault_study.run ~config ~intensities:[ 0.0; 1.0 ] ~targets:25
          ~jobs:!jobs ~seed ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      (dt, String.concat "\n" (List.map Stats.Table.render (Experiments.Fault_study.to_tables r)))
    in
    let dt1, tables1 = run_k 1 in
    faults_shards := [ (1, dt1, true) ];
    List.iter
      (fun k ->
        let dt, tables = run_k k in
        faults_shards := (k, dt, String.equal tables1 tables) :: !faults_shards)
      [ 2; 4 ];
    faults_shards := List.rev !faults_shards;
    List.iter
      (fun (k, dt, same) ->
        Printf.printf "[faults at %d shard(s): %.1fs, tables %s]\n" k dt
          (if same then "byte-identical to K=1" else "DIVERGED from K=1"))
      !faults_shards
  end;

  if wanted "case-study" then begin
    banner "Section 6: case study";
    let r = timed "case-study" (fun () -> Experiments.Case_study.run ()) in
    print_tables (Experiments.Case_study.to_tables r)
  end;

  if wanted "lint" then begin
    banner "Static analysis: lifeguard-lint wall-clock";
    (* The benchmark usually runs from _build/default/bench, where the
       mirrored sources sit one level up; fall back gracefully when the
       tree is not around (e.g. an installed binary). *)
    let root =
      if Sys.file_exists "lib" then Some "."
      else if Sys.file_exists "../lib" then Some ".."
      else None
    in
    match root with
    | None -> Printf.printf "(sources not present; skipped)\n"
    | Some root ->
        let dirs =
          List.filter Sys.file_exists
            (List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "examples" ])
        in
        let r = timed "lint" (fun () -> Lint.scan ~dirs ()) in
        let eff, _ = timed "lint-effects" (fun () -> Lint.analyse ~dirs ()) in
        let summarized = List.length (Lint.Effects.summary_rows eff) in
        Printf.printf "%d violation(s) pre-baseline, %d parse error(s); %d exported definitions summarized\n"
          (List.length r.Lint.violations)
          (List.length r.Lint.errors)
          summarized
  end;

  (match (efficacy, convergence, loss, selective, accuracy, scalability) with
  | Some e, Some c, Some l, Some sel, Some a, Some sc when wanted "table1" ->
      banner "Table 1: summary of key results";
      let r =
        Experiments.Tab1_summary.of_parts ~efficacy:e ~convergence:c ~loss:l ~selective:sel
          ~accuracy:a ~scalability:sc
      in
      print_tables (Experiments.Tab1_summary.to_tables r)
  | _ -> ());

  let micro =
    if !run_micro && !only = [] then begin
      banner "Micro-benchmarks";
      micro_benchmarks ()
    end
    else []
  in
  if !show_metrics then begin
    banner "Metrics";
    print_metrics_summary ()
  end;
  (match !json_path with
  | Some path -> write_json ~date ~path ~micro
  | None -> ());
  (match !trace_path with
  | Some path ->
      Obs.Trace.close ();
      Printf.printf "\n[wrote trace %s]\n" path
  | None -> ())
