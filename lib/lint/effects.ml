(* Per-function effect summaries over the {!Callgraph}, propagated to a
   fixpoint over SCCs.

   Seeds come from the same syntactic signals the per-file detectors key
   on (wall-clock reads, [Random], stdout printers, catch-all handlers,
   file/process I/O) plus one interprocedural signal the per-file pass
   cannot see: an edge into a module-level mutable binding of any file.
   Propagation is the transitive closure: [effects f = seed f U union
   (effects callee)]. Within an SCC every member reaches every other, so
   all members share the SCC's union; SCCs are processed callee-first, so
   one linear sweep plus a bounded inner loop per SCC reaches the
   fixpoint — apparent cross-module recursion cannot diverge.

   Seeds arising inside declared-exempt modules are not planted at all:
   [lib/obs] owns the sanctioned cross-domain state and the trace sink
   (its merges are order-insensitive by design), and [lib/prng] is the
   sanctioned randomness home — otherwise every instrumented function in
   the tree would inherit [Global_mut] from a [Metrics.incr]. *)

type eff = Clock | Random | Global_mut | Prints | Catchall | Io

let all_effects = [ Clock; Random; Global_mut; Prints; Catchall; Io ]

let label = function
  | Clock -> "clock"
  | Random -> "random"
  | Global_mut -> "globalmut"
  | Prints -> "prints"
  | Catchall -> "catchall"
  | Io -> "io"

type origin =
  | Prim of string * int  (** primitive path as written, line of the use *)
  | Call of int * int  (** callee def id, call-site line *)
  | Global of int * int  (** mutable-global def id, reference line *)

(* Effect sets are bitmasks over the six atoms; witnesses and seeds are
   one origin slot per atom. Fixed-width, no list scans in the fixpoint. *)
let idx = function
  | Clock -> 0
  | Random -> 1
  | Global_mut -> 2
  | Prints -> 3
  | Catchall -> 4
  | Io -> 5

let n_effects = 6
let bit e = 1 lsl idx e

type t = {
  cg : Callgraph.t;
  effects : int array;  (** per def, a bitmask over [all_effects] *)
  witness : origin option array array;  (** def x effect slot *)
  direct : origin option array array;  (** the seeds only *)
}

(* ---------------- seed tables ---------------------------------------- *)

let clock_paths = [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

let printf_qualified = [ [ "Printf"; "printf" ]; [ "Format"; "printf" ] ]

let printf_bare =
  [ "print_endline"; "print_string"; "print_newline"; "print_int"; "print_float"; "print_char" ]

let io_bare = [ "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "input_line"; "read_line" ]

let io_sys =
  [ "command"; "readdir"; "remove"; "rename"; "getenv"; "getenv_opt"; "chdir"; "getcwd";
    "file_exists"; "is_directory" ]

let path_equal a b = List.equal String.equal a b

let normalize = function "Stdlib" :: rest -> rest | p -> p

(* The seed an external reference plants, if any. *)
let seed_of_external ~(kind : Source_scan.file_kind) path =
  let p = normalize path in
  if List.exists (path_equal p) clock_paths then Some Clock
  else
    match p with
    | "Random" :: _ when not kind.prng_exempt -> Some Random
    | "Unix" :: _ -> Some Io
    | [ "Sys"; f ] when List.mem f io_sys -> Some Io
    | [ "Filename"; ("temp_file" | "open_temp_file") ] -> Some Io
    | ("In_channel" | "Out_channel") :: _ -> Some Io
    | [ name ] when List.mem name io_bare -> Some Io
    | _ ->
        if
          (not kind.obs_exempt)
          && (List.exists (path_equal p) printf_qualified
             || match p with [ name ] -> List.mem name printf_bare | _ -> false)
        then Some Prints
        else None

(* ---------------- propagation ---------------------------------------- *)

let analyse (cg : Callgraph.t) =
  let n = Array.length cg.Callgraph.defs in
  let direct = Array.init n (fun _ -> Array.make n_effects None) in
  let effects = Array.make n 0 in
  let witness = Array.init n (fun _ -> Array.make n_effects None) in
  (* Seeds. *)
  Array.iter
    (fun (d : Callgraph.def) ->
      let slots = direct.(d.Callgraph.id) in
      let add eff origin =
        let i = idx eff in
        if Option.is_none slots.(i) then slots.(i) <- Some origin
      in
      List.iter
        (fun (path, line) ->
          match seed_of_external ~kind:d.Callgraph.kind path with
          | Some eff -> add eff (Prim (String.concat "." path, line))
          | None -> ())
        d.Callgraph.externals;
      (match d.Callgraph.catchall_line with
      | Some line -> add Catchall (Prim ("try ... with _ ->", line))
      | None -> ());
      List.iter
        (fun (callee, line) ->
          let c = cg.Callgraph.defs.(callee) in
          if c.Callgraph.mutable_global && not c.Callgraph.kind.Source_scan.obs_exempt then
            add Global_mut (Global (callee, line)))
        d.Callgraph.calls)
    cg.Callgraph.defs;
  (* SCCs arrive callee-first: every SCC a member calls into is final. *)
  List.iter
    (fun scc ->
      let in_scc = Hashtbl.create (List.length scc) in
      List.iter (fun v -> Hashtbl.replace in_scc v ()) scc;
      let union = ref 0 in
      List.iter
        (fun v ->
          Array.iteri
            (fun i o -> if Option.is_some o then union := !union lor (1 lsl i))
            direct.(v);
          List.iter
            (fun (w, _) -> if not (Hashtbl.mem in_scc w) then union := !union lor effects.(w))
            cg.Callgraph.defs.(v).Callgraph.calls)
        scc;
      let shared = !union in
      List.iter (fun v -> effects.(v) <- shared) scc;
      (* Witnesses: direct seeds first, then chase call edges; members of
         the SCC that only reach an effect through an in-SCC sibling pick
         its witness up in a later round — at most |scc| rounds. *)
      List.iter
        (fun v ->
          Array.iteri
            (fun i o -> if shared land (1 lsl i) <> 0 then witness.(v).(i) <- o)
            direct.(v))
        scc;
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun v ->
            Array.iteri
              (fun i slot ->
                if shared land (1 lsl i) <> 0 && Option.is_none slot then
                  match
                    List.find_map
                      (fun (w, line) ->
                        if effects.(w) land (1 lsl i) <> 0 && Option.is_some witness.(w).(i)
                        then Some (Call (w, line))
                        else None)
                      cg.Callgraph.defs.(v).Callgraph.calls
                  with
                  | Some o ->
                      witness.(v).(i) <- Some o;
                      progress := true
                  | None -> ())
              witness.(v))
          scc
      done)
    cg.Callgraph.sccs;
  { cg; effects; witness; direct }

let effects_of t id = List.filter (fun e -> t.effects.(id) land bit e <> 0) all_effects
let has t id eff = t.effects.(id) land bit eff <> 0
let is_direct t id eff = Option.is_some t.direct.(id).(idx eff)

(* ---------------- traces --------------------------------------------- *)

let trace t id eff =
  let i = idx eff in
  let visited = Hashtbl.create 8 in
  let rec go id =
    Hashtbl.replace visited id ();
    let d = t.cg.Callgraph.defs.(id) in
    d.Callgraph.display
    ::
    (match t.witness.(id).(i) with
    | Some (Prim (p, _)) -> [ p ]
    | Some (Global (g, _)) ->
        [ t.cg.Callgraph.defs.(g).Callgraph.display ^ " (module-level mutable)" ]
    | Some (Call (c, _)) -> if Hashtbl.mem visited c then [ "..." ] else go c
    | None -> [ "?" ])
  in
  go id

let trace_string t id eff = String.concat " -> " (trace t id eff)

(* ---------------- the LG-EFF-* rule family --------------------------- *)

let row t id =
  match effects_of t id with
  | [] -> "pure"
  | effs -> String.concat "," (List.map label effs)

(* Deterministic effect-summary rows for every exported definition of
   every library file, sorted by display name. *)
let summary_rows t =
  Array.to_list t.cg.Callgraph.defs
  |> List.filter (fun (d : Callgraph.def) -> d.Callgraph.kind.Source_scan.in_lib && d.Callgraph.exported)
  |> List.map (fun (d : Callgraph.def) -> (d.Callgraph.display, row t d.Callgraph.id))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A "planner entry point" for LG-PLAN-STALE: any exported definition in
   a plan subsystem's [planner.ml] (the real [lib/plan/planner.ml], plus
   the [plan_bad]/[plan_good] fixture trees). Keyed on the path rather
   than on {!Source_scan.classify} so fixture scans, which force
   [lib_kind], exercise the rule too. *)
let planner_file file =
  String.equal (Filename.basename file) "planner.ml"
  && String.starts_with ~prefix:"plan" (Filename.basename (Filename.dirname file))

let violations t =
  let out = ref [] in
  Array.iter
    (fun (d : Callgraph.def) ->
      let kind = d.Callgraph.kind in
      if kind.Source_scan.in_lib && d.Callgraph.exported then begin
        let id = d.Callgraph.id in
        let add rule eff what fix =
          out :=
            {
              Source_scan.rule;
              file = d.Callgraph.file;
              line = d.Callgraph.line;
              col = d.Callgraph.col;
              message =
                Printf.sprintf "%s transitively %s: %s; %s" d.Callgraph.display what
                  (trace_string t id eff) fix;
            }
            :: !out
        in
        if has t id Clock && (not (is_direct t id Clock)) && not kind.Source_scan.obs_exempt
        then
          add Rule.Eff_clock Clock "reaches the wall clock"
            "thread simulation time or the injected Obs.Clock";
        if has t id Random && (not (is_direct t id Random)) && not kind.Source_scan.prng_exempt
        then add Rule.Eff_random Random "reaches Random" "thread a seeded Prng instead";
        if
          has t id Global_mut
          && (not d.Callgraph.mutable_global)
          && not kind.Source_scan.obs_exempt
        then
          add Rule.Eff_globalmut Global_mut "reaches module-level mutable state"
            "allocate the state per world and thread it (share-nothing)";
        (* LG-PLAN-STALE certifies planner entry points effect-pure:
           unlike the LG-EFF-* family it fires on direct uses too, and on
           clock/Random regardless of the file's exemptions — a plan
           computed from anything but its arguments is stale on arrival. *)
        if planner_file d.Callgraph.file then
          List.iter
            (fun (eff, what) ->
              if has t id eff && not (eff == Global_mut && d.Callgraph.mutable_global) then
                add Rule.Plan_stale eff what
                  "planner entry points must be pure functions of the world")
            [
              (Clock, "is a planner entry point reaching the wall clock");
              (Random, "is a planner entry point reaching Random");
              (Global_mut, "is a planner entry point reaching module-level mutable state");
            ]
      end)
    t.cg.Callgraph.defs;
  List.rev !out
