lib/workloads/outage_gen.ml: Array Float Prng Stats
