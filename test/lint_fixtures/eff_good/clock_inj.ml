(* Clean twin of eff_bad/clock_wrap.ml: the clock is injected by the
   caller, so no effect seed exists anywhere in the chain. *)
let now ~clock () = clock ()
