(** The LIFEGUARD control loop, end to end.

    Wires the pieces together on the simulation clock: monitors detect an
    outage on a path to the origin's prefix, isolation locates the failing
    AS, the decision gate waits out young outages and checks that an
    alternate path exists, remediation poisons, and sentinel probes detect
    the repair and trigger unpoisoning. This is the per-prefix state
    machine a deployment runs (§4, §6's case study). *)

open Net

type config = {
  decide : Decide.config;
  recheck_interval : float;  (** How often to re-test the sentinel while poisoned (s). *)
  monitor_interval : float;  (** Ping-pair period for the built-in monitors (s). *)
}

val default_config : config

(** Lifecycle events, recorded with their simulation time. *)
type event =
  | Outage_detected of { vp : Asn.t; target : Asn.t }
  | Diagnosed of Isolation.diagnosis
  | Decision of Decide.verdict
  | Poison_announced of Asn.t
  | Recovery_detected of Asn.t  (** The poisoned AS works again. *)
  | Unpoisoned
  | Gave_up of string

val pp_event : Format.formatter -> event -> unit

type state = Idle | Isolating | Poisoned of Asn.t
(** Current position in the per-prefix state machine. *)

type t

val create :
  ?config:config ->
  env:Dataplane.Probe.env ->
  atlas:Measurement.Atlas.t ->
  responsiveness:Measurement.Responsiveness.t ->
  plan:Remediate.plan ->
  vantage_points:Asn.t list ->
  unit ->
  t
(** Announce the plan's baseline and stand ready. The caller drives the
    engine; LIFEGUARD schedules its own follow-ups on it. *)

val watch : t -> targets:Asn.t list -> unit
(** Start monitors from the origin toward each target's infrastructure
    address, refreshing the atlas first so isolation has history. *)

val notify_outage : t -> vp:Asn.t -> target:Asn.t -> unit
(** Report an externally-detected outage on the reverse path from
    [target] back to the origin (e.g. from a monitor owned by the
    caller). Triggers the isolate/decide/poison pipeline at the current
    simulation time. *)

val state : t -> state
val events : t -> (float * event) list
(** Timestamped event log, oldest first. *)

val plan : t -> Remediate.plan
