(* Atlas, monitors and the responsiveness database. *)

open Net
open Helpers

let ready_world () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  w

let addr w x = Dataplane.Forward.probe_address w.net x

let test_atlas_record_and_history () =
  let atlas = Measurement.Atlas.create () in
  let p1 = List.map asn [ 1; 2; 3 ] and p2 = List.map asn [ 1; 4; 3 ] in
  Measurement.Atlas.record_forward atlas ~vp:(asn 1) ~dst:(asn 3) ~now:10.0 p1;
  Measurement.Atlas.record_forward atlas ~vp:(asn 1) ~dst:(asn 3) ~now:20.0 p1;
  Measurement.Atlas.record_forward atlas ~vp:(asn 1) ~dst:(asn 3) ~now:30.0 p2;
  let history = Measurement.Atlas.forward_history atlas ~vp:(asn 1) ~dst:(asn 3) in
  Alcotest.(check int) "identical consecutive snapshots collapse" 2 (List.length history);
  (match history with
  | newest :: older :: _ ->
      Alcotest.(check (list int)) "newest is the change" [ 1; 4; 3 ]
        (List.map Asn.to_int newest.Measurement.Atlas.path);
      Alcotest.(check (float 0.001)) "older keeps its refreshed time" 20.0
        older.Measurement.Atlas.taken_at
  | _ -> Alcotest.fail "history shape");
  (match Measurement.Atlas.latest_forward atlas ~vp:(asn 1) ~dst:(asn 3) ~before:25.0 () with
  | Some snap ->
      Alcotest.(check (list int)) "as-of query" [ 1; 2; 3 ]
        (List.map Asn.to_int snap.Measurement.Atlas.path)
  | None -> Alcotest.fail "latest_forward ~before");
  let hops = Measurement.Atlas.candidate_hops atlas ~vp:(asn 1) ~dst:(asn 3) in
  Alcotest.(check (list int)) "candidate universe" [ 1; 2; 3; 4 ]
    (List.map Asn.to_int (Asn.Set.elements hops))

let test_atlas_refresh () =
  let w = ready_world () in
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh atlas w.probe ~vp:e ~dst:o ~now:5.0;
  (match Measurement.Atlas.latest_forward atlas ~vp:e ~dst:o () with
  | Some snap ->
      Alcotest.(check (list int)) "forward path measured" [ 60; 30; 20; 10 ]
        (List.map Asn.to_int snap.Measurement.Atlas.path)
  | None -> Alcotest.fail "no forward snapshot");
  (match Measurement.Atlas.latest_reverse atlas ~vp:e ~dst:o () with
  | Some snap ->
      Alcotest.(check (list int)) "reverse path measured (dst first)" [ 10; 20; 30; 60 ]
        (List.map Asn.to_int snap.Measurement.Atlas.path)
  | None -> Alcotest.fail "no reverse snapshot");
  Alcotest.(check int) "one pair" 1 (Measurement.Atlas.pair_count atlas)

let test_monitor_detects_outage_and_recovery () =
  let w = ready_world () in
  let detected = ref [] and recovered = ref [] in
  let monitor =
    Measurement.Monitor.create ~env:w.probe ~engine:w.engine ~interval:30.0 ~fail_threshold:4
      ~on_outage:(fun outage -> detected := outage :: !detected)
      ~on_recovery:(fun outage -> recovered := outage :: !recovered)
      ~vp:o ~targets:[ addr w e ] ()
  in
  (* Quiet period. *)
  Sim.Engine.run ~until:200.0 w.engine;
  Alcotest.(check int) "no outage yet" 0 (List.length !detected);
  (* Break the reverse path silently. *)
  let spec =
    Dataplane.Failure.spec
      ~toward:(Dataplane.Forward.infrastructure_prefix o)
      (Dataplane.Failure.Node a)
  in
  Dataplane.Failure.add w.failures spec;
  Sim.Engine.run ~until:400.0 w.engine;
  Alcotest.(check int) "outage detected once" 1 (List.length !detected);
  (match !detected with
  | [ outage ] ->
      Alcotest.(check bool) "detected after ~4 rounds" true
        (outage.Measurement.Monitor.detected_at -. outage.Measurement.Monitor.started_at
         >= 89.0);
      Alcotest.(check bool) "still open" true (outage.Measurement.Monitor.ended_at = None)
  | _ -> Alcotest.fail "expected one outage");
  Dataplane.Failure.remove w.failures spec;
  Sim.Engine.run ~until:500.0 w.engine;
  Alcotest.(check int) "recovery seen" 1 (List.length !recovered);
  (match Measurement.Monitor.outages monitor with
  | [ outage ] ->
      Alcotest.(check bool) "closed with duration" true
        (Measurement.Monitor.duration outage ~now:500.0 > 0.0)
  | _ -> Alcotest.fail "history");
  Measurement.Monitor.stop monitor;
  let sent = Measurement.Monitor.probe_count monitor in
  Sim.Engine.run ~until:700.0 w.engine;
  Alcotest.(check int) "stopped monitors stop probing" sent
    (Measurement.Monitor.probe_count monitor)

let test_monitor_threshold_not_crossed_by_blips () =
  let w = ready_world () in
  let detected = ref 0 in
  let _monitor =
    Measurement.Monitor.create ~env:w.probe ~engine:w.engine ~interval:30.0 ~fail_threshold:4
      ~on_outage:(fun _ -> incr detected)
      ~vp:o ~targets:[ addr w e ] ()
  in
  let spec =
    Dataplane.Failure.spec
      ~toward:(Dataplane.Forward.infrastructure_prefix o)
      (Dataplane.Failure.Node a)
  in
  (* Two failed rounds, then recovery: threshold of four never crossed. *)
  Sim.Engine.run ~until:40.0 w.engine;
  Dataplane.Failure.add w.failures spec;
  Sim.Engine.run ~until:110.0 w.engine;
  Dataplane.Failure.remove w.failures spec;
  Sim.Engine.run ~until:400.0 w.engine;
  Alcotest.(check int) "blip below threshold ignored" 0 !detected

let test_responsiveness_db () =
  let db = Measurement.Responsiveness.create () in
  let ip1 = Ipv4.of_string_exn "10.0.1.1" and ip2 = Ipv4.of_string_exn "10.0.2.1" in
  Alcotest.(check bool) "unknown: optimistic" true (Measurement.Responsiveness.expect_response db ip1);
  Measurement.Responsiveness.configure_silent db ip1;
  Alcotest.(check bool) "silent: no expectation" false
    (Measurement.Responsiveness.expect_response db ip1);
  Measurement.Responsiveness.note db ip2 ~now:1.0 true;
  Measurement.Responsiveness.note db ip2 ~now:2.0 false;
  Alcotest.(check bool) "ever responded" true (Measurement.Responsiveness.ever_responded db ip2);
  Alcotest.(check bool) "history says expect" true
    (Measurement.Responsiveness.expect_response db ip2);
  Alcotest.(check int) "observations counted" 2 (Measurement.Responsiveness.observation_count db)

let test_configure_silent_fraction () =
  let g = fig2_graph () in
  let db = Measurement.Responsiveness.create () in
  let rng = Prng.create ~seed:3 in
  Measurement.Responsiveness.configure_silent_fraction db rng g ~fraction:1.0;
  (* With fraction 1, every router is silent. *)
  List.iter
    (fun a ->
      Array.iter
        (fun r ->
          Alcotest.(check bool) "all silent" true
            (Measurement.Responsiveness.is_silent db r.Topology.As_graph.address))
        (Topology.As_graph.routers g a))
    (Topology.As_graph.as_list g)

let suite =
  [
    Alcotest.test_case "atlas record/history" `Quick test_atlas_record_and_history;
    Alcotest.test_case "atlas refresh" `Quick test_atlas_refresh;
    Alcotest.test_case "monitor detects and recovers" `Quick test_monitor_detects_outage_and_recovery;
    Alcotest.test_case "monitor ignores blips" `Quick test_monitor_threshold_not_crossed_by_blips;
    Alcotest.test_case "responsiveness db" `Quick test_responsiveness_db;
    Alcotest.test_case "silent fraction" `Quick test_configure_silent_fraction;
  ]

(* Reverse traceroute: mechanism, cache amortization, support model. *)
let test_reverse_traceroute_mechanism () =
  let w = ready_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let rt =
    Measurement.Reverse_traceroute.create ~env:w.probe ~vantage_points:[ d; c ] ()
  in
  let to_ip = Prefix.nth_address production 1 in
  match Measurement.Reverse_traceroute.measure rt ~from_:e ~to_ip () with
  | None -> Alcotest.fail "measurement should be feasible"
  | Some m ->
      Alcotest.(check bool) "complete" true m.Measurement.Reverse_traceroute.complete;
      Alcotest.(check (list int)) "path matches ground truth" [ 60; 30; 20; 10 ]
        (List.map
           (fun h -> Asn.to_int h.Measurement.Reverse_traceroute.asn)
           m.Measurement.Reverse_traceroute.path);
      Alcotest.(check bool) "from-scratch cost is substantial" true
        (m.Measurement.Reverse_traceroute.probes_used >= 8);
      (* Amortized re-measurement with the cached path is much cheaper. *)
      let cached =
        List.map (fun h -> h.Measurement.Reverse_traceroute.asn)
          m.Measurement.Reverse_traceroute.path
      in
      (match Measurement.Reverse_traceroute.measure rt ~from_:e ~to_ip ~cached () with
      | Some m2 ->
          Alcotest.(check bool) "cached still complete" true
            m2.Measurement.Reverse_traceroute.complete;
          Alcotest.(check bool)
            (Printf.sprintf "cached cheaper (%d < %d)"
               m2.Measurement.Reverse_traceroute.probes_used
               m.Measurement.Reverse_traceroute.probes_used)
            true
            (m2.Measurement.Reverse_traceroute.probes_used
            < m.Measurement.Reverse_traceroute.probes_used)
      | None -> Alcotest.fail "cached remeasurement failed")

let test_reverse_traceroute_infeasible () =
  let w = ready_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  (* Cut E off from every vantage point's stimuli. *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(Dataplane.Forward.infrastructure_prefix e)
       (Dataplane.Failure.Node a));
  let rt = Measurement.Reverse_traceroute.create ~env:w.probe ~vantage_points:[ o; f ] () in
  Alcotest.(check bool) "infeasible without a working VP" true
    (Measurement.Reverse_traceroute.measure rt ~from_:e
       ~to_ip:(Prefix.nth_address production 1) ()
    = None)

let test_option_support_deterministic () =
  let w = ready_world () in
  let rt = Measurement.Reverse_traceroute.create ~env:w.probe ~vantage_points:[ d ] () in
  List.iter
    (fun x ->
      Alcotest.(check bool) "rr support stable" 
        (Measurement.Reverse_traceroute.supports_rr rt x)
        (Measurement.Reverse_traceroute.supports_rr rt x))
    [ o; b; a; c; d; e; f ];
  (* Full support / no support configs behave as configured. *)
  let all =
    Measurement.Reverse_traceroute.create
      ~config:{ Measurement.Reverse_traceroute.default_config with rr_support = 1.0 }
      ~env:w.probe ~vantage_points:[ d ] ()
  in
  Alcotest.(check bool) "full support" true (Measurement.Reverse_traceroute.supports_rr all a);
  let none =
    Measurement.Reverse_traceroute.create
      ~config:{ Measurement.Reverse_traceroute.default_config with rr_support = 0.0 }
      ~env:w.probe ~vantage_points:[ d ] ()
  in
  Alcotest.(check bool) "no support" false (Measurement.Reverse_traceroute.supports_rr none a)

let suite =
  suite
  @ [
      Alcotest.test_case "reverse traceroute mechanism" `Quick test_reverse_traceroute_mechanism;
      Alcotest.test_case "reverse traceroute infeasible" `Quick test_reverse_traceroute_infeasible;
      Alcotest.test_case "option support model" `Quick test_option_support_deterministic;
    ]
