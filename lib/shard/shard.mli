(** Sharded single-world simulation: deterministic time-barrier
    scheduling over domain-partitioned {!Sim.Engine} event queues. The
    graph partitioner lives in {!Topology.Partition}; the BGP embedding
    (per-shard speakers, stores and boundary sessions) in
    [Bgp.Network]'s sharded mode. *)

module Barrier = Barrier
