let choose state = Rand_core.draw state 3
