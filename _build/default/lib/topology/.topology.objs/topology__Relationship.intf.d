lib/topology/relationship.mli: Format
