(* The laundering wrapper: the direct Random use is LG-DET-RANDOM
   territory; planner entry points calling through it must still be
   caught by LG-PLAN-STALE. *)
let pick targets = List.nth targets (Random.int (List.length targets))
