open Net

type peer_report = {
  peer : Asn.t;
  updates : int;
  first_update : float;
  last_update : float;
  convergence_time : float;
  affected : bool;
  has_final_route : bool;
}

let analyze collector ~event_time ~prefix ~affected =
  let records =
    List.filter
      (fun (r : Network.update_record) -> Prefix.equal r.prefix prefix)
      (Network.Collector.since collector event_time)
  in
  let by_peer = Hashtbl.create 64 in
  List.iter
    (fun (r : Network.update_record) ->
      let key = Asn.to_int r.speaker in
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_peer key) in
      Hashtbl.replace by_peer key (r :: existing))
    records;
  Hashtbl.fold
    (fun key recs acc ->
      let peer = Asn.of_int key in
      let recs = List.rev recs (* oldest first *) in
      let times = List.map (fun (r : Network.update_record) -> r.time) recs in
      let first_update = List.fold_left Float.min (List.hd times) times in
      let last_update = List.fold_left Float.max (List.hd times) times in
      let final =
        match List.rev recs with
        | last :: _ -> last.route
        | [] -> None
      in
      {
        peer;
        updates = List.length recs;
        first_update;
        last_update;
        convergence_time = last_update -. first_update;
        affected = affected peer;
        has_final_route = Option.is_some final;
      }
      :: acc)
    by_peer []
  |> List.sort (fun a b -> Asn.compare a.peer b.peer)

let global_convergence_time reports =
  match reports with
  | [] -> None
  | _ ->
      let first =
        List.fold_left (fun acc r -> Float.min acc r.first_update) infinity reports
      in
      let last =
        List.fold_left (fun acc r -> Float.max acc r.last_update) neg_infinity reports
      in
      Some (last -. first)

let fraction_of f reports =
  match reports with
  | [] -> 0.0
  | _ ->
      let hits = List.length (List.filter f reports) in
      float_of_int hits /. float_of_int (List.length reports)

let fraction_instant = fraction_of (fun r -> r.convergence_time <= 0.0)
let fraction_single_update = fraction_of (fun r -> r.updates = 1)

let mean_updates reports =
  match reports with
  | [] -> 0.0
  | _ ->
      float_of_int (List.fold_left (fun acc r -> acc + r.updates) 0 reports)
      /. float_of_int (List.length reports)
