(* Shared trial execution for the experiment drivers.

   Every converted experiment decomposes into a fixed list of trial
   closures — a decomposition that is a pure function of the experiment's
   parameters, never of the worker count — where each closure rebuilds
   its entire world (topology, network, engine, PRNG) from the seed. The
   pool returns results in submission order, so results (and therefore
   every table) are bit-identical for any ~jobs.

   With tracing enabled each trial is bracketed by a "runner.trial"
   event carrying its wall-clock duration (from the injected Obs.Clock;
   0 without one) and the engine events it dispatched. The event delta
   reads the worker's own metrics shard: a trial runs start-to-finish on
   one domain, so the delta is exact and deterministic even though other
   trials run concurrently on other domains. *)

let default_jobs = Par.Pool.default_jobs

let m_trials = Obs.Metrics.counter "runner.trials"
let m_engine_events = Obs.Metrics.counter "sim.events"

let observed_trial index thunk () =
  Obs.Metrics.incr m_trials;
  if not (Obs.Trace.on ()) then thunk ()
  else begin
    let t0 = Obs.Clock.now () in
    let e0 = Obs.Metrics.local_value m_engine_events in
    let finish ok =
      let t1 = Obs.Clock.now () in
      Obs.Trace.event ~ts:t1 ~span:"runner.trial"
        [
          ("trial", Obs.Trace.Int index);
          ("dur", Obs.Trace.Float (t1 -. t0));
          ("events", Obs.Trace.Int (Obs.Metrics.local_value m_engine_events - e0));
          ("ok", Obs.Trace.Bool ok);
        ]
    in
    match thunk () with
    | r ->
        finish true;
        r
    | exception e ->
        finish false;
        raise e
  end

let run_trials ~jobs thunks =
  let thunks = List.mapi observed_trial thunks in
  Par.Pool.with_pool ~jobs (fun pool -> Par.Pool.run_trials pool thunks)
