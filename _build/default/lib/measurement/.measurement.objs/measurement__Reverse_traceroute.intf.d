lib/measurement/reverse_traceroute.mli: Asn Dataplane Ipv4 Net
