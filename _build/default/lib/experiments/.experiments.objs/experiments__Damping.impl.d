lib/experiments/damping.ml: Asn Bgp Dataplane Lifeguard List Net Scenarios Sim Stats Topology Workloads
