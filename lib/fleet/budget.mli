(** Probe-budget admission: token buckets on the simulation clock.

    LIFEGUARD's measurement load must stay bounded no matter how many
    outages are in flight (§4.4 argues the total is modest); the fleet
    service enforces that with a global token bucket, optionally capped
    per vantage point. Tokens are probe pairs; buckets refill lazily from
    the current simulation time, so admission is O(1) with no timers. *)

open Net

type t

val create : rate:float -> burst:float -> unit -> t
(** A bucket refilling at [rate] tokens/second, holding at most [burst],
    initially full. *)

val admit : t -> now:float -> cost:int -> bool
(** Take [cost] tokens if available; refusal consumes nothing. [now] must
    be the current simulation time (buckets refill lazily from it). *)

val granted : t -> int
(** Total cost admitted. *)

val denied : t -> int
(** Total cost refused. *)

(** A global bucket plus lazily created per-vantage-point caps. *)
type scheduler

val scheduler : ?per_vp_rate:float -> ?per_vp_burst:float -> global:t -> unit -> scheduler
(** Per-VP caps default to unlimited ([infinity]), collapsing to the
    global bucket alone. *)

val admit_vp : scheduler -> vp:Asn.t -> now:float -> cost:int -> bool
(** Admit only if both the VP's bucket and the global bucket agree; a
    refusal by either consumes nothing from the global bucket. *)

val capture : scheduler -> Recover.Snapshot.bucket list
(** Token levels and counters of every bucket: ["global"] first, then
    the per-VP caps sorted by ASN (named ["vp:<asn>"]). Pure read. *)

val restore : scheduler -> Recover.Snapshot.bucket list -> unit
(** Set bucket levels back to a {!capture}'s values; per-VP buckets are
    created on demand, unknown names are ignored. *)

val scheduler_granted : scheduler -> int
(** Total cost admitted through the global bucket. *)

val scheduler_denied : scheduler -> int
(** Total cost refused by either the global bucket or any per-VP cap;
    each refusal is counted exactly once. *)
