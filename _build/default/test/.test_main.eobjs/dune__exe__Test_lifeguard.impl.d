test/test_lifeguard.ml: Alcotest As_graph Asn Bgp Dataplane Helpers Lifeguard List Measurement Net Prefix Printf Relationship Sim Topology Workloads
