(** Reachability monitoring and outage detection.

    The EC2 study's methodology (§2.1), as a reusable component: a vantage
    point sends a pair of pings to each target every interval; four (by
    default) consecutive failed pairs declare an outage, so the minimum
    detectable outage is [4 x interval] (90 s at the paper's 30 s
    probing... the paper counts the threshold crossing ~90 s after onset
    with 30 s pairs, wired here the same way). Recovery is declared on the
    first successful pair, and callbacks drive LIFEGUARD's isolation
    pipeline. *)

open Net

type outage = {
  vp : Asn.t;
  target : Ipv4.t;
  started_at : float;  (** Time of the first failed pair. *)
  detected_at : float;  (** When the failure threshold was crossed. *)
  mutable ended_at : float option;  (** Recovery time, once seen. *)
}

val duration : outage -> now:float -> float
(** Elapsed outage time ([now] for still-open outages). *)

type t

val create :
  env:Dataplane.Probe.env ->
  engine:Sim.Engine.t ->
  ?interval:float ->
  ?fail_threshold:int ->
  ?on_outage:(outage -> unit) ->
  ?on_recovery:(outage -> unit) ->
  ?responsiveness:Responsiveness.t ->
  ?src_ip:Ipv4.t ->
  ?gate:(now:float -> cost:int -> bool) ->
  ?loss:(unit -> bool) ->
  vp:Asn.t ->
  targets:Ipv4.t list ->
  unit ->
  t
(** Start monitoring; probing begins one [interval] (default 30 s) after
    creation and runs until {!stop}. [fail_threshold] (default 4)
    consecutive failed pairs trigger [on_outage]. Probe results are noted
    in [responsiveness] when provided. [src_ip] overrides the address
    replies are sent to (a LIFEGUARD origin monitors from inside its
    production prefix).

    [gate] is consulted once per target per round with [cost:1] (one ping
    pair); when it refuses, the round is skipped for that target — no
    probe, no failure-count change (see {!skipped_count}). [loss] is a
    chaos hook sampled once per sent pair; returning [true] makes the
    pair count as failed even if the network delivered it. *)

val stop : t -> unit
(** Cease probing at the next tick. *)

val outages : t -> outage list
(** All outages detected so far, oldest first (including open ones). *)

val open_outages : t -> outage list
val probe_count : t -> int
(** Ping pairs sent so far. *)

val skipped_count : t -> int
(** Target rounds skipped because the budget [gate] refused them. *)
