lib/measurement/hubble.ml: Asn Dataplane Ipv4 List Net Sim
