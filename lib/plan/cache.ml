open Net
open Lifeguard

let m_hits = Obs.Metrics.counter "plan.hits"
let m_misses = Obs.Metrics.counter "plan.misses"
let m_invalidations = Obs.Metrics.counter "plan.invalidations"
let m_demotions = Obs.Metrics.counter "plan.demotions"

type t = {
  config : Decide.config;
  origin : Asn.t;
  paths : Bgp.Path_store.t;
  fingerprint : (unit -> int) option;
  mutable last_fingerprint : int;
  mutable plans : Plan_store.t;
  mutable demoted : Asn.Set.t;
  mutable demotion_log : (Asn.t * string) list;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable demotions : int;
}

let create ?fingerprint ?(seed = Plan_store.empty) ~config ~origin ~paths () =
  {
    config;
    origin;
    paths;
    fingerprint;
    last_fingerprint = (match fingerprint with None -> 0 | Some f -> f ());
    plans = seed;
    demoted = Asn.Set.empty;
    demotion_log = [];
    hits = 0;
    misses = 0;
    invalidations = 0;
    demotions = 0;
  }

let flush t =
  t.plans <- Plan_store.empty;
  t.invalidations <- t.invalidations + 1;
  Obs.Metrics.incr m_invalidations

let invalidate t ~reason:_ = flush t

let check_fingerprint t =
  match t.fingerprint with
  | None -> ()
  | Some f ->
      let now = f () in
      if now <> t.last_fingerprint then begin
        t.last_fingerprint <- now;
        flush t
      end

let demote t ~poison ~reason =
  if not (Asn.Set.mem poison t.demoted) then begin
    t.demoted <- Asn.Set.add poison t.demoted;
    t.demotion_log <- (poison, reason) :: t.demotion_log;
    t.demotions <- t.demotions + 1;
    Obs.Metrics.incr m_demotions
  end;
  t.plans <-
    Plan_store.filter
      (fun ~target:_ ~cls remedy ->
        not (Plan_store.poisons remedy && Asn.equal cls.Failure_class.blamed poison))
      t.plans

let note_outcome t ~poison outcome =
  match outcome with
  | `Confirmed -> ()
  | `Diverged reason -> demote t ~poison ~reason

let trace_lookup t ~now ~target ?cls ~result () =
  if Obs.Trace.on () then
    Obs.Trace.event ~ts:now ~span:"plan.lookup"
      ([
         ("target", Obs.Trace.Str (Asn.to_string target));
         ("result", Obs.Trace.Str result);
         ("size", Obs.Trace.Int (Plan_store.cardinal t.plans));
       ]
      @
      match cls with
      | None -> []
      | Some cls -> [ ("class", Obs.Trace.Str (Failure_class.to_string cls)) ])

let miss t ~now ~target ?cls ~result () =
  t.misses <- t.misses + 1;
  Obs.Metrics.incr m_misses;
  trace_lookup t ~now ~target ?cls ~result ();
  None

let lookup t graph ~now ~target ~diagnosis ~outage_age ~breaker_open =
  check_fingerprint t;
  match Failure_class.of_diagnosis diagnosis with
  | None -> miss t ~now ~target ~result:"unplannable" ()
  | Some cls ->
      if Asn.Set.mem cls.Failure_class.blamed t.demoted then
        miss t ~now ~target ?cls:(Some cls) ~result:"demoted" ()
      else begin
        match Plan_store.find t.plans ~target ~cls with
        | None ->
            (* Demand-plan the class the offline sweep missed: this
               round still computes fresh (and counts as a miss), but
               the remedy is in the map now, so the next round — often
               the very next age-gate recheck — is served from plan. *)
            t.plans <-
              Plan_store.add t.plans ~target ~cls
                (Planner.remedy_for_class graph ~store:t.paths ~origin:t.origin
                   ~target ~cls);
            miss t ~now ~target ?cls:(Some cls) ~result:"miss" ()
        | Some remedy ->
            if
              Plan_store.poisons remedy
              && breaker_open cls.Failure_class.blamed
            then begin
              (* A plan against a breaker-open AS must not be served:
                 drop every plan poisoning it and fall through to the
                 fresh decision, which refuses at the breaker the same
                 way. *)
              t.plans <-
                Plan_store.filter
                  (fun ~target:_ ~cls:c r ->
                    not
                      (Plan_store.poisons r
                      && Asn.equal c.Failure_class.blamed cls.Failure_class.blamed))
                  t.plans;
              t.invalidations <- t.invalidations + 1;
              Obs.Metrics.incr m_invalidations;
              miss t ~now ~target ?cls:(Some cls) ~result:"breaker" ()
            end
            else begin
              let bit = Plan_store.feasible remedy in
              let verdict =
                Decide.decide
                  ~feasible:(fun ~src:_ ~avoid:_ -> bit)
                  t.config graph ~origin:t.origin ~diagnosis ~outage_age
              in
              t.hits <- t.hits + 1;
              Obs.Metrics.incr m_hits;
              trace_lookup t ~now ~target ?cls:(Some cls) ~result:"hit" ();
              Some verdict
            end
      end

let record t ~target ~diagnosis ~verdict =
  match Failure_class.of_diagnosis diagnosis with
  | None -> ()
  | Some cls ->
      if not (Asn.Set.mem cls.Failure_class.blamed t.demoted) then begin
        let remedy =
          match verdict with
          | Decide.Poison a ->
              Some
                (Plan_store.Poison
                   {
                     path =
                       Bgp.Path_store.intern_path t.paths
                         (Bgp.As_path.poisoned ~origin:t.origin ~poison:a);
                   })
          | Decide.Hopeless reason -> Some (Plan_store.Hopeless reason)
          | Decide.Wait _ -> None
        in
        match remedy with
        | None -> ()
        | Some remedy -> t.plans <- Plan_store.add t.plans ~target ~cls remedy
      end

(* Deterministic one-line rendering of the cache's mutable state for the
   snapshot schema: fingerprint, counters, demotion set and log. Opaque
   to recovery (a resumed run rebuilds the cache by re-execution); its
   job is to make cache drift visible in snapshot comparisons. *)
let capture t =
  let demoted =
    Asn.Set.elements t.demoted |> List.map Asn.to_string |> String.concat ","
  in
  let dlog =
    List.rev t.demotion_log
    |> List.map (fun (a, reason) ->
           Asn.to_string a ^ ":" ^ String.map (fun c -> if c = ' ' then '_' else c) reason)
    |> String.concat ","
  in
  Printf.sprintf "fp=%d size=%d hits=%d misses=%d invalidations=%d demotions=%d demoted=%s log=%s"
    t.last_fingerprint (Plan_store.cardinal t.plans) t.hits t.misses t.invalidations
    t.demotions demoted dlog

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let demotions t = t.demotions
let size t = Plan_store.cardinal t.plans
let demotion_log t = List.rev t.demotion_log
let plans t = t.plans
