(** Figure 5: residual outage duration after X minutes have elapsed.

    The paper's point: once an outage has survived a few minutes, it will
    most likely survive several more — so spending ~5 minutes detecting
    and isolating before poisoning still leaves most of the unavailability
    on the table to be repaired. Key anchors: of outages lasting at least
    5 minutes, 51% lasted at least 5 more; of those lasting 10, 68%
    lasted at least 5 more. *)

type point = {
  elapsed_min : float;
  survivors : int;
  mean_residual_min : float;
  median_residual_min : float;
  p25_residual_min : float;
}

type result = {
  points : point list;
  survival_5_plus_5 : float;  (** P(>= 10 min | >= 5 min); paper: 0.51. *)
  survival_10_plus_5 : float;  (** P(>= 15 min | >= 10 min); paper: 0.68. *)
  repairable_share : float;
      (** Unavailability in outages still alive 7 minutes in (5 min to
          locate + 2 min convergence) — the "up to 80%" LIFEGUARD could
          address. *)
}

let paper_survival_5_plus_5 = 0.51
let paper_survival_10_plus_5 = 0.68
let paper_repairable_share = 0.80

let elapsed_grid = [ 0.; 1.; 2.; 3.; 5.; 7.; 10.; 15.; 20.; 25.; 30. ]

let run ?(n = 10308) ~seed () =
  let durations = Workloads.Outage_gen.durations ~seed ~n () in
  let points =
    List.filter_map
      (fun minutes ->
        match Lifeguard.Decide.Residual.at ~durations ~elapsed:(minutes *. 60.0) with
        | None -> None
        | Some s ->
            Some
              {
                elapsed_min = minutes;
                survivors = s.Lifeguard.Decide.Residual.count;
                mean_residual_min = s.Lifeguard.Decide.Residual.mean /. 60.0;
                median_residual_min = s.Lifeguard.Decide.Residual.median /. 60.0;
                p25_residual_min = s.Lifeguard.Decide.Residual.p25 /. 60.0;
              })
      elapsed_grid
  in
  let survival el =
    Lifeguard.Decide.Residual.survival_fraction ~durations ~elapsed:(el *. 60.0)
      ~horizon:300.0
  in
  (* Unavailability that remains after detection + isolation + convergence
     (~7 minutes), over total unavailability: what poisoning can win. *)
  let repairable =
    let threshold = 7.0 *. 60.0 in
    let total = Workloads.Outage_gen.total_unavailability durations in
    let saved =
      Array.fold_left
        (fun acc d -> if d >= threshold then acc +. (d -. threshold) else acc)
        0.0 durations
    in
    if total <= 0.0 then 0.0 else saved /. total
  in
  {
    points;
    survival_5_plus_5 = survival 5.0;
    survival_10_plus_5 = survival 10.0;
    repairable_share = repairable;
  }

let to_tables r =
  let summary =
    Stats.Table.create ~title:"Fig. 5 anchors (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows summary
    [
      [
        "P(lasts 5 more min | lasted 5)";
        Stats.Table.cell_pct paper_survival_5_plus_5;
        Stats.Table.cell_pct r.survival_5_plus_5;
      ];
      [
        "P(lasts 5 more min | lasted 10)";
        Stats.Table.cell_pct paper_survival_10_plus_5;
        Stats.Table.cell_pct r.survival_10_plus_5;
      ];
      [
        "unavailability addressable after ~7 min";
        "up to " ^ Stats.Table.cell_pct paper_repairable_share;
        Stats.Table.cell_pct r.repairable_share;
      ];
    ];
  let curve =
    Stats.Table.create ~title:"Fig. 5 series: residual duration vs elapsed"
      ~columns:[ "elapsed (min)"; "survivors"; "mean (min)"; "median (min)"; "25th pct (min)" ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row curve
        [
          Stats.Table.cell_float ~decimals:0 p.elapsed_min;
          Stats.Table.cell_int p.survivors;
          Stats.Table.cell_float ~decimals:1 p.mean_residual_min;
          Stats.Table.cell_float ~decimals:1 p.median_residual_min;
          Stats.Table.cell_float ~decimals:1 p.p25_residual_min;
        ])
    r.points;
  [ summary; curve ]
