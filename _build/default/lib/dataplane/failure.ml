open Net

type scope = Node of Asn.t | Link of Asn.t * Asn.t | Link_dir of Asn.t * Asn.t
type mode = Data_only | Control_and_data
type spec = { scope : scope; mode : mode; toward : Prefix.t option }

let spec ?(mode = Data_only) ?toward scope = { scope; mode; toward }

let pp_scope fmt = function
  | Node a -> Format.fprintf fmt "node %a" Asn.pp a
  | Link (a, b) -> Format.fprintf fmt "link %a-%a" Asn.pp a Asn.pp b
  | Link_dir (a, b) -> Format.fprintf fmt "link %a->%a" Asn.pp a Asn.pp b

let pp_spec fmt t =
  Format.fprintf fmt "%a (%s)%a" pp_scope t.scope
    (match t.mode with Data_only -> "silent" | Control_and_data -> "hard")
    (fun fmt -> function
      | None -> ()
      | Some p -> Format.fprintf fmt " toward %a" Prefix.pp p)
    t.toward

let scope_equal a b =
  match (a, b) with
  | Node x, Node y -> Asn.equal x y
  | Link (x1, x2), Link (y1, y2) ->
      (Asn.equal x1 y1 && Asn.equal x2 y2) || (Asn.equal x1 y2 && Asn.equal x2 y1)
  | Link_dir (x1, x2), Link_dir (y1, y2) -> Asn.equal x1 y1 && Asn.equal x2 y2
  | (Node _ | Link _ | Link_dir _), _ -> false

let spec_equal a b =
  scope_equal a.scope b.scope && a.mode = b.mode && Option.equal Prefix.equal a.toward b.toward

type set = { mutable specs : spec list }

let create () = { specs = [] }
let is_empty t = t.specs = []
let active t = t.specs
let add t spec = t.specs <- spec :: t.specs
let remove t spec = t.specs <- List.filter (fun s -> not (spec_equal s spec)) t.specs
let clear t = t.specs <- []

let toward_matches spec dst =
  match spec.toward with
  | None -> true
  | Some p -> Prefix.mem dst p

let blocks_hop t ~from_ ~to_ ~dst =
  List.find_opt
    (fun spec ->
      toward_matches spec dst
      &&
      match spec.scope with
      | Node a -> Asn.equal a to_
      | Link (a, b) ->
          (Asn.equal a from_ && Asn.equal b to_) || (Asn.equal a to_ && Asn.equal b from_)
      | Link_dir (a, b) -> Asn.equal a from_ && Asn.equal b to_)
    t.specs

let blocks_source t asn ~dst =
  List.find_opt
    (fun spec ->
      toward_matches spec dst
      &&
      match spec.scope with
      | Node a -> Asn.equal a asn
      | Link _ | Link_dir _ -> false)
    t.specs

let control_action f net spec =
  match spec.scope with
  | Node a -> f net (`Node a)
  | Link (a, b) | Link_dir (a, b) -> f net (`Link (a, b))

let inject net set spec =
  add set spec;
  match spec.mode with
  | Data_only -> ()
  | Control_and_data ->
      control_action
        (fun net -> function
          | `Node a -> Bgp.Network.fail_node net a
          | `Link (a, b) -> Bgp.Network.fail_link net ~a ~b)
        net spec

let heal net set spec =
  remove set spec;
  match spec.mode with
  | Data_only -> ()
  | Control_and_data ->
      control_action
        (fun net -> function
          | `Node a -> Bgp.Network.restore_node net a
          | `Link (a, b) -> Bgp.Network.restore_link net ~a ~b)
        net spec
