(** Route-flap damping vs. LIFEGUARD's announcement schedule.

    The paper kept every experimental announcement in place for 90
    minutes "to allow convergence and to avoid flap dampening effects"
    (§5). This experiment shows why on a damping-enabled Internet:
    cycling poison/unpoison announcements minutes apart accumulates
    RFC 2439 penalties until routers suppress the production prefix
    outright — self-inflicted unreachability — while the same cycles
    spaced 90 minutes apart never trip suppression. *)

open Net
open Workloads

type result = {
  ases : int;
  rapid_suppressors : int;
      (** ASes holding a damped (suppressed) candidate after three
          poison/unpoison cycles spaced 60 s apart. *)
  rapid_cutoff : int;  (** ASes left with no production route at all. *)
  spaced_suppressors : int;  (** Same after 90-minute spacing; expected 0. *)
  spaced_cutoff : int;
}

let production = Scenarios.production_prefix

let cycles mux ~spacing =
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  let origin = mux.Scenarios.origin in
  let plan = mux.Scenarios.plan in
  Lifeguard.Remediate.announce_baseline net plan;
  Bgp.Network.run_until_quiet net;
  Scenarios.settle bed ~seconds:spacing;
  let target = List.hd (Scenarios.harvest_on_path_ases mux) in
  for _ = 1 to 3 do
    Lifeguard.Remediate.poison net plan ~target;
    Bgp.Network.run_until_quiet net;
    Scenarios.settle bed ~seconds:spacing;
    Lifeguard.Remediate.unpoison net plan;
    Bgp.Network.run_until_quiet net;
    Scenarios.settle bed ~seconds:spacing
  done;
  let graph = bed.Scenarios.graph in
  let all = Topology.As_graph.as_list graph in
  let suppressors =
    List.filter
      (fun asn ->
        Bgp.Speaker.suppressed_candidates (Bgp.Network.speaker net asn) production <> [])
      all
  in
  let cutoff =
    List.filter
      (fun asn ->
        (not (Asn.equal asn origin))
        && Option.is_none (Bgp.Network.best_route net asn production))
      all
  in
  (List.length suppressors, List.length cutoff, List.length all)

let run ?(ases = 150) ?(jobs = 1) ~seed () =
  let damped_config _ =
    {
      Bgp.Policy.default with
      Bgp.Policy.damping = Some Bgp.Policy.default_damping;
      Bgp.Policy.pref_jitter = 8;
    }
  in
  (* Everything measured here is control-plane state of the production
     prefix, so neither the scaffold mux nor the damped rebuild needs
     infrastructure prefixes. *)
  let build () =
    let mux =
      Scenarios.bgpmux ~ases ~infrastructure:Scenarios.No_infrastructure ~seed ()
    in
    (* Rebuild the network with damping enabled everywhere. *)
    let graph = mux.Scenarios.bed.Scenarios.graph in
    let engine = Sim.Engine.create () in
    let net = Bgp.Network.create ~engine ~graph ~config_of:damped_config ~mrai:30.0 () in
    let failures = Dataplane.Failure.create () in
    let probe = Dataplane.Probe.env net failures in
    let bed =
      {
        mux.Scenarios.bed with
        Scenarios.engine;
        Scenarios.net = net;
        Scenarios.failures = failures;
        Scenarios.probe = probe;
      }
    in
    { mux with Scenarios.bed = bed }
  in
  (* The rapid and spaced schedules run in independent worlds. *)
  let outcomes =
    Runner.run_trials ~jobs
      [
        (fun () -> cycles (build ()) ~spacing:60.0);
        (fun () -> cycles (build ()) ~spacing:5400.0);
      ]
  in
  let (rapid_suppressors, rapid_cutoff, n), (spaced_suppressors, spaced_cutoff, _) =
    match outcomes with
    | [ rapid; spaced ] -> (rapid, spaced)
    | _ -> assert false
  in
  {
    ases = n;
    rapid_suppressors;
    rapid_cutoff;
    spaced_suppressors;
    spaced_cutoff;
  }

let to_tables r =
  let t =
    Stats.Table.create
      ~title:"Route-flap damping: rapid vs 90-minute-spaced announcements"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "ASes (all damping-enabled)"; "-"; Stats.Table.cell_int r.ases ];
      [
        "ASes suppressing the prefix after 3 rapid cycles";
        "flap dampening is why announcements were spaced";
        Stats.Table.cell_int r.rapid_suppressors;
      ];
      [
        "ASes cut off entirely (rapid)";
        "-";
        Stats.Table.cell_int r.rapid_cutoff;
      ];
      [
        "ASes suppressing after 90-min spacing";
        "0 (by design of the schedule)";
        Stats.Table.cell_int r.spaced_suppressors;
      ];
      [ "ASes cut off (spaced)"; "0"; Stats.Table.cell_int r.spaced_cutoff ];
    ];
  [ t ]
