lib/core/decide.mli: As_graph Asn Format Isolation Net Topology
