(** Measurement infrastructure: the historical path atlas, reachability
    monitors with outage detection, and the router-responsiveness
    database isolation consults to tell silence from unreachability.

    This interface pins the library surface to exactly these modules;
    helper code stays internal. *)

module Atlas = Atlas
module Monitor = Monitor
module Responsiveness = Responsiveness
module Reverse_traceroute = Reverse_traceroute
module Hubble = Hubble
