let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty sample";
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Descriptive.variance: need >= 2 samples";
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min_max: empty sample";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median xs = percentile xs 50.0

let fraction pred xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let hits = Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs in
    float_of_int hits /. float_of_int n
  end

let fraction_list pred xs =
  let n = List.length xs in
  if n = 0 then 0.0
  else begin
    let hits = List.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs in
    float_of_int hits /. float_of_int n
  end
