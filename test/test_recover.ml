(* Crash tolerance (lib/recover): the journal line codec, crash-point
   boundaries, replay divergence, reconciliation, snapshot round-trips,
   durable-mode inertness, the crash matrix (every boundary class, with
   and without sharding, byte-identical resume), segment merge, and warm
   orchestrator capture/restore. *)

open Net
open Helpers

let an = Asn.of_int
let weird = "spaces % percent|pipe\nnewline\ttab"

(* ---------- record line codec ---------- *)

let sample_records =
  let open Recover.Record in
  [
    { seq = 0; at = 0.0; action = Poison_announce { target = an 7; poison = an 9; planned = true } };
    { seq = 1; at = -0.0; action = Poison_reannounce { poison = an 9; announcement = 3 } };
    { seq = 2; at = 1.5e-300; action = Unpoison { poison = an 9; repaired = false; reason = weird } };
    { seq = 3; at = 86400.5; action = Breaker_trip { poison = an 1; reason = "" } };
    { seq = 4; at = 4.2; action = Plan_demotion { poison = an 2; reason = "diverged: rolled back" } };
    { seq = 5; at = 10308.0; action = Outcome { target = an 3; kind = Gave_up; reason = weird } };
    { seq = 6; at = 1.0; action = Outcome { target = an 3; kind = Stood_down; reason = "ok" } };
    { seq = 7; at = 2.0; action = Outcome { target = an 3; kind = Repaired; reason = "ok" } };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      let line = Recover.Record.to_line r in
      match Recover.Record.of_line line with
      | Ok r' ->
          Alcotest.(check string) "line round-trips" line (Recover.Record.to_line r')
      | Error e -> Alcotest.failf "of_line %S: %s" line e)
    sample_records;
  (match Recover.Record.of_line "not|a|record" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ());
  List.iter
    (fun s ->
      match Recover.Record.unescape (Recover.Record.escape s) with
      | Some s' -> Alcotest.(check string) "escape round-trips" s s'
      | None -> Alcotest.failf "unescape failed for %S" s)
    [ ""; weird; "%"; "%2"; "plain"; "a|b%7Cc" ]

(* ---------- journal: torn tail vs interior corruption ---------- *)

let outcome_action i =
  Recover.Record.Outcome
    { target = an i; kind = Recover.Record.Stood_down; reason = "r " ^ string_of_int i }

let journal_of_n n =
  let j = Recover.Journal.create () in
  let effects = ref 0 in
  for i = 1 to n do
    Recover.Journal.logged j ~at:(float_of_int i) (outcome_action i) ~effect:(fun () ->
        incr effects)
  done;
  Alcotest.(check int) "every effect ran" n !effects;
  j

let test_journal_corruption () =
  let j = journal_of_n 5 in
  let lines = Recover.Journal.lines j in
  Alcotest.(check int) "five lines" 5 (List.length lines);
  (* A torn final line is a half-written append: dropped, prefix kept. *)
  let torn =
    match List.rev lines with
    | last :: rest -> List.rev (String.sub last 0 (String.length last / 2) :: rest)
    | [] -> []
  in
  (match Recover.Journal.parse_lines torn with
  | Ok rs -> Alcotest.(check int) "torn tail dropped" 4 (List.length rs)
  | Error e -> Alcotest.failf "torn tail must parse: %s" e);
  (* The same damage in the interior is corruption, not a torn write. *)
  let corrupt = List.mapi (fun i l -> if i = 1 then "garb|age" else l) lines in
  (match Recover.Journal.parse_lines corrupt with
  | Ok _ -> Alcotest.fail "interior corruption must not parse"
  | Error _ -> ());
  (match Recover.Journal.parse_lines lines with
  | Ok rs -> Alcotest.(check int) "clean journal parses" 5 (List.length rs)
  | Error e -> Alcotest.failf "clean journal must parse: %s" e)

(* ---------- replay: verification and divergence ---------- *)

let test_journal_replay () =
  let lines = Recover.Journal.lines (journal_of_n 3) in
  (* Faithful re-execution: every line verifies, every effect re-runs. *)
  let j = Recover.Journal.replaying ~expected:lines () in
  let effects = ref 0 in
  for i = 1 to 3 do
    Recover.Journal.logged j ~at:(float_of_int i) (outcome_action i) ~effect:(fun () ->
        incr effects)
  done;
  Alcotest.(check int) "replay re-applies effects" 3 !effects;
  Alcotest.(check int) "replayed" 3 (Recover.Journal.replayed j);
  Alcotest.(check int) "no fresh appends" 0 (Recover.Journal.appended j);
  Alcotest.(check bool) "prefix exhausted" false (Recover.Journal.replaying_now j);
  Alcotest.(check (list string)) "journal rewritten identically" lines
    (Recover.Journal.lines j);
  (* A resumed run that derives a different action is not a resume. *)
  let j = Recover.Journal.replaying ~expected:lines () in
  match
    Recover.Journal.logged j ~at:1.0 (outcome_action 99) ~effect:(fun () ->
        Alcotest.fail "diverging effect must not run")
  with
  | () -> Alcotest.fail "expected Divergence"
  | exception Recover.Journal.Divergence { seq; _ } ->
      Alcotest.(check int) "diverged at the first append" 0 seq

(* ---------- crash boundaries at the append site ---------- *)

let test_crash_boundaries_unit () =
  let attempt boundary =
    let j = Recover.Journal.create ~crash:{ Recover.Crash.boundary; append = 1 } () in
    let ran = ref false in
    (match
       Recover.Journal.logged j ~at:0.5 (outcome_action 1) ~effect:(fun () -> ran := true)
     with
    | () -> Alcotest.fail "armed crash must fire"
    | exception Recover.Crash.Crashed { boundary = b; append } ->
        Alcotest.(check bool) "boundary" true (Recover.Crash.boundary_equal b boundary);
        Alcotest.(check int) "append" 1 append);
    (List.length (Recover.Journal.lines j), !ran)
  in
  (* Before_write: nothing persisted, nothing applied.  After_write: the
     record is durable but the effect was lost — the case replay must
     re-derive.  After_effect: both happened; only memory is lost. *)
  Alcotest.(check (pair int bool)) "before-write" (0, false)
    (attempt Recover.Crash.Before_write);
  Alcotest.(check (pair int bool)) "after-write" (1, false)
    (attempt Recover.Crash.After_write);
  Alcotest.(check (pair int bool)) "after-effect" (1, true)
    (attempt Recover.Crash.After_effect);
  List.iter
    (fun b ->
      match Recover.Crash.boundary_of_string (Recover.Crash.boundary_to_string b) with
      | Some b' ->
          Alcotest.(check bool) "boundary name round-trips" true
            (Recover.Crash.boundary_equal b b')
      | None -> Alcotest.fail "boundary name must parse")
    Recover.Crash.boundaries

(* ---------- reconciliation rules on hand-built journals ---------- *)

let test_reconcile_rules () =
  let p = an 9 in
  let r seq at action = { Recover.Record.seq; at; action } in
  let announce =
    Recover.Record.Poison_announce { target = an 5; poison = p; planned = false }
  in
  let unpoison = Recover.Record.Unpoison { poison = p; repaired = true; reason = "" } in
  (* A closed episode against clean views. *)
  let v = Recover.Reconcile.check ~horizon:100.0 ~poisoned_views:[ (an 2, None) ]
      [ r 0 1.0 announce; r 1 50.0 unpoison ]
  in
  Alcotest.(check bool) "clean" true v.Recover.Reconcile.clean;
  Alcotest.(check int) "poisons" 1 v.Recover.Reconcile.poisons;
  Alcotest.(check int) "unpoisons" 1 v.Recover.Reconcile.unpoisons;
  (* Two announces with no withdrawal between them: the double-poison
     bug class write-ahead logging exists to exclude. *)
  let v = Recover.Reconcile.check ~horizon:100.0 ~poisoned_views:[]
      [ r 0 1.0 announce; r 1 2.0 announce ]
  in
  Alcotest.(check int) "double poison counted" 1 v.Recover.Reconcile.double_poisons;
  Alcotest.(check bool) "not clean" false v.Recover.Reconcile.clean;
  (* A view still carrying the poison long after the journal withdrew
     it is an orphan; inside the grace window it is merely settling. *)
  let views = [ (an 2, Some p) ] in
  let episode = [ r 0 1.0 announce; r 1 50.0 unpoison ] in
  let v = Recover.Reconcile.check ~grace:10.0 ~horizon:100.0 ~poisoned_views:views episode in
  Alcotest.(check int) "orphaned outside grace" 1 v.Recover.Reconcile.orphaned;
  let v = Recover.Reconcile.check ~grace:60.0 ~horizon:100.0 ~poisoned_views:views episode in
  Alcotest.(check int) "settling inside grace" 1 v.Recover.Reconcile.settling;
  Alcotest.(check bool) "settling is clean" true v.Recover.Reconcile.clean;
  (* A view carrying the journal's own open poison is expected state. *)
  let v = Recover.Reconcile.check ~horizon:100.0 ~poisoned_views:views [ r 0 1.0 announce ] in
  Alcotest.(check int) "open episode is not an orphan" 0 v.Recover.Reconcile.orphaned;
  Alcotest.(check bool) "active at horizon" true
    (match v.Recover.Reconcile.active_at_horizon with
    | Some a -> Asn.equal a p
    | None -> false)

(* ---------- durable fleet runs ---------- *)

let fleet_config shards =
  {
    Fleet.Service.default_config with
    Fleet.Service.duration = 10800.0;
    target_count = 12;
    outages_per_day = 96.0;
    shards;
  }

let render = Fleet.Service.render_report

let finished label = function
  | Fleet.Service.Finished { report; recovery } -> (report, recovery)
  | Fleet.Service.Interrupted { boundary; append; _ } ->
      Alcotest.failf "%s: unexpected crash at %s append %d" label
        (Recover.Crash.boundary_to_string boundary)
        append

let poison_count lines =
  List.length
    (List.filter
       (fun l ->
         match String.split_on_char '|' l with
         | _ :: _ :: "poison" :: _ -> true
         | _ -> false)
       lines)

let test_snapshot_roundtrip () =
  let config = fleet_config None in
  let snaps = ref [] in
  let _, rc =
    finished "fresh"
      (Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0
         ~snapshot_sink:(fun s -> snaps := s :: !snaps)
         ())
  in
  Alcotest.(check bool) "marks captured" true (rc.Fleet.Service.rc_marks >= 2);
  Alcotest.(check int) "sink saw every mark" rc.Fleet.Service.rc_marks (List.length !snaps);
  List.iter
    (fun s ->
      match Recover.Snapshot.parse_result (Recover.Snapshot.render s) with
      | Ok s' ->
          Alcotest.(check bool) "render/parse round-trip" true (Recover.Snapshot.equal s s')
      | Error e -> Alcotest.failf "snapshot must re-parse: %s" e)
    !snaps;
  let s = List.hd !snaps in
  let txt = Recover.Snapshot.render s in
  (match Recover.Snapshot.parse_result (String.sub txt 0 (String.length txt / 2)) with
  | Ok _ -> Alcotest.fail "truncated snapshot must not parse"
  | Error _ -> ());
  (* A snapshot from another (config, seed) world is refused loudly. *)
  match Fleet.Service.run_durable ~config ~seed:43 ~snapshot:s () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign snapshot must be refused"

let test_durable_inert () =
  List.iter
    (fun shards ->
      let config = fleet_config shards in
      let plain = render (Fleet.Service.run ~config ~seed:42 ()) in
      let bare, _ = finished "bare" (Fleet.Service.run_durable ~config ~seed:42 ()) in
      let marked, _ =
        finished "marked"
          (Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0 ())
      in
      Alcotest.(check (list string)) "durable-off == durable-on" plain (render bare);
      Alcotest.(check (list string)) "snapshot marks are inert" plain (render marked))
    [ None; Some 2 ]

let test_crash_matrix () =
  List.iter
    (fun shards ->
      let config = fleet_config shards in
      let reference, ref_rc =
        finished "reference"
          (Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0 ())
      in
      let ref_render = render reference in
      let ref_lines = ref_rc.Fleet.Service.rc_journal in
      let total = List.length ref_lines in
      Alcotest.(check bool) "journal has records" true (total >= 2);
      Alcotest.(check bool) "reference saw a poison" true (poison_count ref_lines >= 1);
      let appends = match shards with None -> [ 1; total / 2 ] | Some _ -> [ total / 2 ] in
      List.iter
        (fun boundary ->
          List.iter
            (fun append ->
              let label =
                Printf.sprintf "shards=%s %s@%d"
                  (match shards with None -> "-" | Some k -> string_of_int k)
                  (Recover.Crash.boundary_to_string boundary)
                  append
              in
              match
                Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0
                  ~crash:{ Recover.Crash.boundary; append } ()
              with
              | Fleet.Service.Finished _ -> Alcotest.failf "%s: crash did not fire" label
              | Fleet.Service.Interrupted { boundary = b; append = a; journal; snapshot } ->
                  Alcotest.(check bool) (label ^ ": boundary") true
                    (Recover.Crash.boundary_equal b boundary);
                  Alcotest.(check int) (label ^ ": append") append a;
                  let persisted =
                    match boundary with
                    | Recover.Crash.Before_write -> append - 1
                    | Recover.Crash.After_write | Recover.Crash.After_effect -> append
                  in
                  Alcotest.(check int) (label ^ ": persisted lines") persisted
                    (List.length journal);
                  let resumed, rc =
                    finished (label ^ ": resume")
                      (Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0
                         ~journal ?snapshot ())
                  in
                  (* The headline invariant: a crashed-and-resumed run is
                     byte-identical to the uninterrupted one. *)
                  Alcotest.(check (list string)) (label ^ ": report byte-identical")
                    ref_render (render resumed);
                  Alcotest.(check (list string)) (label ^ ": journal identical") ref_lines
                    rc.Fleet.Service.rc_journal;
                  Alcotest.(check int) (label ^ ": replayed the persisted prefix")
                    persisted rc.Fleet.Service.rc_replayed;
                  Alcotest.(check int) (label ^ ": exactly-once poisons")
                    (poison_count ref_lines)
                    (poison_count rc.Fleet.Service.rc_journal);
                  Alcotest.(check int) (label ^ ": no double poison") 0
                    rc.Fleet.Service.rc_reconcile.Recover.Reconcile.double_poisons;
                  Alcotest.(check int) (label ^ ": no orphaned poison") 0
                    rc.Fleet.Service.rc_reconcile.Recover.Reconcile.orphaned;
                  Alcotest.(check bool) (label ^ ": reconcile clean") true
                    rc.Fleet.Service.rc_reconcile.Recover.Reconcile.clean)
            appends)
        Recover.Crash.boundaries)
    [ None; Some 2; Some 4 ]

let test_segment_merge () =
  let config = fleet_config None in
  let snaps = ref [] in
  let full, full_rc =
    finished "full"
      (Fleet.Service.run_durable ~config ~seed:42 ~snapshot_every:2700.0
         ~snapshot_sink:(fun s -> snaps := s :: !snaps)
         ())
  in
  let snap =
    match List.find_opt (fun s -> s.Recover.Snapshot.mark = 2) !snaps with
    | Some s -> s
    | None -> Alcotest.fail "expected a mark-2 snapshot"
  in
  let resumed, rc =
    finished "resume"
      (Fleet.Service.run_durable ~config ~seed:42
         ~journal:full_rc.Fleet.Service.rc_journal ~snapshot:snap ())
  in
  Alcotest.(check (list string)) "re-execution reproduces the report" (render full)
    (render resumed);
  let head =
    match Fleet.Service.parse_report snap.Recover.Snapshot.head with
    | Some r -> r
    | None -> Alcotest.fail "snapshot head must parse"
  in
  let tail =
    match rc.Fleet.Service.rc_tail with
    | Some t -> t
    | None -> Alcotest.fail "resume must produce a tail segment"
  in
  (* The merge monoid: head-at-mark + tail-after-mark = whole run. *)
  Alcotest.(check (list string)) "merge head tail == full report" (render full)
    (render (Fleet.Service.merge ~seed:42 ~config head tail))

(* ---------- warm orchestrator capture/restore ---------- *)

(* The paper's target scenario (as in the orchestrator tests): A
   silently drops traffic toward the origin's announced space. *)
let reverse_failure_spec =
  Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a)

let orch_world ~targets =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 };
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe ~atlas ~responsiveness ~plan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets;
  (w, config, plan, atlas, responsiveness, orc)

let restore_of (w, config, plan, atlas, responsiveness, orc) snap =
  Lifeguard.Orchestrator.restore ~config ~env:w.probe ~atlas ~responsiveness ~plan
    ~vantage_points:[ d; c ]
    ~collector:(Lifeguard.Orchestrator.collector orc)
    snap ()

let test_warm_restore () =
  let ((w, _, _, _, _, orc) as world) = orch_world ~targets:[ e ] in
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Sim.Engine.run ~until:2400.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned _ -> ()
  | _ -> Alcotest.fail "expected the poisoned steady state");
  Alcotest.(check int) "no pipelines at capture" 0
    (Lifeguard.Orchestrator.active_pipelines orc);
  let snap = Lifeguard.Orchestrator.capture orc in
  let restored = restore_of world snap in
  let snap' = Lifeguard.Orchestrator.capture restored in
  (* The event/outcome/monitor logs are observability, not state: a
     restored controller restarts them empty.  Everything else — the
     active poison with its watchdog deadlines, pacing, breaker set,
     counters — must survive the round-trip byte-for-byte. *)
  Alcotest.(check int) "event log restarts empty" 0 snap'.Recover.Snapshot.so_events;
  Alcotest.(check int) "outcome log restarts empty" 0 snap'.Recover.Snapshot.so_outcomes;
  let normalized =
    {
      snap' with
      Recover.Snapshot.so_events = snap.Recover.Snapshot.so_events;
      so_outcomes = snap.Recover.Snapshot.so_outcomes;
      so_monitors = snap.Recover.Snapshot.so_monitors;
    }
  in
  Alcotest.(check bool) "capture . restore . capture = capture" true (snap = normalized);
  Alcotest.(check bool) "restored state is poisoned" true
    (match Lifeguard.Orchestrator.state restored with
    | Lifeguard.Orchestrator.Poisoned _ -> true
    | _ -> false)

let test_restore_mid_pipeline () =
  let ((w, _, _, _, _, orc) as world) = orch_world ~targets:[ e; f ] in
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Sim.Engine.run ~until:730.0 w.engine;
  let live = Lifeguard.Orchestrator.active_pipelines orc in
  Alcotest.(check int) "two pipelines in flight" 2 live;
  let snap = Lifeguard.Orchestrator.capture orc in
  Alcotest.(check int) "snapshot carries the pipelines" live
    (List.length snap.Recover.Snapshot.so_pipelines);
  let restored = restore_of world snap in
  Alcotest.(check int) "pipelines restored" live
    (Lifeguard.Orchestrator.active_pipelines restored);
  (* Every restored pipeline is re-armed as a named restart timer so a
     resumed engine picks the work back up at its recorded deadline. *)
  let restarts =
    List.filter (fun (n, _) -> String.equal n "orch.restart")
      (Sim.Engine.named_pending w.engine)
  in
  Alcotest.(check bool) "restart timers armed" true (List.length restarts >= live)

let suite =
  [
    Alcotest.test_case "record line codec round-trips" `Quick test_record_roundtrip;
    Alcotest.test_case "journal: torn tail vs interior corruption" `Quick
      test_journal_corruption;
    Alcotest.test_case "journal: replay verifies, divergence raises" `Quick
      test_journal_replay;
    Alcotest.test_case "crash boundaries at the append site" `Quick
      test_crash_boundaries_unit;
    Alcotest.test_case "reconcile: doubles, orphans, settling" `Quick test_reconcile_rules;
    Alcotest.test_case "snapshot render/parse round-trip + fingerprint" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "durable mode is byte-inert" `Quick test_durable_inert;
    Alcotest.test_case "crash matrix: byte-identical resume at every boundary" `Quick
      test_crash_matrix;
    Alcotest.test_case "segment merge reproduces the full report" `Quick
      test_segment_merge;
    Alcotest.test_case "warm capture/restore round-trip" `Quick test_warm_restore;
    Alcotest.test_case "mid-pipeline restore re-arms the work" `Quick
      test_restore_mid_pipeline;
  ]
