(* Driver for lifeguard-lint: directory walking, the one-parse pipeline
   feeding both the per-file syntactic pass and the interprocedural
   Callgraph/Effects pass, report rendering (text / json / sarif /
   github), baseline checking, and the CLI entry point shared by
   bin/lifeguard_lint and the test suite. *)

module Rule = Rule
module Source_scan = Source_scan
module Baseline = Baseline
module Callgraph = Callgraph
module Effects = Effects
module Pragma = Pragma
module Report = Report

let default_dirs = [ "lib"; "bin"; "bench"; "examples" ]

(* Skip hidden and build dirs so the pass can run unchanged from a dune
   sandbox (_build/default), where .objs/ etc. sit next to sources. *)
let rec collect_ml_files acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.length name = 0 || name.[0] = '.' || name.[0] = '_' then acc
           else collect_ml_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

type report = {
  violations : Source_scan.violation list;
  errors : (string * string) list;  (** file, parse error *)
}

(* Parse every file once; the syntactic pass and the callgraph share the
   ASTs. Library files (or everything, under a forced kind) feed the
   interprocedural pass. *)
let parse_all ?kind ~dirs () =
  let files = List.fold_left collect_ml_files [] dirs |> List.sort String.compare in
  let parsed = ref [] in
  let errors = ref [] in
  List.iter
    (fun f ->
      let k = match kind with Some k -> k | None -> Source_scan.classify f in
      match Source_scan.parse_file f with
      | Ok ast -> parsed := (f, ast, k) :: !parsed
      | Error e -> errors := (f, e) :: !errors)
    files;
  (files, List.rev !parsed, List.rev !errors)

let callgraph_files parsed =
  List.filter (fun (_, _, (k : Source_scan.file_kind)) -> k.Source_scan.in_lib) parsed

let analyse ?kind ~dirs () =
  let _, parsed, errors = parse_all ?kind ~dirs () in
  let cg = Callgraph.build ~files:(callgraph_files parsed) in
  (Effects.analyse cg, errors)

let scan ?kind ~dirs () =
  let files, parsed, errors = parse_all ?kind ~dirs () in
  let violations = ref [] in
  List.iter
    (fun (f, ast, k) ->
      violations := List.rev_append (Source_scan.scan_ast ~kind:k ~file:f ast) !violations)
    parsed;
  let force_lib = match kind with Some k -> k.Source_scan.in_lib | None -> false in
  let mli = Source_scan.mli_violations ~force_lib files in
  let eff =
    match callgraph_files parsed with
    | [] -> []
    | lib_files -> Effects.violations (Effects.analyse (Callgraph.build ~files:lib_files))
  in
  let all = List.concat [ mli; eff; !violations ] in
  {
    violations = Pragma.filter (List.sort Source_scan.compare_violation all);
    errors;
  }

let pp_violation oc (v : Source_scan.violation) =
  Printf.fprintf oc "%s\n" (Report.text_line v)

let run_check ?(format = Report.Text) ~oc ~baseline_path r =
  match Baseline.load baseline_path with
  | Error e ->
      Printf.fprintf oc "lifeguard-lint: %s\n" e;
      2
  | Ok base ->
      let verdict = Baseline.check base r.violations in
      List.iter
        (fun (k, allowed, found, vs) ->
          Printf.fprintf oc
            "lifeguard-lint: new violation(s) of %s: baseline allows %d, found %d\n" k allowed
            found;
          List.iter
            (fun v ->
              pp_violation oc v;
              (* Under --format github a fresh violation also becomes an
                 ::error workflow command, so CI annotates the diff. *)
              if format = Report.Github then
                Printf.fprintf oc "%s\n" (Report.github_line ~level:"error" v))
            vs)
        verdict.Baseline.fresh;
      List.iter
        (fun (k, allowed, found) ->
          Printf.fprintf oc
            "lifeguard-lint: note: %s improved (%d -> %d); consider --update-baseline\n" k
            allowed found)
        verdict.Baseline.stale;
      if verdict.Baseline.fresh <> [] then 1 else 0

(* The --effects table: one deterministic row per exported library
   definition. *)
let effects_table ?kind ~dirs () =
  let eff, errors = analyse ?kind ~dirs () in
  let rows = Effects.summary_rows eff in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 24 rows
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, row) -> Buffer.add_string b (Printf.sprintf "%-*s  %s\n" width name row))
    rows;
  Buffer.add_string b
    (Printf.sprintf "%d exported definitions (effects: clock random globalmut prints \
                     catchall io)\n"
       (List.length rows));
  (Buffer.contents b, errors)

let usage =
  "lifeguard_lint [--check | --update-baseline | --effects] [--format FMT] [--json]\n\
  \               [--baseline FILE] [--root DIR] [--treat-as-lib] [DIR ...]\n\
   Static analysis for domain-safety, determinism and hot-path hygiene,\n\
   including the interprocedural LG-EFF-* effect rules.\n\
   FMT is one of: text json sarif github. Default directories: lib bin bench examples."

let main ?(out = Format.std_formatter) argv =
  let check = ref false in
  let update = ref false in
  let effects = ref false in
  let format = ref Report.Text in
  let bad_format = ref None in
  let baseline_path = ref "lint.baseline" in
  let root = ref "" in
  let as_lib = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--check", Arg.Set check, " fail (exit 1) on violations not covered by the baseline");
      ("--update-baseline", Arg.Set update, " rewrite the baseline from the current tree");
      ( "--effects",
        Arg.Set effects,
        " print the interprocedural effect summary of every exported library definition" );
      ( "--format",
        Arg.String
          (fun s ->
            match Report.format_of_string s with
            | Some f -> format := f
            | None -> bad_format := Some s),
        "FMT report format: text json sarif github (default text)" );
      ("--json", Arg.Unit (fun () -> format := Report.Json), " shorthand for --format json");
      ("--baseline", Arg.Set_string baseline_path, "FILE baseline file (default lint.baseline)");
      ("--root", Arg.Set_string root, "DIR chdir here first; paths are reported relative to it");
      ("--treat-as-lib", Arg.Set as_lib, " apply library-strict rules to every scanned file");
      ("--rules", Arg.Unit (fun () -> raise Exit), " list rule IDs and exit");
    ]
  in
  match
    Arg.parse_argv ~current:(ref 0) argv (Arg.align spec)
      (fun d -> dirs := d :: !dirs)
      usage
  with
  | exception Arg.Bad msg ->
      prerr_string msg;
      2
  | exception Arg.Help msg ->
      Format.pp_print_string out msg;
      Format.pp_print_flush out ();
      0
  | exception Exit ->
      List.iter (fun r -> Format.fprintf out "%-16s %s\n" (Rule.id r) (Rule.describe r)) Rule.all;
      Format.pp_print_flush out ();
      0
  | () -> (
      match !bad_format with
      | Some s ->
          Printf.eprintf "lifeguard-lint: unknown --format %s (text json sarif github)\n" s;
          2
      | None ->
          let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
          let kind = if !as_lib then Some Source_scan.lib_kind else None in
          let run () =
            if !effects then begin
              let table, errors = effects_table ?kind ~dirs () in
              List.iter
                (fun (f, e) -> Printf.eprintf "lifeguard-lint: %s: parse error: %s\n" f e)
                errors;
              if errors <> [] then 2
              else begin
                Format.pp_print_string out table;
                Format.pp_print_flush out ();
                0
              end
            end
            else begin
              let r = scan ?kind ~dirs () in
              List.iter
                (fun (f, e) -> Printf.eprintf "lifeguard-lint: %s: parse error: %s\n" f e)
                r.errors;
              if r.errors <> [] then 2
              else if !update then begin
                Baseline.save !baseline_path (Baseline.of_violations r.violations);
                Format.fprintf out "lifeguard-lint: wrote %s (%d grandfathered violations)@."
                  !baseline_path (List.length r.violations);
                0
              end
              else if !check then
                run_check ~format:!format ~oc:stdout ~baseline_path:!baseline_path r
              else begin
                (* lint: allow LG-OBS-PRINTF (reports go to stdout by CLI contract) *)
                print_string
                  (Report.render !format ~violations:r.violations ~errors:r.errors);
                0
              end
            end
          in
          if String.length !root = 0 then run ()
          else begin
            let cwd = Sys.getcwd () in
            Fun.protect
              ~finally:(fun () -> Sys.chdir cwd)
              (fun () ->
                Sys.chdir !root;
                run ())
          end)
