(** The offline planner: enumerate failure classes and precompute each
    remediation before any outage happens.

    For every monitored target, the planner walks the policy-compliant
    path between target and origin, treats each intermediate AS as a
    potential blame verdict, and answers the decision process's
    feasibility question ahead of time: would a valley-free path around
    that AS still exist? Feasible classes get a poison remedy (the
    [O-A-O] path interned in the world's path store — selective when the
    blamed AS is one of the origin's direct providers), infeasible ones a
    hopeless remedy carrying the exact reason string the fresh decision
    would produce, and forward-direction classes the egress-switch advice.

    Every entry point here is effect-pure — no clock, no [Random], no
    module-level mutable state reachable — certified by the
    [LG-PLAN-STALE] lint rule. Purity is what makes a plan trustworthy:
    rebuilding the map from the same graph always yields byte-identical
    plans, so staleness can only come from the world changing, which the
    cache's invalidation layer watches for. *)

open Net
open Topology
open Lifeguard

val hopeless_reason : Asn.t -> string
(** The verbatim [Decide] reason served when no alternate path exists. *)

val candidate_blames : As_graph.t -> origin:Asn.t -> target:Asn.t -> Asn.t list
(** The blame verdicts isolation is likely to produce for this target:
    intermediate ASes of the policy-compliant paths in both directions
    between target and origin, plus the splice alternate around each
    primary intermediate (covering post-reroute blames). Ascending,
    duplicate-free. *)

val remedy_for_class :
  As_graph.t ->
  store:Bgp.Path_store.t ->
  origin:Asn.t ->
  target:Asn.t ->
  cls:Failure_class.t ->
  Plan_store.remedy
(** The remedy one failure class deserves, honoring the class's
    direction: poison (or hopeless) for reverse/bidirectional blames,
    egress-switch advice for forward failures, and the decision
    process's verbatim stand-down reasons otherwise. Used by the cache
    to demand-plan classes the offline sweep did not anticipate. *)

val build :
  graph:As_graph.t ->
  store:Bgp.Path_store.t ->
  plan:Remediate.plan ->
  targets:Asn.t list ->
  Plan_store.t
(** The full failure map for [targets]: every (target, failure-class)
    pair with its precomputed remedy, in the store's canonical order. *)
