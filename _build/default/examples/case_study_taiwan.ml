(* The paper's §6 case study, end to end: on October 3, 2011 at 8:15pm a
   PlanetLab host at National Tsing Hua University (Taiwan) lost its
   reverse path to the University of Wisconsin — UUNET kept announcing
   routes but silently dropped the packets. LIFEGUARD detected the
   outage, isolated a reverse-path failure inside UUNET, poisoned it, and
   traffic returned over the academic APAN/Internet2 path; hours later
   sentinel probes noticed UUNET working again and the poison was
   withdrawn.

   This driver replays the whole incident in the simulator and prints the
   timeline. Run with: dune exec examples/case_study_taiwan.exe *)

let () =
  Printf.printf "Replaying the Taiwan <-> Wisconsin incident (paper section 6)...\n\n";
  let r = Experiments.Case_study.run () in
  List.iter Stats.Table.print (Experiments.Case_study.to_tables r);
  let verdict ok = if ok then "reproduced" else "NOT reproduced" in
  Printf.printf "Summary: isolation %s; repair %s; automatic unpoisoning %s.\n"
    (verdict r.Experiments.Case_study.diagnosis_blames_uunet)
    (verdict r.Experiments.Case_study.repaired)
    (verdict r.Experiments.Case_study.unpoisoned_after_repair)
