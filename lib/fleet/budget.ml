open Net

type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable updated : float;
  mutable granted : int;
  mutable denied : int;
}

let create ~rate ~burst () =
  if rate <= 0.0 then invalid_arg "Budget.create: rate must be positive";
  if burst < 1.0 then invalid_arg "Budget.create: burst must be at least 1";
  { rate; burst; tokens = burst; updated = 0.0; granted = 0; denied = 0 }

(* Lazy refill: tokens accrue linearly with simulation time, capped at the
   burst size; the bucket never needs its own timer. *)
let refill t ~now =
  if now > t.updated then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.updated) *. t.rate));
    t.updated <- now
  end

let admit t ~now ~cost =
  if cost < 0 then invalid_arg "Budget.admit: negative cost";
  refill t ~now;
  let c = float_of_int cost in
  if t.tokens >= c then begin
    t.tokens <- t.tokens -. c;
    t.granted <- t.granted + cost;
    true
  end
  else begin
    t.denied <- t.denied + cost;
    false
  end

let granted t = t.granted
let denied t = t.denied

type scheduler = {
  global : t;
  per_vp_rate : float;
  per_vp_burst : float;
  vps : (Asn.t, t) Hashtbl.t;
}

let scheduler ?(per_vp_rate = infinity) ?(per_vp_burst = infinity) ~global () =
  { global; per_vp_rate; per_vp_burst; vps = Hashtbl.create 8 }

let vp_bucket s vp =
  match Hashtbl.find_opt s.vps vp with
  | Some b -> b
  | None ->
      let b =
        {
          rate = s.per_vp_rate;
          burst = s.per_vp_burst;
          tokens = s.per_vp_burst;
          updated = 0.0;
          granted = 0;
          denied = 0;
        }
      in
      Hashtbl.replace s.vps vp b;
      b

(* Both caps must admit; an unlimited per-VP cap short-circuits so the
   common (no per-VP limit) case touches one bucket. *)
let admit_vp s ~vp ~now ~cost =
  if s.per_vp_rate = infinity && s.per_vp_burst = infinity then admit s.global ~now ~cost
  else begin
    let b = vp_bucket s vp in
    refill b ~now;
    if b.tokens < float_of_int cost then begin
      b.denied <- b.denied + cost;
      false
    end
    else if admit s.global ~now ~cost then begin
      b.tokens <- b.tokens -. float_of_int cost;
      b.granted <- b.granted + cost;
      true
    end
    else false
  end

let scheduler_granted s = granted s.global

(* A request is denied by exactly one stage: a per-VP refusal never reaches
   the global bucket, and a global refusal leaves the VP bucket untouched —
   so summing the two never double-counts. *)
let scheduler_denied s = Hashtbl.fold (fun _ b acc -> acc + b.denied) s.vps (denied s.global)
