lib/bgp/decision.mli: Asn Hashtbl Net Route
