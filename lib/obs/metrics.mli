(** Counters, max-gauges and fixed-bucket histograms with lock-free
    per-domain shards.

    The design constraint is the repository's share-nothing [--jobs]
    invariant: instrumenting the hot layers must not reintroduce
    cross-domain mutable state, and enabling metrics must leave every
    experiment table byte-identical for any worker count. Both follow
    from the sharding scheme:

    - every domain owns a private shard (via [Domain.DLS]) and is the
      only mutator of it, so recording needs no locks and no allocation;
    - shards are merged only at {!snapshot} time — counters and histogram
      buckets by summation, gauges by maximum — all of which are
      order-insensitive, so totals do not depend on how trials were
      sharded over domains;
    - instruments record {e simulation-derived} quantities (event counts,
      queue depths, RIB sizes), which are deterministic per trial.

    Metric creation ({!counter} / {!gauge} / {!histogram}) interns by
    name under a registry mutex and is meant for module-initialisation
    time; the recording calls ({!incr}, {!add}, {!observe_max},
    {!observe}) are the hot path and cost one atomic flag read when
    disabled. *)

val enable : unit -> unit
(** Start recording. Call from the outermost binary (or a test) before
    the instrumented run, ideally before worker domains are spawned. *)

val disable : unit -> unit
(** Stop recording; instruments return to their zero-cost path. *)

val on : unit -> bool
(** Whether recording is enabled. *)

type counter
(** A monotonically increasing count (e.g. events dispatched). *)

type gauge
(** A high-watermark: {!observe_max} keeps the largest value seen.
    Plain last-write-wins gauges are deliberately absent — their merged
    value would depend on domain scheduling. *)

type histogram
(** A fixed-bucket histogram of float observations. *)

val counter : string -> counter
(** Intern a counter by name (idempotent: the same name yields the same
    counter). *)

val gauge : string -> gauge
(** Intern a max-gauge by name. *)

val histogram : ?bounds:float array -> string -> histogram
(** Intern a histogram by name. [bounds] are inclusive upper bounds of
    the buckets, strictly increasing; an implicit overflow bucket catches
    everything above the last bound. Bounds are fixed at first creation;
    later calls with the same name reuse the original definition. The
    default bounds are decades from 1 ms to 1000 s. *)

val incr : counter -> unit
(** Add 1. No-op (one flag read) when disabled. *)

val add : counter -> int -> unit
(** Add [n]. No-op when disabled. *)

val observe_max : gauge -> int -> unit
(** Raise the gauge's high-watermark to [v] if larger. No-op when
    disabled. *)

val observe : histogram -> float -> unit
(** Count [v] into its bucket. No-op when disabled. *)

val local_value : counter -> int
(** The calling domain's own shard value for [c] — a deterministic
    per-trial delta source for trial-scoped accounting (each trial runs
    start-to-finish on one domain). 0 when disabled or never recorded. *)

type hist_row = {
  hname : string;
  bounds : float array;  (** Upper bounds, as registered. *)
  counts : int array;  (** Per-bucket counts; length = bounds + 1 (overflow). *)
  total : int;
}

type snapshot = {
  counters : (string * int) list;  (** Name-sorted, summed over shards. *)
  gauges : (string * int) list;  (** Name-sorted, max over shards. *)
  hists : hist_row list;  (** Name-sorted, buckets summed over shards. *)
}

val snapshot : unit -> snapshot
(** Merge all shards. Call when the instrumented run is quiescent (no
    worker domains mid-trial); a concurrent snapshot never crashes but
    may miss in-flight increments. *)

val counter_value : snapshot -> string -> int
(** The merged value of a named counter in a snapshot; 0 when absent. *)

val reset : unit -> unit
(** Zero every shard (registrations survive). Call between experiments,
    when quiescent, to get per-experiment snapshots. *)
