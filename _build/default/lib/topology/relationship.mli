(** Business relationships between neighboring ASes.

    BGP routing policy on the real Internet is dominated by the
    customer/provider/peer structure (Gao's model): an AS pays its
    providers, is paid by its customers, and settles freely with peers.
    Export policy follows the money — routes learned from a peer or
    provider are re-exported only to customers — which yields the
    "valley-free" property this reproduction uses both in the BGP
    simulator and in LIFEGUARD's alternate-path existence check. *)

type t =
  | Customer  (** The neighbor is my customer (it pays me). *)
  | Provider  (** The neighbor is my provider (I pay it). *)
  | Peer  (** Settlement-free peer. *)
  | Sibling  (** Same organization; everything is exchanged. *)

val invert : t -> t
(** The relationship seen from the other side: a [Customer]'s view of me is
    [Provider], and vice versa; [Peer] and [Sibling] are symmetric. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val local_pref : t -> int
(** Conventional local preference for routes learned from a neighbor of
    this kind: customers (300) over peers (200) over providers (100);
    siblings are treated like customers. Prefer-customer is what makes
    economic sense and is assumed throughout the paper's simulations. *)

val export_ok : learned_from:t -> to_:t -> bool
(** [export_ok ~learned_from ~to_] implements Gao–Rexford export: routes
    learned from customers (or siblings, or originated locally — use
    [~learned_from:Customer] for locally originated routes) are exported to
    everyone; routes learned from peers or providers are exported only to
    customers and siblings. *)
