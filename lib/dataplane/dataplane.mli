(** The data plane: FIB-driven forwarding walks, failure injection
    (including the silent, unidirectional failures LIFEGUARD targets) and
    the probe vocabulary — ping, traceroute, spoofed variants and reverse
    traceroute emulation. *)

module Failure = Failure
module Forward = Forward
module Probe = Probe
