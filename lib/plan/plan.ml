(** Precomputed remediation plans — fast-reroute for poisoning.

    Turns LIFEGUARD's repair pipeline into a cache hit: an offline
    {!Planner} enumerates (target, failure-class) pairs over a world and
    precomputes each remediation into a deterministic {!Plan_store}; a
    runtime {!Cache} serves them to the orchestrator ahead of the fresh
    decision process, invalidating on topology churn, policy change and
    circuit-breaker trips, and demoting plans whose watchdog outcome
    diverges. Keys are {!Failure_class} values — the shape of an
    isolation verdict. *)

module Failure_class = Failure_class
module Plan_store = Plan_store
module Planner = Planner
module Cache = Cache
