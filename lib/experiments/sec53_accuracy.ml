(** §5.3 Accuracy of failure isolation.

    The paper evaluated LIFEGUARD on failures between PlanetLab hosts,
    giving the system only its own vantage points and checking its
    conclusion against traceroutes from the far side: consistent in
    169/182 (93%) of isolated unidirectional failures. Separately, for
    320 candidate outages, the system's location differed from what an
    operator would conclude from traceroute alone 40% of the time.

    Here the simulator gives exact ground truth — the injected failure —
    so consistency is checked against it directly, which is strictly
    harder than the paper's proxy. *)

open Net
open Workloads

type case = {
  direction_truth : Outage_gen.direction;
  diagnosis : Lifeguard.Isolation.diagnosis;
  truth_location : Asn.t;
  truth_far_side : Asn.t option;
  correct : bool;
  direction_correct : bool;
  traceroute_differs : bool;
}

type result = {
  cases : case list;
  isolated : int;
  consistent : int;
  fraction_consistent : float;  (** Paper: 0.93. *)
  fraction_direction_correct : float;
  fraction_traceroute_differs : float;  (** Paper: 0.40. *)
  mean_probes : float;
  mean_elapsed : float;
}

let paper_fraction_consistent = 0.93
let paper_fraction_traceroute_differs = 0.40

(* Isolation probes run only between the PlanetLab sites (and walk to the
   transit targets), so shard worlds announce infrastructure for those
   endpoints only — a few dozen prefixes instead of one per AS. *)
let shard_count = 8

(* One shard: an independent world + PRNG hunting [quota] isolatable
   failures. The shard decomposition is fixed (a pure function of
   [failure_count]), so results don't depend on [jobs]. *)
let run_shard ~ases ~seed ~shard ~quota () =
  let bed =
    Scenarios.planetlab ~ases ~sites:24 ~infrastructure:Scenarios.Sites ~seed ()
  in
  let rng = Prng.create ~seed:(seed + 5 + (131 * shard)) in
  let sites = Array.of_list bed.Scenarios.vantage_points in
  let responsiveness = Measurement.Responsiveness.create () in
  Measurement.Responsiveness.configure_silent_fraction responsiveness
    (Prng.split rng) bed.Scenarios.graph ~fraction:0.05;
  let atlas = Measurement.Atlas.create () in
  (* Split sites: LIFEGUARD's vantage points vs monitored targets, as in
     the paper's disjoint PlanetLab sets. *)
  let n = Array.length sites in
  let vps = Array.to_list (Array.sub sites 0 (n / 2)) in
  let targets = Array.to_list (Array.sub sites (n / 2) (n - (n / 2))) in
  Measurement.Atlas.refresh_all atlas bed.Scenarios.probe ~vps ~dsts:targets ~now:0.0;
  let ctx =
    {
      Lifeguard.Isolation.env = bed.Scenarios.probe;
      atlas;
      responsiveness;
      vantage_points = vps;
      source_overrides = [];
    }
  in
  let cases = ref [] in
  let attempts = ref 0 in
  while List.length !cases < quota && !attempts < quota * 4 do
    incr attempts;
    let src = Prng.pick_list rng vps in
    let dst = Prng.pick_list rng targets in
    let shape = Outage_gen.shape rng in
    match Scenarios.Placement.on_path rng bed ~src ~dst ~shape () with
    | None -> ()
    | Some placed ->
        Dataplane.Failure.inject bed.Scenarios.net bed.Scenarios.failures
          placed.Scenarios.Placement.spec;
        let diagnosis = Lifeguard.Isolation.isolate ctx ~src ~dst in
        Dataplane.Failure.heal bed.Scenarios.net bed.Scenarios.failures
          placed.Scenarios.Placement.spec;
        let truth = placed.Scenarios.Placement.location in
        let far = placed.Scenarios.Placement.far_side in
        let blamed = Lifeguard.Isolation.blamed_as diagnosis.Lifeguard.Isolation.blame in
        let correct =
          match blamed with
          | Some a ->
              Asn.equal a truth
              ||
              (match far with
              | Some f -> Asn.equal a f
              | None -> false)
          | None -> false
        in
        let direction_correct =
          match (shape.Outage_gen.direction, diagnosis.Lifeguard.Isolation.direction) with
          | Outage_gen.Reverse, Lifeguard.Isolation.Reverse_failure
          | Outage_gen.Forward, Lifeguard.Isolation.Forward_failure
          | Outage_gen.Bidirectional, Lifeguard.Isolation.Bidirectional ->
              true
          | _ -> false
        in
        let traceroute_differs =
          match (blamed, diagnosis.Lifeguard.Isolation.traceroute_blame) with
          | Some b, Some t -> not (Asn.equal b t)
          | Some _, None -> true
          | None, _ -> false
        in
        cases :=
          {
            direction_truth = shape.Outage_gen.direction;
            diagnosis;
            truth_location = truth;
            truth_far_side = far;
            correct;
            direction_correct;
            traceroute_differs;
          }
          :: !cases
  done;
  List.rev !cases

let run ?(ases = 318) ?(failure_count = 120) ?(jobs = 1) ~seed () =
  (* Distribute the quota over a fixed number of shards (never a function
     of [jobs]); each shard hunts its share of failures in its own
     world. *)
  let shards = max 1 (min shard_count failure_count) in
  let quota shard =
    (failure_count / shards) + if shard < failure_count mod shards then 1 else 0
  in
  let shard_cases =
    Runner.run_trials ~jobs
      (List.init shards (fun shard -> run_shard ~ases ~seed ~shard ~quota:(quota shard)))
  in
  let cases = List.concat shard_cases in
  let isolated =
    List.filter
      (fun c ->
        Option.is_some (Lifeguard.Isolation.blamed_as c.diagnosis.Lifeguard.Isolation.blame))
      cases
  in
  let frac pred l =
    if l = [] then 0.0
    else
      float_of_int (List.length (List.filter pred l)) /. float_of_int (List.length l)
  in
  let consistent = List.filter (fun c -> c.correct) isolated in
  {
    cases;
    isolated = List.length isolated;
    consistent = List.length consistent;
    fraction_consistent = frac (fun c -> c.correct) isolated;
    fraction_direction_correct = frac (fun c -> c.direction_correct) cases;
    fraction_traceroute_differs = frac (fun c -> c.traceroute_differs) isolated;
    mean_probes =
      (if isolated = [] then 0.0
       else
         Stats.Descriptive.mean
           (Array.of_list
              (List.map
                 (fun c -> float_of_int c.diagnosis.Lifeguard.Isolation.probes_used)
                 isolated)));
    mean_elapsed =
      (if isolated = [] then 0.0
       else
         Stats.Descriptive.mean
           (Array.of_list
              (List.map (fun c -> c.diagnosis.Lifeguard.Isolation.elapsed) isolated)));
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.3 isolation accuracy (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "failures isolated"; "182"; Stats.Table.cell_int r.isolated ];
      [
        "consistent with ground truth";
        Stats.Table.cell_pct paper_fraction_consistent ^ " (169/182, vs far-side traceroute)";
        Printf.sprintf "%s (%d/%d, vs injected failure)"
          (Stats.Table.cell_pct r.fraction_consistent)
          r.consistent r.isolated;
      ];
      [
        "direction correctly classified";
        "-";
        Stats.Table.cell_pct r.fraction_direction_correct;
      ];
      [
        "differs from traceroute-only diagnosis";
        Stats.Table.cell_pct paper_fraction_traceroute_differs;
        Stats.Table.cell_pct r.fraction_traceroute_differs;
      ];
      [ "mean probes per isolation"; "~280"; Stats.Table.cell_float ~decimals:0 r.mean_probes ];
      [
        "mean isolation latency (s)";
        "140";
        Stats.Table.cell_float ~decimals:0 r.mean_elapsed;
      ];
    ];
  [ t ]
