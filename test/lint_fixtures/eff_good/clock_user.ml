let run ~clock () = Clock_inj.now ~clock () +. 1.0
