open Net

(* MED is only comparable between routes learned from the same neighbor
   AS; a missing MED compares as 0 (cisco-style default). *)
let med_value = function
  | Some m -> m
  | None -> 0

let tiebreak_rank salt neighbor =
  match salt with
  | None -> 0
  | Some salt -> Hashtbl.hash (salt, Asn.to_int neighbor, 0x5f3759df) land 0xFFFF

let compare_entries ?salt (a : Route.entry) (b : Route.entry) =
  let cmp =
    match Int.compare a.local_pref b.local_pref with
    | 0 -> begin
        match Int.compare (As_path.length b.ann.path) (As_path.length a.ann.path) with
        | 0 -> begin
            let med_cmp =
              let a_first = As_path.first_hop a.ann.path
              and b_first = As_path.first_hop b.ann.path in
              if Option.equal Asn.equal a_first b_first then
                Int.compare (med_value b.ann.med) (med_value a.ann.med)
              else 0
            in
            match med_cmp with
            | 0 -> begin
                match
                  Int.compare (tiebreak_rank salt b.neighbor) (tiebreak_rank salt a.neighbor)
                with
                | 0 -> Asn.compare b.neighbor a.neighbor
                | c -> c
              end
            | c -> c
          end
        | c -> c
      end
    | c -> c
  in
  cmp

let best ?salt entries =
  match entries with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc e -> if compare_entries ?salt e acc > 0 then e else acc)
           first rest)

let best_in_table ?salt table =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some cur -> if compare_entries ?salt e cur > 0 then Some e else acc)
    table None
