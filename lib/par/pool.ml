type t = {
  jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Workers block on [work_available] and drain the shared queue until
   [stopping] is observed with an empty queue. Tasks are opaque [unit ->
   unit] closures: all result plumbing lives in [map], so the worker loop
   never touches batch state. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    worker_loop t
  end

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let reraise_first_failure failures =
  Array.iter (function Some exn -> raise exn | None -> ()) failures

let map t f xs =
  if t.stopping then invalid_arg "Par.Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | xs when t.jobs <= 1 || t.workers = [] ->
      (* Inline sequential path: no domains involved at all. *)
      List.map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let failures = Array.make n None in
      let batch_lock = Mutex.create () in
      let batch_done = Condition.create () in
      let remaining = ref n in
      let task i () =
        (match f items.(i) with
        | v -> results.(i) <- Some v
        | exception exn -> failures.(i) <- Some exn);
        Mutex.lock batch_lock;
        decr remaining;
        if !remaining = 0 then Condition.signal batch_done;
        Mutex.unlock batch_lock
      in
      Mutex.lock t.lock;
      for i = 0 to n - 1 do
        Queue.push (task i) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      Mutex.lock batch_lock;
      while !remaining > 0 do
        Condition.wait batch_done batch_lock
      done;
      Mutex.unlock batch_lock;
      (* Which failure surfaces must not depend on scheduling: always the
         earliest submitted one. *)
      reraise_first_failure failures;
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let run_trials t thunks = map t (fun f -> f ()) thunks

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
