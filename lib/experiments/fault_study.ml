(** Repair robustness under control-plane fault injection.

    Re-runs the fleet study while {!Bgp.Faults} flaps sessions, fails
    links, crashes routers and corrupts the update wire at increasing
    intensity, and reports what the remediation state machine did about
    it: how often the watchdog had to re-announce a flushed poison, how
    often it rolled a failed poison back, when the circuit breaker gave
    up on a target, and what the faults cost in repair rate and time to
    repair. Intensity 0 is the fault-free control — by construction it
    is byte-identical to {!Fleet_study} with [Bgp.Faults.none]. *)

type row = { intensity : float; result : Fleet_study.result }

type result = {
  profile : Bgp.Faults.config;  (** The intensity-1 fault profile. *)
  rows : row list;  (** One fleet study per intensity, ascending. *)
}

(* The intensity-1.0 anchor: every class on, at rates that make faults
   common enough to exercise the watchdog within one observation window
   without drowning the outage signal the fleet exists to repair. *)
let default_profile =
  {
    Bgp.Faults.session_flap_mtbf = 14400.0 (* a flap per link every ~4 h *);
    session_flap_downtime = 30.0;
    link_mtbf = 43200.0;
    link_mttr = 900.0;
    router_mtbf = 86400.0;
    router_mttr = 300.0;
    update_loss = 0.01;
    update_dup = 0.005;
  }

let default_intensities = [ 0.0; 0.5; 1.0; 2.0 ]

let run ?(config = Fleet.Service.default_config) ?(profile = default_profile)
    ?(intensities = default_intensities) ?(targets = 100) ?(jobs = 1) ~seed () =
  if intensities = [] then invalid_arg "Fault_study.run: intensities must be non-empty";
  let profile = Bgp.Faults.validate profile in
  let rows =
    List.map
      (fun intensity ->
        if intensity < 0.0 then invalid_arg "Fault_study.run: intensity must be >= 0";
        let faults = Bgp.Faults.scale profile intensity in
        let config = { config with Fleet.Service.faults } in
        { intensity; result = Fleet_study.run ~config ~targets ~jobs ~seed () })
      (List.sort Float.compare intensities)
  in
  { profile; rows }

let to_tables r =
  let cell_intensity i = Stats.Table.cell_float ~decimals:1 i in
  let faults =
    Stats.Table.create ~title:"Injected control-plane faults per intensity"
      ~columns:
        [ "intensity"; "session flaps"; "link failures"; "router crashes"; "lost"; "dup" ]
  in
  List.iter
    (fun { intensity; result = s } ->
      Stats.Table.add_row faults
        [
          cell_intensity intensity;
          Stats.Table.cell_int s.Fleet_study.session_flaps;
          Stats.Table.cell_int s.Fleet_study.link_failures;
          Stats.Table.cell_int s.Fleet_study.router_crashes;
          Stats.Table.cell_int s.Fleet_study.updates_dropped;
          Stats.Table.cell_int s.Fleet_study.updates_duplicated;
        ])
    r.rows;
  let outcomes =
    Stats.Table.create ~title:"Repair pipeline outcomes vs fault intensity"
      ~columns:
        [ "intensity"; "detected"; "repaired"; "stood down"; "gave up"; "open"; "terminal" ]
  in
  List.iter
    (fun { intensity; result = s } ->
      let terminal =
        if s.Fleet_study.detected = 0 then "-"
        else
          Stats.Table.cell_pct
            (float_of_int
               (s.Fleet_study.repaired + s.Fleet_study.stood_down + s.Fleet_study.gave_up)
            /. float_of_int s.Fleet_study.detected)
      in
      Stats.Table.add_row outcomes
        [
          cell_intensity intensity;
          Stats.Table.cell_int s.Fleet_study.detected;
          Stats.Table.cell_int s.Fleet_study.repaired;
          Stats.Table.cell_int s.Fleet_study.stood_down;
          Stats.Table.cell_int s.Fleet_study.gave_up;
          Stats.Table.cell_int s.Fleet_study.unfinished;
          terminal;
        ])
    r.rows;
  let watchdog =
    Stats.Table.create
      ~title:"Watchdog and circuit breaker vs fault intensity"
      ~columns:
        [
          "intensity"; "poisons"; "re-announced"; "rolled back"; "breaker trips";
          "TTR p50 (s)"; "TTR p90 (s)";
        ]
  in
  List.iter
    (fun { intensity; result = s } ->
      let q p =
        match Fleet_study.ttr_cdf s with
        | None -> "-"
        | Some cdf -> Stats.Table.cell_float ~decimals:0 (Stats.Ecdf.quantile cdf p)
      in
      Stats.Table.add_row watchdog
        [
          cell_intensity intensity;
          Stats.Table.cell_int s.Fleet_study.poisons;
          Stats.Table.cell_int s.Fleet_study.reannounced;
          Stats.Table.cell_int s.Fleet_study.rolled_back;
          Stats.Table.cell_int s.Fleet_study.breaker_trips;
          q 0.5;
          q 0.9;
        ])
    r.rows;
  [ faults; outcomes; watchdog ]
