open Net
open Topology

type config = { min_outage_age : float; require_alternate_path : bool }

let default_config = { min_outage_age = 300.0; require_alternate_path = true }

type verdict = Poison of Asn.t | Wait of string | Hopeless of string

let pp_verdict fmt = function
  | Poison a -> Format.fprintf fmt "poison %a" Asn.pp a
  | Wait reason -> Format.fprintf fmt "wait (%s)" reason
  | Hopeless reason -> Format.fprintf fmt "hopeless (%s)" reason

let alternate_path_exists graph ~src ~origin ~avoid =
  Splice.policy_reachable graph ~src ~dst:origin ~avoiding:(Asn.Set.singleton avoid)

let decide ?feasible config graph ~origin ~diagnosis ~outage_age =
  let open Isolation in
  let feasible =
    match feasible with
    | Some f -> f
    | None -> fun ~src ~avoid -> alternate_path_exists graph ~src ~origin ~avoid
  in
  match diagnosis.direction with
  | No_failure -> Hopeless "path works; nothing to repair"
  | Destination_unreachable -> Hopeless "destination unreachable from everywhere"
  | Forward_failure -> Hopeless "forward failure: choose a different egress instead"
  | Reverse_failure | Bidirectional -> begin
      match blamed_as diagnosis.blame with
      | None -> Hopeless "failure not located"
      | Some target ->
          if Asn.equal target origin || Asn.equal target diagnosis.src then
            Hopeless "failure is local; fix it directly"
          else if outage_age < config.min_outage_age then
            Wait
              (Printf.sprintf "outage only %.0fs old (< %.0fs)" outage_age
                 config.min_outage_age)
          else if
            (* The party that must route around the blamed AS is the
               remote destination, whose reverse path toward the origin
               is the broken one. *)
            config.require_alternate_path
            && not (feasible ~src:diagnosis.dst ~avoid:target)
          then
            Hopeless
              (Printf.sprintf "no policy-compliant path around %s" (Asn.to_string target))
          else Poison target
    end

module Residual = struct
  type stats = { elapsed : float; count : int; mean : float; median : float; p25 : float }

  let at ~durations ~elapsed =
    let survivors =
      Array.of_list
        (List.filter_map
           (fun d -> if d >= elapsed then Some (d -. elapsed) else None)
           (Array.to_list durations))
    in
    if Array.length survivors = 0 then None
    else
      Some
        {
          elapsed;
          count = Array.length survivors;
          mean = Stats.Descriptive.mean survivors;
          median = Stats.Descriptive.median survivors;
          p25 = Stats.Descriptive.percentile survivors 25.0;
        }

  let survival_fraction ~durations ~elapsed ~horizon =
    let alive = Array.to_list durations |> List.filter (fun d -> d >= elapsed) in
    match alive with
    | [] -> 0.0
    | _ ->
        let still = List.filter (fun d -> d >= elapsed +. horizon) alive in
        float_of_int (List.length still) /. float_of_int (List.length alive)
end
