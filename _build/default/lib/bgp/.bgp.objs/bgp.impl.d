lib/bgp/bgp.ml: As_path Community Convergence Decision Network Policy Route Speaker
