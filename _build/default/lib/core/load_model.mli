(** Update-load estimation at deployment scale — §5.4 and Table 2.

    The number of additional daily path changes a router sees under a
    LIFEGUARD deployment is [I x T x P(d) x U]: the fraction of ISPs
    deploying, the fraction of networks each monitors, the daily count of
    poisonable outages lasting at least [d] minutes, and the per-poison
    update cost per router ([U ~= 1]: ~2.03 updates for routers that had
    used the poisoned AS minus the one BGP would have sent anyway, ~1.07
    for the rest).

    [P(d)] derives from the Hubble outage study: [P(d) = H(d)/(Ih x Th)]
    with [Ih = 0.92] (fraction of edge ISPs Hubble monitored) and
    [Th = 0.01] (fraction of transit ASes that are poisoning candidates).
    Hubble's smallest observation window is 15 minutes, so [H(d)] for
    shorter [d] is extrapolated with the EC2 duration distribution's
    survival ratios, exactly as the paper does. *)

type params = {
  h15_per_day : float;
      (** Hubble poisonable outages per day lasting >= 15 min (the paper's
          anchor measurement). *)
  ih : float;  (** Hubble's edge-ISP coverage, 0.92. *)
  th : float;  (** Fraction of ASes that are poisonable transits, 0.01. *)
  updates_per_poison : float;  (** U; the paper rounds to 1. *)
}

val default_params : params
(** Calibrated so the Table 2 reference cell (I=0.01, T=1.0, d=15) lands
    at ~275 daily changes. *)

val p_of_d : params -> durations:float array -> d_minutes:float -> float
(** Daily poisonable outages lasting at least [d_minutes], extrapolating
    from the 15-minute anchor using the empirical survival function of
    [durations] (seconds). *)

val daily_path_changes :
  params -> durations:float array -> i:float -> t:float -> d_minutes:float -> float
(** The Table 2 cell: extra daily path changes per router for deployment
    fraction [i], monitoring fraction [t] and poisoning delay
    [d_minutes]. *)

type grid_row = { d_minutes : float; t : float; i : float; changes : float }

val table2 : params -> durations:float array -> grid_row list
(** The full Table 2 grid: d in {5, 15, 60}, T in {0.5, 1.0},
    I in {0.01, 0.1, 0.5}. *)
