(* must-pass fixture: the deterministic spellings of det_bad.ml. *)

let draw rng = Prng.int rng 10

let now clock = Engine.now clock

let lost route = Option.is_none route

let sort_ids ids = List.sort Int.compare ids

let digest r = Route.hash r

type owners = (int, string) Hashtbl.t
