open Net
open Topology

(* Decision-process invocations and the loc-RIB size high-watermark
   (Obs). The gauge is a max, not a last-write: a max merges across
   domain shards independently of trial scheduling, which keeps the
   --metrics summary byte-identical for every --jobs value. *)
let m_decisions = Obs.Metrics.counter "bgp.decisions"
let m_loc_rib = Obs.Metrics.gauge "bgp.loc_rib"

type action = Announce of Route.announcement | Withdraw of Prefix.t

type origination = {
  per_neighbor : Asn.t -> As_path.t option;
  local_ann : Route.announcement;
      (* The interned loc-RIB announcement ([self] plain path), built once
         at [originate] so every [compute_best] reuses the same physical
         value and the refresh change-check settles on [==]. *)
}

module Damp_key = struct
  type t = Prefix.t * Asn.t

  let equal (p1, n1) (p2, n2) = Prefix.equal p1 p2 && Asn.equal n1 n2
  let hash (p, n) = (Prefix.hash p lxor (Asn.hash n * 0x9E3779B1)) land max_int
end

module Damp_tbl = Hashtbl.Make (Damp_key)

type t = {
  self : Asn.t;
  config : Policy.config;
  store : Path_store.t;
      (* The world's interner: shared with every other speaker of the same
         [Network], never across worlds (share-nothing). *)
  neighbor_rel : Relationship.t Asn.Table.t;
  neighbor_list : (Asn.t * Relationship.t) list ref;
  peers_of_self : Asn.Set.t ref;
  down_sessions : unit Asn.Table.t;
  adj_in : Route.entry Asn.Table.t Prefix.Table.t;
      (** prefix -> (neighbor -> candidate route) *)
  neighbor_index : unit Prefix.Table.t Asn.Table.t;
      (** Reverse index of [adj_in]: neighbor -> prefixes it currently has a
          candidate for. Kept exactly in sync so [affected_prefixes] and
          [session_down] never fold the whole adj-RIB-in. *)
  locals : origination Prefix.Table.t;
  best_table : Route.entry Prefix.Table.t;
  mutable fib : Route.entry Prefix_trie.t;
  adj_out : Route.announcement Prefix.Table.t Asn.Table.t;
      (** Per-neighbor adj-RIB-out index: neighbor -> (prefix -> last sent).
          Keyed by neighbor first so [session_down] clears one sub-table
          instead of walking [best_table] + [locals]. *)
  mutable on_best_change : (now:float -> Prefix.t -> Route.entry option -> unit) option;
  mutable fib_commit : (Prefix.t -> Route.entry option -> unit) option;
  damp : damp_state Damp_tbl.t;
  mutable reuse_scheduler : (delay:float -> Prefix.t -> unit) option;
}

and damp_state = { mutable penalty : float; mutable last : float; mutable suppressed : bool }

let create ?store ~asn ~config ~neighbors () =
  let neighbor_rel = Asn.Table.create 16 in
  List.iter (fun (n, rel) -> Asn.Table.replace neighbor_rel n rel) neighbors;
  let peers =
    List.fold_left
      (fun acc (n, rel) ->
        if Relationship.equal rel Relationship.Peer then Asn.Set.add n acc else acc)
      Asn.Set.empty neighbors
  in
  {
    self = asn;
    config;
    store = (match store with Some s -> s | None -> Path_store.create ());
    neighbor_rel;
    neighbor_list = ref neighbors;
    peers_of_self = ref peers;
    down_sessions = Asn.Table.create 4;
    adj_in = Prefix.Table.create 64;
    neighbor_index = Asn.Table.create 16;
    locals = Prefix.Table.create 4;
    best_table = Prefix.Table.create 16;
    fib = Prefix_trie.empty;
    adj_out = Asn.Table.create 16;
    on_best_change = None;
    fib_commit = None;
    damp = Damp_tbl.create 16;
    reuse_scheduler = None;
  }

let asn t = t.self
let config t = t.config
let path_store t = t.store
let neighbors t = !(t.neighbor_list)
let set_on_best_change t f = t.on_best_change <- Some f
let set_reuse_scheduler t f = t.reuse_scheduler <- Some f
let set_fib_commit_hook t f = t.fib_commit <- Some f

(* --- Route-flap damping (RFC 2439, simplified) --- *)

let decayed_penalty (cfg : Policy.damping) state ~now =
  let dt = now -. state.last in
  if dt <= 0.0 then state.penalty
  else state.penalty *. (0.5 ** (dt /. cfg.Policy.half_life))

(* Record one flap of (prefix, neighbor); returns true when the route
   just crossed into suppression. *)
let note_flap t ~now prefix neighbor =
  match t.config.Policy.damping with
  | None -> false
  | Some cfg ->
      let key = (prefix, neighbor) in
      let state =
        match Damp_tbl.find_opt t.damp key with
        | Some s -> s
        | None ->
            let s = { penalty = 0.0; last = now; suppressed = false } in
            Damp_tbl.replace t.damp key s;
            s
      in
      state.penalty <- decayed_penalty cfg state ~now +. cfg.Policy.penalty_per_flap;
      state.last <- now;
      if (not state.suppressed) && state.penalty >= cfg.Policy.suppress_threshold then begin
        state.suppressed <- true;
        (* Ask for a wake-up when the penalty will have decayed to the
           reuse threshold. *)
        (match t.reuse_scheduler with
        | Some schedule ->
            let ratio = state.penalty /. cfg.Policy.reuse_threshold in
            let delay = cfg.Policy.half_life *. (log ratio /. log 2.0) in
            schedule ~delay:(Float.max 1.0 delay) prefix
        | None -> ());
        true
      end
      else false

(* Lazily lift suppression once the penalty has decayed. *)
let is_suppressed t ~now prefix neighbor =
  match t.config.Policy.damping with
  | None -> false
  | Some cfg -> begin
      match Damp_tbl.find_opt t.damp (prefix, neighbor) with
      | None -> false
      | Some state ->
          if not state.suppressed then false
          else begin
            let p = decayed_penalty cfg state ~now in
            if p < cfg.Policy.reuse_threshold then begin
              state.penalty <- p;
              state.last <- now;
              state.suppressed <- false;
              false
            end
            else true
          end
    end

let install_fib t prefix entry =
  match entry with
  | Some e -> t.fib <- Prefix_trie.add prefix e t.fib
  | None -> t.fib <- Prefix_trie.remove prefix t.fib

let session_is_down t n = Asn.Table.mem t.down_sessions n

let rel_of t n =
  match Asn.Table.find_opt t.neighbor_rel n with
  | Some rel -> rel
  | None -> invalid_arg (Printf.sprintf "Speaker %s: unknown neighbor %s"
                           (Asn.to_string t.self) (Asn.to_string n))

let adj_in_table t prefix =
  match Prefix.Table.find_opt t.adj_in prefix with
  | Some table -> table
  | None ->
      let table = Asn.Table.create 8 in
      Prefix.Table.replace t.adj_in prefix table;
      table

let adj_out_for t neighbor =
  match Asn.Table.find_opt t.adj_out neighbor with
  | Some out -> out
  | None ->
      let out = Prefix.Table.create 32 in
      Asn.Table.replace t.adj_out neighbor out;
      out

let index_add t neighbor prefix =
  let tbl =
    match Asn.Table.find_opt t.neighbor_index neighbor with
    | Some tbl -> tbl
    | None ->
        let tbl = Prefix.Table.create 16 in
        Asn.Table.replace t.neighbor_index neighbor tbl;
        tbl
  in
  Prefix.Table.replace tbl prefix ()

let index_remove t neighbor prefix =
  match Asn.Table.find_opt t.neighbor_index neighbor with
  | Some tbl -> Prefix.Table.remove tbl prefix
  | None -> ()

(* The loc-RIB best for a prefix: a local origination wins outright;
   otherwise the decision process over the adj-RIB-in candidates. *)
let compute_best t ~now prefix =
  Obs.Metrics.incr m_decisions;
  match Prefix.Table.find_opt t.locals prefix with
  | Some { local_ann; _ } -> Some (Route.local_entry_of ~ann:local_ann ~self:t.self ~now)
  | None -> begin
      match Prefix.Table.find_opt t.adj_in prefix with
      | None -> None
      | Some table ->
          if Damp_tbl.length t.damp = 0 then Decision.best_in_table table
          else begin
            (* Damped candidates are ineligible until their penalty decays. *)
            let eligible =
              Asn.Table.fold
                (fun neighbor entry acc ->
                  if is_suppressed t ~now prefix neighbor then acc else entry :: acc)
                table []
            in
            Decision.best eligible
          end
    end

(* Desired announcement toward one neighbor for a prefix, or None. *)
let desired_export t prefix neighbor =
  if session_is_down t neighbor then None
  else begin
    match Prefix.Table.find_opt t.locals prefix with
    | Some { per_neighbor; _ } -> begin
        match per_neighbor neighbor with
        | Some path ->
            Some (Path_store.intern_ann t.store (Route.announcement ~prefix ~path ()))
        | None -> None
      end
    | None -> begin
        match Prefix.Table.find_opt t.best_table prefix with
        | None -> None
        | Some entry ->
            if
              Policy.export_allowed t.config ~self:t.self ~entry ~to_neighbor:neighbor
                ~to_rel:(rel_of t neighbor)
            then
              Some (Path_store.intern_ann t.store (Policy.export_ann t.config ~self:t.self ~entry))
            else None
      end
  end

(* Diff desired exports against adj-RIB-out; mutate adj-RIB-out and return
   the updates to put on the wire. The best-route outgoing announcement is
   neighbor-independent, so it is rewritten and interned at most once per
   sync and shared by every permitted neighbor. *)
let sync_exports t prefix =
  let local = Prefix.Table.find_opt t.locals prefix in
  let best = Prefix.Table.find_opt t.best_table prefix in
  let best_out =
    lazy
      (match best with
      | None -> None
      | Some entry ->
          Some (Path_store.intern_ann t.store (Policy.export_ann t.config ~self:t.self ~entry)))
  in
  let desired n =
    if session_is_down t n then None
    else begin
      match local with
      | Some { per_neighbor; _ } -> begin
          match per_neighbor n with
          | Some path ->
              Some (Path_store.intern_ann t.store (Route.announcement ~prefix ~path ()))
          | None -> None
        end
      | None -> begin
          match best with
          | None -> None
          | Some entry ->
              if
                Policy.export_allowed t.config ~self:t.self ~entry ~to_neighbor:n
                  ~to_rel:(rel_of t n)
              then Lazy.force best_out
              else None
        end
    end
  in
  List.filter_map
    (fun (n, _) ->
      let out = adj_out_for t n in
      let desired = desired n in
      let current = Prefix.Table.find_opt out prefix in
      match (desired, current) with
      | None, None -> None
      | Some d, Some c when Route.announcement_equal d c -> None
      | Some d, _ ->
          Prefix.Table.replace out prefix d;
          Some (n, Announce d)
      | None, Some _ ->
          Prefix.Table.remove out prefix;
          Some (n, Withdraw prefix))
    (neighbors t)

(* [force_sync] matters when per-neighbor desired exports can move without
   the loc-RIB best changing: an origination change (the local best keeps
   its plain path while [per_neighbor] now says something else) or an
   explicit re-advertisement. The plain receive path skips the all-neighbor
   sync whenever the best is unchanged — with an unchanged loc-RIB, every
   desired export is unchanged too, so the old unconditional scan provably
   emitted nothing. *)
let refresh_best ?(force_sync = false) t ~now prefix =
  let old_best = Prefix.Table.find_opt t.best_table prefix in
  let new_best = compute_best t ~now prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b ->
        not (Route.announcement_equal a.Route.ann b.Route.ann)
        || not (Asn.equal a.Route.neighbor b.Route.neighbor)
    | _ -> true
  in
  if changed then begin
    (match new_best with
    | Some e -> Prefix.Table.replace t.best_table prefix e
    | None -> Prefix.Table.remove t.best_table prefix);
    Obs.Metrics.observe_max m_loc_rib (Prefix.Table.length t.best_table);
    (match t.fib_commit with
    | Some commit -> commit prefix new_best
    | None -> install_fib t prefix new_best);
    match t.on_best_change with
    | Some f -> f ~now prefix new_best
    | None -> ()
  end;
  if changed || force_sync then sync_exports t prefix else []

let originate t ~now ~prefix ~per_neighbor =
  let local_ann =
    Path_store.intern_ann t.store
      (Route.announcement ~prefix ~path:(As_path.plain ~origin:t.self) ())
  in
  Prefix.Table.replace t.locals prefix { per_neighbor; local_ann };
  refresh_best ~force_sync:true t ~now prefix

let stop_originating t ~now ~prefix =
  Prefix.Table.remove t.locals prefix;
  refresh_best ~force_sync:true t ~now prefix

let receive t ~now ~from action =
  if session_is_down t from then []
  else begin
    match action with
    | Withdraw prefix ->
        if Asn.Table.mem (adj_in_table t prefix) from then
          ignore (note_flap t ~now prefix from);
        Asn.Table.remove (adj_in_table t prefix) from;
        index_remove t from prefix;
        refresh_best t ~now prefix
    | Announce ann -> begin
        let ann = Path_store.intern_ann t.store ann in
        let prefix = ann.Route.prefix in
        (* A changed announcement from a neighbor that already had a route
           is a flap. *)
        (match Asn.Table.find_opt (adj_in_table t prefix) from with
        | Some previous
          when not (Route.announcement_equal previous.Route.ann ann) ->
            ignore (note_flap t ~now prefix from)
        | Some _ | None -> ());
        let rel = rel_of t from in
        match
          Policy.import t.config ~self:t.self ~peers_of_self:!(t.peers_of_self)
            ~neighbor:from ~rel ann
        with
        | Policy.Rejected _ ->
            (* An update that fails import replaces (removes) whatever this
               neighbor previously announced for the prefix. *)
            Asn.Table.remove (adj_in_table t prefix) from;
            index_remove t from prefix;
            refresh_best t ~now prefix
        | Policy.Accepted local_pref ->
            Asn.Table.replace (adj_in_table t prefix) from
              (Route.make_entry ~salt:(Asn.to_int t.self) ~ann ~neighbor:from
                 ~rel ~local_pref ~learned_at:now ());
            index_add t from prefix;
            refresh_best t ~now prefix
      end
  end

let affected_prefixes t neighbor =
  let from_adj =
    match Asn.Table.find_opt t.neighbor_index neighbor with
    | None -> Prefix.Set.empty
    | Some tbl -> Prefix.Table.fold (fun p () acc -> Prefix.Set.add p acc) tbl Prefix.Set.empty
  in
  Prefix.Table.fold (fun p _ acc -> Prefix.Set.add p acc) t.locals from_adj

let session_down t ~now ~neighbor =
  if session_is_down t neighbor then []
  else begin
    Asn.Table.replace t.down_sessions neighbor ();
    let affected = affected_prefixes t neighbor in
    (match Asn.Table.find_opt t.neighbor_index neighbor with
    | Some tbl ->
        Prefix.Table.iter (fun p () -> Asn.Table.remove (adj_in_table t p) neighbor) tbl;
        Asn.Table.remove t.neighbor_index neighbor
    | None -> ());
    (* Clear adj-RIB-out toward the dead session so a later session_up
       re-announces from scratch: one sub-table drop, not a walk of
       best_table + locals. *)
    Asn.Table.remove t.adj_out neighbor;
    List.concat_map (fun p -> refresh_best t ~now p) (Prefix.Set.elements affected)
  end

let damping_pending t = Damp_tbl.length t.damp <> 0

let session_up t ~now ~neighbor =
  if not (session_is_down t neighbor) then []
  else begin
    Asn.Table.remove t.down_sessions neighbor;
    let all =
      Prefix.Table.fold (fun p _ acc -> Prefix.Set.add p acc) t.best_table Prefix.Set.empty
      |> fun s -> Prefix.Table.fold (fun p _ acc -> Prefix.Set.add p acc) t.locals s
    in
    if damping_pending t then
      (* With damping state live, re-running the decision process can
         lazily lift suppressions and move bests — keep the full refresh
         so that timing is unchanged. *)
      List.concat_map (fun p -> refresh_best ~force_sync:true t ~now p)
        (Prefix.Set.elements all)
    else begin
      (* No damping: nothing about the loc-RIB moved while the session was
         down that isn't already in best_table, and session_down cleared
         this neighbor's adj-RIB-out — so the only possible updates are
         announcements of current state toward the revived neighbor.
         Same output, without an all-neighbors sync per prefix. *)
      let out = adj_out_for t neighbor in
      List.filter_map
        (fun p ->
          match desired_export t p neighbor with
          | Some d ->
              Prefix.Table.replace out p d;
              Some (neighbor, Announce d)
          | None -> None)
        (Prefix.Set.elements all)
    end
  end

let refresh_prefix t ~prefix =
  (* Forget what was last sent so [sync_exports] re-emits the current
     desired announcement even when it is unchanged: the receiving side
     may have flushed or lost it (session reset, filtered update), which
     the diff against our own adj-RIB-out cannot see. *)
  List.iter
    (fun (n, _) ->
      if not (session_is_down t n) then Prefix.Table.remove (adj_out_for t n) prefix)
    (neighbors t);
  sync_exports t prefix

let best t prefix = Prefix.Table.find_opt t.best_table prefix
let fib_lookup t ip = Prefix_trie.lookup ip t.fib

let prefixes t =
  Prefix.Table.fold (fun p _ acc -> p :: acc) t.best_table [] |> List.sort_uniq Prefix.compare

let originated t =
  Prefix.Table.fold (fun p _ acc -> p :: acc) t.locals [] |> List.sort_uniq Prefix.compare

let adj_in_size t =
  Prefix.Table.fold (fun _ table acc -> acc + Asn.Table.length table) t.adj_in 0

let reevaluate t ~now prefix = refresh_best t ~now prefix

let suppressed_candidates t prefix =
  Damp_tbl.fold
    (fun (p, neighbor) state acc ->
      if Prefix.equal p prefix && state.suppressed then neighbor :: acc else acc)
    t.damp []
  |> List.sort Asn.compare
