open Net
open Topology

type damping = {
  penalty_per_flap : float;
  suppress_threshold : float;
  reuse_threshold : float;
  half_life : float;
}

let default_damping =
  { penalty_per_flap = 1000.0; suppress_threshold = 2000.0; reuse_threshold = 750.0; half_life = 900.0 }

type config = {
  loop_limit : int;
  reject_peers_in_customer_paths : bool;
  strip_communities : bool;
  honor_no_export_to_peers : bool;
  default_provider : Asn.t option;
  local_pref_override : (Asn.t * int) list;
  damping : damping option;
  pref_jitter : int;
}

let default =
  {
    loop_limit = 1;
    reject_peers_in_customer_paths = false;
    strip_communities = false;
    honor_no_export_to_peers = true;
    default_provider = None;
    local_pref_override = [];
    damping = None;
    pref_jitter = 0;
  }

let local_pref_for config ~self ~neighbor ~rel =
  match List.assoc_opt neighbor (List.map (fun (a, p) -> (a, p)) config.local_pref_override) with
  | Some pref -> pref
  | None ->
      (* Explicit integer mix, not the polymorphic [Hashtbl.hash], so the
         per-neighbor preference jitter is pinned by this source alone. *)
      let jitter =
        if config.pref_jitter <= 0 then 0
        else begin
          let z = (Asn.to_int self * 0x9E3779B1) lxor (Asn.to_int neighbor * 0x85EBCA6B) in
          let z = z lxor (z lsr 16) in
          (z land 0xFFFF) mod (config.pref_jitter + 1)
        end
      in
      Relationship.local_pref rel + jitter

type import_verdict = Accepted of int | Rejected of string

let import config ~self ~peers_of_self ~neighbor ~rel (ann : Route.announcement) =
  if As_path.count self ann.path >= config.loop_limit then Rejected "loop detected"
  else if
    config.reject_peers_in_customer_paths
    && Relationship.equal rel Relationship.Customer
    && As_path.exists (fun a -> Asn.Set.mem a peers_of_self) ann.path
  then Rejected "peer AS in customer-announced path"
  else Accepted (local_pref_for config ~self ~neighbor ~rel)

(* Export is split into the per-neighbor predicate [export_allowed] and the
   neighbor-independent rewrite [export_ann], so a speaker syncing one
   prefix toward many neighbors computes (and interns) the outgoing
   announcement once and runs only the cheap predicate per neighbor. *)

let export_allowed config ~self ~entry ~to_neighbor ~to_rel =
  let { Route.ann; rel = learned_from; neighbor; _ } = entry in
  let blocked_by_community =
    List.exists Community.is_no_export ann.Route.communities
    || (config.honor_no_export_to_peers
       && Relationship.equal to_rel Relationship.Peer
       && List.exists
            (Community.is_no_export_to_peers ~asn:(Asn.to_int self))
            ann.Route.communities)
  in
  (not (Asn.equal to_neighbor neighbor && not (Route.is_local entry)))
  && Relationship.export_ok ~learned_from ~to_:to_rel
  && not blocked_by_community

let export_ann config ~self ~entry =
  let ann = entry.Route.ann in
  let communities = if config.strip_communities then [] else ann.Route.communities in
  let path =
    if Route.is_local entry then ann.Route.path else As_path.prepend self ann.Route.path
  in
  { ann with Route.path; communities; med = None }

let export config ~self ~entry ~to_neighbor ~to_rel =
  if export_allowed config ~self ~entry ~to_neighbor ~to_rel then
    Some (export_ann config ~self ~entry)
  else None
