val exported : int -> int
