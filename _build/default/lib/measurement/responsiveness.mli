(** Historical router responsiveness.

    Some routers never answer ICMP probes; treating their silence as
    unreachability would corrupt fault isolation. LIFEGUARD keeps a
    database of which addresses have historically responded so that, during
    a failure, "no reply" from a router configured never to reply is
    excluded from the suspect evidence (§4.1.2). *)

open Net

type t

val create : unit -> t

val configure_silent : t -> Ipv4.t -> unit
(** Mark an address as never answering probes (router ICMP policy). The
    data plane still forwards through it. *)

val configure_silent_fraction : t -> Prng.t -> Topology.As_graph.t -> fraction:float -> unit
(** Mark a random [fraction] of all router addresses silent — experiment
    setup matching the real-world mix of filtered routers. *)

val is_silent : t -> Ipv4.t -> bool

val note : t -> Ipv4.t -> now:float -> bool -> unit
(** Record a probe result for an address. *)

val ever_responded : t -> Ipv4.t -> bool
(** Whether any recorded probe of this address succeeded. *)

val expect_response : t -> Ipv4.t -> bool
(** Whether silence from this address is evidence of a problem: it is not
    configured silent, and it responded at some point in the past (or has
    never been probed, in which case we optimistically expect a reply). *)

val observation_count : t -> int
