(** Chaos injection for the fleet service: the failure modes a real
    LIFEGUARD deployment lives with, as deterministic knobs.

    Everything samples from an explicitly seeded {!Prng}, so a chaotic
    run is exactly reproducible — chaos perturbs the simulated world, not
    the simulation. *)

open Net

type config = {
  probe_loss : float;  (** Per-probe-pair loss probability, in [0,1]. *)
  vp_mtbf : float;  (** Mean uptime between VP crashes (s); 0 disables crashes. *)
  vp_mttr : float;  (** Mean VP downtime per crash (s). *)
  atlas_staleness : float;
      (** Probability a scheduled atlas refresh is skipped, in [0,1] —
          isolation then works from stale path history. *)
}

val none : config
(** All knobs off. *)

val validate : config -> config
(** Returns the config; raises [Invalid_argument] on out-of-range knobs. *)

type t

val create : ?config:config -> rng:Prng.t -> engine:Sim.Engine.t -> unit -> t

val start : t -> vantage_points:Asn.t list -> until:float -> unit
(** Arm the VP crash/recover renewal process (no-op when [vp_mtbf] is 0):
    exponential uptimes and downtimes per vantage point until the
    horizon. *)

val lose_probe : t -> bool
(** Sample the probe-loss coin (counted when it comes up lost). *)

val skip_refresh : t -> bool
(** Sample the atlas-staleness coin. *)

val vp_alive : t -> Asn.t -> bool
(** Is this vantage point currently up? *)

val crash_count : t -> int
val lost_probe_count : t -> int
val stale_refresh_count : t -> int
