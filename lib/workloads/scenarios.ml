open Net
open Topology

type testbed = {
  engine : Sim.Engine.t;
  graph : As_graph.t;
  gen : Topo_gen.t option;
  net : Bgp.Network.t;
  failures : Dataplane.Failure.set;
  probe : Dataplane.Probe.env;
  vantage_points : Asn.t list;
  targets : Asn.t list;
}

(* Synthetic testbeds run with per-neighbor preference jitter so that
   forward and reverse paths are asymmetric, as on the real Internet;
   hand-built scenario graphs (the case study) keep policy exact. *)
let jittered_config _ = { Bgp.Policy.default with Bgp.Policy.pref_jitter = 8 }

type infrastructure = All | Endpoints_only of Asn.t list | No_infrastructure

let testbed_of_graph ?(mrai = 30.0) ?config_of ?fib_install_delay ?gen
    ?(infrastructure = All) ?shards ?shard_pool ?record_barriers ~vantage_points ~targets
    graph =
  let engine = Sim.Engine.create () in
  let net =
    Bgp.Network.create ~engine ~graph ?config_of ~mrai ?fib_install_delay ?shards
      ?shard_pool ?record_barriers ()
  in
  let failures = Dataplane.Failure.create () in
  let probe = Dataplane.Probe.env net failures in
  (* Converging the full per-AS infrastructure announcement is ~99% of
     testbed construction cost; per-trial worlds announce only what they
     will probe between (or nothing for control-plane-only trials). *)
  (match infrastructure with
  | All -> Dataplane.Forward.announce_infrastructure net
  | Endpoints_only ases -> Dataplane.Forward.announce_infrastructure_for net ases
  | No_infrastructure -> ());
  (match infrastructure with
  | No_infrastructure -> ()
  | All | Endpoints_only _ -> Bgp.Network.run_until_quiet ~timeout:36000.0 net);
  { engine; graph; gen; net; failures; probe; vantage_points; targets }

let settle bed ~seconds =
  let engine = bed.engine in
  let wake = Sim.Engine.now engine +. seconds in
  Sim.Engine.schedule engine ~at:wake ignore;
  Sim.Engine.run ~until:wake engine

type planetlab_infrastructure = Sites | Of of infrastructure

let planetlab ?(ases = 318) ?(sites = 20) ?(target_count = 25) ?mrai ?infrastructure ~seed
    () =
  let rng = Prng.create ~seed in
  let gen = Topo_gen.generate ~params:(Topo_gen.sized ases) ~seed:(Prng.int rng 1000000) () in
  let graph = gen.Topo_gen.graph in
  let stubs = Array.of_list gen.Topo_gen.stub_list in
  let vantage_points =
    Array.to_list (Prng.sample_without_replacement rng sites stubs)
  in
  (* Targets: the highest-degree transit ASes, as in the EC2 study. *)
  let transits =
    Topo_gen.transit_ases gen
    |> List.map (fun a -> (As_graph.degree graph a, a))
    |> List.sort (fun (d1, a1) (d2, a2) ->
           match Int.compare d2 d1 with
           | 0 -> Asn.compare a1 a2
           | c -> c)
    |> List.map snd
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let targets = take target_count transits in
  let infrastructure =
    match infrastructure with
    | Some Sites -> Some (Endpoints_only (vantage_points @ targets))
    | Some (Of i) -> Some i
    | None -> None
  in
  testbed_of_graph ?mrai ~config_of:jittered_config ~gen ?infrastructure ~vantage_points
    ~targets graph

type mux = {
  bed : testbed;
  origin : Asn.t;
  providers : Asn.t list;
  plan : Lifeguard.Remediate.plan;
  collector : Bgp.Network.Collector.t;
  feeds : Asn.t list;
}

let production_prefix = Prefix.of_string_exn "203.0.113.0/24"
let sentinel_prefix = Prefix.of_string_exn "203.0.112.0/23"

let bgpmux ?(ases = 318) ?(provider_count = 5) ?(feed_count = 40) ?mrai ?(prepend_copies = 3)
    ?fib_install_delay ?infrastructure ?shards ?shard_pool ?record_barriers ~seed () =
  let rng = Prng.create ~seed in
  let gen = Topo_gen.generate ~params:(Topo_gen.sized ases) ~seed:(Prng.int rng 1000000) () in
  let graph = gen.Topo_gen.graph in
  (* The BGP-Mux AS: a fresh stub attached to distinct tier-2 providers
     ("universities"). *)
  let origin = Asn.of_int 64500 in
  As_graph.add_as graph ~tier:4 origin;
  let providers =
    Array.to_list
      (Prng.sample_without_replacement rng provider_count
         (Array.of_list gen.Topo_gen.tier2))
  in
  List.iter
    (fun p -> As_graph.add_link graph ~a:origin ~b:p ~rel:Relationship.Provider)
    providers;
  (* Feeds: collector peers are predominantly transit networks in
     reality (RouteViews/RIPE peers are ISPs), with a sprinkling of
     well-connected edges. *)
  let transit_pool =
    List.filter (fun a -> not (Asn.equal a origin)) (Topo_gen.transit_ases gen)
  in
  let stub_pool =
    List.filter (fun a -> not (Asn.equal a origin)) gen.Topo_gen.stub_list
  in
  let n_transit = feed_count * 7 / 10 in
  let feeds =
    Array.to_list
      (Prng.sample_without_replacement rng n_transit (Array.of_list transit_pool))
    @ Array.to_list
        (Prng.sample_without_replacement rng (feed_count - n_transit)
           (Array.of_list stub_pool))
  in
  let vantage_points =
    Array.to_list
      (Prng.sample_without_replacement rng 20 (Array.of_list gen.Topo_gen.stub_list))
  in
  let bed =
    testbed_of_graph ?mrai ~config_of:jittered_config ?fib_install_delay ~gen ?infrastructure
      ?shards ?shard_pool ?record_barriers ~vantage_points ~targets:[] graph
  in
  let collector = Bgp.Network.Collector.attach bed.net ~name:"collector" ~peers:feeds in
  let plan =
    Lifeguard.Remediate.plan ~sentinel:sentinel_prefix ~prepend_copies ~origin
      ~production:production_prefix ()
  in
  { bed; origin; providers; plan; collector; feeds }

let harvest_on_path_ases mux =
  let tier1s =
    match mux.bed.gen with
    | Some gen -> gen.Topo_gen.tier1
    | None -> []
  in
  let excluded =
    Asn.Set.of_list ((mux.origin :: mux.providers) @ tier1s)
  in
  let on_path =
    List.fold_left
      (fun acc feed ->
        match Bgp.Network.best_route mux.bed.net feed production_prefix with
        | None -> acc
        | Some entry ->
            Bgp.As_path.fold
              (fun acc a -> if Asn.Set.mem a excluded then acc else Asn.Set.add a acc)
              acc entry.Bgp.Route.ann.Bgp.Route.path)
      Asn.Set.empty mux.feeds
  in
  (* Only transit ASes are worth poisoning; stubs cannot be on transit
     paths anyway but the origin's own ASN appears in every path. *)
  Asn.Set.elements (Asn.Set.remove mux.origin on_path)

module Case_study = struct
  type t = {
    bed : testbed;
    origin : Asn.t;
    uwisc : Asn.t;
    wiscnet : Asn.t;
    internet2 : Asn.t;
    apan : Asn.t;
    tanet : Asn.t;
    taiwan : Asn.t;
    twgate : Asn.t;
    uunet : Asn.t;
    level3 : Asn.t;
    plan : Lifeguard.Remediate.plan;
  }

  let build () =
    let g = As_graph.create () in
    let origin = Asn.of_int 64500 in
    let uwisc = Asn.of_int 59 in
    let wiscnet = Asn.of_int 2381 in
    let internet2 = Asn.of_int 11537 in
    let apan = Asn.of_int 7660 in
    let tanet = Asn.of_int 1659 in
    let taiwan = Asn.of_int 17716 in
    let twgate = Asn.of_int 9505 in
    let uunet = Asn.of_int 701 in
    let level3 = Asn.of_int 3356 in
    As_graph.add_as g ~tier:4 origin;
    As_graph.add_as g ~tier:3 ~routers:2 uwisc;
    As_graph.add_as g ~tier:2 ~routers:2 wiscnet;
    As_graph.add_as g ~tier:1 ~routers:3 internet2;
    As_graph.add_as g ~tier:2 ~routers:2 apan;
    As_graph.add_as g ~tier:2 ~routers:2 tanet;
    As_graph.add_as g ~tier:4 taiwan;
    As_graph.add_as g ~tier:2 ~routers:2 twgate;
    As_graph.add_as g ~tier:1 ~routers:3 uunet;
    As_graph.add_as g ~tier:1 ~routers:3 level3;
    (* Academic chain: taiwan -> tanet -> apan -> I2 -> wiscnet -> uwisc. *)
    As_graph.add_link g ~a:origin ~b:uwisc ~rel:Relationship.Provider;
    As_graph.add_link g ~a:uwisc ~b:wiscnet ~rel:Relationship.Provider;
    As_graph.add_link g ~a:wiscnet ~b:internet2 ~rel:Relationship.Provider;
    As_graph.add_link g ~a:apan ~b:internet2 ~rel:Relationship.Peer;
    As_graph.add_link g ~a:tanet ~b:apan ~rel:Relationship.Provider;
    As_graph.add_link g ~a:taiwan ~b:tanet ~rel:Relationship.Provider;
    (* Commercial chain: taiwan -> twgate -> uunet -> level3 -> uwisc.
       One hop shorter, so the Taiwanese site prefers it. *)
    As_graph.add_link g ~a:taiwan ~b:twgate ~rel:Relationship.Provider;
    As_graph.add_link g ~a:twgate ~b:uunet ~rel:Relationship.Provider;
    As_graph.add_link g ~a:uunet ~b:level3 ~rel:Relationship.Peer;
    As_graph.add_link g ~a:uwisc ~b:level3 ~rel:Relationship.Provider;
    (* A second LIFEGUARD vantage point in a distinct edge network. *)
    let vp2 = Asn.of_int 64501 in
    As_graph.add_as g ~tier:4 vp2;
    As_graph.add_link g ~a:vp2 ~b:level3 ~rel:Relationship.Provider;
    let bed =
      testbed_of_graph ~mrai:5.0 ~vantage_points:[ vp2 ] ~targets:[ taiwan ] g
    in
    let plan =
      Lifeguard.Remediate.plan ~sentinel:sentinel_prefix ~origin
        ~production:production_prefix ()
    in
    {
      bed;
      origin;
      uwisc;
      wiscnet;
      internet2;
      apan;
      tanet;
      taiwan;
      twgate;
      uunet;
      level3;
      plan;
    }

  let uunet_failure t =
    Dataplane.Failure.spec ~mode:Dataplane.Failure.Data_only ~toward:sentinel_prefix
      (Dataplane.Failure.Node t.uunet)
end

module Placement = struct
  type placed = {
    spec : Dataplane.Failure.spec;
    location : Asn.t;
    far_side : Asn.t option;
  }

  let transit_hops bed ~from_ ~to_ =
    let walk =
      Dataplane.Forward.walk bed.net bed.failures ~src:from_
        ~dst:(Dataplane.Forward.probe_address bed.net to_)
        ()
    in
    let path = Dataplane.Forward.as_path_of_walk walk in
    (* Interior hops only: breaking an endpoint is not a routable-around
       transit failure. *)
    match path with
    | [] | [ _ ] | [ _; _ ] -> []
    | _ :: interior -> List.filteri (fun i _ -> i < List.length interior - 1) interior

  let on_path rng bed ?toward_src ~src ~dst ~shape () =
    let toward_src =
      match toward_src with
      | Some prefix -> prefix
      | None -> Dataplane.Forward.infrastructure_prefix src
    in
    let toward_dst = Dataplane.Forward.infrastructure_prefix dst in
    let direction = shape.Outage_gen.direction in
    let hops =
      match direction with
      | Outage_gen.Reverse -> transit_hops bed ~from_:dst ~to_:src
      | Outage_gen.Forward | Outage_gen.Bidirectional -> transit_hops bed ~from_:src ~to_:dst
    in
    match hops with
    | [] -> None
    | _ ->
        let idx = Prng.int rng (List.length hops) in
        let location = List.nth hops idx in
        let toward =
          match direction with
          | Outage_gen.Reverse -> Some toward_src
          | Outage_gen.Forward -> Some toward_dst
          | Outage_gen.Bidirectional -> None
        in
        let mk scope = Dataplane.Failure.spec ?toward scope in
        if shape.Outage_gen.on_link && idx + 1 < List.length hops then begin
          let far = List.nth hops (idx + 1) in
          Some
            {
              spec = mk (Dataplane.Failure.Link (location, far));
              location;
              far_side = Some far;
            }
        end
        else
          Some { spec = mk (Dataplane.Failure.Node location); location; far_side = None }
end
