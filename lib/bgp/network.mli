(** The inter-domain control plane: all speakers of a topology wired
    through the discrete-event engine.

    Updates travel with a per-link propagation delay and are paced by a
    per-session MRAI timer with coalescing (the latest pending update per
    prefix wins), which is what produces the realistic path-exploration
    and convergence behaviour measured in Fig. 6 of the paper. The network
    also hosts route collectors — passive feeds recording each peer's
    loc-RIB changes with timestamps — which is how the paper (and this
    reproduction) measures convergence and poisoning efficacy.

    Observability: deliveries feed the [bgp.delivered],
    [bgp.updates.announce], [bgp.updates.withdraw] and [bgp.mrai_rounds]
    counters, and — when tracing is on — emit [bgp.deliver] and
    [bgp.mrai] trace events stamped with simulation time (see
    {!Obs.Trace}). *)

open Net
open Topology

type t

type update_record = {
  time : float;
  speaker : Asn.t;  (** Whose loc-RIB changed. *)
  prefix : Prefix.t;
  route : Route.entry option;  (** The new best route; [None] = lost. *)
}

val create :
  engine:Sim.Engine.t ->
  graph:As_graph.t ->
  ?config_of:(Asn.t -> Policy.config) ->
  ?delay_of:(Asn.t -> Asn.t -> float) ->
  ?mrai:float ->
  ?fib_install_delay:float ->
  ?shards:int ->
  ?shard_pool:Par.Pool.t ->
  ?record_barriers:bool ->
  unit ->
  t
(** Build a speaker per AS of [graph]. [config_of] supplies per-AS policy
    (default {!Policy.default}); [delay_of] the one-way update propagation
    delay per directed link (default: deterministic 50–250 ms derived from
    the ASN pair); [mrai] the min-route-advertisement interval (default
    30 s, applied per session with per-session deterministic jitter).
    [fib_install_delay] (default 0: atomic) delays data-plane FIB commits
    behind loc-RIB changes by up to that many seconds (deterministic
    per-AS), modeling the RIB-to-FIB latency that causes transient
    blackholes and micro-loops during convergence.

    [shards] switches the network into {e sharded mode}: the AS graph is
    partitioned into that many domains ({!Topology.Partition}, fixed
    seed, cut-minimizing), each with its own event queue and path store,
    advanced between deterministic time barriers
    ({!Shard.Barrier}) driven from [engine] (which becomes the {e
    control} engine). Every BGP delivery is exchanged at barriers in the
    canonical [(arrival, src, dst, prefix)] order, so results are
    byte-identical at any shard count and any [shard_pool] width — but
    note they may differ from the unsharded ([?shards] absent) engine,
    whose delivery interleaving at equal timestamps follows scheduling
    order instead. [shard_pool] (settable later with {!set_shard_pool})
    runs barrier windows on pool domains; without it shards advance
    sequentially inline, with identical results. [record_barriers]
    (tests only) retains per-barrier history rows for
    {!barrier_history}. *)

val shards : t -> int
(** Number of shards ([1] for a legacy, unsharded network). *)

val is_sharded : t -> bool
(** Whether the network was created with [?shards] (barrier mode). *)

val shard_of_asn : t -> Asn.t -> int
(** The shard owning an AS's speaker ([0] for unsharded networks). *)

val cut_edges : t -> int
(** Undirected adjacencies whose endpoints landed in different shards
    ([0] for unsharded networks). *)

val set_shard_pool : t -> Par.Pool.t option -> unit
(** Install (or remove) the worker pool barrier windows fan out on. The
    caller owns the pool's lifecycle. No-op on unsharded networks. *)

val barrier_count : t -> int
(** Barriers executed so far ([0] for unsharded networks). *)

val cut_message_count : t -> int
(** Updates that crossed a shard boundary so far ([0] unsharded). *)

val barrier_history : t -> (float * int * int) list
(** With [record_barriers]: per-barrier [(window start, messages
    injected, cross-shard messages injected)] rows, oldest first. *)

val sync : t -> unit
(** Catch every shard up to the control clock (run all barrier windows
    due so far, inline). Control-plane entry points — {!announce},
    {!fail_link}, {!best_route}, the collector reads, … — do this
    implicitly; call it directly only before inspecting a {!speaker}
    raw. No-op on unsharded networks. *)

val engine : t -> Sim.Engine.t
(** The shared discrete-event engine the network schedules on. *)

val path_store : t -> Path_store.t
(** This world's control-side path/announcement interner. Unsharded,
    {!create} builds one store and hands it to every speaker, so
    structurally-equal routes inside the world are physically shared; it
    is never shared across worlds (lib/par worlds are share-nothing). In
    sharded mode each shard has its own store and announcements are
    re-interned as they cross a boundary; this store holds only the
    control plane's own paths (those passed to {!announce}). *)

val graph : t -> As_graph.t
(** The annotated AS topology the speakers were built from. *)

val announce :
  t -> origin:Asn.t -> prefix:Prefix.t -> ?per_neighbor:(Asn.t -> As_path.t option) ->
  unit -> unit
(** Originate (or re-originate with new paths) [prefix] at [origin], at
    the current simulation time. Without [per_neighbor] every neighbor
    receives the plain path [\[origin\]]. Use [per_neighbor] for
    prepending, poisoning and selective advertising. Run the engine to
    propagate. *)

val withdraw : t -> origin:Asn.t -> prefix:Prefix.t -> unit
(** Withdraw an originated prefix. *)

val refresh : t -> origin:Asn.t -> prefix:Prefix.t -> unit
(** Idempotently re-advertise [prefix]'s current origination toward every
    up neighbor, bypassing the adj-RIB-out diff (see
    {!Speaker.refresh_prefix}). Use after a fault may have flushed or
    lost the announcement downstream: re-calling {!announce} with the
    same paths is a no-op, this is not. MRAI pacing still applies. *)

val owner : t -> Prefix.t -> Asn.t option
(** The AS currently originating exactly this prefix. *)

val owner_of_address : t -> Ipv4.t -> (Prefix.t * Asn.t) option
(** The most specific originated prefix covering the address, with its
    originating AS — whose hosts answer probes sent to that address. *)

val speaker : t -> Asn.t -> Speaker.t
(** Direct access to an AS's speaker (read-mostly: RIB inspection). On a
    sharded network this is raw access: call {!sync} first if the
    barrier may be behind the control clock. *)

val best_route : t -> Asn.t -> Prefix.t -> Route.entry option
(** [best_route t asn prefix] is [asn]'s loc-RIB best route for exactly
    [prefix] ({!Speaker.best} through the network). *)

val fib_lookup : t -> Asn.t -> Ipv4.t -> (Prefix.t * Route.entry) option
(** Longest-prefix match against [asn]'s FIB — the data-plane view,
    which can lag the loc-RIB when FIB install latency is modeled. *)

val run_until_quiet : ?timeout:float -> t -> unit
(** Drive the engine until no BGP events remain queued (or [timeout]
    simulated seconds elapsed, default 3600). Other events scheduled on
    the same engine keep it busy, so convergence experiments should use a
    dedicated engine or the timeout. *)

val fail_link : t -> a:Asn.t -> b:Asn.t -> unit
(** Control-plane link failure: both sessions drop, routes withdraw. *)

val restore_link : t -> a:Asn.t -> b:Asn.t -> unit
(** Bring the sessions back; full-table re-advertisement follows. *)

val fail_node : t -> Asn.t -> unit
(** All sessions of an AS drop (router death, visible to BGP). *)

val restore_node : t -> Asn.t -> unit

val crash_node : t -> Asn.t -> unit
(** Router crash with loc-RIB loss: every session drops {e and} the AS
    forgets its local originations. Learned routes were already flushed
    by the session drops; after {!restart_node} the speaker re-learns
    the world from its neighbors and re-originates from the
    administrative intent recorded by {!announce}. *)

val restart_node : t -> Asn.t -> unit
(** Bring a crashed router back: sessions re-establish (neighbors
    re-advertise their tables) and every prefix this AS was configured
    to originate is re-announced with its last-announced paths. *)

val reoriginate : t -> Asn.t -> unit
(** Just the re-origination half of {!restart_node}: re-announce every
    prefix the AS is configured to originate. For callers (the fault
    injector) that restore sessions selectively. *)

val set_link_faults :
  t -> (from:Asn.t -> to_:Asn.t -> [ `Deliver | `Drop | `Duplicate ]) option -> unit
(** Install (or clear, with [None]) the wire-fault hook. It is sampled
    once per scheduled update message, after MRAI batching: [`Drop]
    silently loses the message, [`Duplicate] delivers it twice (the copy
    trailing by half a propagation delay). With no hook installed the
    wire is perfectly reliable and behavior is byte-identical to a
    build without fault injection. *)

(** Passive feeds recording peers' loc-RIB changes. *)
module Collector : sig
  type net := t
  type t

  val attach : net -> name:string -> peers:Asn.t list -> t
  (** Record every loc-RIB change of each peer from now on. *)

  val name : t -> string
  val peers : t -> Asn.t list

  val log : t -> update_record list
  (** All records, oldest first. *)

  val since : t -> float -> update_record list
  (** Records with [time >=] the given instant, oldest first. *)

  val clear : t -> unit

  val current_route : t -> peer:Asn.t -> prefix:Prefix.t -> Route.entry option
  (** The peer's best route as of its latest record; [None] when the feed
      has no record for that (peer, prefix) or the peer lost the route. *)

  val route_view : t -> peer:Asn.t -> prefix:Prefix.t -> Route.entry option option
  (** Like {!current_route} but distinguishing the feed having no record
      at all ([None]) from the peer having explicitly lost the route
      ([Some None]) — the distinction the remediation watchdog needs to
      tell "no data" from "collateral damage". *)
end

val message_count : t -> int
(** Total update messages delivered since creation (load accounting). *)

val delivery_bucket_width : float
(** Resolution of the delivery-time accounting behind
    {!messages_between}: deliveries are counted into fixed-width time
    buckets of this many seconds rather than logged individually. *)

val messages_between : t -> since:float -> until:float -> int
(** Update messages delivered in a time window, at
    {!delivery_bucket_width} resolution: every bucket overlapping
    [\[since, until\]] is counted in full, so the window effectively
    rounds outward to bucket boundaries. Exact for windows aligned to
    (or wider than) the bucket grid; [0] when [until < since]. *)
