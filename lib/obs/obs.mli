(** Observability for the simulator itself: structured tracing, metrics
    and span timing, shared by every layer between the event engine and
    the CLIs.

    Everything here is stdlib-only and domain-safe by construction: all
    mutable state is either per-domain (shards, trace buffers) or guarded
    by a registry mutex touched only on the cold paths, and every merge
    is an order-insensitive reduction — which is how instrumentation
    coexists with the repository's byte-identical [--jobs] invariant (see
    ARCHITECTURE.md). With tracing and metrics disabled (the default),
    every instrument costs one atomic flag read and allocates nothing.

    Layering: [lib/obs] depends on nothing; [sim], [bgp], [dataplane],
    [measurement] and [experiments] record into it; the binaries
    ([bench/main], [bin/lifeguard_cli]) enable it via [--trace FILE] and
    [--metrics] and render the results. *)

module Clock = Clock
(** Injected wall-clock source (libraries may not read the clock). *)

module Metrics = Metrics
(** Counters / max-gauges / fixed-bucket histograms, per-domain shards
    merged at read time. *)

module Trace = Trace
(** JSONL event sink with per-domain buffering. *)

module Span = Span
(** Begin/end phase brackets over {!Trace} + {!Clock}. *)
