(** Planned vs computed remediation on a recurring-outage workload.

    The same fleet, same seeds, run twice: once with the plan cache
    (offline planner seed + miss memoization + invalidation/demotion)
    consulted before every decision, once computing every remediation
    from scratch. Both runs charge [decision_latency] simulated seconds
    per fresh decision round; a plan hit skips it — so the repair-latency
    gap between the two columns is exactly the time the precomputed
    failure map saves, and the hit-rate table says how often the map had
    the answer ready.

    Worlds decompose and merge exactly as in {!Fleet_study}
    ([config.target_count] targets per world, world seeds [seed + shard]),
    and both modes of one world share a seed — so the comparison is
    paired, and every table is byte-identical at any [--jobs] (and any
    [config.shards]). *)

type mode = {
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  poisons : int;
  time_to_repair : float list;  (** Pooled across worlds, ascending. *)
  time_to_confirm : float list;  (** Pooled across worlds, ascending. *)
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_demotions : int;
}

type result = {
  worlds : int;
  targets : int;
  days : float;
  decision_latency : float;
  planned : mode;
  computed : mode;
}

(* The recurring-outage workload: few targets failing often, so the same
   (target, failure-class) pairs come back — the regime precomputed
   plans exist for. Chaos and control-plane faults stay off so the two
   modes differ only in how decisions are produced. *)
let default_config =
  {
    Fleet.Service.default_config with
    Fleet.Service.target_count = 10;
    duration = 43200.0;
    outages_per_day = 48.0;
    (* 1.5x the recheck interval: a latency equal to the recheck period
       can resonate with the age-gate grid and land both arms' poisons on
       the same tick, hiding the cost it is meant to model. *)
    decision_latency = 180.0;
  }

let merge reports =
  let open Fleet.Service in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    detected = sum (fun r -> r.detected);
    repaired = sum (fun r -> r.repaired);
    stood_down = sum (fun r -> r.stood_down);
    gave_up = sum (fun r -> r.gave_up);
    poisons = sum (fun r -> r.poisons);
    time_to_repair =
      List.sort Float.compare (List.concat_map (fun r -> r.time_to_repair) reports);
    time_to_confirm =
      List.sort Float.compare (List.concat_map (fun r -> r.time_to_confirm) reports);
    plan_hits = sum (fun r -> r.plan_hits);
    plan_misses = sum (fun r -> r.plan_misses);
    plan_invalidations = sum (fun r -> r.plan_invalidations);
    plan_demotions = sum (fun r -> r.plan_demotions);
  }

let run ?(config = default_config) ?(targets = 40) ?(jobs = 1) ~seed () =
  if targets <= 0 then invalid_arg "Plan_study.run: targets must be positive";
  let per_world = max 1 config.Fleet.Service.target_count in
  let worlds = (targets + per_world - 1) / per_world in
  let trial ~planning shard =
    let count =
      if shard = worlds - 1 then targets - (per_world * (worlds - 1)) else per_world
    in
    fun () ->
      Fleet.Service.run
        ~config:{ config with Fleet.Service.target_count = count; planning }
        ~seed:(seed + shard) ()
  in
  (* One trial list, planned worlds first: paired seeds, fixed order, and
     the worker pool drains both modes concurrently. *)
  let reports =
    Runner.run_trials ~jobs
      (List.init (2 * worlds) (fun i ->
           if i < worlds then trial ~planning:true i else trial ~planning:false (i - worlds)))
  in
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> ([], [])
    | r :: rest ->
        let a, b = split (n - 1) rest in
        (r :: a, b)
  in
  let planned_reports, computed_reports = split worlds reports in
  {
    worlds;
    targets;
    days = config.Fleet.Service.duration /. 86400.0;
    decision_latency = config.Fleet.Service.decision_latency;
    planned = merge planned_reports;
    computed = merge computed_reports;
  }

let hit_rate m =
  let lookups = m.plan_hits + m.plan_misses in
  if lookups = 0 then 0.0 else float_of_int m.plan_hits /. float_of_int lookups

let quantile samples q =
  match samples with
  | [] -> None
  | _ ->
      let cdf = Stats.Ecdf.of_samples (Array.of_list samples) in
      Some (Stats.Ecdf.quantile cdf q)

let to_tables r =
  let cache =
    Stats.Table.create ~title:"Plan cache on the recurring-outage workload"
      ~columns:[ "metric"; "value" ]
  in
  let p = r.planned in
  Stats.Table.add_rows cache
    [
      [ "observation window (days)"; Stats.Table.cell_float ~decimals:2 r.days ];
      [ "worlds x targets"; Printf.sprintf "%d x ~%d" r.worlds (r.targets / r.worlds) ];
      [ "lookups (hits + misses)"; Stats.Table.cell_int (p.plan_hits + p.plan_misses) ];
      [ "  served from plan (hits)"; Stats.Table.cell_int p.plan_hits ];
      [ "  computed fresh (misses)"; Stats.Table.cell_int p.plan_misses ];
      [ "hit rate"; Stats.Table.cell_pct (hit_rate p) ];
      [ "invalidations (churn + breaker)"; Stats.Table.cell_int p.plan_invalidations ];
      [ "demotions (watchdog divergence)"; Stats.Table.cell_int p.plan_demotions ];
    ];
  let fmt_q samples q =
    match quantile samples q with
    | Some v -> Stats.Table.cell_float ~decimals:0 v
    | None -> "-"
  in
  let latency =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "Repair latency, detection -> sentinel-confirmed (fresh decision costs %.0fs)"
           r.decision_latency)
      ~columns:[ "metric"; "planned"; "computed" ]
  in
  let c = r.computed in
  Stats.Table.add_rows latency
    [
      [ "outages detected"; Stats.Table.cell_int p.detected; Stats.Table.cell_int c.detected ];
      [ "repaired"; Stats.Table.cell_int p.repaired; Stats.Table.cell_int c.repaired ];
      [ "stood down"; Stats.Table.cell_int p.stood_down; Stats.Table.cell_int c.stood_down ];
      [ "gave up"; Stats.Table.cell_int p.gave_up; Stats.Table.cell_int c.gave_up ];
      [ "poisons announced"; Stats.Table.cell_int p.poisons; Stats.Table.cell_int c.poisons ];
      [
        "reroutes confirmed";
        Stats.Table.cell_int (List.length p.time_to_confirm);
        Stats.Table.cell_int (List.length c.time_to_confirm);
      ];
      [
        "time to reroute p50 (s)";
        fmt_q p.time_to_confirm 0.5;
        fmt_q c.time_to_confirm 0.5;
      ];
      [
        "time to reroute p90 (s)";
        fmt_q p.time_to_confirm 0.9;
        fmt_q c.time_to_confirm 0.9;
      ];
      [ "time to repair p50 (s)"; fmt_q p.time_to_repair 0.5; fmt_q c.time_to_repair 0.5 ];
      [ "time to repair p90 (s)"; fmt_q p.time_to_repair 0.9; fmt_q c.time_to_repair 0.9 ];
    ];
  [ cache; latency ]
