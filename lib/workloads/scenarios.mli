(** Experiment scenario builders: the simulated counterparts of the
    paper's testbeds.

    {!planetlab} stands in for the PlanetLab mesh (vantage points in edge
    networks probing each other and routers in large transit ASes);
    {!bgpmux} for the BGP-Mux deployment (an origin AS multi-homed to
    five university providers, with a route-collector feed); and
    {!case_study} for §6's fixed topology (a Taiwanese site whose reverse
    path silently dies inside a commercial transit). *)

open Net
open Topology

type testbed = {
  engine : Sim.Engine.t;
  graph : As_graph.t;
  gen : Topo_gen.t option;  (** The generator output, when synthetic. *)
  net : Bgp.Network.t;
  failures : Dataplane.Failure.set;
  probe : Dataplane.Probe.env;
  vantage_points : Asn.t list;
  targets : Asn.t list;
}

val settle : testbed -> seconds:float -> unit
(** Advance the simulation clock with no traffic — letting MRAI windows
    expire so the next announcement propagates like the paper's
    experiments, which spaced announcements 90 minutes apart. *)

type infrastructure =
  | All  (** One infrastructure prefix per AS, announced and converged. *)
  | Endpoints_only of Asn.t list
      (** Only the listed ASes' infrastructure prefixes. Probes target —
          and hop replies return to — endpoint addresses only, so a trial
          that probes between a known set of ASes needs only those
          prefixes; skipping the rest removes ~99% of testbed
          construction cost, which is what makes cheap per-trial worlds
          (and hence the domain-parallel runner) affordable. *)
  | No_infrastructure
      (** Control-plane-only trials: nothing announced, no convergence
          run at build time. *)

type planetlab_infrastructure =
  | Sites  (** [Endpoints_only] of the chosen vantage points + targets. *)
  | Of of infrastructure

val planetlab :
  ?ases:int ->
  ?sites:int ->
  ?target_count:int ->
  ?mrai:float ->
  ?infrastructure:planetlab_infrastructure ->
  seed:int ->
  unit ->
  testbed
(** A synthetic Internet of roughly [ases] ASes (default 318) with
    infrastructure prefixes announced and converged (default [Of All];
    [Sites] restricts announcements to the chosen vantage points and
    targets, which is all the probing experiments touch). [sites]
    (default 20) stub ASes act as PlanetLab vantage points;
    [target_count] (default 25) targets are drawn from the highest-degree
    transit ASes, echoing the EC2 study's "five routers each from the 50
    highest-degree ASes". *)

val production_prefix : Prefix.t
(** The /24 carrying "real" traffic in mux scenarios (203.0.113.0/24). *)

val sentinel_prefix : Prefix.t
(** Its covering /23 sentinel (203.0.112.0/23); the low half is unused
    address space for repair probes. *)

type mux = {
  bed : testbed;
  origin : Asn.t;  (** The LIFEGUARD AS (BGP-Mux AS). *)
  providers : Asn.t list;  (** Its university muxes. *)
  plan : Lifeguard.Remediate.plan;
  collector : Bgp.Network.Collector.t;
  feeds : Asn.t list;  (** Route-collector peer ASes. *)
}

val bgpmux :
  ?ases:int ->
  ?provider_count:int ->
  ?feed_count:int ->
  ?mrai:float ->
  ?prepend_copies:int ->
  ?fib_install_delay:float ->
  ?infrastructure:infrastructure ->
  ?shards:int ->
  ?shard_pool:Par.Pool.t ->
  ?record_barriers:bool ->
  seed:int ->
  unit ->
  mux
(** A {!planetlab}-style Internet plus a multi-homed origin attached to
    [provider_count] (default 5) distinct transit providers, a production
    /24 with covering /23 sentinel, and a collector fed by [feed_count]
    (default 40) ASes across tiers. The baseline is {e not} announced —
    each experiment controls its own announcements. [infrastructure]
    (default [All]) selects which ASes announce infrastructure prefixes;
    control-plane experiments pass [No_infrastructure] so per-trial
    worlds build in milliseconds. *)

val harvest_on_path_ases : mux -> Asn.t list
(** The transit ASes appearing on collector peers' current paths to the
    production prefix, excluding the origin, its direct providers and
    tier-1s — the paper's §5 harvesting step that chooses which ASes to
    poison. Requires the production prefix to be announced and the
    network converged. *)

(** The fixed topology of the paper's §6 case study. *)
module Case_study : sig
  type t = {
    bed : testbed;
    origin : Asn.t;  (** The LIFEGUARD AS announcing via UWisc. *)
    uwisc : Asn.t;
    wiscnet : Asn.t;
    internet2 : Asn.t;
    apan : Asn.t;
    tanet : Asn.t;
    taiwan : Asn.t;  (** The National Tsing Hua University site. *)
    twgate : Asn.t;
    uunet : Asn.t;
    level3 : Asn.t;
    plan : Lifeguard.Remediate.plan;
  }

  val build : unit -> t
  (** Converged, infrastructure announced; the Taiwanese site initially
      routes to the origin through TWGate -> UUNET -> Level3 -> UWisc
      (shorter than the academic TANet -> APAN -> I2 -> WiscNet chain).
      No failure injected yet. *)

  val uunet_failure : t -> Dataplane.Failure.spec
  (** The silent failure of §6: UUNET keeps announcing but drops packets
      destined to the origin's address space (scoped to the sentinel, so
      production, sentinel and repair probes all see it). *)
end

(** Placing a synthetic failure on the live path between two ASes. *)
module Placement : sig
  type placed = {
    spec : Dataplane.Failure.spec;
    location : Asn.t;  (** The AS at (or nearest) the failure. *)
    far_side : Asn.t option;  (** The other end for link failures. *)
  }

  val on_path :
    Prng.t ->
    testbed ->
    ?toward_src:Prefix.t ->
    src:Asn.t ->
    dst:Asn.t ->
    shape:Outage_gen.shape ->
    unit ->
    placed option
  (** Choose a transit AS (or inter-AS link) on the current data-plane
      path matching [shape]: reverse failures sit on the [dst -> src]
      path and are scoped toward [src]'s infrastructure prefix, forward
      failures on the [src -> dst] path toward [dst]'s, bidirectional
      failures are unscoped. [toward_src] overrides the reverse scope — a
      LIFEGUARD origin passes its sentinel prefix so reverse failures hit
      the whole announced space, monitors included. Returns [None] when
      the path has no transit hops to break. *)
end
