(** The shape of an isolation verdict, as a plan key.

    A remediation plan is precomputed per (target, failure class): the
    class captures exactly the parts of an {!Lifeguard.Isolation.diagnosis}
    that the decision process consumes — which AS is blamed, the failure
    direction, and whether path-reversal evidence (a working forward path)
    was found. Two outages with the same class get the same remediation,
    which is what makes the offline failure map useful. *)

open Net
open Lifeguard

type t = {
  blamed : Asn.t;  (** The AS the isolation pipeline blamed. *)
  direction : Isolation.direction;
  reversal : bool;  (** Was a working reverse-direction path observed? *)
}

val of_diagnosis : Isolation.diagnosis -> t option
(** [None] when the diagnosis blames no specific AS ([Unlocated]) — such
    outages have no plannable class and always go through the fresh
    decision process. *)

val compare : t -> t -> int
(** Total order (blamed AS, then direction, then reversal) — the
    iteration order of every plan store, hence part of the determinism
    story. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
