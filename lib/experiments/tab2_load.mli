(** Table 2: additional daily path changes per router under a deployment.

    Paper grid over I (fraction of ISPs deploying), T (fraction of
    networks monitored) and d (minutes before poisoning); for reference,
    a single-homed edge router sees ~110K updates/day. *)

type result = {
  rows : Lifeguard.Load_model.grid_row list;
  reference_cell : float;  (** I=0.01, T=1.0, d=15 — anchored at ~275. *)
  overhead_small_deploy : float;
      (** Relative to the 110K/day edge router, at I=0.1, T=1.0, d=15. *)
}

val paper_value : d:float -> t:float -> i:float -> float option
(** The paper's cell for (d minutes, T, I), when the grid has one. *)

val run : ?n:int -> seed:int -> unit -> result
(** Regenerate the grid from [n] modeled outage durations (default the
    paper's 10,308). Deterministic in [seed]. *)

val to_tables : result -> Stats.Table.t list
