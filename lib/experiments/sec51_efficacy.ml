(** §5.1 Efficacy: do ASes find routes around a poisoned AS?

    The paper announced prefixes via BGP-Mux, harvested the transit ASes
    on collector-peer paths, poisoned each in turn, and watched whether
    peers that had been routing through the poisoned AS found alternates:
    77% did (two-thirds of the failures were peers captive behind their
    only provider). A large-scale simulation over an AS topology predicted
    alternate paths in 90% of 10M cases and agreed with the live
    poisonings 92.5% of the time. *)

open Net

type result = {
  poisons_attempted : int;
  cases : int;  (** (collector peer, poisoned AS) pairs with the peer routing via it. *)
  rerouted : int;  (** Peer found a path avoiding the poisoned AS. *)
  fraction_rerouted : float;  (** Paper: 0.77. *)
  captive : int;  (** Cut-off peers that were captive (poisoned their only provider path). *)
  sim_cases : int;
  sim_with_alternate : int;
  fraction_sim : float;  (** Paper: 0.90. *)
  agreement : float;  (** Simulation prediction vs live poisoning outcome; paper: 0.925. *)
}

let paper_fraction_rerouted = 0.77
let paper_fraction_sim = 0.90
let paper_agreement = 0.925

let peer_route_contains mux peer target =
  match Bgp.Network.best_route mux.Workloads.Scenarios.bed.Workloads.Scenarios.net peer
          Workloads.Scenarios.production_prefix
  with
  | None -> None
  | Some entry ->
      Some
        (Bgp.As_path.traverses
           ~origin:mux.Workloads.Scenarios.origin ~target
           entry.Bgp.Route.ann.Bgp.Route.path)

(* Per-trial statistics for one poisoned AS, measured in the trial's own
   freshly built world. *)
type trial_stats = {
  t_cases : int;
  t_rerouted : int;
  t_captive : int;
  t_agree : int;
  t_live : int;
}

(* All measurement here is control-plane (collector RIBs + topology
   analysis), so trial worlds skip infrastructure announcement. *)
let build_mux ~ases ~seed =
  Workloads.Scenarios.bgpmux ~ases
    ~infrastructure:Workloads.Scenarios.No_infrastructure ~seed ()

let announce_and_converge mux =
  let net = mux.Workloads.Scenarios.bed.Workloads.Scenarios.net in
  Lifeguard.Remediate.announce_baseline net mux.Workloads.Scenarios.plan;
  Bgp.Network.run_until_quiet net

let poison_trial ~ases ~seed target () =
  let mux = build_mux ~ases ~seed in
  let net = mux.Workloads.Scenarios.bed.Workloads.Scenarios.net in
  let graph = mux.Workloads.Scenarios.bed.Workloads.Scenarios.graph in
  let origin = mux.Workloads.Scenarios.origin in
  announce_and_converge mux;
  let peers_via =
    List.filter
      (fun peer -> Option.value ~default:false (peer_route_contains mux peer target))
      mux.Workloads.Scenarios.feeds
  in
  if peers_via = [] then { t_cases = 0; t_rerouted = 0; t_captive = 0; t_agree = 0; t_live = 0 }
  else begin
    Lifeguard.Remediate.poison net mux.Workloads.Scenarios.plan ~target;
    Bgp.Network.run_until_quiet net;
    List.fold_left
      (fun acc peer ->
        let found =
          match peer_route_contains mux peer target with
          | Some false -> true
          | Some true | None -> false
        in
        let predicted =
          Lifeguard.Decide.alternate_path_exists graph ~src:peer ~origin ~avoid:target
        in
        (* Captive: every policy path from the peer to the origin crosses
           the poisoned AS. *)
        let captive = (not found) && not predicted in
        {
          t_cases = acc.t_cases + 1;
          t_rerouted = (acc.t_rerouted + if found then 1 else 0);
          t_captive = (acc.t_captive + if captive then 1 else 0);
          t_agree = (acc.t_agree + if predicted = found then 1 else 0);
          t_live = acc.t_live + 1;
        })
      { t_cases = 0; t_rerouted = 0; t_captive = 0; t_agree = 0; t_live = 0 }
      peers_via
  end

let run ?(ases = 318) ?(max_poisons = 40) ?(jobs = 1) ~seed () =
  (* Scout world: harvest the poisoning targets and run the large-scale
     simulation part over the converged baseline. *)
  let mux = build_mux ~ases ~seed in
  let net = mux.Workloads.Scenarios.bed.Workloads.Scenarios.net in
  let graph = mux.Workloads.Scenarios.bed.Workloads.Scenarios.graph in
  let origin = mux.Workloads.Scenarios.origin in
  announce_and_converge mux;
  let harvest = Workloads.Scenarios.harvest_on_path_ases mux in
  let rng = Prng.create ~seed:(seed + 1) in
  let targets =
    let arr = Array.of_list harvest in
    Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min max_poisons (Array.length arr)))
  in
  (* Each poisoning runs in its own deterministic world, so the trial
     list is independent of [jobs] and results are bit-identical to a
     sequential run. *)
  let stats =
    Runner.run_trials ~jobs (List.map (fun t -> poison_trial ~ases ~seed t) targets)
  in
  let totals =
    List.fold_left
      (fun acc s ->
        {
          t_cases = acc.t_cases + s.t_cases;
          t_rerouted = acc.t_rerouted + s.t_rerouted;
          t_captive = acc.t_captive + s.t_captive;
          t_agree = acc.t_agree + s.t_agree;
          t_live = acc.t_live + s.t_live;
        })
      { t_cases = 0; t_rerouted = 0; t_captive = 0; t_agree = 0; t_live = 0 }
      stats
  in
  let cases = ref totals.t_cases and rerouted = ref totals.t_rerouted in
  let captive = ref totals.t_captive in
  let agree = ref totals.t_agree and live_cases = ref totals.t_live in
  (* Large-scale simulation: every transit AS on every feed path. *)
  let sim_cases = ref 0 and sim_alt = ref 0 in
  List.iter
    (fun peer ->
      match Bgp.Network.best_route net peer Workloads.Scenarios.production_prefix with
      | None -> ()
      | Some entry ->
          let path = Bgp.As_path.to_list entry.Bgp.Route.ann.Bgp.Route.path in
          let interior =
            List.filter
              (fun a ->
                (not (Asn.equal a origin))
                && (not (Asn.equal a peer))
                && not (List.exists (Asn.equal a) mux.Workloads.Scenarios.providers))
              path
          in
          List.iter
            (fun a ->
              incr sim_cases;
              if Lifeguard.Decide.alternate_path_exists graph ~src:peer ~origin ~avoid:a
              then incr sim_alt)
            (List.sort_uniq Asn.compare interior))
    mux.Workloads.Scenarios.feeds;
  let fraction num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  {
    poisons_attempted = List.length targets;
    cases = !cases;
    rerouted = !rerouted;
    fraction_rerouted = fraction !rerouted !cases;
    captive = !captive;
    sim_cases = !sim_cases;
    sim_with_alternate = !sim_alt;
    fraction_sim = fraction !sim_alt !sim_cases;
    agreement = fraction !agree !live_cases;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.1 Efficacy (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "poisonings"; "-"; Stats.Table.cell_int r.poisons_attempted ];
      [ "peer-paths through poisoned AS"; "132"; Stats.Table.cell_int r.cases ];
      [
        "found alternate path";
        Stats.Table.cell_pct paper_fraction_rerouted;
        Stats.Table.cell_pct r.fraction_rerouted;
      ];
      [
        "of failures, captive behind only provider";
        "2/3";
        Printf.sprintf "%d/%d" r.captive (r.cases - r.rerouted);
      ];
      [
        "simulation: alternate exists";
        Stats.Table.cell_pct paper_fraction_sim;
        Stats.Table.cell_pct r.fraction_sim;
      ];
      [
        "simulation agrees with live poisoning";
        Stats.Table.cell_pct paper_agreement;
        Stats.Table.cell_pct r.agreement;
      ];
    ];
  [ t ]
