(* Effect-free cross-module cycle: the SCC must converge to "pure". *)
let ping n = if n = 0 then 0 else Cyc_b.pong (n - 1)
