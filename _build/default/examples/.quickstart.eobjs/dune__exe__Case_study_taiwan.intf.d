examples/case_study_taiwan.mli:
