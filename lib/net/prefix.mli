(** CIDR prefixes.

    Prefixes are the unit of BGP routing. LIFEGUARD's remediation relies on
    the relationships between prefixes: a production prefix is poisoned
    while a covering {e less-specific} sentinel prefix stays unpoisoned, and
    longest-prefix-match forwarding sends captive networks to the sentinel.
    {!contains_prefix} and {!compare_specificity} encode those
    relationships. *)

type t
(** A prefix: network address plus mask length. The network address is
    canonicalized (host bits cleared) on construction. *)

val make : Ipv4.t -> int -> t
(** [make addr len] for [len] in [\[0, 32\]]; host bits of [addr] are
    cleared. Raises [Invalid_argument] on a bad length. *)

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. *)

val of_string_exn : string -> t
val network : t -> Ipv4.t
val length : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Explicit integer mix of network address and mask length (not the
    polymorphic [Hashtbl.hash], which would walk the boxed address). *)

val mem : Ipv4.t -> t -> bool
(** [mem ip p] tests whether [ip] falls inside [p]. *)

val contains_prefix : outer:t -> inner:t -> bool
(** [contains_prefix ~outer ~inner] holds when every address of [inner]
    lies in [outer] (so [outer] is a less- or equally-specific covering
    prefix). *)

val split : t -> (t * t) option
(** Halve a prefix into its two more-specifics; [None] for a /32. *)

val first_address : t -> Ipv4.t
(** Lowest address of the prefix (the network address). *)

val last_address : t -> Ipv4.t
(** Highest address of the prefix (the broadcast address). *)

val nth_address : t -> int -> Ipv4.t
(** [nth_address p i] is the [i]-th address of [p]; raises if out of
    range. *)

val size : t -> int
(** Number of addresses covered, saturating at [max_int] for /0. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Table : Hashtbl.S with type key = t
(** Hashtbl keyed by prefixes via {!hash} and {!equal} — use this instead
    of a polymorphic [(Prefix.t, _) Hashtbl.t]. *)
