(** A single BGP speaker (one AS).

    Pure protocol state machine: it holds the adj-RIB-in, loc-RIB, FIB and
    adj-RIB-out for its AS and, given an incoming update or a local
    origination change, returns the updates that should be sent to
    neighbors. Delivery timing (link delays, MRAI pacing) is the
    {!Network}'s job, which keeps this module synchronously testable.

    Observability: every run of the decision process increments the
    [bgp.decisions] counter, and each loc-RIB change records the table's
    size into the [bgp.loc_rib] max-gauge (see {!Obs.Metrics}). *)

open Net
open Topology

type t

type action = Announce of Route.announcement | Withdraw of Prefix.t
(** An update destined to one neighbor. *)

val create :
  ?store:Path_store.t ->
  asn:Asn.t ->
  config:Policy.config ->
  neighbors:(Asn.t * Relationship.t) list ->
  unit ->
  t
(** A speaker for [asn] with the given neighbor sessions. [store] is the
    world's path/announcement interner — {!Network.create} passes one
    store to every speaker of a world so their RIBs share physical values;
    a standalone speaker (tests) defaults to a private store. Never share
    a store across worlds: lib/par worlds are share-nothing. *)

val path_store : t -> Path_store.t
(** The interner this speaker stores paths and announcements in. *)

val asn : t -> Asn.t
(** The AS this speaker represents. *)

val config : t -> Policy.config
(** The import/export policy configuration the speaker was built with. *)

val neighbors : t -> (Asn.t * Relationship.t) list
(** The speaker's sessions, each with our relationship to that neighbor. *)

val originate :
  t -> now:float -> prefix:Prefix.t -> per_neighbor:(Asn.t -> As_path.t option) -> (Asn.t * action) list
(** Start (or change) originating [prefix]. [per_neighbor] gives the AS
    path announced to each neighbor — [Some [asn]] for a plain
    announcement, a poisoned or prepended path for remediation, or [None]
    to withhold the prefix from that neighbor (selective advertising /
    selective poisoning). Returns the updates to send. *)

val stop_originating : t -> now:float -> prefix:Prefix.t -> (Asn.t * action) list
(** Withdraw a locally-originated prefix everywhere. *)

val receive : t -> now:float -> from:Asn.t -> action -> (Asn.t * action) list
(** Process one update from a neighbor: import policy, loc-RIB decision,
    and the resulting exports. A rejected announcement acts as an implicit
    withdraw of that neighbor's previous route. *)

val session_down : t -> now:float -> neighbor:Asn.t -> (Asn.t * action) list
(** Drop every route learned from [neighbor] and stop exporting to it
    until {!session_up}. *)

val session_up : t -> now:float -> neighbor:Asn.t -> (Asn.t * action) list
(** Re-enable the session and produce the full-table advertisement for
    that neighbor. When {!damping_pending} is false this takes a fast
    path that exports the current loc-RIB toward only the revived
    neighbor; with damping state live it re-runs the full decision
    process per prefix (a suppression may lift lazily and move a best).
    Both paths advertise the same routes — including a poison applied by
    a same-instant {!originate} or {!refresh_prefix}, in either relative
    order. *)

val damping_pending : t -> bool
(** Whether any route-flap damping records are live (suppressed or still
    decaying). While true, {!session_up} uses its conservative slow
    path. *)

val refresh_prefix : t -> prefix:Prefix.t -> (Asn.t * action) list
(** Force a re-advertisement of the current desired export for [prefix]
    toward every up neighbor, even when the adj-RIB-out says it was
    already sent. This is the idempotent re-announce primitive the
    remediation watchdog uses after a session reset or a lost update:
    the plain {!originate} diff is a no-op when our own book-keeping
    still holds the announcement the far side has since flushed. *)

val best : t -> Prefix.t -> Route.entry option
(** Current loc-RIB best route for exactly this prefix. *)

val fib_lookup : t -> Ipv4.t -> (Prefix.t * Route.entry) option
(** Longest-prefix match against the FIB — the data plane's view. By
    default the FIB tracks the loc-RIB atomically; a FIB-commit hook (set
    by the {!Network} when modeling RIB-to-FIB install latency) can delay
    the data plane behind the control plane, the window in which real
    routers blackhole or loop packets during convergence. *)

val set_fib_commit_hook : t -> (Prefix.t -> Route.entry option -> unit) -> unit
(** Divert FIB installs: when set, loc-RIB changes invoke the hook
    instead of updating the FIB; the hook (or anyone) must eventually
    call {!install_fib}. *)

val install_fib : t -> Prefix.t -> Route.entry option -> unit
(** Install (or remove, on [None]) the data-plane entry for a prefix. *)

val prefixes : t -> Prefix.t list
(** All prefixes with a loc-RIB entry. *)

val originated : t -> Prefix.t list
(** Prefixes this speaker currently originates locally. *)

val adj_in_size : t -> int
(** Total adj-RIB-in entries across all prefixes (memory accounting). *)

val set_on_best_change : t -> (now:float -> Prefix.t -> Route.entry option -> unit) -> unit
(** Hook invoked after every loc-RIB change (used by route collectors and
    convergence instrumentation). *)

val set_reuse_scheduler : t -> (delay:float -> Prefix.t -> unit) -> unit
(** When route-flap damping suppresses a candidate, the speaker asks this
    hook to schedule a {!reevaluate} once the penalty will have decayed
    below the reuse threshold. Wired by the {!Network}. *)

val reevaluate : t -> now:float -> Prefix.t -> (Asn.t * action) list
(** Re-run the decision process for a prefix (e.g. after a damping
    penalty decays); returns the updates to send. *)

val suppressed_candidates : t -> Prefix.t -> Asn.t list
(** Neighbors whose route for this prefix is currently damped. *)
