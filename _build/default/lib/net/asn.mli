(** Autonomous-system numbers.

    BGP reasons about the Internet at the granularity of ASes; an {!t} is
    the identifier every other layer of this reproduction uses to name a
    network. The type is abstract to keep ASNs from mixing with other
    integers (router ids, counts, ...). *)

type t
(** An AS number. *)

val of_int : int -> t
(** [of_int n] for [n >= 0]. Raises [Invalid_argument] on negatives. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["AS174"]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
