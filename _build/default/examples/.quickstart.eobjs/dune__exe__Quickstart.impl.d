examples/quickstart.ml: As_graph Asn Bgp Dataplane Format Lifeguard List Measurement Net Prefix Printf Relationship Sim Topology
