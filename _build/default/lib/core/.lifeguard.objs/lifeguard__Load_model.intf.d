lib/core/load_model.mli:
