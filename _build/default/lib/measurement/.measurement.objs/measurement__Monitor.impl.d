lib/measurement/monitor.ml: Asn Dataplane Ipv4 List Net Responsiveness Sim
