lib/stats/descriptive.mli:
