(** Figure 1: outage durations vs. their contribution to unavailability.

    The paper monitored 250 routers from EC2 for six weeks and found
    10,308 partial outages: more than 90% lasted at most 10 minutes, yet
    84% of the total unavailability came from the outages longer than
    that. We regenerate the figure from the calibrated outage model. *)

type result = {
  n : int;
  median_s : float;
  fraction_events_le_10min : float;
  unavailability_share_gt_10min : float;
  events_cdf : (float * float) list;  (** (minutes, fraction of events) *)
  unavailability_cdf : (float * float) list;
      (** (minutes, fraction of total unavailability) *)
}

let paper_fraction_events_le_10min = 0.90
let paper_unavailability_share_gt_10min = 0.84

let cdf_points =
  (* Log-spaced sample positions in minutes, matching the figure's x axis
     (1.5 min .. one week). *)
  [ 1.5; 2.; 3.; 5.; 7.; 10.; 15.; 30.; 60.; 120.; 300.; 600.; 1440.; 4320.; 10080. ]

let run ?(n = 10308) ~seed () =
  let durations = Workloads.Outage_gen.durations ~seed ~n () in
  let minutes = Array.map (fun s -> s /. 60.0) durations in
  let events = Stats.Ecdf.of_samples minutes in
  let unavailability = Stats.Ecdf.weighted ~values:minutes ~weights:minutes in
  {
    n;
    median_s = Stats.Descriptive.median durations;
    fraction_events_le_10min = Stats.Ecdf.eval events 10.0;
    unavailability_share_gt_10min = 1.0 -. Stats.Ecdf.eval unavailability 10.0;
    events_cdf = Stats.Ecdf.series_at events cdf_points;
    unavailability_cdf = Stats.Ecdf.series_at unavailability cdf_points;
  }

let to_tables r =
  let summary =
    Stats.Table.create ~title:"Fig. 1 summary (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows summary
    [
      [ "outages"; "10308"; Stats.Table.cell_int r.n ];
      [ "median duration (s)"; "~90 (floor)"; Stats.Table.cell_float ~decimals:0 r.median_s ];
      [
        "fraction of events <= 10 min";
        ">= 0.90";
        Stats.Table.cell_pct r.fraction_events_le_10min;
      ];
      [
        "unavailability from > 10 min";
        "0.84";
        Stats.Table.cell_pct r.unavailability_share_gt_10min;
      ];
    ];
  let curve =
    Stats.Table.create ~title:"Fig. 1 series: CDF by outage duration"
      ~columns:[ "minutes"; "fraction of events"; "fraction of unavailability" ]
  in
  List.iter2
    (fun (x, ev) (_, un) ->
      Stats.Table.add_row curve
        [
          Stats.Table.cell_float ~decimals:1 x;
          Stats.Table.cell_float ~decimals:3 ev;
          Stats.Table.cell_float ~decimals:3 un;
        ])
    r.events_cdf r.unavailability_cdf;
  [ summary; curve ]
