let pong n = Cyc_a.ping n
