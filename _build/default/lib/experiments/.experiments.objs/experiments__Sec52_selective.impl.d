lib/experiments/sec52_selective.ml: Asn Bgp Dataplane Lifeguard List Net Scenarios Stats Topology Workloads
