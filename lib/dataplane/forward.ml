open Net
open Topology

type hop = { asn : Asn.t; address : Ipv4.t }

type outcome =
  | Delivered
  | No_route of Asn.t
  | Loop
  | Dropped of { at : Asn.t; by : Failure.spec }

type walk = { hops : hop list; outcome : outcome }

let pp_outcome fmt = function
  | Delivered -> Format.pp_print_string fmt "delivered"
  | No_route a -> Format.fprintf fmt "no route at %a" Asn.pp a
  | Loop -> Format.pp_print_string fmt "loop"
  | Dropped { at; by } -> Format.fprintf fmt "dropped at %a by %a" Asn.pp at Failure.pp_spec by

let pp_walk fmt w =
  Format.fprintf fmt "[%s] %a"
    (String.concat " -> " (List.map (fun h -> Asn.to_string h.asn) w.hops))
    pp_outcome w.outcome

(* The border router of [asn] that answers for a given flow: picked by a
   fixed integer mix of (asn, destination) so multi-router ASes expose
   several addresses in traces, deterministically per destination. The
   mix is explicit arithmetic rather than the polymorphic [Hashtbl.hash]
   so the choice cannot drift with the runtime's generic hash. *)
let responding_router graph asn ~dst =
  let routers = As_graph.routers graph asn in
  let n = Array.length routers in
  let i =
    if n = 1 then 0
    else begin
      let z = (Asn.to_int asn * 0x9E3779B1) lxor (Int32.to_int (Ipv4.to_int32 dst) * 0x85EBCA6B) in
      let z = z lxor (z lsr 16) in
      (z land max_int) mod n
    end
  in
  routers.(i).As_graph.address

let walk net failures ~src ~dst ?(max_hops = 64) () =
  let graph = Bgp.Network.graph net in
  let hop_of asn = { asn; address = responding_router graph asn ~dst } in
  match Failure.blocks_source failures src ~dst with
  | Some by -> { hops = [ hop_of src ]; outcome = Dropped { at = src; by } }
  | None ->
      let rec go current visited hops_rev steps =
        if steps > max_hops then { hops = List.rev hops_rev; outcome = Loop }
        else begin
          let next_hop =
            match Bgp.Network.fib_lookup net current dst with
            | Some (_, entry) ->
                if Bgp.Route.is_local entry then `Deliver else `Forward entry.Bgp.Route.neighbor
            | None -> begin
                (* Stub default route: forward unmatched traffic to the
                   configured provider. *)
                match
                  (Bgp.Speaker.config (Bgp.Network.speaker net current)).Bgp.Policy
                  .default_provider
                with
                | Some p when not (Asn.equal p current) -> `Forward p
                | _ -> `No_route
              end
          in
          match next_hop with
          | `Deliver -> { hops = List.rev hops_rev; outcome = Delivered }
          | `No_route -> { hops = List.rev hops_rev; outcome = No_route current }
          | `Forward next ->
              if Asn.Set.mem next visited then { hops = List.rev hops_rev; outcome = Loop }
              else begin
                match Failure.blocks_hop failures ~from_:current ~to_:next ~dst with
                | Some by ->
                    { hops = List.rev (hop_of next :: hops_rev);
                      outcome = Dropped { at = next; by } }
                | None ->
                    go next (Asn.Set.add next visited) (hop_of next :: hops_rev) (steps + 1)
              end
        end
      in
      go src (Asn.Set.singleton src) [ hop_of src ] 0

let delivers net failures ~src ~dst =
  match (walk net failures ~src ~dst ()).outcome with
  | Delivered -> true
  | No_route _ | Loop | Dropped _ -> false

let as_path_of_walk w =
  let rec dedup = function
    | a :: (b :: _ as rest) -> if Asn.equal a.asn b.asn then dedup rest else a.asn :: dedup rest
    | [ a ] -> [ a.asn ]
    | [] -> []
  in
  dedup w.hops

let infrastructure_prefix asn =
  let n = Asn.to_int asn in
  if n > 0xFFFF then invalid_arg "Forward.infrastructure_prefix: ASN too large";
  Prefix.make (Ipv4.of_octets 10 ((n lsr 8) land 0xFF) (n land 0xFF) 0) 24

let announce_infrastructure_for net ases =
  List.iter
    (fun asn -> Bgp.Network.announce net ~origin:asn ~prefix:(infrastructure_prefix asn) ())
    ases

let announce_infrastructure net =
  announce_infrastructure_for net (As_graph.as_list (Bgp.Network.graph net))

let probe_address net asn = As_graph.router_address (Bgp.Network.graph net) asn 0
