(** §5.2 and §2.3: selective poisoning and provider path diversity.

    Reverse direction: announcing the poison through all muxes but one
    shifts the target AS onto its other ingress without disturbing
    anything else; the paper could steer 73% of the feed ASes off their
    first-hop AS link while leaving them with a route. Forward direction:
    with the same five university providers, silently failing the last AS
    link before a destination could be routed around via a different
    provider 90% of the time (§2.3). *)

open Net
open Workloads

type result = {
  feeds_tested : int;
  reverse_avoidable : int;
  fraction_reverse : float;  (** Paper: 0.73. *)
  forward_tested : int;
  forward_avoidable : int;
  fraction_forward : float;  (** Paper: 0.90. *)
  undisturbed_ok : bool;
      (** Sanity from the I2/WiscNet demo: peers not using the poisoned
          AS keep their route under selective poisoning. *)
}

let paper_fraction_reverse = 0.73
let paper_fraction_forward = 0.90

let first_hop_of mux peer =
  match
    Bgp.Network.best_route mux.Scenarios.bed.Scenarios.net peer Scenarios.production_prefix
  with
  | None -> None
  | Some entry -> Bgp.As_path.first_hop entry.Bgp.Route.ann.Bgp.Route.path

(* Can selective poisoning move [peer] off its current first-hop link
   while keeping it routed? Try withholding the poison from one provider
   at a time. *)
let reverse_avoidable_for mux ~peer =
  let net = mux.Scenarios.bed.Scenarios.net in
  let plan = mux.Scenarios.plan in
  match first_hop_of mux peer with
  | None -> None
  | Some original_next_hop ->
      let try_via unpoisoned_provider =
        Lifeguard.Remediate.selective_poison net plan ~target:peer
          ~poisoned_via:
            (List.filter
               (fun p -> not (Asn.equal p unpoisoned_provider))
               mux.Scenarios.providers);
        Bgp.Network.run_until_quiet net;
        let moved =
          match first_hop_of mux peer with
          | Some nh -> not (Asn.equal nh original_next_hop)
          | None -> false
        in
        Lifeguard.Remediate.unpoison net plan;
        Bgp.Network.run_until_quiet net;
        moved
      in
      Some (List.exists try_via mux.Scenarios.providers)

(* Forward diversity: if the last AS link before [dst] on the current
   forward path failed silently, could the origin reach [dst] via a
   different provider? *)
let forward_avoidable_for mux ~dst =
  let bed = mux.Scenarios.bed in
  let graph = bed.Scenarios.graph in
  let walk =
    Dataplane.Forward.walk bed.Scenarios.net bed.Scenarios.failures
      ~src:mux.Scenarios.origin
      ~dst:(Dataplane.Forward.probe_address bed.Scenarios.net dst)
      ()
  in
  match List.rev (Dataplane.Forward.as_path_of_walk walk) with
  | last :: penultimate :: _ when Asn.equal last dst ->
      (* A path from some provider to dst that avoids the penultimate AS
         routes around the failed link. *)
      Some
        (List.exists
           (fun provider ->
             Topology.Splice.policy_reachable graph ~src:provider ~dst
               ~avoiding:(Asn.Set.singleton penultimate))
           mux.Scenarios.providers)
  | _ -> None

let announce_and_converge mux =
  let net = mux.Scenarios.bed.Scenarios.net in
  Lifeguard.Remediate.announce_baseline net mux.Scenarios.plan;
  Bgp.Network.run_until_quiet net

let run ?(ases = 318) ?(max_feeds = 40) ?(jobs = 1) ~seed () =
  (* Scout world (control-plane only): pick the feeds and run the
     undisturbed-peers sanity check. *)
  let mux =
    Scenarios.bgpmux ~ases ~infrastructure:Scenarios.No_infrastructure ~seed ()
  in
  let net = mux.Scenarios.bed.Scenarios.net in
  announce_and_converge mux;
  (* Feed ASes that can be poisoned at all: transit or multi-homed, not
     the origin's own providers. *)
  let feeds =
    List.filter
      (fun f -> not (List.exists (Asn.equal f) mux.Scenarios.providers))
      mux.Scenarios.feeds
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let feeds = take max_feeds feeds in
  (* Per-feed trial in its own world. The forward walk targets the feed's
     probe address, so only that feed's infrastructure prefix needs
     announcing; the reverse measurement is pure control plane. Forward
     is measured first, against the undisturbed baseline, because the
     reverse measurement poisons and restores. *)
  let trial feed () =
    let mux =
      Scenarios.bgpmux ~ases
        ~infrastructure:(Scenarios.Endpoints_only [ feed ]) ~seed ()
    in
    announce_and_converge mux;
    let fwd = forward_avoidable_for mux ~dst:feed in
    let rev = reverse_avoidable_for mux ~peer:feed in
    (rev, fwd)
  in
  let outcomes = Runner.run_trials ~jobs (List.map (fun f -> trial f) feeds) in
  let reverse_results = List.filter_map fst outcomes in
  let forward_results = List.filter_map snd outcomes in
  (* Sanity: selectively poisoning one feed must not disturb peers not
     routing through it. *)
  let undisturbed_ok =
    match feeds with
    | [] -> true
    | target :: _ -> begin
        let others =
          List.filter
            (fun p ->
              (not (Asn.equal p target))
              &&
              match
                Bgp.Network.best_route net p Scenarios.production_prefix
              with
              | Some entry ->
                  not
                    (Bgp.As_path.traverses ~origin:mux.Scenarios.origin ~target
                       entry.Bgp.Route.ann.Bgp.Route.path)
              | None -> false)
            mux.Scenarios.feeds
        in
        let before =
          List.map (fun p -> (p, first_hop_of mux p)) others
        in
        Lifeguard.Remediate.selective_poison net mux.Scenarios.plan ~target
          ~poisoned_via:(List.tl mux.Scenarios.providers);
        Bgp.Network.run_until_quiet net;
        let ok =
          List.for_all (fun (p, nh) -> first_hop_of mux p = nh) before
        in
        Lifeguard.Remediate.unpoison net mux.Scenarios.plan;
        Bgp.Network.run_until_quiet net;
        ok
      end
  in
  let count l = List.length (List.filter (fun x -> x) l) in
  let frac l =
    if l = [] then 0.0 else float_of_int (count l) /. float_of_int (List.length l)
  in
  {
    feeds_tested = List.length reverse_results;
    reverse_avoidable = count reverse_results;
    fraction_reverse = frac reverse_results;
    forward_tested = List.length forward_results;
    forward_avoidable = count forward_results;
    fraction_forward = frac forward_results;
    undisturbed_ok;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.2 selective poisoning (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "feed ASes tested"; "114"; Stats.Table.cell_int r.feeds_tested ];
      [
        "reverse: first-hop link avoidable";
        Stats.Table.cell_pct paper_fraction_reverse;
        Stats.Table.cell_pct r.fraction_reverse;
      ];
      [
        "forward: last link avoidable via another provider";
        Stats.Table.cell_pct paper_fraction_forward;
        Stats.Table.cell_pct r.fraction_forward;
      ];
      [
        "unrelated peers undisturbed";
        "yes (33/33 RIPE peers)";
        (if r.undisturbed_ok then "yes" else "NO");
      ];
    ];
  [ t ]
