(** Shared trial execution for the experiment drivers.

    Every converted experiment decomposes into a fixed list of trial
    closures — a decomposition that is a pure function of the
    experiment's parameters, never of the worker count — where each
    closure rebuilds its entire world (topology, network, engine, PRNG)
    from the seed. The pool returns results in submission order, so
    results (and therefore every table) are bit-identical for any
    [~jobs]. The share-nothing contract on the closures is enforced
    statically by [lifeguard-lint] (rule [LG-DOM-MUT]). *)

val default_jobs : unit -> int
(** One worker per available core ({!Par.Pool.default_jobs}). *)

val run_trials : jobs:int -> (unit -> 'a) list -> 'a list
(** Run the closures on a fresh pool of [jobs] workers ([jobs <= 1] runs
    inline on the caller); results in submission order; the earliest
    submitted failure is re-raised after the batch drains.

    Each trial increments the [runner.trials] counter and, when tracing
    is enabled, emits a [runner.trial] trace event with its submission
    index, wall-clock duration (from the injected {!Obs.Clock}) and the
    number of engine events it dispatched — the per-trial ground truth
    the bench's end-to-end wall-clocks cannot provide. *)
