open Net

type pipeline_phase = Isolating | Deciding | Waiting | Backoff

type pipeline = {
  sp_vp : Asn.t;
  sp_target : Asn.t;
  sp_started : float;
  sp_attempt : int;
  sp_phase : pipeline_phase;
  sp_due : float;
}

type active = {
  sa_poison : Asn.t;
  sa_affected : Asn.t list;
  sa_first : float;
  sa_planned : bool;
  sa_announcements : int;
  sa_confirmed : bool;
  sa_rolling_back : bool;
  sa_rollback_reason : string;
  sa_next_check : float;
  sa_unpoison_due : float option;
  sa_rollback_due : float option;
}

type orch = {
  so_pipelines : pipeline list;
  so_active : active option;
  so_queue : (Asn.t * Asn.t * bool) list;
  so_last_announce : float;
  so_outage_started : (Asn.t * float) list;
  so_breaker : Asn.t list;
  so_reannounced : int;
  so_rolled_back : int;
  so_breaker_trips : int;
  so_events : int;
  so_outcomes : int;
  so_monitors : int;
}

type bucket = {
  bk_name : string;
  bk_tokens : float;
  bk_updated : float;
  bk_granted : int;
  bk_denied : int;
}

type t = {
  version : int;
  at : float;
  mark : int;
  seed : int;
  config_fp : string;
  journal_len : int;
  orch : orch;
  counters : (string * int) list;
  buckets : bucket list;
  plan : string option;
  head : string list;
}

exception Mismatch of { mark : int }

let () =
  Printexc.register_printer (function
    | Mismatch { mark } ->
        Some
          (Printf.sprintf
             "Recover.Snapshot.Mismatch(mark %d): re-execution does not reproduce the stored \
              snapshot"
             mark)
    | _ -> None)

let version = 1
let phase_to_string = function
  | Isolating -> "isolating"
  | Deciding -> "deciding"
  | Waiting -> "waiting"
  | Backoff -> "backoff"

let phase_of_string = function
  | "isolating" -> Some Isolating
  | "deciding" -> Some Deciding
  | "waiting" -> Some Waiting
  | "backoff" -> Some Backoff
  | _ -> None

let fl = Record.float_field
let asn a = string_of_int (Asn.to_int a)
let b01 b = if b then "1" else "0"
let opt_fl = function None -> "-" | Some f ->fl f

let render s =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  line "recover-snapshot v%d" s.version;
  line "at %s" (fl s.at);
  line "mark %d" s.mark;
  line "seed %d" s.seed;
  line "config %s" (Record.escape s.config_fp);
  line "journal %d" s.journal_len;
  let o = s.orch in
  line "orch.counts %d %d %d %d %d %d" o.so_reannounced o.so_rolled_back o.so_breaker_trips
    o.so_events o.so_outcomes o.so_monitors;
  line "orch.last_announce %s" (fl o.so_last_announce);
  List.iter
    (fun p ->
      line "orch.pipeline %s %s %s %d %s %s" (asn p.sp_vp) (asn p.sp_target) (fl p.sp_started)
        p.sp_attempt (phase_to_string p.sp_phase) (fl p.sp_due))
    o.so_pipelines;
  (match o.so_active with
  | None -> ()
  | Some a ->
      line "orch.active %s %s %s %d %s %s %s %s %s %s" (asn a.sa_poison) (fl a.sa_first)
        (b01 a.sa_planned) a.sa_announcements (b01 a.sa_confirmed) (b01 a.sa_rolling_back)
        (fl a.sa_next_check) (opt_fl a.sa_unpoison_due) (opt_fl a.sa_rollback_due)
        (Record.escape a.sa_rollback_reason);
      List.iter (fun t -> line "orch.affected %s" (asn t)) a.sa_affected);
  List.iter
    (fun (target, poison, planned) ->
      line "orch.queue %s %s %s" (asn target) (asn poison) (b01 planned))
    o.so_queue;
  List.iter (fun (a, at) -> line "orch.outage %s %s" (asn a) (fl at)) o.so_outage_started;
  List.iter (fun a -> line "orch.breaker %s" (asn a)) o.so_breaker;
  List.iter (fun (name, v) -> line "counter %s %d" (Record.escape name) v) s.counters;
  List.iter
    (fun bk ->
      line "bucket %s %s %s %d %d" (Record.escape bk.bk_name) (fl bk.bk_tokens)
        (fl bk.bk_updated) bk.bk_granted bk.bk_denied)
    s.buckets;
  (match s.plan with None -> () | Some p -> line "plan %s" (Record.escape p));
  List.iter (fun l -> line "head %s" (Record.escape l)) s.head;
  line "end";
  Buffer.contents b

let equal a b = String.equal (render a) (render b)

(* ---- parsing ---- *)

let ( let* ) o f = Option.bind o f

let asn_of s =
  let* n = int_of_string_opt s in
  if n < 0 then None else Some (Asn.of_int n)

let bool_of = function "1" -> Some true | "0" -> Some false | _ -> None
let float_of = float_of_string_opt
let opt_float_of = function "-" -> Some None | s -> Option.map Option.some (float_of s)

type builder = {
  mutable p_at : float option;
  mutable p_mark : int option;
  mutable p_seed : int option;
  mutable p_config : string option;
  mutable p_journal : int option;
  mutable p_counts : (int * int * int * int * int * int) option;
  mutable p_last_announce : float option;
  mutable p_pipelines : pipeline list;  (* newest first *)
  mutable p_active : active option;
  mutable p_queue : (Asn.t * Asn.t * bool) list;  (* newest first *)
  mutable p_outages : (Asn.t * float) list;
  mutable p_breaker : Asn.t list;
  mutable p_counters : (string * int) list;
  mutable p_buckets : bucket list;
  mutable p_plan : string option;
  mutable p_head : string list;
  mutable p_done : bool;
}

let parse_line bld line =
  match String.split_on_char ' ' line with
  | [ "at"; v ] ->
      let* v = float_of v in
      bld.p_at <- Some v;
      Some ()
  | [ "mark"; v ] ->
      let* v = int_of_string_opt v in
      bld.p_mark <- Some v;
      Some ()
  | [ "seed"; v ] ->
      let* v = int_of_string_opt v in
      bld.p_seed <- Some v;
      Some ()
  | [ "config"; v ] ->
      let* v = Record.unescape v in
      bld.p_config <- Some v;
      Some ()
  | [ "journal"; v ] ->
      let* v = int_of_string_opt v in
      bld.p_journal <- Some v;
      Some ()
  | [ "orch.counts"; a; b; c; d; e; f ] ->
      let* a = int_of_string_opt a in
      let* b = int_of_string_opt b in
      let* c = int_of_string_opt c in
      let* d = int_of_string_opt d in
      let* e = int_of_string_opt e in
      let* f = int_of_string_opt f in
      bld.p_counts <- Some (a, b, c, d, e, f);
      Some ()
  | [ "orch.last_announce"; v ] ->
      let* v = float_of v in
      bld.p_last_announce <- Some v;
      Some ()
  | [ "orch.pipeline"; vp; target; started; attempt; phase; due ] ->
      let* sp_vp = asn_of vp in
      let* sp_target = asn_of target in
      let* sp_started = float_of started in
      let* sp_attempt = int_of_string_opt attempt in
      let* sp_phase = phase_of_string phase in
      let* sp_due = float_of due in
      bld.p_pipelines <-
        { sp_vp; sp_target; sp_started; sp_attempt; sp_phase; sp_due } :: bld.p_pipelines;
      Some ()
  | [ "orch.active"; poison; first; planned; ann; confirmed; rolling; next; unp; roll; reason ]
    ->
      let* sa_poison = asn_of poison in
      let* sa_first = float_of first in
      let* sa_planned = bool_of planned in
      let* sa_announcements = int_of_string_opt ann in
      let* sa_confirmed = bool_of confirmed in
      let* sa_rolling_back = bool_of rolling in
      let* sa_next_check = float_of next in
      let* sa_unpoison_due = opt_float_of unp in
      let* sa_rollback_due = opt_float_of roll in
      let* sa_rollback_reason = Record.unescape reason in
      bld.p_active <-
        Some
          {
            sa_poison;
            sa_affected = [];
            sa_first;
            sa_planned;
            sa_announcements;
            sa_confirmed;
            sa_rolling_back;
            sa_rollback_reason;
            sa_next_check;
            sa_unpoison_due;
            sa_rollback_due;
          };
      Some ()
  | [ "orch.affected"; v ] ->
      let* t = asn_of v in
      let* a = bld.p_active in
      bld.p_active <- Some { a with sa_affected = t :: a.sa_affected };
      Some ()
  | [ "orch.queue"; target; poison; planned ] ->
      let* target = asn_of target in
      let* poison = asn_of poison in
      let* planned = bool_of planned in
      bld.p_queue <- (target, poison, planned) :: bld.p_queue;
      Some ()
  | [ "orch.outage"; a; at ] ->
      let* a = asn_of a in
      let* at = float_of at in
      bld.p_outages <- (a, at) :: bld.p_outages;
      Some ()
  | [ "orch.breaker"; a ] ->
      let* a = asn_of a in
      bld.p_breaker <- a :: bld.p_breaker;
      Some ()
  | [ "counter"; name; v ] ->
      let* name = Record.unescape name in
      let* v = int_of_string_opt v in
      bld.p_counters <- (name, v) :: bld.p_counters;
      Some ()
  | [ "bucket"; name; tokens; updated; granted; denied ] ->
      let* bk_name = Record.unescape name in
      let* bk_tokens = float_of tokens in
      let* bk_updated = float_of updated in
      let* bk_granted = int_of_string_opt granted in
      let* bk_denied = int_of_string_opt denied in
      bld.p_buckets <- { bk_name; bk_tokens; bk_updated; bk_granted; bk_denied } :: bld.p_buckets;
      Some ()
  | [ "plan"; v ] ->
      let* v = Record.unescape v in
      bld.p_plan <- Some v;
      Some ()
  | [ "head"; v ] ->
      let* v = Record.unescape v in
      bld.p_head <- v :: bld.p_head;
      Some ()
  | [ "end" ] ->
      bld.p_done <- true;
      Some ()
  | _ -> None

let parse text =
  match String.split_on_char '\n' text with
  | header :: rest when String.equal header (Printf.sprintf "recover-snapshot v%d" version) ->
      let bld =
        {
          p_at = None;
          p_mark = None;
          p_seed = None;
          p_config = None;
          p_journal = None;
          p_counts = None;
          p_last_announce = None;
          p_pipelines = [];
          p_active = None;
          p_queue = [];
          p_outages = [];
          p_breaker = [];
          p_counters = [];
          p_buckets = [];
          p_plan = None;
          p_head = [];
          p_done = false;
        }
      in
      let rec feed = function
        | [] -> Ok ()
        | line :: rest ->
            if String.length line = 0 || bld.p_done then feed rest
            else begin
              match parse_line bld line with
              | Some () -> feed rest
              | None -> Error (Printf.sprintf "snapshot: malformed line: %s" line)
            end
      in
      let* () = Result.to_option (feed rest) in
      if not bld.p_done then None
      else begin
        let* at = bld.p_at in
        let* mark = bld.p_mark in
        let* seed = bld.p_seed in
        let* config_fp = bld.p_config in
        let* journal_len = bld.p_journal in
        let* reann, rolled, trips, events, outcomes, monitors = bld.p_counts in
        let* last_announce = bld.p_last_announce in
        let active =
          Option.map (fun a -> { a with sa_affected = List.rev a.sa_affected }) bld.p_active
        in
        Some
          {
            version;
            at;
            mark;
            seed;
            config_fp;
            journal_len;
            orch =
              {
                so_pipelines = List.rev bld.p_pipelines;
                so_active = active;
                so_queue = List.rev bld.p_queue;
                so_last_announce = last_announce;
                so_outage_started = List.rev bld.p_outages;
                so_breaker = List.rev bld.p_breaker;
                so_reannounced = reann;
                so_rolled_back = rolled;
                so_breaker_trips = trips;
                so_events = events;
                so_outcomes = outcomes;
                so_monitors = monitors;
              };
            counters = List.rev bld.p_counters;
            buckets = List.rev bld.p_buckets;
            plan = bld.p_plan;
            head = List.rev bld.p_head;
          }
      end
  | _ -> None

let parse_result text =
  match parse text with
  | Some s -> Ok s
  | None -> Error "snapshot: unparseable or truncated"

let counter s name =
  let rec find = function
    | [] -> 0
    | (n, v) :: rest -> if String.equal n name then v else find rest
  in
  find s.counters
