lib/net/asn.ml: Format Hashtbl Int Map Set
