lib/topology/splice.mli: As_graph Asn Net
