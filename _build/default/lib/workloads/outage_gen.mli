(** Synthetic outage datasets calibrated to the paper's EC2 study (§2.1).

    The duration model is a two-component mixture fit to the published
    anchors: the median outage is barely longer than the 90 s detection
    floor; more than 90% of outages last under ten minutes; yet the long
    tail carries ~84% of the total unavailability (Fig. 1); and of the
    outages that survive five minutes, about half survive five more
    (Fig. 5). Durations are [90 + Exp(40)] with probability 0.88 and
    [90 + Pareto(shape 0.70, scale 150 s)] otherwise, capped at three
    days. *)

type params = {
  short_weight : float;
  short_mean : float;  (** Mean of the short component's exponential tail (s). *)
  long_shape : float;  (** Pareto tail index of the long component. *)
  long_scale : float;  (** Pareto minimum (s). *)
  floor : float;  (** Detection floor: minimum observable duration (s). *)
  cap : float;  (** Truncation for the heavy tail (s). *)
}

val default_params : params

val duration : ?params:params -> Prng.t -> float
(** One outage duration in seconds. *)

val durations : ?params:params -> seed:int -> n:int -> unit -> float array
(** A dataset of [n] outages (the paper's study observed 10,308). *)

(** Structural properties of each synthetic outage, for isolation and
    repair experiments. *)
type direction = Forward | Reverse | Bidirectional

type shape = {
  direction : direction;
  on_link : bool;  (** 38% of failures occur on inter-AS links [13]. *)
  duration : float;
}

val shape : ?params:params -> Prng.t -> shape
(** Direction mix follows the paper's observation that many failures are
    unidirectional [20]: 40% reverse, 40% forward, 20% bidirectional. *)

val total_unavailability : float array -> float
(** Sum of durations. *)

val unavailability_share_above : float array -> threshold:float -> float
(** Fraction of total unavailability contributed by outages longer than
    [threshold] seconds — the quantity behind Fig. 1's dotted line. *)
