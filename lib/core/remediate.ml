open Net

type plan = {
  origin : Asn.t;
  production : Prefix.t;
  sentinel : Prefix.t option;
  prepend_copies : int;
}

let plan ?sentinel ?(prepend_copies = 3) ~origin ~production () =
  (match sentinel with
  | Some s ->
      if not (Prefix.contains_prefix ~outer:s ~inner:production) then
        invalid_arg "Remediate.plan: sentinel must contain the production prefix";
      if Prefix.length s >= Prefix.length production then
        invalid_arg "Remediate.plan: sentinel must be less specific than production"
  | None -> ());
  if prepend_copies < 1 then invalid_arg "Remediate.plan: prepend_copies must be >= 1";
  { origin; production; sentinel; prepend_copies }

let sentinel_unused_address t =
  match t.sentinel with
  | None -> None
  | Some s ->
      (* Scan the sentinel's halves for space outside production; the
         first address of the uncovered half serves as the probe source. *)
      let rec find prefix =
        if not (Prefix.contains_prefix ~outer:prefix ~inner:t.production) then
          Some (Prefix.first_address prefix)
        else begin
          match Prefix.split prefix with
          | None -> None
          | Some (low, high) ->
              if Prefix.contains_prefix ~outer:low ~inner:t.production then
                Some (Prefix.first_address high)
              else if Prefix.contains_prefix ~outer:high ~inner:t.production then
                Some (Prefix.first_address low)
              else find low
        end
      in
      if Prefix.equal s t.production then None else find s

let baseline_path t = Bgp.As_path.prepended ~origin:t.origin ~copies:t.prepend_copies

let announce_sentinel net t =
  match t.sentinel with
  | None -> ()
  | Some s ->
      Bgp.Network.announce net ~origin:t.origin ~prefix:s
        ~per_neighbor:(fun _ -> Some (Bgp.As_path.plain ~origin:t.origin))
        ()

let announce_baseline net t =
  announce_sentinel net t;
  let path = baseline_path t in
  Bgp.Network.announce net ~origin:t.origin ~prefix:t.production
    ~per_neighbor:(fun _ -> Some path)
    ()

let poison net t ~target =
  let path = Bgp.As_path.poisoned ~origin:t.origin ~poison:target in
  Bgp.Network.announce net ~origin:t.origin ~prefix:t.production
    ~per_neighbor:(fun _ -> Some path)
    ()

let selective_poison net t ~target ~poisoned_via =
  let poisoned = Bgp.As_path.poisoned ~origin:t.origin ~poison:target in
  let baseline = baseline_path t in
  Bgp.Network.announce net ~origin:t.origin ~prefix:t.production
    ~per_neighbor:(fun neighbor ->
      if List.exists (Asn.equal neighbor) poisoned_via then Some poisoned else Some baseline)
    ()

let reannounce net t = Bgp.Network.refresh net ~origin:t.origin ~prefix:t.production

let unpoison net t =
  let path = baseline_path t in
  Bgp.Network.announce net ~origin:t.origin ~prefix:t.production
    ~per_neighbor:(fun _ -> Some path)
    ()

let is_recovered env t ~through ~targets =
  let net = env.Dataplane.Probe.net in
  let probe_targets = if targets = [] then [ through ] else targets @ [ through ] in
  let src_ip =
    match sentinel_unused_address t with
    | Some ip -> ip
    | None -> Prefix.nth_address t.production 1
  in
  List.exists
    (fun target ->
      Dataplane.Probe.ping_from env ~src:t.origin ~src_ip
        ~dst:(Dataplane.Forward.probe_address net target))
    probe_targets
