open Net

type outcome_kind = Repaired | Stood_down | Gave_up

type action =
  | Poison_announce of { target : Asn.t; poison : Asn.t; planned : bool }
  | Poison_reannounce of { poison : Asn.t; announcement : int }
  | Unpoison of { poison : Asn.t; repaired : bool; reason : string }
  | Breaker_trip of { poison : Asn.t; reason : string }
  | Plan_demotion of { poison : Asn.t; reason : string }
  | Outcome of { target : Asn.t; kind : outcome_kind; reason : string }

type t = { seq : int; at : float; action : action }

(* Free-text fields (give-up reasons, rollback causes) may contain the
   field separators; percent-encode the separators ('|' here, ' ' in the
   snapshot codec which reuses this escaper), the escape character and
   line breaks so an escaped field never splits. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '|' -> Buffer.add_string b "%7c"
      | ' ' -> Buffer.add_string b "%20"
      | '\n' -> Buffer.add_string b "%0a"
      | '\r' -> Buffer.add_string b "%0d"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else if Char.equal s.[i] '%' then
      if i + 2 >= n then None
      else
        match (hex_digit s.[i + 1], hex_digit s.[i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char b (Char.chr ((16 * hi) + lo));
            go (i + 3)
        | _ -> None
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

(* Floats travel as hex floats ("%h"): the round trip through
   [float_of_string] is bit-exact, including the infinities, so a
   replayed journal compares byte-for-byte with the original. *)
let float_field f = Printf.sprintf "%h" f
let asn_field a = string_of_int (Asn.to_int a)
let bool_field b = if b then "1" else "0"

let kind_to_string = function
  | Repaired -> "repaired"
  | Stood_down -> "stood_down"
  | Gave_up -> "gave_up"

let kind_of_string = function
  | "repaired" -> Some Repaired
  | "stood_down" -> Some Stood_down
  | "gave_up" -> Some Gave_up
  | _ -> None

let to_line { seq; at; action } =
  let fields =
    match action with
    | Poison_announce { target; poison; planned } ->
        [ "poison"; asn_field target; asn_field poison; bool_field planned ]
    | Poison_reannounce { poison; announcement } ->
        [ "reannounce"; asn_field poison; string_of_int announcement ]
    | Unpoison { poison; repaired; reason } ->
        [ "unpoison"; asn_field poison; bool_field repaired; escape reason ]
    | Breaker_trip { poison; reason } -> [ "breaker"; asn_field poison; escape reason ]
    | Plan_demotion { poison; reason } -> [ "demote"; asn_field poison; escape reason ]
    | Outcome { target; kind; reason } ->
        [ "outcome"; asn_field target; kind_to_string kind; escape reason ]
  in
  String.concat "|" (string_of_int seq :: float_field at :: fields)

let ( let* ) o f = Option.bind o f

let asn_of_field s =
  let* n = int_of_string_opt s in
  if n < 0 then None else Some (Asn.of_int n)

let bool_of_field = function "1" -> Some true | "0" -> Some false | _ -> None

let action_of_fields = function
  | [ "poison"; target; poison; planned ] ->
      let* target = asn_of_field target in
      let* poison = asn_of_field poison in
      let* planned = bool_of_field planned in
      Some (Poison_announce { target; poison; planned })
  | [ "reannounce"; poison; announcement ] ->
      let* poison = asn_of_field poison in
      let* announcement = int_of_string_opt announcement in
      Some (Poison_reannounce { poison; announcement })
  | [ "unpoison"; poison; repaired; reason ] ->
      let* poison = asn_of_field poison in
      let* repaired = bool_of_field repaired in
      let* reason = unescape reason in
      Some (Unpoison { poison; repaired; reason })
  | [ "breaker"; poison; reason ] ->
      let* poison = asn_of_field poison in
      let* reason = unescape reason in
      Some (Breaker_trip { poison; reason })
  | [ "demote"; poison; reason ] ->
      let* poison = asn_of_field poison in
      let* reason = unescape reason in
      Some (Plan_demotion { poison; reason })
  | [ "outcome"; target; kind; reason ] ->
      let* target = asn_of_field target in
      let* kind = kind_of_string kind in
      let* reason = unescape reason in
      Some (Outcome { target; kind; reason })
  | _ -> None

let of_line line =
  match String.split_on_char '|' line with
  | seq :: at :: fields -> begin
      match (int_of_string_opt seq, float_of_string_opt at, action_of_fields fields) with
      | Some seq, Some at, Some action -> Ok { seq; at; action }
      | _ -> Error (Printf.sprintf "malformed journal line: %s" line)
    end
  | _ -> Error (Printf.sprintf "malformed journal line: %s" line)

let poison_of = function
  | Poison_announce { poison; _ }
  | Poison_reannounce { poison; _ }
  | Unpoison { poison; _ }
  | Breaker_trip { poison; _ }
  | Plan_demotion { poison; _ } ->
      Some poison
  | Outcome _ -> None
