lib/workloads/workloads.ml: Outage_gen Scenarios
