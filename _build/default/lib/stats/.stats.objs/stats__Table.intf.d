lib/stats/table.mli:
