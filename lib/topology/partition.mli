(** Deterministic AS-graph partitioning for sharded single-world
    simulation.

    A partition assigns every AS of a graph to one of [parts] shards so
    that each shard's BGP speakers can run on their own event queue (see
    {!Shard.Barrier} and [Bgp.Network]'s sharded mode), with only the
    {e cut} — adjacencies whose endpoints land in different shards —
    crossing the deterministic time barriers.

    The algorithm is a seeded multi-source BFS growth with a balance cap
    and a bounded greedy refinement pass:

    + seeds are the [parts] highest-degree ASes, preferring seeds not
      adjacent to one another so regions grow from separated cores;
    + regions grow breadth-first in round-robin over shards, each shard
      claiming unassigned neighbors in ascending-ASN order, capped at
      [ceil (n / parts) + slack] members so no shard starves;
    + stragglers (disconnected or capped out) join the currently
      smallest shard, smallest index winning ties;
    + a fixed number of refinement sweeps then move boundary ASes to a
      neighboring shard when that strictly reduces the cut without
      violating the balance cap, visiting ASes in ascending-ASN order.

    Every step iterates in a sorted or seeded-PRNG order, so the result
    is a pure function of [(graph, parts, seed)] — the property the
    byte-identical [--shards 1/2/4] discipline rests on. *)

open Net

type t

val compute : As_graph.t -> parts:int -> seed:int -> t
(** Partition the graph into [parts] shards ([parts >= 1]; values larger
    than the AS count are clamped). [seed] perturbs only seed selection
    among equal-degree candidates; two calls with equal arguments return
    identical assignments. *)

val parts : t -> int
(** The number of shards actually used (after clamping). *)

val shard_of : t -> Asn.t -> int
(** The shard index in [\[0, parts)] an AS was assigned to. Raises
    [Invalid_argument] for an AS that was not in the partitioned
    graph. *)

val size : t -> int -> int
(** Number of ASes assigned to a shard. *)

val cut_edges : t -> int
(** Number of undirected graph edges whose endpoints are in different
    shards — each such adjacency becomes a boundary session whose
    updates must cross a time barrier. *)

val assignment : t -> (Asn.t * int) list
(** The full assignment in ascending-ASN order (for golden tests and
    debugging dumps). *)
