let record t x = Store.put t x
