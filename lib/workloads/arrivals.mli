(** Poisson outage arrival process over a live testbed.

    The continuous counterpart of the one-shot failure injections used by
    the batch experiments: arrivals follow an exponential interarrival
    clock, each failure is placed on the current data-plane path between
    the origin and a uniformly drawn target with {!Scenarios.Placement},
    lasts a {!Outage_gen}-calibrated duration, and is removed on expiry.
    Every successful injection is recorded in a ledger — the ground truth
    a fleet run's detection and repair accounting is scored against. *)

open Net

(** One injected failure, as ground truth. *)
type injected = {
  at : float;  (** Injection time (s, simulation clock). *)
  duration : float;  (** Scheduled lifetime (s). *)
  target : Asn.t;  (** The monitored AS whose path it sits on. *)
  location : Asn.t;  (** The failed AS (or near end of the failed link). *)
  direction : Outage_gen.direction;
  spec : Dataplane.Failure.spec;
}

type t

val create : unit -> t

val start :
  ?outage_params:Outage_gen.params ->
  ?toward_src:Prefix.t ->
  t ->
  rng:Prng.t ->
  bed:Scenarios.testbed ->
  src:Asn.t ->
  targets:Asn.t list ->
  mean_interarrival:float ->
  until:float ->
  unit ->
  unit
(** Schedule arrivals on [bed]'s engine from now until [until] (absolute
    simulation time); the caller then drives the engine. [src] is the
    observation point paths are computed from (the LIFEGUARD origin);
    [toward_src] scopes reverse failures (pass the sentinel prefix so the
    origin's monitors see them). Arrivals whose path has no breakable
    transit hop are counted but not injected. *)

val injected : t -> injected list
(** Ledger of injected failures, oldest first. *)

val injected_count : t -> int

val drawn_count : t -> int
(** Arrivals drawn from the Poisson clock, placeable or not. *)

val unplaceable_count : t -> int
(** Arrivals skipped because no transit hop was available to break. *)

val daily_rate_at_least : t -> observed_days:float -> d_minutes:float -> float
(** Injected outages per day lasting at least [d_minutes] — the measured
    analogue of the load model's H(d). *)
