(** §7.1 Poisoning anomalies: networks that bend the rules.

    Two real-world quirks limited the paper's poisonings. Some ASes
    disable or relax loop detection to run multi-site networks under one
    ASN — best practice caps the occurrences of their own ASN instead
    (AS286 accepts one), so inserting the ASN {e twice} still poisons
    them. And some providers (Cogent) refuse customer announcements whose
    path contains one of their tier-1 peers, so poisoning a tier-1
    through such a provider does not propagate — but announcing through a
    different provider worked, and 76% of collector peers still found
    alternate paths.

    The experiment builds an Internet where a fraction of transit ASes
    relax loop detection and where one of the origin's providers applies
    Cogent-style filtering, then measures exactly those effects. *)

open Net
open Topology

type result = {
  relaxed_ases : int;
  single_poison_ineffective : int;  (** Relaxed ASes that kept their route. *)
  double_poison_effective : int;  (** ... and dropped it with the ASN doubled. *)
  tier1_poison_via_filter_reached : int;
      (** Feeds with a route when the tier-1 poison goes via the filtering
          provider (propagation suppressed along that branch). *)
  tier1_poison_via_clean_reached : int;  (** Same, via a non-filtering provider. *)
  feeds : int;
}

let production = Workloads.Scenarios.production_prefix

let run ?(ases = 200) ?(relaxed_fraction = 0.3) ~seed () =
  let rng = Prng.create ~seed in
  let gen = Topo_gen.generate ~params:(Topo_gen.sized ases) ~seed:(Prng.int rng 1000000) () in
  let graph = gen.Topo_gen.graph in
  let origin = Asn.of_int 64500 in
  As_graph.add_as graph ~tier:4 origin;
  (* A Cogent-like provider: it peers with every tier-1 (so a customer
     path naming a tier-1 trips its filter) and sells transit to the
     origin. The clean provider is an ordinary tier-2. *)
  let filtering_provider = Asn.of_int 64174 in
  As_graph.add_as graph ~tier:1 ~routers:3 filtering_provider;
  List.iter
    (fun t1 -> As_graph.add_link graph ~a:filtering_provider ~b:t1 ~rel:Relationship.Peer)
    gen.Topo_gen.tier1;
  let clean_provider = List.hd gen.Topo_gen.tier2 in
  let providers = [ filtering_provider; clean_provider ] in
  List.iter
    (fun p -> As_graph.add_link graph ~a:origin ~b:p ~rel:Relationship.Provider)
    providers;
  (* Quirk assignment: a sample of tier-2/3 transits relax loop detection
     to allow one occurrence of their own ASN; the first provider filters
     customer paths containing its peers. *)
  let transit = Array.of_list (gen.Topo_gen.tier2 @ gen.Topo_gen.tier3) in
  let relaxed =
    Prng.sample_without_replacement rng
      (int_of_float (relaxed_fraction *. float_of_int (Array.length transit)))
      transit
    |> Array.to_list
    |> List.filter (fun a -> not (List.exists (Asn.equal a) providers))
  in
  let relaxed_set = Asn.Set.of_list relaxed in
  let config_of asn_ =
    let base = { Bgp.Policy.default with Bgp.Policy.pref_jitter = 8 } in
    if Asn.Set.mem asn_ relaxed_set then { base with Bgp.Policy.loop_limit = 2 }
    else if Asn.equal asn_ filtering_provider then
      { base with Bgp.Policy.reject_peers_in_customer_paths = true }
    else base
  in
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph ~config_of ~mrai:10.0 () in
  Dataplane.Forward.announce_infrastructure net;
  Bgp.Network.run_until_quiet ~timeout:36000.0 net;
  let feeds =
    Array.to_list (Prng.sample_without_replacement rng 30 transit)
  in
  let baseline () =
    Bgp.Network.announce net ~origin ~prefix:production
      ~per_neighbor:(fun _ -> Some (Bgp.As_path.prepended ~origin ~copies:3))
      ();
    Bgp.Network.run_until_quiet net
  in
  baseline ();
  (* Loop-limit quirk: single vs double poison of each relaxed AS that
     currently holds a route. *)
  let single_ineffective = ref 0 and double_effective = ref 0 and relevant = ref 0 in
  List.iter
    (fun target ->
      if Bgp.Network.best_route net target production <> None then begin
        incr relevant;
        Bgp.Network.announce net ~origin ~prefix:production
          ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin ~poison:target))
          ();
        Bgp.Network.run_until_quiet net;
        let survived = Bgp.Network.best_route net target production <> None in
        if survived then incr single_ineffective;
        Bgp.Network.announce net ~origin ~prefix:production
          ~per_neighbor:(fun _ ->
            Some (Bgp.As_path.poisoned_multi ~origin ~poisons:[ target; target ]))
          ();
        Bgp.Network.run_until_quiet net;
        if survived && Bgp.Network.best_route net target production = None then
          incr double_effective;
        baseline ()
      end)
    relaxed;
  (* Cogent-style filtering: poison a tier-1 selectively via each
     provider and count how many feeds still hold any route. *)
  let tier1 = List.hd gen.Topo_gen.tier1 in
  let reached_when ~via =
    Bgp.Network.announce net ~origin ~prefix:production
      ~per_neighbor:(fun n ->
        if Asn.equal n via then Some (Bgp.As_path.poisoned ~origin ~poison:tier1)
        else None)
      ();
    Bgp.Network.run_until_quiet net;
    let reached =
      List.length
        (List.filter (fun f -> Bgp.Network.best_route net f production <> None) feeds)
    in
    baseline ();
    reached
  in
  let via_filter = reached_when ~via:filtering_provider in
  let via_clean = reached_when ~via:clean_provider in
  {
    relaxed_ases = !relevant;
    single_poison_ineffective = !single_ineffective;
    double_poison_effective = !double_effective;
    tier1_poison_via_filter_reached = via_filter;
    tier1_poison_via_clean_reached = via_clean;
    feeds = List.length feeds;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 7.1 poisoning anomalies (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "loop-relaxed transit ASes probed"; "-"; Stats.Table.cell_int r.relaxed_ases ];
      [
        "single poison shrugged off by them";
        "yes (AS286-style)";
        Printf.sprintf "%d/%d" r.single_poison_ineffective r.relaxed_ases;
      ];
      [
        "doubled ASN poisons them after all";
        "yes";
        Printf.sprintf "%d/%d" r.double_poison_effective r.single_poison_ineffective;
      ];
      [
        "tier-1 poison via filtering provider: feeds w/ route";
        "did not propagate widely";
        Printf.sprintf "%d/%d" r.tier1_poison_via_filter_reached r.feeds;
      ];
      [
        "tier-1 poison via clean provider: feeds w/ route";
        "76% of peers found paths";
        Printf.sprintf "%d/%d" r.tier1_poison_via_clean_reached r.feeds;
      ];
    ];
  [ t ]
