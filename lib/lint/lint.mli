(** lifeguard-lint: stdlib-only static analysis (compiler-libs) enforcing
    the domain-safety, determinism and hot-path rules the parallel
    experiment runner depends on. See DESIGN.md, "Static analysis". *)

module Rule = Rule
module Source_scan = Source_scan
module Baseline = Baseline

val default_dirs : string list
(** [["lib"; "bin"; "bench"; "examples"]] *)

val collect_ml_files : string list -> string -> string list
(** [collect_ml_files acc path] prepends every [.ml] under [path] to
    [acc], skipping hidden and [_]-prefixed directories. *)

type report = {
  violations : Source_scan.violation list;
  errors : (string * string) list;  (** file, parse error *)
}

val scan : ?kind:Source_scan.file_kind -> dirs:string list -> unit -> report
(** Scan every [.ml] under [dirs] (sorted, deterministic), including the
    [LG-MLI-MISSING] filesystem pass. [kind] overrides per-path
    classification — tests use {!Source_scan.lib_kind} to force library
    strictness on fixtures. *)

val run_check : oc:out_channel -> baseline_path:string -> report -> int
(** Diff a report against a baseline file; print fresh violations and
    staleness notes; return the process exit code (0 clean, 1 fresh
    violations, 2 unreadable baseline). *)

val main : ?out:Format.formatter -> string array -> int
(** The CLI ([bin/lifeguard_lint]): returns the exit code. Informational
    output (help, rule listing, baseline-write confirmation) goes to
    [out] (default [Format.std_formatter]); reports go to stdout/stderr
    as before. *)
