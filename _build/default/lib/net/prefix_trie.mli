(** Longest-prefix-match table.

    A binary trie from {!Prefix.t} to values, supporting the lookup
    forwarding performs: given a destination address, find the value bound
    to the most specific matching prefix. This is what makes a sentinel
    less-specific act as a backup route for captive ASes — they match the
    /x sentinel only when no more-specific production route survives. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Bind (or replace) the value at exactly this prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the binding at exactly this prefix, if any. *)

val find_exact : Prefix.t -> 'a t -> 'a option
(** The value bound at exactly this prefix. *)

val lookup : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** Longest-prefix match for an address. *)

val lookup_prefix : Prefix.t -> 'a t -> (Prefix.t * 'a) option
(** Longest match among prefixes that cover the given prefix entirely
    (including itself). *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings, most-significant-bit order. *)

val cardinal : 'a t -> int
val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
