(* The default source is a constant so span timing is a no-op (and
   deterministic) unless the outermost binary opts in. *)

let source : (unit -> float) ref = ref (fun () -> 0.0)
let set f = source := f
let clear () = source := fun () -> 0.0
let now () = !source ()
