(* must-flag fixture: determinism rule family, LG-DET rules.
   Parsed but never compiled — unbound modules are fine. *)

let draw () = Random.int 10

let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let lost route = route = None

let sort_ids ids = List.sort compare ids

let digest r = Hashtbl.hash r

type owners = (float, string) Hashtbl.t
