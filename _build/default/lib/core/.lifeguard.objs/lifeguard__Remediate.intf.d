lib/core/remediate.mli: Asn Bgp Dataplane Ipv4 Net Prefix
