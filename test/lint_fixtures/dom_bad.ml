(* must-flag fixture: domain-safety rule family (LG-DOM-MUT).
   Module-level mutable containers shared across Par worker domains. *)

let cache = Hashtbl.create 64

let hits = ref 0

let scratch = Buffer.create 256

let slots = Array.make 16 0

let pending = lazy (Queue.create ())
