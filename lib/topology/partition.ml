open Net

type t = {
  parts : int;
  assign : int Asn.Table.t;
  sizes : int array;
  cut : int;
}

let parts t = t.parts

let shard_of t asn =
  match Asn.Table.find_opt t.assign asn with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Partition.shard_of: unknown %s" (Asn.to_string asn))

let size t i = t.sizes.(i)
let cut_edges t = t.cut

let assignment t =
  Asn.Table.fold (fun asn s acc -> (asn, s) :: acc) t.assign []
  |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)

let count_cut graph assign =
  List.fold_left
    (fun acc a ->
      let sa = Asn.Table.find assign a in
      List.fold_left
        (fun acc (b, _) ->
          if Asn.compare a b < 0 && Asn.Table.find assign b <> sa then acc + 1 else acc)
        acc (As_graph.neighbors graph a))
    0 (As_graph.as_list graph)

(* Same explicit integer mix as the network's pair_hash: seed-dependent
   but runtime-independent, so seed selection cannot drift with the
   polymorphic hash. *)
let mix seed v =
  let z = (seed * 0x9E3779B1) lxor (v * 0x85EBCA6B) in
  (z lxor (z lsr 16)) land max_int

let pick_seeds graph ~parts ~seed =
  let by_degree =
    As_graph.as_list graph
    |> List.map (fun a -> (As_graph.degree graph a, mix seed (Asn.to_int a), a))
    |> List.sort (fun (d1, h1, a1) (d2, h2, a2) ->
           match Int.compare d2 d1 with
           | 0 -> ( match Int.compare h1 h2 with 0 -> Asn.compare a1 a2 | c -> c)
           | c -> c)
    |> List.map (fun (_, _, a) -> a)
  in
  (* Prefer mutually non-adjacent seeds so BFS regions grow from
     separated cores; fall back to plain degree order when the graph is
     too dense to find [parts] independent ones. *)
  let adjacent a b = Option.is_some (As_graph.relationship graph ~a ~b) in
  let independent =
    List.fold_left
      (fun acc a ->
        if List.length acc >= parts then acc
        else if List.exists (fun s -> adjacent s a) acc then acc
        else a :: acc)
      [] by_degree
    |> List.rev
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let taken = List.fold_left (fun s a -> Asn.Set.add a s) Asn.Set.empty independent in
  let chosen = independent @ List.filter (fun a -> not (Asn.Set.mem a taken)) by_degree in
  take parts chosen

let compute graph ~parts ~seed =
  let n = As_graph.as_count graph in
  if parts < 1 then invalid_arg "Partition.compute: parts must be >= 1";
  let parts = max 1 (min parts n) in
  let assign = Asn.Table.create (2 * n) in
  let sizes = Array.make parts 0 in
  if parts = 1 then begin
    List.iter (fun a -> Asn.Table.replace assign a 0) (As_graph.as_list graph);
    sizes.(0) <- n;
    { parts; assign; sizes; cut = 0 }
  end
  else begin
    let cap = ((n + parts - 1) / parts) + 2 in
    let queues = Array.make parts (Queue.create ()) in
    for i = 1 to parts - 1 do
      queues.(i) <- Queue.create ()
    done;
    let claim shard asn =
      if not (Asn.Table.mem assign asn) && sizes.(shard) < cap then begin
        Asn.Table.replace assign asn shard;
        sizes.(shard) <- sizes.(shard) + 1;
        Queue.add asn queues.(shard);
        true
      end
      else false
    in
    List.iteri (fun i s -> ignore (claim i s)) (pick_seeds graph ~parts ~seed);
    (* Round-robin BFS: each shard expands one frontier AS per turn,
       claiming its unassigned neighbors in ascending-ASN order. *)
    let any_left () = Array.exists (fun q -> not (Queue.is_empty q)) queues in
    while any_left () do
      Array.iteri
        (fun shard q ->
          match Queue.take_opt q with
          | None -> ()
          | Some a ->
              List.iter
                (fun (b, _) -> ignore (claim shard b))
                (As_graph.neighbors graph a))
        queues
    done;
    (* Stragglers — disconnected from every seed, or everything adjacent
       was capped out: smallest shard wins, lowest index breaking ties. *)
    List.iter
      (fun a ->
        if not (Asn.Table.mem assign a) then begin
          let best = ref 0 in
          Array.iteri (fun i s -> if s < sizes.(!best) then best := i) sizes;
          Asn.Table.replace assign a !best;
          sizes.(!best) <- sizes.(!best) + 1
        end)
      (As_graph.as_list graph);
    (* Bounded greedy refinement: move a boundary AS to the neighboring
       shard holding most of its adjacencies when that strictly reduces
       the cut and respects the balance cap. *)
    for _sweep = 1 to 3 do
      List.iter
        (fun a ->
          let sa = Asn.Table.find assign a in
          let per_shard = Array.make parts 0 in
          List.iter
            (fun (b, _) ->
              let sb = Asn.Table.find assign b in
              per_shard.(sb) <- per_shard.(sb) + 1)
            (As_graph.neighbors graph a);
          let best = ref sa in
          Array.iteri
            (fun i c ->
              if i <> sa && c > per_shard.(!best) && sizes.(i) < cap then best := i)
            per_shard;
          if !best <> sa && per_shard.(!best) > per_shard.(sa) && sizes.(sa) > 1 then begin
            Asn.Table.replace assign a !best;
            sizes.(sa) <- sizes.(sa) - 1;
            sizes.(!best) <- sizes.(!best) + 1
          end)
        (As_graph.as_list graph)
    done;
    { parts; assign; sizes; cut = count_cut graph assign }
  end
