(* must-pass fixture: instance-level mutable state behind a constructor
   is the share-nothing discipline the runner expects. *)

type t = { hits : (int, string) Hashtbl.t; mutable count : int }

let create () = { hits = Hashtbl.create 64; count = 0 }

let default_sizes = [ 16; 64; 256 ]

let fresh_buffer () = Buffer.create 256
