lib/measurement/monitor.mli: Asn Dataplane Ipv4 Net Responsiveness Sim
