lib/measurement/responsiveness.ml: Array As_graph Hashtbl Ipv4 List Net Prng Topology
