(* must-flag fixture: no sibling .mli (LG-MLI-MISSING). *)

let widely_used_helper x = x + 1
