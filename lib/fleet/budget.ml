open Net

type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable updated : float;
  mutable granted : int;
  mutable denied : int;
}

let create ~rate ~burst () =
  if rate <= 0.0 then invalid_arg "Budget.create: rate must be positive";
  if burst < 1.0 then invalid_arg "Budget.create: burst must be at least 1";
  { rate; burst; tokens = burst; updated = 0.0; granted = 0; denied = 0 }

(* Lazy refill: tokens accrue linearly with simulation time, capped at the
   burst size; the bucket never needs its own timer. *)
let refill t ~now =
  if now > t.updated then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.updated) *. t.rate));
    t.updated <- now
  end

let admit t ~now ~cost =
  if cost < 0 then invalid_arg "Budget.admit: negative cost";
  refill t ~now;
  let c = float_of_int cost in
  if t.tokens >= c then begin
    t.tokens <- t.tokens -. c;
    t.granted <- t.granted + cost;
    true
  end
  else begin
    t.denied <- t.denied + cost;
    false
  end

let granted t = t.granted
let denied t = t.denied

type scheduler = {
  global : t;
  per_vp_rate : float;
  per_vp_burst : float;
  vps : (Asn.t, t) Hashtbl.t;
}

let scheduler ?(per_vp_rate = infinity) ?(per_vp_burst = infinity) ~global () =
  { global; per_vp_rate; per_vp_burst; vps = Hashtbl.create 8 }

let vp_bucket s vp =
  match Hashtbl.find_opt s.vps vp with
  | Some b -> b
  | None ->
      let b =
        {
          rate = s.per_vp_rate;
          burst = s.per_vp_burst;
          tokens = s.per_vp_burst;
          updated = 0.0;
          granted = 0;
          denied = 0;
        }
      in
      Hashtbl.replace s.vps vp b;
      b

(* Both caps must admit; an unlimited per-VP cap short-circuits so the
   common (no per-VP limit) case touches one bucket. *)
let admit_vp s ~vp ~now ~cost =
  if s.per_vp_rate = infinity && s.per_vp_burst = infinity then admit s.global ~now ~cost
  else begin
    let b = vp_bucket s vp in
    refill b ~now;
    if b.tokens < float_of_int cost then begin
      b.denied <- b.denied + cost;
      false
    end
    else if admit s.global ~now ~cost then begin
      b.tokens <- b.tokens -. float_of_int cost;
      b.granted <- b.granted + cost;
      true
    end
    else false
  end

(* Token levels are controller state the world cannot reconstruct: a
   resumed run that reset them to full burst would admit probes the
   crashed run had already spent. The [bucket] helper lives inside
   [capture] so every mutable field read is syntactically in its body —
   the LG-ROB-SNAPSHOT contract. *)
let capture s : Recover.Snapshot.bucket list =
  let bucket name (b : t) =
    {
      Recover.Snapshot.bk_name = name;
      bk_tokens = b.tokens;
      bk_updated = b.updated;
      bk_granted = b.granted;
      bk_denied = b.denied;
    }
  in
  let vps =
    Hashtbl.fold (fun vp b acc -> (vp, b) :: acc) s.vps []
    |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)
    |> List.map (fun (vp, b) -> bucket ("vp:" ^ string_of_int (Asn.to_int vp)) b)
  in
  bucket "global" s.global :: vps

let restore s (buckets : Recover.Snapshot.bucket list) =
  let apply b (bk : Recover.Snapshot.bucket) =
    b.tokens <- bk.Recover.Snapshot.bk_tokens;
    b.updated <- bk.Recover.Snapshot.bk_updated;
    b.granted <- bk.Recover.Snapshot.bk_granted;
    b.denied <- bk.Recover.Snapshot.bk_denied
  in
  List.iter
    (fun (bk : Recover.Snapshot.bucket) ->
      let name = bk.Recover.Snapshot.bk_name in
      if String.equal name "global" then apply s.global bk
      else begin
        let prefix = "vp:" in
        let plen = String.length prefix in
        if String.length name > plen && String.equal (String.sub name 0 plen) prefix then begin
          match int_of_string_opt (String.sub name plen (String.length name - plen)) with
          | Some n when n >= 0 -> apply (vp_bucket s (Asn.of_int n)) bk
          | Some _ | None -> ()
        end
      end)
    buckets

let scheduler_granted s = granted s.global

(* A request is denied by exactly one stage: a per-VP refusal never reaches
   the global bucket, and a global refusal leaves the VP bucket untouched —
   so summing the two never double-counts. *)
let scheduler_denied s = Hashtbl.fold (fun _ b acc -> acc + b.denied) s.vps (denied s.global)
