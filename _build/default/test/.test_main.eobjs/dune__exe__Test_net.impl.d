test/test_net.ml: Alcotest Int Ipv4 List Net Option Prefix Prefix_trie QCheck QCheck_alcotest
