(** Continuous multi-outage LIFEGUARD operations: probe budgets, bounded
    retries, damping-aware remediation pacing and chaos injection on top
    of the core control loop. *)

module Budget = Budget
module Retry = Retry
module Chaos = Chaos
module Service = Service
