lib/core/remediate.ml: Asn Bgp Dataplane List Net Prefix
