lib/experiments/fig6_convergence.ml: Array Asn Bgp Lifeguard List Net Option Printf Prng Scenarios Sim Stats Workloads
