lib/dataplane/failure.mli: Asn Bgp Format Ipv4 Net Prefix
