lib/measurement/reverse_traceroute.ml: Asn Bgp Dataplane Hashtbl Ipv4 List Net Option
