examples/selective_poisoning.mli:
