lib/experiments/fig5_residual.ml: Array Lifeguard List Stats Workloads
