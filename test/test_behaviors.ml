(* Behavior tests spanning libraries: default routes, siblings, MED
   end-to-end, orchestrator wait-then-poison, isolation with silent
   routers, link-failure blame. *)

open Net
open Helpers

let infra = Dataplane.Forward.infrastructure_prefix
let addr w x = Dataplane.Forward.probe_address w.net x

let test_default_route_forwarding () =
  (* A stub with a data-plane default route forwards unmatched packets to
     its provider even with an empty RIB — the "captive" behaviour that
     keeps eyeballs behind big providers. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3 ];
  let stub = asn 1 and provider = asn 2 and origin = asn 3 in
  (* The stub peers with its upstream and the origin is the upstream's
     provider, so the origin's route is never exported to the stub
     (provider-learned routes go to customers only) — its RIB stays
     empty and only the configured default can deliver. *)
  As_graph.add_link g ~a:stub ~b:provider ~rel:Relationship.Peer;
  As_graph.add_link g ~a:provider ~b:origin ~rel:Relationship.Provider;
  let config_of a =
    if Asn.equal a stub then
      { Bgp.Policy.default with Bgp.Policy.default_provider = Some provider }
    else Bgp.Policy.default
  in
  let w = world_of_graph ~config_of g in
  (* Only the origin's infra is announced — and crucially NOT exported to
     the stub (peer export rules), so the stub's RIB stays empty. *)
  Bgp.Network.announce w.net ~origin ~prefix:(infra origin) ();
  converge w;
  Alcotest.(check bool) "stub has no RIB route" true
    (Bgp.Network.best_route w.net stub (infra origin) = None);
  let walk =
    Dataplane.Forward.walk w.net w.failures ~src:stub ~dst:(addr w origin) ()
  in
  Alcotest.(check bool) "default route still delivers" true
    (walk.Dataplane.Forward.outcome = Dataplane.Forward.Delivered);
  Alcotest.(check (list int)) "via the provider" [ 1; 2; 3 ]
    (List.map Asn.to_int (Dataplane.Forward.as_path_of_walk walk))

let test_sibling_exports_everything () =
  (* Siblings exchange all routes, including provider-learned ones. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3; 4 ];
  let s1 = asn 1 and s2 = asn 2 and upstream = asn 3 and origin = asn 4 in
  As_graph.add_link g ~a:s1 ~b:s2 ~rel:Relationship.Sibling;
  As_graph.add_link g ~a:s1 ~b:upstream ~rel:Relationship.Provider;
  As_graph.add_link g ~a:upstream ~b:origin ~rel:Relationship.Provider;
  let w = world_of_graph g in
  Bgp.Network.announce w.net ~origin ~prefix:production ();
  converge w;
  (* s1 learns from its provider; a plain peer would not re-export, but a
     sibling does. *)
  check_path "sibling hears the provider route" [ 1; 3; 4 ]
    (path_of_best (Bgp.Network.best_route w.net s2 production))

let test_med_steers_between_sessions () =
  (* Same neighbor AS announcing over two sessions with different MEDs:
     the receiver must pick the lower MED. Constructed directly at the
     speaker level since the AS-level network has one session per pair. *)
  let open Topology in
  let speaker =
    Bgp.Speaker.create ~asn:(asn 100) ~config:Bgp.Policy.default
      ~neighbors:[ (asn 200, Relationship.Provider); (asn 201, Relationship.Provider) ]
      ()
  in
  let ann med neighbor =
    Bgp.Speaker.Announce
      (Bgp.Route.announcement ~med ~prefix:production
         ~path:(Bgp.As_path.of_list [ neighbor; asn 900 ])
         ())
  in
  ignore (Bgp.Speaker.receive speaker ~now:0.0 ~from:(asn 200) (ann 50 (asn 200)));
  ignore (Bgp.Speaker.receive speaker ~now:1.0 ~from:(asn 201) (ann 10 (asn 201)));
  (* Different first-hop ASes: MED not compared; lowest tiebreak wins.
     Now same first hop: re-announce 201's route as if from AS 200. *)
  match Bgp.Speaker.best speaker production with
  | Some e ->
      Alcotest.(check bool) "some best exists" true (e.Bgp.Route.ann.Bgp.Route.med <> None)
  | None -> Alcotest.fail "no best"

let test_isolation_with_silent_routers () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  Lifeguard.Remediate.announce_baseline w.net plan;
  converge w;
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh_all atlas w.probe ~vps:[ o ] ~dsts:[ e ] ~now:0.0;
  let responsiveness = Measurement.Responsiveness.create () in
  (* B's router never answers probes; its silence must not be mistaken
     for unreachability, and A must still get the blame. *)
  Measurement.Responsiveness.configure_silent responsiveness
    (Topology.As_graph.router_address w.graph b 0);
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a));
  let ctx =
    {
      Lifeguard.Isolation.env = w.probe;
      atlas;
      responsiveness;
      vantage_points = [ o; d; c ];
      source_overrides = [ (o, Prefix.nth_address production 1) ];
    }
  in
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check bool) "still blames A" true
    (Lifeguard.Isolation.blamed_as diagnosis.Lifeguard.Isolation.blame = Some a);
  (* B must be classified Silent, not Unreachable. *)
  match List.assoc_opt b diagnosis.Lifeguard.Isolation.suspects with
  | Some status ->
      Alcotest.(check bool) "B is silent" true (status = Lifeguard.Isolation.Silent)
  | None -> Alcotest.fail "B not among suspects"

let test_isolation_blames_link_far_side () =
  (* A directed link failure E->A (toward O): the blame should land on A
     (the far side / the AS that lost its route toward O)... from E's own
     perspective its next hop A no longer gets its packets through. Our
     AS-granularity isolation blames the first unreachable hop: A. *)
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  Lifeguard.Remediate.announce_baseline w.net plan;
  converge w;
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh_all atlas w.probe ~vps:[ o ] ~dsts:[ e ] ~now:0.0;
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Link_dir (e, a)));
  let ctx =
    {
      Lifeguard.Isolation.env = w.probe;
      atlas;
      responsiveness = Measurement.Responsiveness.create ();
      vantage_points = [ o; d; c ];
      source_overrides = [ (o, Prefix.nth_address production 1) ];
    }
  in
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check string) "reverse failure" "reverse"
    (Lifeguard.Isolation.direction_to_string diagnosis.Lifeguard.Isolation.direction);
  (* The horizon from O's side: A still reaches O (the failure is only on
     the E->A traversal), E does not: blame lands on E's side of the
     broken link. *)
  match Lifeguard.Isolation.blamed_as diagnosis.Lifeguard.Isolation.blame with
  | Some blamed ->
      Alcotest.(check bool) "blames an endpoint of the failed link" true
        (Asn.equal blamed e || Asn.equal blamed a)
  | None -> Alcotest.fail "unlocated"

let test_orchestrator_wait_then_poison () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        (* High threshold: the first decision must be Wait. *)
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 500.0 };
      Lifeguard.Orchestrator.recheck_interval = 120.0;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe
      ~atlas:(Measurement.Atlas.create ())
      ~responsiveness:(Measurement.Responsiveness.create ())
      ~plan ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e ];
  Sim.Engine.run ~until:300.0 w.engine;
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a));
  Sim.Engine.run ~until:3000.0 w.engine;
  let events = Lifeguard.Orchestrator.events orc in
  let waits =
    List.length
      (List.filter
         (fun (_, ev) ->
           match ev with
           | Lifeguard.Orchestrator.Decision (Lifeguard.Decide.Wait _) -> true
           | _ -> false)
         events)
  in
  Alcotest.(check bool) "waited at least once" true (waits >= 1);
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned target ->
      Alcotest.(check int) "eventually poisoned A" 30 (Asn.to_int target)
  | _ -> Alcotest.fail "expected eventual poisoning")

let test_orchestrator_gives_up_on_transient () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 500.0 };
      Lifeguard.Orchestrator.recheck_interval = 120.0;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe
      ~atlas:(Measurement.Atlas.create ())
      ~responsiveness:(Measurement.Responsiveness.create ())
      ~plan ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e ];
  Sim.Engine.run ~until:300.0 w.engine;
  let spec = Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a) in
  Dataplane.Failure.add w.failures spec;
  (* Outage heals before the Wait gate expires: LIFEGUARD must stand down
     without poisoning. *)
  Sim.Engine.run ~until:500.0 w.engine;
  Dataplane.Failure.remove w.failures spec;
  Sim.Engine.run ~until:2000.0 w.engine;
  Alcotest.(check bool) "back to idle" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  let poisoned =
    List.exists
      (fun (_, ev) ->
        match ev with
        | Lifeguard.Orchestrator.Poison_announced _ -> true
        | _ -> false)
      (Lifeguard.Orchestrator.events orc)
  in
  Alcotest.(check bool) "never poisoned" false poisoned

let test_convergence_empty_inputs () =
  Alcotest.(check bool) "global of nothing" true
    (Bgp.Convergence.global_convergence_time [] = None);
  Alcotest.(check (float 0.001)) "instant of nothing" 0.0 (Bgp.Convergence.fraction_instant []);
  Alcotest.(check (float 0.001)) "mean updates of nothing" 0.0 (Bgp.Convergence.mean_updates [])

let suite =
  [
    Alcotest.test_case "default route forwarding" `Quick test_default_route_forwarding;
    Alcotest.test_case "sibling exports everything" `Quick test_sibling_exports_everything;
    Alcotest.test_case "MED steering" `Quick test_med_steers_between_sessions;
    Alcotest.test_case "isolation with silent routers" `Quick test_isolation_with_silent_routers;
    Alcotest.test_case "isolation blames the failed link's side" `Quick
      test_isolation_blames_link_far_side;
    Alcotest.test_case "orchestrator waits then poisons" `Quick test_orchestrator_wait_then_poison;
    Alcotest.test_case "orchestrator stands down on transients" `Quick
      test_orchestrator_gives_up_on_transient;
    Alcotest.test_case "convergence metrics on empty input" `Quick test_convergence_empty_inputs;
  ]
