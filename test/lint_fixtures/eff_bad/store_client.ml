(* Cross-module global mutation, laundered through Store.put: the file
   itself is syntactically clean. *)
let record x = Store.put x
