(** The fault study: {!Fleet_study} under {!Bgp.Faults} at increasing
    intensity. Reports injected fault volume, repair outcomes, and
    watchdog/circuit-breaker activity (re-announces, rollbacks, breaker
    trips, time-to-repair quantiles) as a function of fault intensity.
    Intensity 0 is the fault-free control row. *)

type row = { intensity : float; result : Fleet_study.result }

type result = {
  profile : Bgp.Faults.config;  (** The intensity-1 fault profile. *)
  rows : row list;  (** One fleet study per intensity, ascending. *)
}

val default_profile : Bgp.Faults.config
(** Every fault class enabled, calibrated so a one-day window sees
    regular session flaps and occasional link/router faults. *)

val default_intensities : float list
(** [[0.0; 0.5; 1.0; 2.0]]. *)

val run :
  ?config:Fleet.Service.config ->
  ?profile:Bgp.Faults.config ->
  ?intensities:float list ->
  ?targets:int ->
  ?jobs:int ->
  seed:int ->
  unit ->
  result
(** One {!Fleet_study.run} per intensity, each with the profile scaled
    by {!Bgp.Faults.scale}. Same seed across rows, so the outage
    workload is held fixed and only the fault schedule varies.
    Deterministic in [(config, profile, intensities, targets, seed)] and
    invariant under [jobs]. Raises [Invalid_argument] on an invalid
    profile, an empty intensity list, or a negative intensity. *)

val to_tables : result -> Stats.Table.t list
