(* Binary-heap event queue ordered by (time, sequence number); the sequence
   number keeps events at equal times FIFO, which makes runs reproducible. *)

(* Engine metrics: dispatched events, queue-depth high-watermark and the
   per-event virtual-time advance. All record into per-domain Obs shards,
   so an engine owned by a trial worker never shares state with another
   trial's engine; with metrics disabled each costs one flag read. *)
let m_events = Obs.Metrics.counter "sim.events"
let m_queue_depth = Obs.Metrics.gauge "sim.queue_depth"
let m_time_advance = Obs.Metrics.histogram "sim.time_advance"

type event = { time : float; seq : int; action : unit -> unit }

type timer = { mutable cancelled : bool }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable named : (string * float * timer) list;
      (* Control-plane timers registered through [after_named]: the
         snapshotable subset of the pending set. The heap holds closures
         and cannot be captured; named timers carry (name, due) so a
         snapshot can record — and a restore re-arm — the controller's
         deadlines. Few and long-lived (watchdog ticks, backoffs), so a
         list is fine. *)
}

let create ?(now = 0.0) () =
  {
    heap = Array.make 64 { time = 0.0; seq = 0; action = ignore };
    size = 0;
    clock = now;
    next_seq = 0;
    named = [];
  }

let now t = t.clock

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let bigger = Array.make (2 * cap) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 cap;
    t.heap <- bigger
  end

let push t ev =
  grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.heap.(0)

let schedule t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  let ev = { time = at; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  Obs.Metrics.observe_max m_queue_depth t.size

let schedule_after t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let schedule_every t ~every ?until f =
  if every <= 0.0 then invalid_arg "Engine.schedule_every: period must be positive";
  let rec tick () =
    let stop_by_deadline =
      match until with
      | Some deadline -> t.clock > deadline
      | None -> false
    in
    if not stop_by_deadline then begin
      match f t.clock with
      | `Continue -> schedule_after t ~delay:every tick
      | `Stop -> ()
    end
  in
  schedule_after t ~delay:every tick

(* Cancellable timers: the heap has no random-access removal, so a timer
   is a shared flag the wrapped action checks at fire time. A cancelled
   one-shot fires as a no-op; a cancelled recurring timer stops
   rescheduling at its next tick. *)
let after t ~delay action =
  let tm = { cancelled = false } in
  schedule_after t ~delay (fun () -> if not tm.cancelled then action ());
  tm

let every t ~every ?until f =
  let tm = { cancelled = false } in
  schedule_every t ~every ?until (fun now -> if tm.cancelled then `Stop else f now);
  tm

let cancel tm = tm.cancelled <- true
let active tm = not tm.cancelled

let after_named t ~name ~delay action =
  let tm = { cancelled = false } in
  let due = t.clock +. delay in
  t.named <- (name, due, tm) :: t.named;
  schedule_after t ~delay (fun () ->
      t.named <- List.filter (fun (_, _, tm') -> tm' != tm) t.named;
      if not tm.cancelled then action ());
  tm

let named_pending t =
  let live =
    List.filter_map (fun (n, d, tm) -> if tm.cancelled then None else Some (n, d)) t.named
  in
  List.sort
    (fun (n1, d1) (n2, d2) ->
      let c = Float.compare d1 d2 in
      if c <> 0 then c else String.compare n1 n2)
    live

let step t =
  match pop t with
  | None -> false
  | Some ev ->
      Obs.Metrics.incr m_events;
      Obs.Metrics.observe m_time_advance (ev.time -. t.clock);
      t.clock <- ev.time;
      ev.action ();
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match peek t with
    | None -> continue := false
    | Some ev -> begin
        match until with
        | Some deadline when ev.time > deadline ->
            t.clock <- deadline;
            continue := false
        | _ -> ignore (step t)
      end
  done

(* Half-open variant of [run] for barrier-windowed stepping: process
   strictly-earlier events only, so an event at exactly the window
   boundary belongs to the next window. The clock always lands on
   [before] (even from an empty queue), which is what lets a sharded
   network treat every shard engine's clock as "this shard has observed
   everything before the frontier". *)
let run_before t ~before =
  let continue = ref true in
  while !continue do
    match peek t with
    | Some ev when ev.time < before -> ignore (step t)
    | _ -> continue := false
  done;
  if before > t.clock then t.clock <- before

let next_time t =
  match peek t with
  | Some ev -> Some ev.time
  | None -> None

let pending t = t.size
