(** Interprocedural call graph over the library tree (functor-free,
    untyped, heuristic — see the .ml header).

    Built from already-parsed structures so the driver parses each file
    exactly once. Resolution understands sibling modules
    ([Speaker.create]), library umbrella modules ([Bgp.Speaker.create],
    with library names read from dune files — lib/core is [Lifeguard]),
    file-level and [let open] opens, and module aliases
    ([module R = Retry]). Unresolved references are kept as "externals"
    for {!Effects} to interpret. *)

type def = {
  id : int;
  file : string;
  path : string list;  (** module path within the file, value name last *)
  display : string;  (** e.g. ["Bgp.Speaker.create"] *)
  line : int;
  col : int;
  exported : bool;
      (** listed in the sibling [.mli]; no [.mli] exports everything *)
  mutable_global : bool;
      (** module-level non-function binding building a mutable container *)
  kind : Source_scan.file_kind;
  mutable calls : (int * int) list;  (** resolved (callee id, line), source order *)
  mutable externals : (string list * int) list;
      (** unresolved references (path, line) — primitives live here *)
  mutable catchall_line : int option;
}

type t = {
  defs : def array;
  by_display : (string, int) Hashtbl.t;
  sccs : int list list;
      (** Tarjan SCCs in callee-first order: every SCC appears after all
          SCCs it has edges into, so one forward sweep is a fixpoint *)
}

val build : files:(string * Parsetree.structure * Source_scan.file_kind) list -> t
(** Build the graph over the given parsed files. Files are sorted by
    path and definitions numbered in source order, so the graph — and
    everything derived from it — is deterministic. *)

val find : t -> string -> int option
(** Look up a definition by display name, e.g. ["Fleet.Service.run"]. *)
