type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
}

let default = { max_attempts = 3; base_delay = 60.0; multiplier = 2.0; max_delay = 600.0 }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if p.base_delay < 0.0 then invalid_arg "Retry: negative base delay";
  if p.multiplier < 1.0 then invalid_arg "Retry: multiplier must be >= 1";
  if p.max_delay < p.base_delay then invalid_arg "Retry: max_delay below base_delay";
  p

let delay_for p ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_for: attempts count from 1";
  Float.min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)))

let exhausted p ~attempt = attempt >= p.max_attempts

(* Worst case a pipeline spends retrying before its terminal give-up —
   the bound behind "every outage reaches a terminal state". *)
let total_delay_bound p =
  let rec go attempt acc =
    if attempt >= p.max_attempts then acc
    else go (attempt + 1) (acc +. delay_for p ~attempt)
  in
  go 1 0.0
