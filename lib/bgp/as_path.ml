open Net

(* A path is an immutable nearest-first array of ASNs plus two cached
   integers: a salted structural hash (always valid) and an interner id
   ([-1] until a [Path_store] adopts the node). Constructors build
   uninterned nodes; stores stamp ids via [Internal.with_id]. Ids are
   world-local, so [equal] never trusts them across values — it relies on
   physical sharing (interned values of one world) and on the cached hash
   to stay O(1) in practice. *)
type t = { id : int; hash : int; asns : Asn.t array }

(* Fixed salt: deterministic across worlds (byte-identical tables at any
   [--jobs]) while decorrelating the path hash from the raw ASN values. *)
let salt = 0x42_D6_E7_2D

let mix h x =
  let h = (h lxor (x * 0x9E3779B1)) * 0x85EBCA6B in
  h lxor (h lsr 15)

let hash_asns asns =
  let h = ref (mix salt (Array.length asns)) in
  Array.iter (fun a -> h := mix !h (Asn.to_int a)) asns;
  !h land max_int

let of_array asns = { id = -1; hash = hash_asns asns; asns }
let of_list l = of_array (Array.of_list l)
let to_list t = Array.to_list t.asns
let empty = of_array [||]
let is_empty t = Array.length t.asns = 0
let length t = Array.length t.asns
let hash t = t.hash

let origin t =
  let n = Array.length t.asns in
  if n = 0 then None else Some t.asns.(n - 1)

let first_hop t = if Array.length t.asns = 0 then None else Some t.asns.(0)

let prepend asn t =
  let n = Array.length t.asns in
  let asns = Array.make (n + 1) asn in
  Array.blit t.asns 0 asns 1 n;
  of_array asns

let exists f t = Array.exists f t.asns
let fold f init t = Array.fold_left f init t.asns
let contains asn t = Array.exists (Asn.equal asn) t.asns

let count asn t =
  Array.fold_left (fun n a -> if Asn.equal asn a then n + 1 else n) 0 t.asns

let unique_ases t =
  Array.fold_left (fun acc a -> Asn.Set.add a acc) Asn.Set.empty t.asns

let traversed ~origin t =
  let n = Array.length t.asns in
  let rec cut i = if i >= n || Asn.equal t.asns.(i) origin then i else cut (i + 1) in
  of_array (Array.sub t.asns 0 (cut 0))

let traverses ~origin ~target t = contains target (traversed ~origin t)
let plain ~origin = of_array [| origin |]

let prepended ~origin ~copies =
  if copies < 1 then invalid_arg "As_path.prepended: need at least one copy";
  of_array (Array.make copies origin)

let poisoned ~origin ~poison =
  if Asn.equal origin poison then invalid_arg "As_path.poisoned: cannot poison the origin";
  of_array [| origin; poison; origin |]

let poisoned_multi ~origin ~poisons =
  if List.exists (Asn.equal origin) poisons then
    invalid_arg "As_path.poisoned_multi: cannot poison the origin";
  match poisons with
  | [] -> invalid_arg "As_path.poisoned_multi: empty poison list"
  | _ :: _ -> of_list ((origin :: poisons) @ [ origin ])

let structural_equal a b =
  Array.length a.asns = Array.length b.asns
  && (let n = Array.length a.asns in
      let rec go i = i >= n || (Asn.equal a.asns.(i) b.asns.(i) && go (i + 1)) in
      go 0)

(* Interned values of one world are physically shared, so the common case
   is the [==] hit; unequal values differ in the cached hash with high
   probability. The structural walk only runs on a hash collision or when
   comparing uninterned/cross-world values that happen to be equal. *)
let equal a b = a == b || (a.hash = b.hash && structural_equal a b)

let to_string t =
  String.concat " " (List.map (fun a -> string_of_int (Asn.to_int a)) (to_list t))

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Internal = struct
  let id t = t.id
  let with_id t id = { t with id }
end
