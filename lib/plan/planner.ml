open Net
open Topology
open Lifeguard

let hopeless_reason blamed =
  Printf.sprintf "no policy-compliant path around %s" (Asn.to_string blamed)

let candidate_blames graph ~origin ~target =
  let intermediates path =
    List.filter (fun a -> not (Asn.equal a origin || Asn.equal a target)) path
  in
  let mids ~src ~dst ~avoiding =
    match Splice.policy_path graph ~src ~dst ~avoiding with
    | None -> []
    | Some path -> intermediates path
  in
  (* Isolation blames ASes of the path actually routed, which need not be
     the one splice prefers — and after a reroute it blames ASes of the
     alternate. Enumerate both directions' primary paths, then the splice
     alternate around each primary intermediate, and plan for the union. *)
  let primaries =
    mids ~src:target ~dst:origin ~avoiding:Asn.Set.empty
    @ mids ~src:origin ~dst:target ~avoiding:Asn.Set.empty
  in
  let union =
    List.fold_left
      (fun acc mid ->
        let acc =
          List.fold_left
            (fun acc a -> Asn.Set.add a acc)
            acc
            (mids ~src:target ~dst:origin ~avoiding:(Asn.Set.singleton mid))
        in
        List.fold_left
          (fun acc a -> Asn.Set.add a acc)
          acc
          (mids ~src:origin ~dst:target ~avoiding:(Asn.Set.singleton mid)))
      (Asn.Set.of_list primaries) primaries
  in
  Asn.Set.elements union

let remedy_for graph ~store ~origin ~target ~blamed =
  if Splice.policy_reachable graph ~src:target ~dst:origin
       ~avoiding:(Asn.Set.singleton blamed)
  then begin
    let path =
      Bgp.Path_store.intern_path store (Bgp.As_path.poisoned ~origin ~poison:blamed)
    in
    let direct_provider =
      List.exists (fun (n, _) -> Asn.equal n blamed) (As_graph.neighbors graph origin)
    in
    if direct_provider then Plan_store.Selective_poison { path; via = [ blamed ] }
    else Plan_store.Poison { path }
  end
  else Plan_store.Hopeless (hopeless_reason blamed)

let remedy_for_class graph ~store ~origin ~target ~cls =
  match cls.Failure_class.direction with
  | Isolation.Reverse_failure | Isolation.Bidirectional ->
      if Asn.equal cls.Failure_class.blamed origin then
        Plan_store.Hopeless "failure is local; fix it directly"
      else remedy_for graph ~store ~origin ~target ~blamed:cls.Failure_class.blamed
  | Isolation.Forward_failure -> Plan_store.Alternate_path
  | Isolation.No_failure -> Plan_store.Hopeless "path works; nothing to repair"
  | Isolation.Destination_unreachable ->
      Plan_store.Hopeless "destination unreachable from everywhere"

let classes_of blamed =
  List.concat_map
    (fun direction ->
      List.map
        (fun reversal -> { Failure_class.blamed; direction; reversal })
        [ false; true ])
    [ Isolation.Reverse_failure; Isolation.Bidirectional ]

let build ~graph ~store ~plan ~targets =
  let origin = plan.Remediate.origin in
  List.fold_left
    (fun acc target ->
      if Asn.equal target origin then acc
      else
        let blames = candidate_blames graph ~origin ~target in
        List.fold_left
          (fun acc blamed ->
            let remedy = remedy_for graph ~store ~origin ~target ~blamed in
            let acc =
              List.fold_left
                (fun acc cls -> Plan_store.add acc ~target ~cls remedy)
                acc (classes_of blamed)
            in
            (* Forward failures never poison: the plan records the
               egress-switch advice so a hit still covers them. *)
            List.fold_left
              (fun acc reversal ->
                Plan_store.add acc ~target
                  ~cls:
                    {
                      Failure_class.blamed;
                      direction = Isolation.Forward_failure;
                      reversal;
                    }
                  Plan_store.Alternate_path)
              acc [ false; true ])
          acc blames)
    Plan_store.empty targets
