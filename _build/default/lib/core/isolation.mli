(** Failure isolation — §4.1 of the paper.

    Given a detected outage between a vantage point [src] and a
    destination, the pipeline (1) isolates the failing direction with
    spoofed pings, (2) measures the path in the working direction with a
    spoofed traceroute or reverse traceroute, (3) probes the hops of
    historical atlas paths in the failing direction from the source and
    from other vantage points, and (4) prunes reachable hops and blames
    the AS at the {e reachability horizon} — the first hop (walking
    outward from the working side) that lost connectivity, excluding
    routers that never answer probes. *)

open Net

type direction =
  | Forward_failure  (** Packets from [src] toward the target die. *)
  | Reverse_failure  (** The target's packets back to [src] die. *)
  | Bidirectional  (** Both directions fail. *)
  | Destination_unreachable  (** No vantage point reaches the target: not isolatable. *)
  | No_failure  (** The path works after all (transient). *)

val pp_direction : Format.formatter -> direction -> unit
val direction_to_string : direction -> string

type blame =
  | Blamed_as of Asn.t
  | Blamed_link of Asn.t * Asn.t  (** Failure pinned to an inter-AS link. *)
  | Unlocated  (** Evidence insufficient. *)

val pp_blame : Format.formatter -> blame -> unit
val blamed_as : blame -> Asn.t option
(** The AS to poison: the blamed AS, or the far side of a blamed link. *)

type hop_status =
  | Reachable_from_src  (** Still answers probes from the source. *)
  | Reachable_elsewhere  (** Only answers other vantage points. *)
  | Unreachable  (** Answers nobody although it used to. *)
  | Silent  (** Never answers probes; no evidence either way. *)

type diagnosis = {
  src : Asn.t;
  dst : Asn.t;
  direction : direction;
  blame : blame;
  suspects : (Asn.t * hop_status) list;  (** Hop ASes with their probe evidence. *)
  working_path : Asn.t list option;  (** Measured path in the working direction. *)
  traceroute_blame : Asn.t option;
      (** What an operator using only traceroute would conclude (§5.3's
          comparison baseline). *)
  probes_used : int;
  elapsed : float;  (** Modeled wall-clock isolation latency, seconds. *)
}

val pp_diagnosis : Format.formatter -> diagnosis -> unit

type context = {
  env : Dataplane.Probe.env;
  atlas : Measurement.Atlas.t;
  responsiveness : Measurement.Responsiveness.t;
  vantage_points : Asn.t list;  (** Including or excluding [src]; both fine. *)
  source_overrides : (Asn.t * Ipv4.t) list;
      (** Probe source address per AS, overriding the default (the AS's
          first router address). A LIFEGUARD origin probes from inside its
          production prefix so that reverse failures scoped to its
          announced space are visible to its own probes. *)
}

val source_of : context -> Asn.t -> Ipv4.t
(** The probe source address an AS uses, honoring overrides. *)

val isolate : context -> src:Asn.t -> dst:Asn.t -> diagnosis
(** Run the full pipeline for an outage between [src] and the destination
    AS [dst] (targets are identified by their responding AS). *)
