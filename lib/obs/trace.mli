(** Structured trace sink: JSONL events behind a zero-cost-when-disabled
    guard.

    Each event is one line of JSON with a fixed envelope —

    {v
    {"ts":123.456789,"domain":4,"span":"bgp.deliver","kv":{"from":7018,...}}
    v}

    - ["ts"] is the timestamp the instrument supplied (simulation time in
      the engine-driven layers, {!Clock.now} wall time in the runner);
    - ["domain"] is the recording domain's id — useful for grouping, but
      {e not} stable across runs or [--jobs] values;
    - ["span"] names the event category;
    - ["kv"] carries the event's payload pairs.

    Events are buffered per domain (lock-free) and flushed to the sink
    under a mutex when a buffer fills and at {!close}. Consequently the
    {e order} of lines in a trace file is not deterministic across
    [--jobs] values — but the multiset of events is: every trial rebuilds
    its world from the seed, so per-span event counts are invariants
    (checked by the golden test in [test/test_obs.ml]).

    When disabled (the default), {!on} is a single atomic flag read;
    instrumentation sites guard event construction with it so the hot
    paths allocate nothing. *)

type value = Int of int | Float of float | Bool of bool | Str of string
(** Payload values; rendered as native JSON types. *)

val on : unit -> bool
(** Whether a sink is installed. Instrumentation must guard with this
    ([if Trace.on () then Trace.event ...]) so payload construction is
    never paid when tracing is off. *)

val enable_file : string -> unit
(** Open [path] (truncating) and send subsequent events to it. *)

val enable_buffer : Buffer.t -> unit
(** Send subsequent events to an in-memory buffer (used by tests). The
    caller owns the buffer; it is appended to under the sink mutex. *)

val event : ts:float -> span:string -> (string * value) list -> unit
(** Record one event. No-op when no sink is installed (but prefer
    guarding the call site with {!on} — the argument list is allocated by
    the caller). *)

val close : unit -> unit
(** Flush every domain's buffer, close the sink, and disable tracing.
    Idempotent. Call only when recording domains are quiescent. *)
