(* lifeguard-lint fixture: must flag LG-OBS-PRINTF on every bare stdout
   writer (4 hits). *)

let report x =
  Printf.printf "x=%d\n" x;
  Format.printf "x=%d@." x;
  print_endline "done";
  print_string "tail\n"
