lib/experiments/fig1_durations.ml: Array List Stats Workloads
