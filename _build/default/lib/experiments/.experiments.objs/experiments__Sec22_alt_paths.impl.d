lib/experiments/sec22_alt_paths.ml: Array Asn Dataplane List Net Outage_gen Prng Scenarios Stats Topology Workloads
