(* lifeguard-lint: fixture corpus (one must-flag and one must-pass file
   per rule family), baseline semantics, and the --check exit codes. *)

module Rule = Lint.Rule
module Scan = Lint.Source_scan
module Baseline = Lint.Baseline

let fixture name = Filename.concat "lint_fixtures" name

let scan_fixture name =
  match Scan.scan_file ~kind:Scan.lib_kind (fixture name) with
  | Ok vs -> vs
  | Error e -> Alcotest.failf "parse error in %s: %s" name e

let count rule vs =
  List.length (List.filter (fun (v : Scan.violation) -> String.equal (Rule.id v.rule) (Rule.id rule)) vs)

let check_rule name vs rule expected =
  Alcotest.(check int) (name ^ ": " ^ Rule.id rule) expected (count rule vs)

let test_det_fixtures () =
  let bad = scan_fixture "det_bad.ml" in
  check_rule "det_bad" bad Rule.Det_random 1;
  check_rule "det_bad" bad Rule.Det_clock 2;
  check_rule "det_bad" bad Rule.Det_polyeq 3;
  check_rule "det_bad" bad Rule.Det_hashkey 1;
  Alcotest.(check int) "det_good is clean" 0 (List.length (scan_fixture "det_good.ml"))

let test_dom_fixtures () =
  let bad = scan_fixture "dom_bad.ml" in
  check_rule "dom_bad" bad Rule.Dom_mut 5;
  Alcotest.(check int) "dom_good is clean" 0 (List.length (scan_fixture "dom_good.ml"));
  (* outside lib/, module-level state is the executable's business *)
  (match
     Scan.scan_file
       ~kind:{ Scan.in_lib = false; prng_exempt = false; obs_exempt = false; bgp_exempt = false }
       (fixture "dom_bad.ml")
   with
  | Ok vs -> check_rule "dom_bad outside lib" vs Rule.Dom_mut 0
  | Error e -> Alcotest.fail e);
  (* lib/obs is the sanctioned home for cross-domain shards: exempt. *)
  match Scan.scan_file ~kind:(Scan.classify "lib/obs/metrics.ml") (fixture "dom_bad.ml") with
  | Ok vs -> check_rule "dom_bad under lib/obs" vs Rule.Dom_mut 0
  | Error e -> Alcotest.fail e

let test_obs_fixtures () =
  let bad = scan_fixture "obs_bad.ml" in
  check_rule "obs_bad" bad Rule.Obs_printf 4;
  Alcotest.(check int) "obs_good is clean" 0 (List.length (scan_fixture "obs_good.ml"));
  (* outside lib/, printing is the executable's business *)
  match Scan.scan_file ~kind:(Scan.classify "bench/main.ml") (fixture "obs_bad.ml") with
  | Ok vs -> check_rule "obs_bad outside lib" vs Rule.Obs_printf 0
  | Error e -> Alcotest.fail e

let test_perf_fixtures () =
  let bad = scan_fixture "perf_bad.ml" in
  check_rule "perf_bad" bad Rule.Perf_append 2;
  check_rule "perf_bad" bad Rule.Perf_scan 2;
  Alcotest.(check int) "perf_good is clean" 0 (List.length (scan_fixture "perf_good.ml"))

let test_structeq_fixtures () =
  let bad = scan_fixture "structeq_bad.ml" in
  check_rule "structeq_bad" bad Rule.Perf_structeq 4;
  Alcotest.(check int) "structeq_good is clean" 0
    (count Rule.Perf_structeq (scan_fixture "structeq_good.ml"));
  (* inside lib/bgp, structural comparison of the interned reps is legal *)
  match Scan.scan_file ~kind:(Scan.classify "lib/bgp/as_path.ml") (fixture "structeq_bad.ml") with
  | Ok vs -> check_rule "structeq_bad under lib/bgp" vs Rule.Perf_structeq 0
  | Error e -> Alcotest.fail e

let test_rob_fixtures () =
  let bad = scan_fixture "rob_bad.ml" in
  check_rule "rob_bad" bad Rule.Rob_exn 4;
  Alcotest.(check int) "rob_good is clean" 0 (List.length (scan_fixture "rob_good.ml"));
  (* outside lib/, defensive catch-alls in a binary are its business *)
  match Scan.scan_file ~kind:(Scan.classify "bench/main.ml") (fixture "rob_bad.ml") with
  | Ok vs -> check_rule "rob_bad outside lib" vs Rule.Rob_exn 0
  | Error e -> Alcotest.fail e

let test_rob_snapshot_fixtures () =
  let bad = scan_fixture "rob_snapshot_bad.ml" in
  check_rule "rob_snapshot_bad" bad Rule.Rob_snapshot 3;
  Alcotest.(check int) "rob_snapshot_good is clean" 0
    (List.length (scan_fixture "rob_snapshot_good.ml"));
  (* no toplevel [capture] binding, no snapshot contract *)
  Alcotest.(check int) "rob_snapshot_none is clean" 0
    (List.length (scan_fixture "rob_snapshot_none.ml"));
  (* outside lib/, snapshotting is not a contract the linter owns *)
  match Scan.scan_file ~kind:(Scan.classify "bench/main.ml") (fixture "rob_snapshot_bad.ml") with
  | Ok vs -> check_rule "rob_snapshot_bad outside lib" vs Rule.Rob_snapshot 0
  | Error e -> Alcotest.fail e

let test_mli_fixtures () =
  let files = Lint.collect_ml_files [] (fixture "mli") in
  let vs = Scan.mli_violations ~force_lib:true files in
  Alcotest.(check int) "one orphan" 1 (List.length vs);
  match vs with
  | [ v ] ->
      Alcotest.(check bool) "orphan.ml flagged" true
        (Filename.basename v.Scan.file = "orphan.ml")
  | _ -> Alcotest.fail "expected exactly orphan.ml"

let test_baseline_semantics () =
  let vs = scan_fixture "perf_bad.ml" in
  let base = Baseline.of_violations vs in
  let clean = Baseline.check base vs in
  Alcotest.(check int) "own violations grandfathered" 0 (List.length clean.Baseline.fresh);
  let fresh = Baseline.check Baseline.empty vs in
  Alcotest.(check bool) "empty baseline flags everything" true
    (List.length fresh.Baseline.fresh > 0);
  let stale = Baseline.check base [] in
  Alcotest.(check bool) "fixed violations reported stale, not fatal" true
    (List.length stale.Baseline.stale > 0 && List.length stale.Baseline.fresh = 0)

let test_check_exit_codes () =
  let tmp = Filename.temp_file "lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let run args = Lint.main (Array.of_list ("lifeguard_lint" :: args)) in
      Alcotest.(check int) "--check is 1 on fixtures not in the baseline" 1
        (run [ "--check"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]);
      Alcotest.(check int) "--update-baseline is 0" 0
        (run [ "--update-baseline"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]);
      Alcotest.(check int) "--check is 0 once grandfathered" 0
        (run [ "--check"; "--treat-as-lib"; "--baseline"; tmp; "lint_fixtures" ]))

(* ---------------- interprocedural effect analysis ------------------- *)

let scan_dir name = Lint.scan ~kind:Scan.lib_kind ~dirs:[ fixture name ] ()

let messages_of rule (r : Lint.report) =
  List.filter_map
    (fun (v : Scan.violation) ->
      if String.equal (Rule.id v.rule) (Rule.id rule) then Some v.Scan.message else None)
    r.Lint.violations

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_eff_fixtures () =
  let bad = scan_dir "eff_bad" in
  Alcotest.(check int) "eff_bad parses" 0 (List.length bad.Lint.errors);
  check_rule "eff_bad" bad.Lint.violations Rule.Eff_clock 3;
  check_rule "eff_bad" bad.Lint.violations Rule.Eff_random 2;
  check_rule "eff_bad" bad.Lint.violations Rule.Eff_globalmut 2;
  (* The direct seeds stay with the per-file rules, not LG-EFF-*. *)
  check_rule "eff_bad" bad.Lint.violations Rule.Det_clock 1;
  check_rule "eff_bad" bad.Lint.violations Rule.Det_random 1;
  check_rule "eff_bad" bad.Lint.violations Rule.Dom_mut 1;
  (* Call traces: the wrapper-laundered clock reports the full chain. *)
  Alcotest.(check bool) "2-hop clock trace" true
    (List.exists
       (contains
          ~needle:"Eff_bad.Clock_user.run -> Eff_bad.Clock_wrap.now -> Unix.gettimeofday")
       (messages_of Rule.Eff_clock bad));
  Alcotest.(check bool) "3-hop random trace" true
    (List.exists
       (contains
          ~needle:
            "Eff_bad.Rand_top.choose -> Eff_bad.Rand_mid.pick -> Eff_bad.Rand_core.draw -> Random.int")
       (messages_of Rule.Eff_random bad));
  Alcotest.(check bool) "cross-module mutation trace" true
    (List.exists
       (contains
          ~needle:
            "Eff_bad.Store_client.record -> Eff_bad.Store.put -> Eff_bad.Store.table (module-level mutable)")
       (messages_of Rule.Eff_globalmut bad));
  (* The apparent cross-module cycle converges and both members report. *)
  Alcotest.(check bool) "SCC member reports through the cycle" true
    (List.exists (contains ~needle:"Eff_bad.Cyc_b.pong") (messages_of Rule.Eff_clock bad));
  (* Clean twins: same shapes with injected clock/state stay silent. *)
  let good = scan_dir "eff_good" in
  Alcotest.(check int) "eff_good parses" 0 (List.length good.Lint.errors);
  List.iter
    (fun rule -> check_rule "eff_good" good.Lint.violations rule 0)
    [ Rule.Eff_clock; Rule.Eff_random; Rule.Eff_globalmut; Rule.Det_clock; Rule.Det_random;
      Rule.Dom_mut ]

(* LG-PLAN-STALE: planner entry points (exported defs of a plan
   subsystem's planner.ml) must be effect-pure. Unlike the LG-EFF-*
   family, direct uses count too. *)
let test_plan_fixtures () =
  let bad = scan_dir "plan_bad" in
  Alcotest.(check int) "plan_bad parses" 0 (List.length bad.Lint.errors);
  (* One per tainted entry point: direct clock, laundered Random,
     module-level memo. *)
  check_rule "plan_bad" bad.Lint.violations Rule.Plan_stale 3;
  Alcotest.(check bool) "direct clock read still fires PLAN-STALE" true
    (List.exists
       (contains ~needle:"Plan_bad.Planner.build_stamped -> Unix.gettimeofday")
       (messages_of Rule.Plan_stale bad));
  Alcotest.(check bool) "laundered Random carries the chain" true
    (List.exists
       (contains ~needle:"Plan_bad.Planner.shuffle -> Plan_bad.Jitter.pick -> Random.int")
       (messages_of Rule.Plan_stale bad));
  Alcotest.(check bool) "memo taints the cached entry point" true
    (List.exists
       (contains ~needle:"Plan_bad.Planner.memo (module-level mutable)")
       (messages_of Rule.Plan_stale bad));
  (* The wrapper itself is not a planner entry point. *)
  Alcotest.(check bool) "jitter.ml itself not held to the planner bar" true
    (not
       (List.exists (contains ~needle:"Plan_bad.Jitter.pick is")
          (messages_of Rule.Plan_stale bad)));
  let good = scan_dir "plan_good" in
  Alcotest.(check int) "plan_good parses" 0 (List.length good.Lint.errors);
  check_rule "plan_good" good.Lint.violations Rule.Plan_stale 0

(* The real planner is certified pure by the same pass the fixtures
   exercise: the shipped baseline has no LG-PLAN-STALE entries, so
   test_real_tree failing would catch a regression — this test makes the
   certification explicit. *)
let test_real_planner_pure () =
  if Sys.file_exists "../lib/plan" then begin
    let r = Lint.scan ~dirs:[ "../lib/plan" ] () in
    Alcotest.(check int) "lib/plan parses" 0 (List.length r.Lint.errors);
    check_rule "lib/plan" r.Lint.violations Rule.Plan_stale 0
  end
  else print_endline "real-tree sources not materialized; skipped"

let test_pragma () =
  (* Unit semantics: same line and line-above suppress; two lines above
     does not; other rules unaffected. *)
  let p = Lint.Pragma.of_lines [ "(* lint: allow LG-EFF-CLOCK, LG-DET-CLOCK *)"; "let x = 1" ] in
  Alcotest.(check bool) "same line" true (Lint.Pragma.suppresses p ~rule:"LG-EFF-CLOCK" ~line:1);
  Alcotest.(check bool) "line below" true (Lint.Pragma.suppresses p ~rule:"LG-DET-CLOCK" ~line:2);
  Alcotest.(check bool) "two below" false (Lint.Pragma.suppresses p ~rule:"LG-DET-CLOCK" ~line:3);
  Alcotest.(check bool) "other rule" false (Lint.Pragma.suppresses p ~rule:"LG-DET-RANDOM" ~line:2);
  (* Through the scan: the fixture has three clock reads, two annotated. *)
  let r = scan_dir "pragma" in
  check_rule "pragma" r.Lint.violations Rule.Det_clock 1

let test_report_formats () =
  let r = scan_dir "eff_bad" in
  let sarif = Lint.Report.render Lint.Report.Sarif ~violations:r.Lint.violations ~errors:[] in
  (match Lint.Report.json_valid sarif with
  | Ok () -> ()
  | Error e -> Alcotest.failf "SARIF output is not well-formed JSON: %s" e);
  Alcotest.(check bool) "sarif carries the schema" true
    (contains ~needle:"sarif-2.1.0.json" sarif);
  Alcotest.(check bool) "sarif carries rule ids" true (contains ~needle:"LG-EFF-CLOCK" sarif);
  let json = Lint.Report.render Lint.Report.Json ~violations:r.Lint.violations ~errors:[] in
  (match Lint.Report.json_valid json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "JSON output is not well-formed: %s" e);
  (* Workflow commands: one ::warning per violation, file= anchored. *)
  let gh = Lint.Report.render Lint.Report.Github ~violations:r.Lint.violations ~errors:[] in
  Alcotest.(check bool) "github warnings" true (contains ~needle:"::warning file=" gh);
  (* The validator itself rejects garbage. *)
  (match Lint.Report.json_valid "{\"a\": [1, 2,]}" with
  | Ok () -> Alcotest.fail "trailing comma accepted"
  | Error _ -> ());
  match Lint.Report.json_valid "{\"a\": 1} trailing" with
  | Ok () -> Alcotest.fail "trailing content accepted"
  | Error _ -> ()

let test_effects_cli () =
  let buf = Buffer.create 4096 in
  let out = Format.formatter_of_buffer buf in
  let code =
    Lint.main ~out [| "lifeguard_lint"; "--effects"; "--treat-as-lib"; fixture "eff_bad" |]
  in
  Format.pp_print_flush out ();
  Alcotest.(check int) "--effects exits 0" 0 code;
  let table = Buffer.contents buf in
  Alcotest.(check bool) "summary row for the laundered clock" true
    (contains ~needle:"Eff_bad.Clock_user.run" table);
  Alcotest.(check bool) "clock effect in the row" true (contains ~needle:"clock" table)

(* Effect summaries of the real tree: the hot control-loop entry points
   are effect-free (clock and randomness arrive injected), and the table
   is deterministic run to run. A change here means someone taught the
   simulation core a real side effect — that breaks the share-nothing
   worker model, so it should be a conscious, reviewed decision. *)
let test_real_tree_effects () =
  if Sys.file_exists "../lib" then begin
    let eff, errors = Lint.analyse ~dirs:[ "../lib" ] () in
    Alcotest.(check int) "real tree parses" 0 (List.length errors);
    let rows = Lint.Effects.summary_rows eff in
    Alcotest.(check bool) "covers the exported surface" true (List.length rows > 400);
    let row name =
      match List.assoc_opt name rows with
      | Some r -> r
      | None -> Alcotest.failf "no effect summary row for %s" name
    in
    Alcotest.(check string) "Bgp.Speaker.create stays pure" "pure" (row "Bgp.Speaker.create");
    Alcotest.(check string) "Fleet.Service.run stays pure" "pure" (row "Fleet.Service.run");
    let eff2, _ = Lint.analyse ~dirs:[ "../lib" ] () in
    Alcotest.(check bool) "summary is deterministic" true
      (List.equal
         (fun (a, b) (c, d) -> String.equal a c && String.equal b d)
         rows
         (Lint.Effects.summary_rows eff2))
  end
  else print_endline "real-tree sources not materialized; skipped"

(* The gate the build runs: the real tree is clean against the shipped
   baseline. Exercised from the test binary's sandbox (_build/default),
   where dune has copied the sources and lint.baseline next to test/. *)
let test_real_tree () =
  if Sys.file_exists "../lint.baseline" && Sys.file_exists "../lib" then
    Alcotest.(check int) "--check is 0 on the real tree with the shipped baseline" 0
      (Lint.main [| "lifeguard_lint"; "--check"; "--root"; ".." |])
  else print_endline "real-tree fixture not materialized; covered by `dune build @lint`"

let suite =
  [
    Alcotest.test_case "determinism fixtures" `Quick test_det_fixtures;
    Alcotest.test_case "domain-safety fixtures" `Quick test_dom_fixtures;
    Alcotest.test_case "perf fixtures" `Quick test_perf_fixtures;
    Alcotest.test_case "perf/structeq fixtures" `Quick test_structeq_fixtures;
    Alcotest.test_case "obs/printf fixtures" `Quick test_obs_fixtures;
    Alcotest.test_case "robustness/exception fixtures" `Quick test_rob_fixtures;
    Alcotest.test_case "robustness/snapshot fixtures (LG-ROB-SNAPSHOT)" `Quick
      test_rob_snapshot_fixtures;
    Alcotest.test_case "mli fixtures" `Quick test_mli_fixtures;
    Alcotest.test_case "baseline semantics" `Quick test_baseline_semantics;
    Alcotest.test_case "check exit codes" `Quick test_check_exit_codes;
    Alcotest.test_case "effect fixtures (LG-EFF-*)" `Quick test_eff_fixtures;
    Alcotest.test_case "planner purity fixtures (LG-PLAN-STALE)" `Quick test_plan_fixtures;
    Alcotest.test_case "real planner certified pure" `Quick test_real_planner_pure;
    Alcotest.test_case "pragma suppressions" `Quick test_pragma;
    Alcotest.test_case "report formats (sarif/json/github)" `Quick test_report_formats;
    Alcotest.test_case "--effects CLI table" `Quick test_effects_cli;
    Alcotest.test_case "real tree effect summaries" `Quick test_real_tree_effects;
    Alcotest.test_case "real tree vs shipped baseline" `Quick test_real_tree;
  ]
