(** Table 2: additional daily path changes per router under a deployment.

    Paper grid (I = fraction of ISPs deploying, T = fraction of networks
    monitored, d = minutes before poisoning):

    {v
                d=5 min      d=15 min     d=60 min
       T =      0.5   1.0    0.5   1.0    0.5   1.0
       I=0.01   393   783    137   275     58   115
       I=0.1   3931  7866   1370  2748    576  1154
       I=0.5  19625 39200   6874 13714   2889  5771
    v}

    For reference, a single-homed edge router sees ~110K updates/day and
    tier-1 routers 255–315K. *)

type result = {
  rows : Lifeguard.Load_model.grid_row list;
  reference_cell : float;  (** I=0.01, T=1.0, d=15 — anchored at ~275. *)
  overhead_small_deploy : float;
      (** Relative to the 110K/day edge router, at I=0.1, T=1.0, d=15. *)
}

let paper_cells =
  (* (d, t, i) -> paper value *)
  [
    ((5., 0.5, 0.01), 393.);
    ((5., 1.0, 0.01), 783.);
    ((15., 0.5, 0.01), 137.);
    ((15., 1.0, 0.01), 275.);
    ((60., 0.5, 0.01), 58.);
    ((60., 1.0, 0.01), 115.);
    ((5., 0.5, 0.1), 3931.);
    ((5., 1.0, 0.1), 7866.);
    ((15., 0.5, 0.1), 1370.);
    ((15., 1.0, 0.1), 2748.);
    ((60., 0.5, 0.1), 576.);
    ((60., 1.0, 0.1), 1154.);
    ((5., 0.5, 0.5), 19625.);
    ((5., 1.0, 0.5), 39200.);
    ((15., 0.5, 0.5), 6874.);
    ((15., 1.0, 0.5), 13714.);
    ((60., 0.5, 0.5), 2889.);
    ((60., 1.0, 0.5), 5771.);
  ]

let paper_value ~d ~t ~i =
  List.assoc_opt (d, t, i) paper_cells

let run ?(n = 10308) ~seed () =
  let durations = Workloads.Outage_gen.durations ~seed ~n () in
  let params = Lifeguard.Load_model.default_params in
  let rows = Lifeguard.Load_model.table2 params ~durations in
  let reference_cell =
    Lifeguard.Load_model.daily_path_changes params ~durations ~i:0.01 ~t:1.0 ~d_minutes:15.0
  in
  let at_01 =
    Lifeguard.Load_model.daily_path_changes params ~durations ~i:0.1 ~t:1.0 ~d_minutes:15.0
  in
  { rows; reference_cell; overhead_small_deploy = at_01 /. 110_000.0 }

let to_tables r =
  let grid =
    Stats.Table.create ~title:"Table 2: extra daily path changes (paper vs measured)"
      ~columns:[ "I"; "T"; "d (min)"; "paper"; "measured" ]
  in
  List.iter
    (fun row ->
      let open Lifeguard.Load_model in
      let paper =
        match paper_value ~d:row.d_minutes ~t:row.t ~i:row.i with
        | Some v -> Stats.Table.cell_float ~decimals:0 v
        | None -> "-"
      in
      Stats.Table.add_row grid
        [
          Stats.Table.cell_float ~decimals:2 row.i;
          Stats.Table.cell_float ~decimals:1 row.t;
          Stats.Table.cell_float ~decimals:0 row.d_minutes;
          paper;
          Stats.Table.cell_float ~decimals:0 row.changes;
        ])
    r.rows;
  let summary =
    Stats.Table.create ~title:"Table 2 interpretation" ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows summary
    [
      [
        "anchor cell (I=0.01, T=1, d=15)";
        "275";
        Stats.Table.cell_float ~decimals:0 r.reference_cell;
      ];
      [
        "overhead vs 110K/day edge router (I=0.1, T=1, d=15)";
        "< 10%";
        Stats.Table.cell_pct r.overhead_small_deploy;
      ];
    ];
  [ grid; summary ]
