type params = {
  h15_per_day : float;
  ih : float;
  th : float;
  updates_per_poison : float;
}

let default_params = { h15_per_day = 253.0; ih = 0.92; th = 0.01; updates_per_poison = 1.0 }

let survival durations ~seconds =
  let n = Array.length durations in
  if n = 0 then invalid_arg "Load_model: empty duration sample";
  let alive = Array.fold_left (fun acc d -> if d >= seconds then acc + 1 else acc) 0 durations in
  float_of_int alive /. float_of_int n

let p_of_d params ~durations ~d_minutes =
  let anchor = params.h15_per_day /. (params.ih *. params.th) in
  let s_d = survival durations ~seconds:(d_minutes *. 60.0) in
  let s_15 = survival durations ~seconds:(15.0 *. 60.0) in
  if s_15 <= 0.0 then 0.0 else anchor *. (s_d /. s_15)

let daily_path_changes params ~durations ~i ~t ~d_minutes =
  i *. t *. p_of_d params ~durations ~d_minutes *. params.updates_per_poison

type grid_row = { d_minutes : float; t : float; i : float; changes : float }

let table2 params ~durations =
  let ds = [ 5.0; 15.0; 60.0 ] in
  let ts = [ 0.5; 1.0 ] in
  let is_ = [ 0.01; 0.1; 0.5 ] in
  List.concat_map
    (fun d_minutes ->
      List.concat_map
        (fun t ->
          List.map
            (fun i ->
              { d_minutes; t; i; changes = daily_path_changes params ~durations ~i ~t ~d_minutes })
            is_)
        ts)
    ds
