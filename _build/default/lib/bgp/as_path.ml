open Net

type t = Asn.t list

let empty = []

let origin t =
  match List.rev t with
  | last :: _ -> Some last
  | [] -> None

let first_hop = function
  | hd :: _ -> Some hd
  | [] -> None

let length = List.length
let prepend asn t = asn :: t
let contains asn t = List.exists (Asn.equal asn) t
let count asn t = List.length (List.filter (Asn.equal asn) t)
let unique_ases t = List.fold_left (fun acc a -> Asn.Set.add a acc) Asn.Set.empty t

let traversed ~origin t =
  let rec go acc = function
    | [] -> List.rev acc
    | hd :: _ when Asn.equal hd origin -> List.rev acc
    | hd :: rest -> go (hd :: acc) rest
  in
  go [] t

let traverses ~origin ~target t = contains target (traversed ~origin t)
let plain ~origin = [ origin ]

let prepended ~origin ~copies =
  if copies < 1 then invalid_arg "As_path.prepended: need at least one copy";
  List.init copies (fun _ -> origin)

let poisoned ~origin ~poison =
  if Asn.equal origin poison then invalid_arg "As_path.poisoned: cannot poison the origin";
  [ origin; poison; origin ]

let poisoned_multi ~origin ~poisons =
  if List.exists (Asn.equal origin) poisons then
    invalid_arg "As_path.poisoned_multi: cannot poison the origin";
  if poisons = [] then invalid_arg "As_path.poisoned_multi: empty poison list";
  (origin :: poisons) @ [ origin ]

let equal a b = List.length a = List.length b && List.for_all2 Asn.equal a b

let to_string t = String.concat " " (List.map (fun a -> string_of_int (Asn.to_int a)) t)
let pp fmt t = Format.pp_print_string fmt (to_string t)
