(* Shared trial execution for the experiment drivers.

   Every converted experiment decomposes into a fixed list of trial
   closures — a decomposition that is a pure function of the experiment's
   parameters, never of the worker count — where each closure rebuilds
   its entire world (topology, network, engine, PRNG) from the seed. The
   pool returns results in submission order, so results (and therefore
   every table) are bit-identical for any ~jobs. *)

let default_jobs = Par.Pool.default_jobs

let run_trials ~jobs thunks =
  Par.Pool.with_pool ~jobs (fun pool -> Par.Pool.run_trials pool thunks)
