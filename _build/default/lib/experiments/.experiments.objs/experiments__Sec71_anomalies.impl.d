lib/experiments/sec71_anomalies.ml: Array As_graph Asn Bgp Dataplane List Net Printf Prng Relationship Sim Stats Topo_gen Topology Workloads
