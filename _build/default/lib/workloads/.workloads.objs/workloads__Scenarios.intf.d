lib/workloads/scenarios.mli: As_graph Asn Bgp Dataplane Lifeguard Net Outage_gen Prefix Prng Sim Topo_gen Topology
