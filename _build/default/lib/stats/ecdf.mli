(** Empirical cumulative distribution functions, plain and weighted.

    Figure 1 of the paper plots two CDFs over the same outages: the
    fraction of {e events} of at most a given duration, and the fraction of
    {e total unavailability} (duration-weighted mass) they contribute.
    {!of_samples} builds the former and {!weighted} the latter. *)

type t
(** An ECDF: a non-decreasing step function on floats. *)

val of_samples : float array -> t
(** Unweighted ECDF of the samples. Raises on an empty sample. *)

val weighted : values:float array -> weights:float array -> t
(** ECDF where each value carries the given non-negative weight; the CDF at
    [x] is the weight mass of values [<= x] divided by the total mass.
    Arrays must have equal non-zero length. *)

val eval : t -> float -> float
(** [eval t x] is [P(X <= x)], in [\[0, 1\]]. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [(0, 1\]]: smallest value [x] with
    [eval t x >= q]. *)

val support : t -> float * float
(** Smallest and largest sample value. *)

val series : t -> points:int -> (float * float) list
(** [series t ~points] samples the CDF at [points] log-spaced positions
    across its support (linearly spaced if the support includes
    non-positive values), for plotting or printing. *)

val series_at : t -> float list -> (float * float) list
(** Evaluate the CDF at the given x positions. *)
