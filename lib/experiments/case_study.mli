(** §6 case study: repairing the Taiwan <-> Wisconsin outage end to end.

    A LIFEGUARD origin announces production + sentinel prefixes via its
    Wisconsin provider and monitors a Taiwanese site whose reverse path
    through UUNET silently dies; LIFEGUARD detects, isolates, poisons
    UUNET, and — once sentinel probes see UUNET recover — reverts to the
    unpoisoned baseline. *)

open Net

type phase_check = {
  label : string;
  time : float;
  reachable : bool;  (** Taiwan -> production delivery at that instant. *)
  via : Asn.t list;  (** Taiwan's AS path toward the production prefix. *)
}

type result = {
  events : (float * Lifeguard.Orchestrator.event) list;
  checks : phase_check list;
  diagnosis_blames_uunet : bool;
  repaired : bool;  (** Poisoning restored Taiwan's connectivity. *)
  unpoisoned_after_repair : bool;
  detection_to_repair : float option;
      (** Seconds from outage detection to working path. *)
}

val run : unit -> result
(** Build the fixed case-study world and play the whole timeline:
    baseline, silent UUNET failure, detection/isolation/poisoning,
    UUNET's eventual recovery, and the unpoison. Fully deterministic. *)

val to_tables : result -> Stats.Table.t list
