open Net
open Workloads

(* Fleet observability: per-run totals recorded at teardown so a trial
   world's whole story lands in one snapshot (merged across domains by
   Obs when trials run in parallel). *)
let m_injected = Obs.Metrics.counter "fleet.outages.injected"
let m_detected = Obs.Metrics.counter "fleet.outages.detected"
let m_repaired = Obs.Metrics.counter "fleet.repaired"
let m_stood_down = Obs.Metrics.counter "fleet.stood_down"
let m_gave_up = Obs.Metrics.counter "fleet.gave_up"
let m_poisons = Obs.Metrics.counter "fleet.poisons"
let m_unpoisons = Obs.Metrics.counter "fleet.unpoisons"
let m_monitor_pairs = Obs.Metrics.counter "fleet.monitor.pairs"
let m_monitor_skipped = Obs.Metrics.counter "fleet.monitor.skipped"
let m_budget_denied = Obs.Metrics.counter "fleet.budget.denied"
let m_isolation_retries = Obs.Metrics.counter "fleet.isolation.retries"
let m_vp_crashes = Obs.Metrics.counter "fleet.chaos.vp_crashes"
let m_reannounced = Obs.Metrics.counter "fleet.watchdog.reannounced"
let m_rolled_back = Obs.Metrics.counter "fleet.watchdog.rolled_back"
let m_breaker_trips = Obs.Metrics.counter "fleet.watchdog.breaker_trips"
let m_session_flaps = Obs.Metrics.counter "fleet.faults.session_flaps"
let m_router_crashes = Obs.Metrics.counter "fleet.faults.router_crashes"
let m_plan_hits = Obs.Metrics.counter "fleet.plan.hits"
let m_plan_misses = Obs.Metrics.counter "fleet.plan.misses"
let m_plan_invalidations = Obs.Metrics.counter "fleet.plan.invalidations"
let m_plan_demotions = Obs.Metrics.counter "fleet.plan.demotions"

type config = {
  ases : int;
  target_count : int;
  duration : float;
  outages_per_day : float;
  monitor_interval : float;
  atlas_refresh_interval : float;
  probe_rate : float;
  probe_burst : float;
  per_vp_rate : float;
  per_vp_burst : float;
  isolation_cost : int;
  announce_spacing : float;
  min_outage_age : float;
  recheck_interval : float;
  retry : Retry.policy;
  chaos : Chaos.config;
  faults : Bgp.Faults.config;
  planning : bool;
      (** Precompute remediation plans offline and consult the plan cache
          before every fresh decision (default false: the legacy
          compute-every-time pipeline, byte-identical to before the knob
          existed). *)
  decision_latency : float;
      (** Modeled cost of a fresh decision (simulated seconds); plan hits
          skip it. Default 0. *)
  shards : int option;
      (** [Some k]: run the world sharded over [k] domains with barrier
          exchange (see [Shard.Barrier]); results are byte-identical at
          any [k]. [None] (default): the legacy single-queue engine. *)
}

let default_config =
  {
    ases = 150;
    target_count = 25;
    duration = 86400.0;
    outages_per_day = 12.0;
    monitor_interval = 30.0;
    atlas_refresh_interval = 3600.0;
    probe_rate = 8.0;
    probe_burst = 400.0;
    per_vp_rate = infinity;
    per_vp_burst = infinity;
    isolation_cost = 35;
    announce_spacing = 5400.0;
    min_outage_age = 300.0;
    recheck_interval = 120.0;
    retry = Retry.default;
    chaos = Chaos.none;
    faults = Bgp.Faults.none;
    planning = false;
    decision_latency = 0.0;
    shards = None;
  }

type report = {
  days : float;
  injected : int;
  drawn : int;
  unplaceable : int;
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  unfinished : int;
  poisons : int;
  unpoisons : int;
  time_to_repair : float list;
  time_to_confirm : float list;
  monitor_pairs : int;
  monitor_skipped : int;
  probes_sent : int;
  budget_granted : int;
  budget_denied : int;
  isolation_retries : int;
  vp_crashes : int;
  lost_probes : int;
  stale_refreshes : int;
  collector_updates : int;
  injected_h15 : float;
  measured_updates_per_day : float;
  predicted_updates_per_day : float;
  reannounced : int;
  rolled_back : int;
  breaker_trips : int;
  session_flaps : int;
  link_failures : int;
  router_crashes : int;
  updates_dropped : int;
  updates_duplicated : int;
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_demotions : int;
}

(* Predicted daily update load, per the paper's Table 2 model with i = t
   = 1 (this deployment handles every outage it detects, toward every
   target): the anchor is the run's own injected rate of outages >= 15
   min scaled to the poisonable-direction share (Hubble's H counts
   poisonable outages only), d is the age an outage must actually reach
   before the poison goes out — the decision gate plus the detection lag
   — and each remediated outage costs two announcements (poison +
   unpoison). *)
let predict_updates_per_day ~seed ~h15 ~min_outage_age ~monitor_interval =
  if h15 <= 0.0 then 0.0
  else begin
    let durations = Outage_gen.durations ~seed:(seed + 77) ~n:4096 () in
    let poisonable_direction_share = 0.6 (* 40% reverse + 20% bidirectional *) in
    let params =
      {
        Lifeguard.Load_model.h15_per_day = h15 *. poisonable_direction_share;
        ih = 1.0;
        th = 1.0;
        updates_per_poison = 2.0;
      }
    in
    let detection_lag = 4.0 *. monitor_interval (* the monitor's threshold crossing *) in
    Lifeguard.Load_model.daily_path_changes params ~durations ~i:1.0 ~t:1.0
      ~d_minutes:((min_outage_age +. detection_lag) /. 60.0)
  end

let pick_targets rng mux ~count =
  let bed = mux.Scenarios.bed in
  let vps = Asn.Set.of_list bed.Scenarios.vantage_points in
  let pool =
    match bed.Scenarios.gen with
    | Some gen ->
        List.filter
          (fun a -> not (Asn.Set.mem a vps) && not (Asn.equal a mux.Scenarios.origin))
          gen.Topology.Topo_gen.stub_list
    | None -> []
  in
  if pool = [] then invalid_arg "Service: testbed has no stub pool to monitor";
  let count = min count (List.length pool) in
  Array.to_list (Prng.sample_without_replacement rng count (Array.of_list pool))

let run_in ?(config = default_config) ~seed ~shard_pool () =
  let retry = Retry.validate config.retry in
  let mux =
    Scenarios.bgpmux ~ases:config.ases ~infrastructure:Scenarios.No_infrastructure
      ?shards:config.shards ?shard_pool ~seed ()
  in
  let bed = mux.Scenarios.bed in
  let engine = bed.Scenarios.engine in
  let origin = mux.Scenarios.origin in
  let pick_rng = Prng.create ~seed:(seed + 1013) in
  let targets = pick_targets pick_rng mux ~count:config.target_count in
  (* Announce only what the fleet probes: the origin's spaces plus the
     monitored targets' and vantage points' infrastructure prefixes. *)
  Dataplane.Forward.announce_infrastructure_for bed.Scenarios.net
    ((origin :: bed.Scenarios.vantage_points) @ targets);
  Bgp.Network.run_until_quiet ~timeout:36000.0 bed.Scenarios.net;
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let chaos =
    Chaos.create ~config:config.chaos ~rng:(Prng.create ~seed:(seed + 2027)) ~engine ()
  in
  let faults =
    Bgp.Faults.create ~config:config.faults
      ~rng:(Prng.create ~seed:(seed + 4057))
      ~net:bed.Scenarios.net ()
  in
  let sched =
    Budget.scheduler ~per_vp_rate:config.per_vp_rate ~per_vp_burst:config.per_vp_burst
      ~global:(Budget.create ~rate:config.probe_rate ~burst:config.probe_burst ()) ()
  in
  let decide_config =
    { Lifeguard.Decide.default_config with min_outage_age = config.min_outage_age }
  in
  (* The plan cache: seeded offline by the planner over this world's
     graph, fingerprinted on the structural fault counters (links and
     routers — session flaps only flush announcements, which the watchdog
     already repairs) so topology churn invalidates it. *)
  let cache =
    if not config.planning then None
    else begin
      let net = bed.Scenarios.net in
      let graph = Bgp.Network.graph net in
      let paths = Bgp.Network.path_store net in
      let seed_plans =
        Plan.Planner.build ~graph ~store:paths ~plan:mux.Scenarios.plan ~targets
      in
      let fingerprint () =
        Bgp.Faults.link_failure_count faults + Bgp.Faults.router_crash_count faults
      in
      Some
        (Plan.Cache.create ~fingerprint ~seed:seed_plans ~config:decide_config ~origin
           ~paths ())
    end
  in
  let hooks =
    {
      Lifeguard.Orchestrator.probe_gate =
        Some (fun ~now ~cost -> Budget.admit_vp sched ~vp:origin ~now ~cost);
      monitor_loss = Some (fun () -> Chaos.lose_probe chaos);
      isolation_attempt =
        Some
          (fun ~target:_ ~attempt:_ ->
            let now = Sim.Engine.now engine in
            if not (Budget.admit_vp sched ~vp:origin ~now ~cost:config.isolation_cost) then
              `Denied
            else if Chaos.lose_probe chaos then `Lost
            else `Proceed);
      vantage_filter = Some (fun vp -> Chaos.vp_alive chaos vp);
      plan_consult =
        (match cache with
        | None -> None
        | Some c ->
            let graph = Bgp.Network.graph bed.Scenarios.net in
            Some
              (fun ~target ~diagnosis ~outage_age ~breaker_open ->
                Plan.Cache.lookup c graph ~now:(Sim.Engine.now engine) ~target ~diagnosis
                  ~outage_age ~breaker_open));
      plan_record =
        (match cache with
        | None -> None
        | Some c ->
            Some
              (fun ~target ~diagnosis ~verdict ->
                Plan.Cache.record c ~target ~diagnosis ~verdict));
      plan_outcome =
        (match cache with
        | None -> None
        | Some c -> Some (fun ~poison outcome -> Plan.Cache.note_outcome c ~poison outcome));
    }
  in
  let orch_config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide = decide_config;
      decision_latency = config.decision_latency;
      recheck_interval = config.recheck_interval;
      monitor_interval = config.monitor_interval;
      announce_spacing = config.announce_spacing;
      max_isolation_attempts = retry.Retry.max_attempts;
      retry_backoff = retry.Retry.base_delay;
      backoff_multiplier = retry.Retry.multiplier;
      max_backoff = retry.Retry.max_delay;
    }
  in
  let orch =
    Lifeguard.Orchestrator.create ~config:orch_config ~hooks ~env:bed.Scenarios.probe ~atlas
      ~responsiveness ~plan:mux.Scenarios.plan ~vantage_points:bed.Scenarios.vantage_points ()
  in
  (* Let the baseline converge before the clock starts counting. *)
  Bgp.Network.run_until_quiet ~timeout:36000.0 bed.Scenarios.net;
  Bgp.Network.Collector.clear mux.Scenarios.collector;
  let t0 = Sim.Engine.now engine in
  let horizon = t0 +. config.duration in
  Lifeguard.Orchestrator.watch orch ~targets;
  let arrivals = Arrivals.create () in
  Arrivals.start ~toward_src:Scenarios.sentinel_prefix arrivals
    ~rng:(Prng.create ~seed:(seed + 3041))
    ~bed ~src:origin ~targets
    ~mean_interarrival:(86400.0 /. config.outages_per_day)
    ~until:horizon ();
  Chaos.start chaos ~vantage_points:bed.Scenarios.vantage_points ~until:horizon;
  (* Control-plane faults begin once the baseline has converged; the
     origin itself is never crashed (the service dying is a different
     experiment), but its sessions still flap. *)
  Bgp.Faults.start faults ~protect:[ origin ] ~until:horizon ();
  (* Periodic atlas refreshes keep isolation off the on-demand slow path;
     the staleness knob makes them silently unreliable. *)
  ignore
    (Sim.Engine.every engine ~every:config.atlas_refresh_interval ~until:horizon (fun now ->
         if not (Chaos.skip_refresh chaos) then
           Measurement.Atlas.refresh_all atlas bed.Scenarios.probe ~vps:[ origin ]
             ~dsts:targets ~now;
         `Continue));
  Sim.Engine.run ~until:horizon engine;
  (* Harvest: the event log and per-target outcomes are the run's story. *)
  let events = Lifeguard.Orchestrator.events orch in
  let count_events f = List.length (List.filter f events) in
  let detected =
    count_events (function _, Lifeguard.Orchestrator.Outage_detected _ -> true | _ -> false)
  in
  let poisons =
    count_events (function _, Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false)
  in
  let unpoisons =
    count_events (function _, Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false)
  in
  let isolation_retries =
    count_events (function _, Lifeguard.Orchestrator.Isolation_retry _ -> true | _ -> false)
  in
  let detections =
    List.filter_map
      (function
        | at, Lifeguard.Orchestrator.Outage_detected { target; _ } -> Some (at, target)
        | _ -> None)
      events
  in
  let detection_before ~target ~at =
    List.fold_left
      (fun acc (dt, dtarget) ->
        if Asn.equal dtarget target && dt <= at then Some dt else acc)
      None detections
  in
  let outcomes = Lifeguard.Orchestrator.outcomes orch in
  let repaired = ref 0 and stood_down = ref 0 and gave_up = ref 0 in
  let ttr = ref [] in
  List.iter
    (fun (at, target, outcome) ->
      match outcome with
      | Lifeguard.Orchestrator.Repaired ->
          incr repaired;
          (match detection_before ~target ~at with
          | Some dt -> ttr := (at -. dt) :: !ttr
          | None -> ())
      | Lifeguard.Orchestrator.Stood_down _ -> incr stood_down
      | Lifeguard.Orchestrator.Gave_up_on _ -> incr gave_up)
    outcomes;
  let time_to_confirm =
    List.filter_map
      (function
        | at, Lifeguard.Orchestrator.Repair_confirmed { target; _ } -> begin
            match detection_before ~target ~at with
            | Some dt -> Some (at -. dt)
            | None -> None
          end
        | _ -> None)
      events
  in
  let monitors = Lifeguard.Orchestrator.monitors orch in
  let monitor_pairs =
    List.fold_left (fun acc m -> acc + Measurement.Monitor.probe_count m) 0 monitors
  in
  let monitor_skipped =
    List.fold_left (fun acc m -> acc + Measurement.Monitor.skipped_count m) 0 monitors
  in
  let days = config.duration /. 86400.0 in
  let injected_h15 = Arrivals.daily_rate_at_least arrivals ~observed_days:days ~d_minutes:15.0 in
  let measured_updates_per_day = float_of_int (poisons + unpoisons) /. days in
  let report =
    {
      days;
      injected = Arrivals.injected_count arrivals;
      drawn = Arrivals.drawn_count arrivals;
      unplaceable = Arrivals.unplaceable_count arrivals;
      detected;
      repaired = !repaired;
      stood_down = !stood_down;
      gave_up = !gave_up;
      unfinished =
        Lifeguard.Orchestrator.active_pipelines orch
        + Lifeguard.Orchestrator.queued_poisons orch
        + Lifeguard.Orchestrator.awaiting_repair orch;
      poisons;
      unpoisons;
      time_to_repair = List.rev !ttr;
      time_to_confirm;
      monitor_pairs;
      monitor_skipped;
      probes_sent = bed.Scenarios.probe.Dataplane.Probe.probes_sent;
      budget_granted = Budget.scheduler_granted sched;
      budget_denied = Budget.scheduler_denied sched;
      isolation_retries;
      vp_crashes = Chaos.crash_count chaos;
      lost_probes = Chaos.lost_probe_count chaos;
      stale_refreshes = Chaos.stale_refresh_count chaos;
      collector_updates = List.length (Bgp.Network.Collector.log mux.Scenarios.collector);
      injected_h15;
      measured_updates_per_day;
      predicted_updates_per_day =
        predict_updates_per_day ~seed ~h15:injected_h15 ~min_outage_age:config.min_outage_age
          ~monitor_interval:config.monitor_interval;
      reannounced = Lifeguard.Orchestrator.reannounce_count orch;
      rolled_back = Lifeguard.Orchestrator.rollback_count orch;
      breaker_trips = Lifeguard.Orchestrator.breaker_trip_count orch;
      session_flaps = Bgp.Faults.session_flap_count faults;
      link_failures = Bgp.Faults.link_failure_count faults;
      router_crashes = Bgp.Faults.router_crash_count faults;
      updates_dropped = Bgp.Faults.updates_dropped faults;
      updates_duplicated = Bgp.Faults.updates_duplicated faults;
      plan_hits = (match cache with Some c -> Plan.Cache.hits c | None -> 0);
      plan_misses = (match cache with Some c -> Plan.Cache.misses c | None -> 0);
      plan_invalidations =
        (match cache with Some c -> Plan.Cache.invalidations c | None -> 0);
      plan_demotions = (match cache with Some c -> Plan.Cache.demotions c | None -> 0);
    }
  in
  Obs.Metrics.add m_injected report.injected;
  Obs.Metrics.add m_detected report.detected;
  Obs.Metrics.add m_repaired report.repaired;
  Obs.Metrics.add m_stood_down report.stood_down;
  Obs.Metrics.add m_gave_up report.gave_up;
  Obs.Metrics.add m_poisons report.poisons;
  Obs.Metrics.add m_unpoisons report.unpoisons;
  Obs.Metrics.add m_monitor_pairs report.monitor_pairs;
  Obs.Metrics.add m_monitor_skipped report.monitor_skipped;
  Obs.Metrics.add m_budget_denied report.budget_denied;
  Obs.Metrics.add m_isolation_retries report.isolation_retries;
  Obs.Metrics.add m_vp_crashes report.vp_crashes;
  Obs.Metrics.add m_reannounced report.reannounced;
  Obs.Metrics.add m_rolled_back report.rolled_back;
  Obs.Metrics.add m_breaker_trips report.breaker_trips;
  Obs.Metrics.add m_session_flaps report.session_flaps;
  Obs.Metrics.add m_router_crashes report.router_crashes;
  Obs.Metrics.add m_plan_hits report.plan_hits;
  Obs.Metrics.add m_plan_misses report.plan_misses;
  Obs.Metrics.add m_plan_invalidations report.plan_invalidations;
  Obs.Metrics.add m_plan_demotions report.plan_demotions;
  report

(* Sharded runs own a worker pool for the trial's lifetime: barrier
   windows fan out on it, and it is torn down before the report returns
   so nested per-trial pools (the fleet study's outer jobs) never
   accumulate domains. Pool width changes wall-clock only, never
   results. *)
let run ?(config = default_config) ~seed () =
  match config.shards with
  | Some k when k > 1 ->
      Par.Pool.with_pool ~jobs:k (fun pool -> run_in ~config ~seed ~shard_pool:(Some pool) ())
  | _ -> run_in ~config ~seed ~shard_pool:None ()
