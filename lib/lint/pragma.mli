(** Comment-pragma suppressions.

    [(* lint: allow LG-EFF-CLOCK *)] (one or more rule ids, comma- or
    space-separated) silences matching violations reported on the
    pragma's line or on the line directly below it. Prefer burning a
    violation or baselining it; a pragma is for the rare case where the
    rule is a documented false positive at one site. *)

type t
(** The pragmas of one file. *)

val load : string -> t
(** Text-scan a file for pragma comments. Unreadable files load as
    no-pragmas. *)

val of_lines : string list -> t
(** Same scan over in-memory lines (for tests). *)

val suppresses : t -> rule:string -> line:int -> bool
(** Does a pragma on [line] or [line - 1] name [rule]? *)

val filter : Source_scan.violation list -> Source_scan.violation list
(** Drop suppressed violations, reading each distinct file at most
    once. *)
