(* must-pass: interned-aware comparisons through the module's own
   equality, or structural equality on scalar projections. *)

let same_path p q = Bgp.As_path.equal p q
let same_ann a b = Bgp.Route.announcement_equal a b
let shorter p q = Bgp.As_path.length p < Bgp.As_path.length q
let same_len p q = Bgp.As_path.length p = Bgp.As_path.length q
