(** Syntactic rule pass over one [.ml] file, built on compiler-libs
    ([Parse] + [Ast_iterator]). No type information is used: every rule
    is a heuristic over names and shapes, tuned so false positives are
    grandfathered in the baseline instead of blocking builds. *)

type file_kind = {
  in_lib : bool;  (** under a [lib/] segment: det/dom rules apply *)
  prng_exempt : bool;  (** under [lib/prng]: the one place [Random] is legal *)
  obs_exempt : bool;
      (** under [lib/obs]: the sanctioned home for cross-domain
          observability state and the trace sink, so [LG-DOM-MUT] and
          [LG-OBS-PRINTF] do not apply *)
  bgp_exempt : bool;
      (** under [lib/bgp]: owns the interned path/route representations,
          so [LG-PERF-STRUCTEQ] does not apply to its internals *)
}

val classify : string -> file_kind
(** Derive a {!file_kind} from a root-relative path. *)

val lib_kind : file_kind
(** [in_lib = true] with every exemption off — what fixture tests use to
    force library-strictness on files outside [lib/]. *)

type violation = {
  rule : Rule.t;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val parse_file : string -> (Parsetree.structure, string) result
(** Parse one implementation file; [Error] describes a parse failure.
    The driver parses each file once and shares the AST between this
    pass and {!Callgraph}. *)

val scan_ast : ?kind:file_kind -> file:string -> Parsetree.structure -> violation list
(** Run the syntactic rules over an already-parsed structure. *)

val scan_file : ?kind:file_kind -> string -> (violation list, string) result
(** [parse_file] + [scan_ast]. [kind] defaults to [classify path]. *)

val mli_violations : ?force_lib:bool -> string list -> violation list
(** The [LG-MLI-MISSING] pass: every library [.ml] in the list without a
    sibling [.mli]. [force_lib] treats all files as library files. *)

val compare_violation : violation -> violation -> int
(** Order by file, line, column, rule id — the report order. *)
