test/test_prng.ml: Alcotest Array Float List Printf Prng QCheck QCheck_alcotest Stats
