lib/net/asn.mli: Format Hashtbl Map Set
