lib/bgp/policy.ml: As_path Asn Community Hashtbl List Net Relationship Route Topology
