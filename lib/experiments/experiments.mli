(** Experiment drivers: one module per table or figure of the paper.

    Each module exposes [run] (deterministic given its seed) returning a
    typed result, and [to_tables] rendering paper-vs-measured rows. The
    benchmark harness ([bench/main.exe]) runs them all; the CLI
    ([bin/lifeguard_cli]) runs them individually. This interface exists
    to pin the library surface to exactly these drivers (plus
    {!Runner}); helper modules stay internal. *)

module Runner = Runner
module Fig1_durations = Fig1_durations
module Fig5_residual = Fig5_residual
module Sec22_alt_paths = Sec22_alt_paths
module Sec51_efficacy = Sec51_efficacy
module Fig6_convergence = Fig6_convergence
module Sec52_loss = Sec52_loss
module Sec52_selective = Sec52_selective
module Sec53_accuracy = Sec53_accuracy
module Sec54_scalability = Sec54_scalability
module Sec71_anomalies = Sec71_anomalies
module Sec72_sentinel = Sec72_sentinel
module Ablation = Ablation
module Hubble_study = Hubble_study
module Damping = Damping
module Tab1_summary = Tab1_summary
module Tab2_load = Tab2_load
module Case_study = Case_study
module Fleet_study = Fleet_study
module Fault_study = Fault_study
module Plan_study = Plan_study
