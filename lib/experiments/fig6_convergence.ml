(** Figure 6 and §5.2: convergence behaviour after poisoned announcements.

    For each harvested AS the paper poisoned twice — once from a plain
    baseline [O] and once from the prepended baseline [O-O-O] — and
    measured, per route-collector peer, the time from its first update to
    its stable post-poison route. Peers are split by whether they had been
    routing through the poisoned AS ("change" vs "no change"). Anchors:
    with prepending, >95% of unaffected peers converge instantly and 97%
    make a single update; without prepending only ~70% converge instantly
    and 64% make one update. Global convergence medians: 91 s with
    prepending vs 133 s without. *)

open Net
open Workloads

type series = {
  label : string;
  samples : float array;  (** Per-peer convergence times, seconds. *)
  instant : float;  (** Fraction converging with a single first=last update. *)
  single_update : float;
  within_50s : float;
}

type result = {
  series : series list;  (** prepend/no-prepend x change/no-change. *)
  global_median_prepend : float;
  global_p90_prepend : float;
  global_median_noprepend : float;
  global_p90_noprepend : float;
  poisons : int;
  u_affected : float;
      (** Mean loc-RIB changes per poisoning for routers that had been
          routing via the poisoned AS; the paper's U = 2.03. *)
  u_unaffected : float;  (** Same for the rest; paper: 1.07. *)
}

let paper =
  [
    ("prepend, no change: instant", 0.95);
    ("no prepend, no change: instant", 0.70);
    ("prepend: single update", 0.97);
    ("no prepend: single update", 0.64);
  ]

let mk_series label reports =
  let samples =
    Array.of_list (List.map (fun r -> r.Bgp.Convergence.convergence_time) reports)
  in
  {
    label;
    samples;
    instant = Bgp.Convergence.fraction_instant reports;
    single_update = Bgp.Convergence.fraction_single_update reports;
    within_50s =
      Stats.Descriptive.fraction (fun t -> t <= 50.0) samples;
  }

(* One poisoning round: set the baseline, converge, snapshot who routes
   through the target, poison, measure per-peer convergence from the
   collector feed. *)
let poison_round mux ~baseline ~target =
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  let prefix = Scenarios.production_prefix in
  let origin = mux.Scenarios.origin in
  Bgp.Network.announce net ~origin ~prefix ~per_neighbor:(fun _ -> Some baseline) ();
  Bgp.Network.run_until_quiet net;
  (* The paper spaced announcements 90 minutes apart to avoid flap
     dampening; at minimum every MRAI window must expire so the poison
     propagates like a fresh event. *)
  Scenarios.settle bed ~seconds:120.0;
  let affected_set =
    List.fold_left
      (fun acc peer ->
        match Bgp.Network.best_route net peer prefix with
        | Some entry
          when Bgp.As_path.traverses ~origin ~target entry.Bgp.Route.ann.Bgp.Route.path ->
            Asn.Set.add peer acc
        | Some _ | None -> acc)
      Asn.Set.empty mux.Scenarios.feeds
  in
  Bgp.Network.Collector.clear mux.Scenarios.collector;
  let event_time = Sim.Engine.now bed.Scenarios.engine in
  let poisoned = Bgp.As_path.poisoned ~origin ~poison:target in
  Bgp.Network.announce net ~origin ~prefix ~per_neighbor:(fun _ -> Some poisoned) ();
  Bgp.Network.run_until_quiet net;
  let reports =
    Bgp.Convergence.analyze mux.Scenarios.collector ~event_time ~prefix
      ~affected:(fun peer -> Asn.Set.mem peer affected_set)
  in
  (* Peers with no post-poison route (captives) are excluded, as in the
     paper's measurement. *)
  let reports = List.filter (fun r -> r.Bgp.Convergence.has_final_route) reports in
  let global = Bgp.Convergence.global_convergence_time reports in
  (reports, global)

(* The experiment is embarrassingly parallel: each (baseline, target)
   poisoning is measured in its own freshly built world — own topology,
   engine, network and collector, rebuilt deterministically from the
   seed — so trials share nothing and the trial list is a pure function
   of the parameters, never of [jobs]. The control plane does all the
   measuring here, so trial worlds skip infrastructure announcement
   entirely. *)
let build_mux ~ases ~seed =
  Scenarios.bgpmux ~ases ~infrastructure:Scenarios.No_infrastructure ~seed ()

let run ?(ases = 318) ?(max_poisons = 25) ?(jobs = 1) ~seed () =
  (* Scout world: announce the baseline once to harvest which ASes are on
     collector paths, i.e. worth poisoning. *)
  let targets, origin =
    let mux = build_mux ~ases ~seed in
    let net = mux.Scenarios.bed.Scenarios.net in
    Lifeguard.Remediate.announce_baseline net mux.Scenarios.plan;
    Bgp.Network.run_until_quiet net;
    let harvest = Scenarios.harvest_on_path_ases mux in
    let rng = Prng.create ~seed:(seed + 2) in
    let arr = Array.of_list harvest in
    Prng.shuffle rng arr;
    ( Array.to_list (Array.sub arr 0 (min max_poisons (Array.length arr))),
      mux.Scenarios.origin )
  in
  let plain_baseline = Bgp.As_path.plain ~origin in
  let prepended_baseline = Bgp.As_path.prepended ~origin ~copies:3 in
  let trial baseline target () =
    poison_round (build_mux ~ases ~seed) ~baseline ~target
  in
  let trials baseline = List.map (fun t -> trial baseline t) targets in
  let outcomes =
    Runner.run_trials ~jobs (trials prepended_baseline @ trials plain_baseline)
  in
  let collect outcomes =
    ( List.concat_map (fun (reports, _) -> reports) outcomes,
      List.filter_map (fun (_, global) -> global) outcomes )
  in
  let n = List.length targets in
  let prepend_reports, prepend_globals = collect (List.filteri (fun i _ -> i < n) outcomes) in
  let noprepend_reports, noprepend_globals =
    collect (List.filteri (fun i _ -> i >= n) outcomes)
  in
  let split which reports =
    List.filter (fun r -> r.Bgp.Convergence.affected = which) reports
  in
  let pct arr p =
    if arr = [] then 0.0 else Stats.Descriptive.percentile (Array.of_list arr) p
  in
  let mean_updates_of which =
    Bgp.Convergence.mean_updates (split which prepend_reports)
  in
  {
    series =
      [
        mk_series "Prepend, no change" (split false prepend_reports);
        mk_series "No prepend, no change" (split false noprepend_reports);
        mk_series "Prepend, change" (split true prepend_reports);
        mk_series "No prepend, change" (split true noprepend_reports);
      ];
    u_affected = mean_updates_of true;
    u_unaffected = mean_updates_of false;
    global_median_prepend = pct prepend_globals 50.0;
    global_p90_prepend = pct prepend_globals 90.0;
    global_median_noprepend = pct noprepend_globals 50.0;
    global_p90_noprepend = pct noprepend_globals 90.0;
    poisons = List.length targets;
  }

let cdf_thresholds = [ 0.; 1.; 5.; 10.; 30.; 50.; 100.; 150.; 200.; 300.; 500. ]

let to_tables r =
  let anchors =
    Stats.Table.create ~title:"Fig. 6 anchors (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  let find label = List.find (fun s -> s.label = label) r.series in
  let p_nc = find "Prepend, no change" in
  let np_nc = find "No prepend, no change" in
  Stats.Table.add_rows anchors
    [
      [
        "prepend, no change: instant";
        Stats.Table.cell_pct (List.assoc "prepend, no change: instant" paper);
        Stats.Table.cell_pct p_nc.instant;
      ];
      [
        "no prepend, no change: instant";
        Stats.Table.cell_pct (List.assoc "no prepend, no change: instant" paper);
        Stats.Table.cell_pct np_nc.instant;
      ];
      [
        "prepend: single update (unaffected)";
        Stats.Table.cell_pct (List.assoc "prepend: single update" paper);
        Stats.Table.cell_pct p_nc.single_update;
      ];
      [
        "no prepend: single update (unaffected)";
        Stats.Table.cell_pct (List.assoc "no prepend: single update" paper);
        Stats.Table.cell_pct np_nc.single_update;
      ];
      [
        "global convergence median (s)";
        "91 vs 133";
        Printf.sprintf "%.0f vs %.0f" r.global_median_prepend r.global_median_noprepend;
      ];
      [
        "global convergence p90 (s)";
        "200 vs 226";
        Printf.sprintf "%.0f vs %.0f" r.global_p90_prepend r.global_p90_noprepend;
      ];
      [
        "updates per poison, affected / unaffected routers (U)";
        "2.03 / 1.07";
        Printf.sprintf "%.2f / %.2f" r.u_affected r.u_unaffected;
      ];
    ];
  let curve =
    Stats.Table.create ~title:"Fig. 6 series: CDF of peer convergence time"
      ~columns:("seconds" :: List.map (fun s -> s.label) r.series)
  in
  List.iter
    (fun threshold ->
      let cells =
        List.map
          (fun s ->
            if Array.length s.samples = 0 then "-"
            else
              Stats.Table.cell_float ~decimals:3
                (Stats.Descriptive.fraction (fun t -> t <= threshold) s.samples))
          r.series
      in
      Stats.Table.add_row curve (Stats.Table.cell_float ~decimals:0 threshold :: cells))
    cdf_thresholds;
  [ anchors; curve ]
