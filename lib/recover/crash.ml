type boundary = Before_write | After_write | After_effect

exception Crashed of { boundary : boundary; append : int }

type spec = { boundary : boundary; append : int }

let boundary_equal a b =
  match (a, b) with
  | Before_write, Before_write | After_write, After_write | After_effect, After_effect -> true
  | (Before_write | After_write | After_effect), _ -> false

let boundary_to_string = function
  | Before_write -> "before-write"
  | After_write -> "after-write"
  | After_effect -> "after-effect"

let boundary_of_string = function
  | "before-write" -> Some Before_write
  | "after-write" -> Some After_write
  | "after-effect" -> Some After_effect
  | _ -> None

let boundaries = [ Before_write; After_write; After_effect ]

let () =
  Printexc.register_printer (function
    | Crashed { boundary; append } ->
        Some
          (Printf.sprintf "Recover.Crash.Crashed(%s, append %d)" (boundary_to_string boundary)
             append)
    | _ -> None)
