(* Must-pass corpus for LG-ROB-EXN: specific handlers, bound exceptions,
   and catch-all *match* arms (which are not exception handlers). *)

let specific f = try f () with Not_found -> 0 | Invalid_argument _ -> 1

let bound_and_reraised f = try f () with e -> raise e

let exit_guard f = try f () with Exit -> ()

let wildcard_match x = match x with Some v -> v | _ -> 0
