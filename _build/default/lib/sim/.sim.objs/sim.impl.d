lib/sim/sim.ml: Engine
