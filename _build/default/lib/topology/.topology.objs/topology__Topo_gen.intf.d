lib/topology/topo_gen.mli: As_graph Asn Net
