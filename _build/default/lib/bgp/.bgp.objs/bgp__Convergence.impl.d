lib/bgp/convergence.ml: Asn Float Hashtbl List Net Network Option Prefix
