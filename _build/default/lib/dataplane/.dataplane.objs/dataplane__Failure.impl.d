lib/dataplane/failure.ml: Asn Bgp Format List Net Option Prefix
