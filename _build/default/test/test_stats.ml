(* Descriptive statistics, ECDFs and table rendering. *)

let approx msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.4f, got %.4f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < 1e-9)

let test_descriptive_basics () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  approx "mean" 2.5 (Stats.Descriptive.mean xs);
  approx "sum" 10.0 (Stats.Descriptive.sum xs);
  approx "median" 2.5 (Stats.Descriptive.median xs);
  approx "p0 is min" 1.0 (Stats.Descriptive.percentile xs 0.0);
  approx "p100 is max" 4.0 (Stats.Descriptive.percentile xs 100.0);
  approx "p25 interpolates" 1.75 (Stats.Descriptive.percentile xs 25.0);
  let lo, hi = Stats.Descriptive.min_max xs in
  approx "min" 1.0 lo;
  approx "max" 4.0 hi;
  approx "variance" (5.0 /. 3.0) (Stats.Descriptive.variance xs)

let test_descriptive_errors () =
  let assert_raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "mean of empty" true (assert_raises (fun () -> Stats.Descriptive.mean [||]));
  Alcotest.(check bool) "percentile out of range" true
    (assert_raises (fun () -> Stats.Descriptive.percentile [| 1.0 |] 101.0));
  Alcotest.(check bool) "variance needs 2" true
    (assert_raises (fun () -> Stats.Descriptive.variance [| 1.0 |]))

let test_fraction () =
  approx "fraction" 0.5 (Stats.Descriptive.fraction (fun x -> x > 2.0) [| 1.; 2.; 3.; 4. |]);
  approx "fraction empty" 0.0 (Stats.Descriptive.fraction (fun _ -> true) [||]);
  approx "fraction_list" 0.25
    (Stats.Descriptive.fraction_list (fun x -> x = 1) [ 1; 2; 3; 4 ])

let test_ecdf_eval () =
  let e = Stats.Ecdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  approx "below support" 0.0 (Stats.Ecdf.eval e 0.5);
  approx "at first" 0.25 (Stats.Ecdf.eval e 1.0);
  approx "between" 0.5 (Stats.Ecdf.eval e 2.5);
  approx "at last" 1.0 (Stats.Ecdf.eval e 4.0);
  approx "above support" 1.0 (Stats.Ecdf.eval e 100.0);
  approx "quantile 0.5" 2.0 (Stats.Ecdf.quantile e 0.5);
  approx "quantile 1.0" 4.0 (Stats.Ecdf.quantile e 1.0)

let test_ecdf_weighted () =
  (* One outage of 10 units dominates three of 1 unit: the weighted CDF
     at 1 is 3/13 while the plain CDF is 3/4 — exactly the Fig. 1
     contrast. *)
  let values = [| 1.0; 1.0; 1.0; 10.0 |] in
  let plain = Stats.Ecdf.of_samples values in
  let weighted = Stats.Ecdf.weighted ~values ~weights:values in
  approx "plain at 1" 0.75 (Stats.Ecdf.eval plain 1.0);
  approx "weighted at 1" (3.0 /. 13.0) (Stats.Ecdf.eval weighted 1.0)

let test_ecdf_series () =
  let e = Stats.Ecdf.of_samples [| 1.0; 10.0; 100.0 |] in
  let series = Stats.Ecdf.series e ~points:5 in
  Alcotest.(check int) "5 points" 5 (List.length series);
  let ys = List.map snd series in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone ys)

let test_table_render () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "x"; "y" ];
  Stats.Table.add_rows t [ [ "long-cell"; "z" ] ];
  let rendered = Stats.Table.render t in
  let contains needle =
    let nlen = String.length needle and hlen = String.length rendered in
    let rec go i = i + nlen <= hlen && (String.sub rendered i nlen = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has title" true (contains "== T ==");
  Alcotest.(check bool) "has header" true (contains "bb");
  Alcotest.(check bool) "has cell" true (contains "long-cell");
  (* Cell count mismatch must raise. *)
  Alcotest.check Alcotest.bool "bad row rejected" true
    (try
       Stats.Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "pct formatting" "76.5%" (Stats.Table.cell_pct 0.765);
  Alcotest.(check string) "float formatting" "1.50" (Stats.Table.cell_float 1.5)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 40) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Descriptive.percentile xs lo <= Stats.Descriptive.percentile xs hi)

let prop_ecdf_bounded =
  QCheck.Test.make ~name:"ecdf in [0,1]" ~count:200
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 40) (float_range (-50.) 50.))
              (float_range (-100.) 100.))
    (fun (xs, x) ->
      let e = Stats.Ecdf.of_samples xs in
      let y = Stats.Ecdf.eval e x in
      y >= 0.0 && y <= 1.0)

let suite =
  [
    Alcotest.test_case "descriptive basics" `Quick test_descriptive_basics;
    Alcotest.test_case "descriptive errors" `Quick test_descriptive_errors;
    Alcotest.test_case "fractions" `Quick test_fraction;
    Alcotest.test_case "ecdf eval/quantile" `Quick test_ecdf_eval;
    Alcotest.test_case "ecdf weighted (Fig. 1 contrast)" `Quick test_ecdf_weighted;
    Alcotest.test_case "ecdf series" `Quick test_ecdf_series;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_ecdf_bounded;
  ]
