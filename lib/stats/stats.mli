(** Statistics toolkit for the LIFEGUARD reproduction: descriptive
    statistics, empirical CDFs (plain and mass-weighted) and plain-text
    table rendering for experiment output.

    This interface pins the library surface to exactly these modules;
    helper code stays internal. *)

module Descriptive = Descriptive
module Ecdf = Ecdf
module Table = Table
