(* System-level invariants checked over randomized topologies and
   announcement sequences: the properties BGP must hold for LIFEGUARD's
   reasoning (and the paper's arguments) to be sound. *)

open Net
open Topology

let production = Prefix.of_string_exn "203.0.113.0/24"

(* A converged world over a random generated topology with a random
   multi-homed origin and a few random announcement events applied. *)
let build_world seed =
  let rng = Prng.create ~seed in
  let gen = Topo_gen.generate ~params:(Topo_gen.sized 60) ~seed:(Prng.int rng 100000) () in
  let graph = gen.Topo_gen.graph in
  let origin = Asn.of_int 64500 in
  As_graph.add_as graph ~tier:4 origin;
  let providers =
    Array.to_list
      (Prng.sample_without_replacement rng 2 (Array.of_list gen.Topo_gen.tier2))
  in
  List.iter
    (fun p -> As_graph.add_link graph ~a:origin ~b:p ~rel:Relationship.Provider)
    providers;
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph ~mrai:10.0 () in
  Bgp.Network.announce net ~origin ~prefix:production ();
  Bgp.Network.run_until_quiet net;
  (* A few random re-announcement events: prepend, poison a transit,
     selective advertisement, withdraw+re-announce. *)
  let transits = Array.of_list (Topo_gen.transit_ases gen) in
  for _ = 1 to 3 do
    (match Prng.int rng 4 with
    | 0 ->
        Bgp.Network.announce net ~origin ~prefix:production
          ~per_neighbor:(fun _ ->
            Some (Bgp.As_path.prepended ~origin ~copies:(1 + Prng.int rng 3)))
          ()
    | 1 ->
        let poison = Prng.pick rng transits in
        Bgp.Network.announce net ~origin ~prefix:production
          ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin ~poison))
          ()
    | 2 ->
        let keep = Prng.pick_list rng providers in
        Bgp.Network.announce net ~origin ~prefix:production
          ~per_neighbor:(fun n ->
            if Asn.equal n keep then Some (Bgp.As_path.plain ~origin) else None)
          ()
    | _ ->
        Bgp.Network.withdraw net ~origin ~prefix:production;
        Bgp.Network.run_until_quiet net;
        Bgp.Network.announce net ~origin ~prefix:production ());
    Bgp.Network.run_until_quiet net
  done;
  (net, graph, origin)

let for_all_routes net graph f =
  List.for_all
    (fun asn ->
      match Bgp.Network.best_route net asn production with
      | Some entry -> f asn entry
      | None -> true)
    (As_graph.as_list graph)

let prop_no_self_in_traversed =
  QCheck.Test.make ~name:"loc-RIB paths never traverse the holder (loop freedom)" ~count:12
    QCheck.(int_range 0 5000)
    (fun seed ->
      let net, graph, origin = build_world seed in
      for_all_routes net graph (fun asn entry ->
          let traversed =
            Bgp.As_path.traversed ~origin entry.Bgp.Route.ann.Bgp.Route.path
          in
          not (Bgp.As_path.contains asn traversed)))

let prop_paths_valley_free =
  QCheck.Test.make ~name:"converged loc-RIB paths are valley-free" ~count:12
    QCheck.(int_range 0 5000)
    (fun seed ->
      let net, graph, origin = build_world seed in
      for_all_routes net graph (fun asn entry ->
          (* The full routed path is holder :: traversed-portion :: origin;
             origination decoration (prepends/poison) is skipped since it
             does not correspond to links, and the origin's own local
             route has no links at all. *)
          Asn.equal asn origin
          ||
          let traversed =
            Bgp.As_path.to_list
              (Bgp.As_path.traversed ~origin entry.Bgp.Route.ann.Bgp.Route.path)
          in
          let path = (asn :: traversed) @ [ origin ] in
          Splice.valley_free graph path))

let prop_next_hop_matches_path =
  QCheck.Test.make ~name:"loc-RIB next hop is the first path element" ~count:12
    QCheck.(int_range 0 5000)
    (fun seed ->
      let net, graph, _origin = build_world seed in
      for_all_routes net graph (fun _asn entry ->
          match Bgp.As_path.first_hop entry.Bgp.Route.ann.Bgp.Route.path with
          | Some first -> Asn.equal first entry.Bgp.Route.neighbor
          | None -> false))

let prop_fib_matches_loc_rib =
  QCheck.Test.make ~name:"FIB agrees with loc-RIB when installs are atomic" ~count:12
    QCheck.(int_range 0 5000)
    (fun seed ->
      let net, graph, _origin = build_world seed in
      let address = Prefix.nth_address production 1 in
      List.for_all
        (fun asn ->
          let rib = Bgp.Network.best_route net asn production in
          let fib = Bgp.Network.fib_lookup net asn address in
          match (rib, fib) with
          | Some entry, Some (p, fentry) ->
              Prefix.equal p production
              && Asn.equal entry.Bgp.Route.neighbor fentry.Bgp.Route.neighbor
          | None, None -> true
          | None, Some (p, _) ->
              (* Only a less specific may answer when the RIB lost the
                 production route. *)
              not (Prefix.equal p production)
          | Some _, None -> false)
        (As_graph.as_list graph))

let prop_forwarding_follows_routes =
  QCheck.Test.make ~name:"data-plane walks terminate (no forwarding loops at rest)" ~count:12
    QCheck.(int_range 0 5000)
    (fun seed ->
      let net, graph, _origin = build_world seed in
      let failures = Dataplane.Failure.create () in
      let address = Prefix.nth_address production 1 in
      List.for_all
        (fun asn ->
          let walk = Dataplane.Forward.walk net failures ~src:asn ~dst:address () in
          match walk.Dataplane.Forward.outcome with
          | Dataplane.Forward.Delivered | Dataplane.Forward.No_route _ -> true
          | Dataplane.Forward.Loop | Dataplane.Forward.Dropped _ -> false)
        (As_graph.as_list graph))

let prop_poison_and_unpoison_roundtrip =
  QCheck.Test.make ~name:"poison then unpoison restores every route" ~count:10
    QCheck.(int_range 0 5000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let gen = Topo_gen.generate ~params:(Topo_gen.sized 60) ~seed:(Prng.int rng 100000) () in
      let graph = gen.Topo_gen.graph in
      let origin = Asn.of_int 64500 in
      As_graph.add_as graph ~tier:4 origin;
      List.iter
        (fun p -> As_graph.add_link graph ~a:origin ~b:p ~rel:Relationship.Provider)
        (Array.to_list
           (Prng.sample_without_replacement rng 2 (Array.of_list gen.Topo_gen.tier2)));
      let engine = Sim.Engine.create () in
      let net = Bgp.Network.create ~engine ~graph ~mrai:10.0 () in
      let plan = Lifeguard.Remediate.plan ~origin ~production () in
      Lifeguard.Remediate.announce_baseline net plan;
      Bgp.Network.run_until_quiet net;
      let snapshot () =
        List.filter_map
          (fun asn ->
            match Bgp.Network.best_route net asn production with
            | Some e -> Some (asn, e.Bgp.Route.ann.Bgp.Route.path)
            | None -> None)
          (As_graph.as_list graph)
      in
      let before = snapshot () in
      let target = Prng.pick rng (Array.of_list (Topo_gen.transit_ases gen)) in
      Lifeguard.Remediate.poison net plan ~target;
      Bgp.Network.run_until_quiet net;
      Lifeguard.Remediate.unpoison net plan;
      Bgp.Network.run_until_quiet net;
      let after = snapshot () in
      List.length before = List.length after
      && List.for_all2
           (fun (a1, p1) (a2, p2) -> Asn.equal a1 a2 && Bgp.As_path.equal p1 p2)
           before after)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_self_in_traversed;
    QCheck_alcotest.to_alcotest prop_paths_valley_free;
    QCheck_alcotest.to_alcotest prop_next_hop_matches_path;
    QCheck_alcotest.to_alcotest prop_fib_matches_loc_rib;
    QCheck_alcotest.to_alcotest prop_forwarding_follows_routes;
    QCheck_alcotest.to_alcotest prop_poison_and_unpoison_roundtrip;
  ]
