(* Forwarding, failure injection and the probe vocabulary — including the
   paper's misleading-traceroute scenario. *)

open Net
open Helpers

let ready_world () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  w

let infra = Dataplane.Forward.infrastructure_prefix
let addr w x = Dataplane.Forward.probe_address w.net x

let test_basic_delivery () =
  let w = ready_world () in
  let walk = Dataplane.Forward.walk w.net w.failures ~src:e ~dst:(addr w o) () in
  Alcotest.(check bool) "delivered" true (walk.Dataplane.Forward.outcome = Dataplane.Forward.Delivered);
  Alcotest.(check (list int)) "AS-level path" [ 60; 30; 20; 10 ]
    (List.map Asn.to_int (Dataplane.Forward.as_path_of_walk walk));
  Alcotest.(check bool) "delivers convenience" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o))

let test_no_route () =
  let w = fig2_world () in
  (* Nothing announced: no FIB entries anywhere. *)
  let walk = Dataplane.Forward.walk w.net w.failures ~src:e ~dst:(addr w o) () in
  match walk.Dataplane.Forward.outcome with
  | Dataplane.Forward.No_route at -> Alcotest.(check int) "stops at source" 60 (Asn.to_int at)
  | _ -> Alcotest.fail "expected No_route"

let test_node_failure_blocks () =
  let w = ready_world () in
  Dataplane.Failure.add w.failures (Dataplane.Failure.spec (Dataplane.Failure.Node a));
  let walk = Dataplane.Forward.walk w.net w.failures ~src:e ~dst:(addr w o) () in
  (match walk.Dataplane.Forward.outcome with
  | Dataplane.Forward.Dropped { at; _ } -> Alcotest.(check int) "dropped at A" 30 (Asn.to_int at)
  | _ -> Alcotest.fail "expected Dropped");
  Dataplane.Failure.clear w.failures;
  Alcotest.(check bool) "clear heals" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o))

let test_directional_link_failure () =
  let w = ready_world () in
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec (Dataplane.Failure.Link_dir (e, a)));
  Alcotest.(check bool) "e->a traversal dies" false
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o));
  Alcotest.(check bool) "a->e traversal fine" true
    (Dataplane.Forward.delivers w.net w.failures ~src:o ~dst:(addr w e))

let test_toward_scoping () =
  let w = ready_world () in
  (* A drops only packets toward O's infrastructure space. *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Node a));
  Alcotest.(check bool) "toward O dies" false
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o));
  Alcotest.(check bool) "toward F unaffected (also through A)" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w f))

let test_source_blocked_by_own_failure () =
  let w = ready_world () in
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Node a));
  (* A itself cannot reach O: its packets die on departure. *)
  Alcotest.(check bool) "A cannot reach O" false
    (Dataplane.Forward.delivers w.net w.failures ~src:a ~dst:(addr w o))

let test_ping_requires_both_directions () =
  let w = ready_world () in
  (* Reverse-only failure: traffic toward O's infra dies inside A. Pings
     from O to E fail (reply crosses A), pings from O to D succeed (D's
     path back avoids A). *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Node a));
  Alcotest.(check bool) "ping O->E fails on the reply" false
    (Dataplane.Probe.ping w.probe ~src:o ~dst:(addr w e));
  Alcotest.(check bool) "ping O->D fine" true (Dataplane.Probe.ping w.probe ~src:o ~dst:(addr w d));
  (* Forward direction from O still works: a spoofed ping sourced at O
     with D's address draws the reply to D instead. *)
  Alcotest.(check bool) "spoofed ping O->E (reply to D)" true
    (Dataplane.Probe.spoofed_ping w.probe ~sender:o ~spoof_src:(addr w d) ~dst:(addr w e))

let test_misleading_traceroute () =
  (* The Fig. 4 situation, transplanted onto Fig. 2's topology: O pings E;
     the reverse path E->A->...->O fails inside A. O's own traceroute
     toward E shows hops up to... every hop whose reply crosses A is
     silent, so the trace *looks* like a forward problem near the horizon
     even though the forward path is fine. *)
  let w = ready_world () in
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Node a));
  let trace = Dataplane.Probe.traceroute w.probe ~src:o ~dst:(addr w e) in
  Alcotest.(check bool) "forward walk completed" true
    (trace.Dataplane.Probe.outcome = Dataplane.Forward.Delivered);
  Alcotest.(check bool) "but destination seems unreachable" false trace.Dataplane.Probe.reached;
  (* Hops before A respond; A and E (reply via A) do not. *)
  let responded_ases =
    List.filter_map
      (fun th ->
        if th.Dataplane.Probe.responded then
          Some (Asn.to_int th.Dataplane.Probe.hop.Dataplane.Forward.asn)
        else None)
      trace.Dataplane.Probe.hops
  in
  Alcotest.(check (list int)) "only O and B respond" [ 10; 20 ] responded_ases;
  Alcotest.(check bool) "last responsive AS is B" true
    (Dataplane.Probe.last_responsive_as trace = Some b);
  Alcotest.(check (list int)) "visible path" [ 10; 20 ] (List.map Asn.to_int (Dataplane.Probe.visible_path trace))

let test_dropped_hop_does_not_respond () =
  let w = ready_world () in
  (* Hard forward failure at A for traffic toward E: the trace stops at A
     and A itself cannot have answered. *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra e) (Dataplane.Failure.Node a));
  let trace = Dataplane.Probe.traceroute w.probe ~src:o ~dst:(addr w e) in
  (match trace.Dataplane.Probe.outcome with
  | Dataplane.Forward.Dropped { at; _ } -> Alcotest.(check int) "dropped at A" 30 (Asn.to_int at)
  | _ -> Alcotest.fail "expected drop");
  let last = List.rev trace.Dataplane.Probe.hops |> List.hd in
  Alcotest.(check bool) "dying hop is silent" false last.Dataplane.Probe.responded

let test_ping_from_sentinel_space () =
  let w = ready_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:sentinel ();
  converge w;
  let sentinel_src = Prefix.nth_address sentinel 1 in
  Alcotest.(check bool) "replies can route to the sentinel" true
    (Dataplane.Probe.ping_from w.probe ~src:o ~src_ip:sentinel_src ~dst:(addr w e))

let test_reverse_traceroute () =
  let w = ready_world () in
  (* Measure E's path back to O, helped by vantage point D. *)
  (match
     Dataplane.Probe.reverse_traceroute w.probe ~vantage_points:[ d ] ~from_:e
       ~to_ip:(addr w o)
   with
  | Some trace ->
      Alcotest.(check bool) "reached" true trace.Dataplane.Probe.reached;
      Alcotest.(check (list int)) "reverse path" [ 60; 30; 20; 10 ]
        (List.map
           (fun th -> Asn.to_int th.Dataplane.Probe.hop.Dataplane.Forward.asn)
           trace.Dataplane.Probe.hops)
  | None -> Alcotest.fail "reverse traceroute should be feasible");
  (* Without any vantage point able to reach E, it is infeasible. *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra e) (Dataplane.Failure.Node a));
  Alcotest.(check bool) "infeasible when no VP reaches the target" true
    (Dataplane.Probe.reverse_traceroute w.probe ~vantage_points:[ o; f ] ~from_:e
       ~to_ip:(addr w o)
    = None)

let test_probe_accounting () =
  let w = ready_world () in
  Dataplane.Probe.reset_probe_count w.probe;
  ignore (Dataplane.Probe.ping w.probe ~src:o ~dst:(addr w e));
  Alcotest.(check int) "ping costs 1" 1 w.probe.Dataplane.Probe.probes_sent;
  ignore (Dataplane.Probe.traceroute w.probe ~src:o ~dst:(addr w e));
  Alcotest.(check bool) "traceroute costs per hop" true (w.probe.Dataplane.Probe.probes_sent > 2)

let test_failure_spec_equality_and_heal () =
  let w = ready_world () in
  let spec = Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Link (a, e)) in
  Dataplane.Failure.inject w.net w.failures spec;
  Alcotest.(check bool) "active" false
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o));
  (* Link scope is undirected for identity: removing with flipped
     endpoints works. *)
  Dataplane.Failure.heal w.net w.failures
    (Dataplane.Failure.spec ~toward:(infra o) (Dataplane.Failure.Link (e, a)));
  Alcotest.(check bool) "healed" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o))

let test_control_and_data_failure () =
  let w = ready_world () in
  let spec =
    Dataplane.Failure.spec ~mode:Dataplane.Failure.Control_and_data
      (Dataplane.Failure.Link (e, a))
  in
  Dataplane.Failure.inject w.net w.failures spec;
  converge w;
  (* BGP saw the failure: E reroutes via D and the data plane follows. *)
  check_path "E reroutes" [ 50; 40; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  Alcotest.(check bool) "data plane delivers on the new path" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(addr w o));
  Dataplane.Failure.heal w.net w.failures spec;
  converge w;
  check_path "E back on the short path" [ 30; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production))

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "no route" `Quick test_no_route;
    Alcotest.test_case "node failure blocks" `Quick test_node_failure_blocks;
    Alcotest.test_case "directional link failure" `Quick test_directional_link_failure;
    Alcotest.test_case "toward scoping" `Quick test_toward_scoping;
    Alcotest.test_case "source blocked by own failure" `Quick test_source_blocked_by_own_failure;
    Alcotest.test_case "ping needs both directions" `Quick test_ping_requires_both_directions;
    Alcotest.test_case "misleading traceroute (Fig. 4)" `Quick test_misleading_traceroute;
    Alcotest.test_case "dropped hop is silent" `Quick test_dropped_hop_does_not_respond;
    Alcotest.test_case "ping from sentinel space" `Quick test_ping_from_sentinel_space;
    Alcotest.test_case "reverse traceroute" `Quick test_reverse_traceroute;
    Alcotest.test_case "probe accounting" `Quick test_probe_accounting;
    Alcotest.test_case "failure equality / heal" `Quick test_failure_spec_equality_and_heal;
    Alcotest.test_case "control+data failure" `Quick test_control_and_data_failure;
  ]
