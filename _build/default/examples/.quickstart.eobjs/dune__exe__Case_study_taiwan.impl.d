examples/case_study_taiwan.ml: Experiments List Printf Stats
