open Net

(* Per-world interner for AS paths and announcements.

   Per-world is load-bearing: lib/par worlds are share-nothing (LG-DOM-MUT
   forbids module-level tables in libraries), so each [Network.create]
   builds its own store and threads it through every [Speaker.create].
   Interning is pure deduplication — it never changes what a table prints,
   only which physical value backs it — so tables stay byte-identical at
   any [--jobs]. Ids are assigned in first-intern order and are therefore
   world-local; [As_path.equal] never compares them across values. *)

module Path_key = struct
  type t = As_path.t

  (* Structural identity: the id stamped by interning must not influence
     lookups, so an uninterned probe finds its interned twin. *)
  let equal a b = As_path.equal a b
  let hash = As_path.hash
end

module Path_tbl = Hashtbl.Make (Path_key)

module Ann_key = struct
  type t = Route.announcement

  let equal (a : t) (b : t) =
    Prefix.equal a.prefix b.prefix
    && As_path.equal a.path b.path
    && List.length a.communities = List.length b.communities
    && List.for_all2 Community.equal a.communities b.communities
    && Option.equal Int.equal a.med b.med

  let hash (a : t) =
    let h = Prefix.hash a.prefix lxor (As_path.hash a.path * 0x9E3779B1) in
    let h = List.fold_left (fun h c -> h lxor Community.hash c) h a.communities in
    let h = match a.med with None -> h | Some m -> h lxor ((m + 1) * 0x5F3759DF) in
    h land max_int
end

module Ann_tbl = Hashtbl.Make (Ann_key)

type t = {
  mutable next_id : int;
  paths : As_path.t Path_tbl.t;
  anns : Route.announcement Ann_tbl.t;
}

let create () = { next_id = 0; paths = Path_tbl.create 1024; anns = Ann_tbl.create 1024 }

let intern_path t path =
  match Path_tbl.find_opt t.paths path with
  | Some shared -> shared
  | None ->
      let stamped = As_path.Internal.with_id path t.next_id in
      t.next_id <- t.next_id + 1;
      Path_tbl.add t.paths stamped stamped;
      stamped

let intern_ann t (ann : Route.announcement) =
  match Ann_tbl.find_opt t.anns ann with
  | Some shared -> shared
  | None ->
      let path = intern_path t ann.path in
      let stored = if path == ann.path then ann else { ann with path } in
      Ann_tbl.add t.anns stored stored;
      stored

let path_count t = Path_tbl.length t.paths
let ann_count t = Ann_tbl.length t.anns
