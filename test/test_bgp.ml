(* BGP engine semantics: decision process, propagation, loop prevention,
   poisoning, prepending, selective advertising, sessions. *)

open Net
open Helpers

let test_plain_propagation () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  check_path "B hears [O]" [ 10 ] (path_of_best (Bgp.Network.best_route w.net b production));
  check_path "A hears [B O]" [ 20; 10 ] (path_of_best (Bgp.Network.best_route w.net a production));
  check_path "E prefers short path via A" [ 30; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  check_path "F hears via A" [ 30; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net f production));
  check_path "D hears via C" [ 40; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net d production))

let test_poison_reroutes () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let poisoned = Bgp.As_path.poisoned ~origin:o ~poison:a in
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some poisoned)
    ();
  converge w;
  Alcotest.(check bool)
    "A loses the route" true
    (Bgp.Network.best_route w.net a production = None);
  check_path "E falls back to the D path" [ 50; 40; 20; 10; 30; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  Alcotest.(check bool)
    "captive F has no production route" true
    (Bgp.Network.best_route w.net f production = None);
  check_path "B still routes directly" [ 10; 30; 10 ]
    (path_of_best (Bgp.Network.best_route w.net b production))

let test_sentinel_covers_captives () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  Bgp.Network.announce w.net ~origin:o ~prefix:sentinel ();
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let poisoned = Bgp.As_path.poisoned ~origin:o ~poison:a in
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some poisoned)
    ();
  converge w;
  (* F's data plane falls back to the unpoisoned sentinel and still
     delivers to the production address space. *)
  let target = Prefix.nth_address production 7 in
  (match Bgp.Network.fib_lookup w.net f target with
  | Some (p, _) -> Alcotest.(check bool) "F matches the sentinel" true (Prefix.equal p sentinel)
  | None -> Alcotest.fail "F has no covering route at all");
  Alcotest.(check bool)
    "F still reaches production addresses via the sentinel" true
    (Dataplane.Forward.delivers w.net w.failures ~src:f ~dst:target)

let test_poison_ties_with_prepended_baseline () =
  (* O-O-O and O-A-O are the same length, so an AS not routing through A
     keeps its route with a single update and no preference change. *)
  let w = fig2_world () in
  let prepended = Bgp.As_path.prepended ~origin:o ~copies:3 in
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some prepended)
    ();
  converge w;
  check_path "D sees prepended baseline" [ 40; 20; 10; 10; 10 ]
    (path_of_best (Bgp.Network.best_route w.net d production));
  let poisoned = Bgp.As_path.poisoned ~origin:o ~poison:a in
  Bgp.Network.announce w.net ~origin:o ~prefix:production
    ~per_neighbor:(fun _ -> Some poisoned)
    ();
  converge w;
  check_path "D keeps shape, same length" [ 40; 20; 10; 30; 10 ]
    (path_of_best (Bgp.Network.best_route w.net d production))

let test_selective_poisoning () =
  (* Poison A only via one of O's two providers. Build: O multihomed to
     B and C; A above both. A should keep the unpoisoned route (via C)
     and drop the poisoned one (via B). *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3; 9 ];
  let o' = asn 1 and b' = asn 2 and c' = asn 3 and a' = asn 9 in
  As_graph.add_link g ~a:o' ~b:b' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:o' ~b:c' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b' ~b:a' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:c' ~b:a' ~rel:Relationship.Provider;
  let w = world_of_graph g in
  Bgp.Network.announce w.net ~origin:o' ~prefix:production
    ~per_neighbor:(fun n ->
      if Asn.equal n b' then Some (Bgp.As_path.poisoned ~origin:o' ~poison:a')
      else Some (Bgp.As_path.plain ~origin:o'))
    ();
  converge w;
  check_path "A keeps only the unpoisoned path via C" [ 3; 1 ]
    (path_of_best (Bgp.Network.best_route w.net a' production));
  check_path "B itself still routes directly" [ 1; 9; 1 ]
    (path_of_best (Bgp.Network.best_route w.net b' production))

let test_loop_limit_quirk () =
  (* An AS with loop_limit = 2 accepts one occurrence of itself; poisoning
     it requires inserting it twice (§7.1). *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 9 ];
  let o' = asn 1 and b' = asn 2 and a' = asn 9 in
  As_graph.add_link g ~a:o' ~b:b' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b' ~b:a' ~rel:Relationship.Provider;
  let config_of asn_ =
    if Asn.equal asn_ a' then { Bgp.Policy.default with Bgp.Policy.loop_limit = 2 }
    else Bgp.Policy.default
  in
  let w = world_of_graph ~config_of g in
  Bgp.Network.announce w.net ~origin:o' ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:o' ~poison:a'))
    ();
  converge w;
  Alcotest.(check bool)
    "single poison is shrugged off" true
    (Bgp.Network.best_route w.net a' production <> None);
  Bgp.Network.announce w.net ~origin:o' ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned_multi ~origin:o' ~poisons:[ a'; a' ]))
    ();
  converge w;
  Alcotest.(check bool)
    "double poison takes" true
    (Bgp.Network.best_route w.net a' production = None)

let test_cogent_quirk () =
  (* B rejects customer announcements containing its peer P. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 5 ];
  let o' = asn 1 and b' = asn 2 and p' = asn 5 in
  As_graph.add_link g ~a:o' ~b:b' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b' ~b:p' ~rel:Relationship.Peer;
  let config_of asn_ =
    if Asn.equal asn_ b' then
      { Bgp.Policy.default with Bgp.Policy.reject_peers_in_customer_paths = true }
    else Bgp.Policy.default
  in
  let w = world_of_graph ~config_of g in
  Bgp.Network.announce w.net ~origin:o' ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:o' ~poison:p'))
    ();
  converge w;
  Alcotest.(check bool)
    "B filters the poisoned path naming its peer" true
    (Bgp.Network.best_route w.net b' production = None)

let test_withdraw_propagates () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  Bgp.Network.withdraw w.net ~origin:o ~prefix:production;
  converge w;
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d loses the route" (Asn.to_int x))
        true
        (Bgp.Network.best_route w.net x production = None))
    [ b; a; c; d; e; f ]

let test_link_failure_control_plane () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  Bgp.Network.fail_link w.net ~a:b ~b:a;
  converge w;
  check_path "E reroutes after control-plane failure" [ 50; 40; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  Bgp.Network.restore_link w.net ~a:b ~b:a;
  converge w;
  check_path "E returns after repair" [ 30; 20; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production))

let test_decision_prefers_customer () =
  let mk ~rel ~path ~neighbor =
    Bgp.Route.make_entry
      ~ann:(Bgp.Route.announcement ~prefix:production ~path:(Bgp.As_path.of_list path) ())
      ~neighbor:(asn neighbor) ~rel
      ~local_pref:(Topology.Relationship.local_pref rel)
      ~learned_at:0.0 ()
  in
  let open Topology in
  let customer = mk ~rel:Relationship.Customer ~path:[ asn 2; asn 7; asn 8; asn 9 ] ~neighbor:2 in
  let peer = mk ~rel:Relationship.Peer ~path:[ asn 3; asn 9 ] ~neighbor:3 in
  let provider = mk ~rel:Relationship.Provider ~path:[ asn 4; asn 9 ] ~neighbor:4 in
  (match Bgp.Decision.best [ provider; peer; customer ] with
  | Some best -> Alcotest.(check int) "customer wins" 2 (Asn.to_int best.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no best");
  match Bgp.Decision.best [ provider; peer ] with
  | Some best -> Alcotest.(check int) "peer beats provider" 3 (Asn.to_int best.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no best"

let test_decision_tiebreaks () =
  let open Topology in
  let mk ?med ~path ~neighbor () =
    Bgp.Route.make_entry
      ~ann:(Bgp.Route.announcement ?med ~prefix:production ~path:(Bgp.As_path.of_list path) ())
      ~neighbor:(asn neighbor) ~rel:Relationship.Provider ~local_pref:100
      ~learned_at:0.0 ()
  in
  let short = mk ~path:[ asn 3; asn 9 ] ~neighbor:3 () in
  let long = mk ~path:[ asn 4; asn 5; asn 9 ] ~neighbor:4 () in
  (match Bgp.Decision.best [ long; short ] with
  | Some best -> Alcotest.(check int) "shorter path wins" 3 (Asn.to_int best.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no best");
  (* Same-length paths from the same neighbor AS: lower MED wins. *)
  let med_low = mk ~med:5 ~path:[ asn 3; asn 9 ] ~neighbor:3 () in
  let med_high = mk ~med:50 ~path:[ asn 3; asn 9 ] ~neighbor:6 () in
  (match Bgp.Decision.best [ med_high; med_low ] with
  | Some best -> Alcotest.(check int) "lower MED wins" 3 (Asn.to_int best.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no best");
  (* Different first-hop AS: MED not compared, lowest neighbor wins. *)
  let x = mk ~med:50 ~path:[ asn 3; asn 9 ] ~neighbor:3 () in
  let y = mk ~med:5 ~path:[ asn 4; asn 9 ] ~neighbor:4 () in
  match Bgp.Decision.best [ y; x ] with
  | Some best ->
      Alcotest.(check int) "lowest neighbor ASN tiebreak" 3 (Asn.to_int best.Bgp.Route.neighbor)
  | None -> Alcotest.fail "no best"

let test_as_path_constructors () =
  let p = Bgp.As_path.poisoned ~origin:(asn 1) ~poison:(asn 7) in
  Alcotest.(check (list int)) "O-A-O" [ 1; 7; 1 ] (List.map Asn.to_int (Bgp.As_path.to_list p));
  Alcotest.(check int) "length counts duplicates" 3 (Bgp.As_path.length p);
  Alcotest.(check bool) "contains poison" true (Bgp.As_path.contains (asn 7) p);
  Alcotest.(check int) "origin occurs twice" 2 (Bgp.As_path.count (asn 1) p);
  Alcotest.check Alcotest.bool "poisoning self rejected" true
    (try
       ignore (Bgp.As_path.poisoned ~origin:(asn 1) ~poison:(asn 1));
       false
     with Invalid_argument _ -> true);
  let m = Bgp.As_path.poisoned_multi ~origin:(asn 1) ~poisons:[ asn 7; asn 7 ] in
  Alcotest.(check (list int)) "multi poison" [ 1; 7; 7; 1 ]
    (List.map Asn.to_int (Bgp.As_path.to_list m))

let test_no_export_community () =
  (* A route tagged NO_EXPORT must not leave the receiving AS. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3 ];
  let o' = asn 1 and b' = asn 2 and t' = asn 3 in
  As_graph.add_link g ~a:o' ~b:b' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b' ~b:t' ~rel:Relationship.Provider;
  let w = world_of_graph g in
  let sp = Bgp.Network.speaker w.net b' in
  ignore sp;
  (* Inject the announcement directly at B with NO_EXPORT. *)
  let ann =
    Bgp.Route.announcement ~communities:[ Bgp.Community.no_export ] ~prefix:production
      ~path:(Bgp.As_path.of_list [ o' ]) ()
  in
  let out = Bgp.Speaker.receive (Bgp.Network.speaker w.net b') ~now:0.0 ~from:o' (Bgp.Speaker.Announce ann) in
  Alcotest.(check int) "B exports nowhere" 0 (List.length out);
  Alcotest.(check bool) "B itself keeps the route" true
    (Bgp.Speaker.best (Bgp.Network.speaker w.net b') production <> None)

let suite =
  [
    Alcotest.test_case "plain propagation" `Quick test_plain_propagation;
    Alcotest.test_case "poison reroutes" `Quick test_poison_reroutes;
    Alcotest.test_case "sentinel covers captives" `Quick test_sentinel_covers_captives;
    Alcotest.test_case "poison ties with prepended baseline" `Quick
      test_poison_ties_with_prepended_baseline;
    Alcotest.test_case "selective poisoning" `Quick test_selective_poisoning;
    Alcotest.test_case "loop-limit quirk" `Quick test_loop_limit_quirk;
    Alcotest.test_case "cogent-style peer filter" `Quick test_cogent_quirk;
    Alcotest.test_case "withdraw propagates" `Quick test_withdraw_propagates;
    Alcotest.test_case "control-plane link failure" `Quick test_link_failure_control_plane;
    Alcotest.test_case "decision: relationships" `Quick test_decision_prefers_customer;
    Alcotest.test_case "decision: tiebreaks" `Quick test_decision_tiebreaks;
    Alcotest.test_case "as-path constructors" `Quick test_as_path_constructors;
    Alcotest.test_case "no-export community" `Quick test_no_export_community;
  ]
