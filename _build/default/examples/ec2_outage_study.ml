(* The EC2 outage study (paper §2.1, Figs. 1 and 5) as a library client:
   generate a calibrated outage dataset, then answer the questions the
   paper asks of it — how long do outages last, who carries the
   unavailability, and how long will an outage that has already lasted X
   minutes keep going? The punchline motivates LIFEGUARD: spending ~5
   minutes locating a failure before poisoning still leaves most of the
   unavailability addressable.

   Run with: dune exec examples/ec2_outage_study.exe [seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20100720
  in
  let n = 10308 in
  Printf.printf "Simulating %d partial outages (seed %d), as observed from EC2\n" n seed;
  Printf.printf "between July 20 and August 29, 2010 in the paper...\n\n";

  let durations = Workloads.Outage_gen.durations ~seed ~n () in
  let median = Stats.Descriptive.median durations in
  let mean = Stats.Descriptive.mean durations in
  Printf.printf "median outage: %.0f s   mean: %.0f s (heavy tail!)\n\n" median mean;

  (* Fig. 1: events vs unavailability. *)
  let minutes = Array.map (fun s -> s /. 60.0) durations in
  let events = Stats.Ecdf.of_samples minutes in
  let unavail = Stats.Ecdf.weighted ~values:minutes ~weights:minutes in
  let table =
    Stats.Table.create ~title:"Fig. 1: cumulative fraction by outage duration"
      ~columns:[ "<= minutes"; "of outages"; "of total unavailability" ]
  in
  List.iter
    (fun m ->
      Stats.Table.add_row table
        [
          Stats.Table.cell_float ~decimals:0 m;
          Stats.Table.cell_pct (Stats.Ecdf.eval events m);
          Stats.Table.cell_pct (Stats.Ecdf.eval unavail m);
        ])
    [ 2.; 5.; 10.; 30.; 60.; 600.; 4320. ];
  Stats.Table.print table;
  Printf.printf
    "Reading: >90%% of outages fit in 10 minutes, yet outages longer than\n\
     that carry %s of the unavailability — the paper's 84%%.\n\n"
    (Stats.Table.cell_pct
       (Workloads.Outage_gen.unavailability_share_above durations ~threshold:600.0));

  (* Fig. 5: residual durations. *)
  let table =
    Stats.Table.create ~title:"Fig. 5: residual duration once an outage has lasted X minutes"
      ~columns:[ "elapsed (min)"; "still open"; "median residual (min)"; "mean residual (min)" ]
  in
  List.iter
    (fun m ->
      match Lifeguard.Decide.Residual.at ~durations ~elapsed:(m *. 60.0) with
      | Some s ->
          Stats.Table.add_row table
            [
              Stats.Table.cell_float ~decimals:0 m;
              Stats.Table.cell_int s.Lifeguard.Decide.Residual.count;
              Stats.Table.cell_float ~decimals:1 (s.Lifeguard.Decide.Residual.median /. 60.0);
              Stats.Table.cell_float ~decimals:1 (s.Lifeguard.Decide.Residual.mean /. 60.0);
            ]
      | None -> ())
    [ 0.; 5.; 10.; 20.; 30. ];
  Stats.Table.print table;
  let s55 =
    Lifeguard.Decide.Residual.survival_fraction ~durations ~elapsed:300.0 ~horizon:300.0
  in
  Printf.printf
    "Reading: of outages that persisted 5 minutes, %s lasted at least 5\n\
     more (paper: 51%%) — so an outage that survives detection plus\n\
     isolation is very likely worth poisoning.\n"
    (Stats.Table.cell_pct s55)
