lib/topology/topo_gen.ml: Array As_graph Asn List Net Prng Relationship
