(** Route representations: the announcement on the wire and the RIB entry
    a speaker stores after import. *)

open Net
open Topology

type announcement = {
  prefix : Prefix.t;
  path : As_path.t;  (** Nearest AS first; the sender's ASN is the head. *)
  communities : Community.t list;
  med : int option;  (** Multi-exit discriminator, if set. *)
}

val announcement :
  ?communities:Community.t list -> ?med:int -> prefix:Prefix.t -> path:As_path.t -> unit ->
  announcement

val announcement_equal : announcement -> announcement -> bool
(** Full attribute equality — used to suppress duplicate updates. *)

val pp_announcement : Format.formatter -> announcement -> unit

type entry = {
  ann : announcement;
  neighbor : Asn.t;  (** The neighbor it was learned from (self if local). *)
  rel : Relationship.t;  (** What that neighbor is to us. *)
  local_pref : int;
  learned_at : float;  (** Simulation time of import. *)
}
(** An adj-RIB-in / loc-RIB entry. *)

val local_entry : prefix:Prefix.t -> self:Asn.t -> path:As_path.t -> now:float -> entry
(** The locally-originated route for a prefix: highest preference, treated
    as customer-learned for export purposes (exported to everyone). *)

val is_local : entry -> bool
(** Whether the entry is a local origination (neighbor = self). *)

val pp_entry : Format.formatter -> entry -> unit
