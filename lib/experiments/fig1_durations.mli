(** Figure 1: outage durations vs. their contribution to unavailability.

    The paper monitored 250 routers from EC2 for six weeks and found
    10,308 partial outages: more than 90% lasted at most 10 minutes, yet
    84% of the total unavailability came from the outages longer than
    that. We regenerate the figure from the calibrated outage model. *)

type result = {
  n : int;
  median_s : float;
  fraction_events_le_10min : float;
  unavailability_share_gt_10min : float;
  events_cdf : (float * float) list;  (** (minutes, fraction of events) *)
  unavailability_cdf : (float * float) list;
      (** (minutes, fraction of total unavailability) *)
}

val paper_fraction_events_le_10min : float
val paper_unavailability_share_gt_10min : float

val run : ?n:int -> seed:int -> unit -> result
(** Draw [n] outage durations (default the paper's 10,308) from the
    calibrated model and summarize both CDFs. Deterministic in [seed]. *)

val to_tables : result -> Stats.Table.t list
