type t = { network : Ipv4.t; length : int }

let mask_of_length len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of [0,32]";
  let network = Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 addr) (mask_of_length len)) in
  { network; length = len }

let network t = t.network
let length t = t.length
let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.length

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> begin
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string addr, int_of_string_opt len) with
      | Some addr, Some len when len >= 0 && len <= 32 -> Some (make addr len)
      | _ -> None
    end

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg ("Prefix.of_string_exn: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b = Ipv4.equal a.network b.network && Int.equal a.length b.length

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let mem ip t =
  let m = mask_of_length t.length in
  Int32.equal (Int32.logand (Ipv4.to_int32 ip) m) (Ipv4.to_int32 t.network)

let contains_prefix ~outer ~inner =
  outer.length <= inner.length && mem inner.network outer

let split t =
  if t.length >= 32 then None
  else begin
    let len = t.length + 1 in
    let low = { network = t.network; length = len } in
    let high_bit = Int32.shift_left 1l (32 - len) in
    let high =
      { network = Ipv4.of_int32 (Int32.logor (Ipv4.to_int32 t.network) high_bit); length = len }
    in
    Some (low, high)
  end

let first_address t = t.network

let size t =
  if t.length = 0 then max_int else 1 lsl (32 - t.length)

let last_address t =
  Ipv4.add t.network (size t - 1)

let nth_address t i =
  if i < 0 || (t.length > 0 && i >= size t) then
    invalid_arg "Prefix.nth_address: index out of range";
  Ipv4.add t.network i

(* Explicit integer mix, not the polymorphic [Hashtbl.hash]: the network
   address is a boxed int32 the generic hash would chase, and prefix-keyed
   tables sit on the BGP hot path. *)
let hash t =
  let z = (Int32.to_int (Ipv4.to_int32 t.network) * 0x9E3779B1) lxor (t.length * 0x85EBCA6B) in
  (z lxor (z lsr 16)) land max_int

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
