(* A path-uncompressed binary trie over address bits. Prefix lengths are at
   most 32, and the routing tables in this reproduction hold at most a few
   thousand prefixes, so the simple representation is plenty fast and easy
   to verify. *)

type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let bit_at addr i =
  (* Bit [i] counting from the most significant (i = 0 is the /1 bit). *)
  Int32.logand (Int32.shift_right_logical (Ipv4.to_int32 addr) (31 - i)) 1l = 1l

let add prefix v t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf ->
        if depth = len then node (Some v) Leaf Leaf
        else if bit_at addr depth then node None Leaf (go Leaf (depth + 1))
        else node None (go Leaf (depth + 1)) Leaf
    | Node { value; zero; one } ->
        if depth = len then node (Some v) zero one
        else if bit_at addr depth then node value zero (go one (depth + 1))
        else node value (go zero (depth + 1)) one
  in
  go t 0

let remove prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> Leaf
    | Node { value; zero; one } ->
        if depth = len then node None zero one
        else if bit_at addr depth then node value zero (go one (depth + 1))
        else node value (go zero (depth + 1)) one
  in
  go t 0

let find_exact prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> None
    | Node { value; zero; one } ->
        if depth = len then value
        else if bit_at addr depth then go one (depth + 1)
        else go zero (depth + 1)
  in
  go t 0

let lookup_bits addr max_len t =
  (* Walk down following the address bits, remembering the deepest value. *)
  let rec go t depth best =
    match t with
    | Leaf -> best
    | Node { value; zero; one } ->
        let best =
          match value with
          | Some v -> Some (Prefix.make addr depth, v)
          | None -> best
        in
        if depth >= max_len then best
        else if bit_at addr depth then go one (depth + 1) best
        else go zero (depth + 1) best
  in
  go t 0 None

let lookup ip t = lookup_bits ip 32 t
let lookup_prefix prefix t = lookup_bits (Prefix.network prefix) (Prefix.length prefix) t

let fold f t acc =
  let rec go t depth addr acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> f (Prefix.make (Ipv4.of_int32 addr) depth) v acc
          | None -> acc
        in
        let acc = go zero (depth + 1) addr acc in
        let one_addr = Int32.logor addr (Int32.shift_left 1l (31 - depth)) in
        go one (depth + 1) one_addr acc
  in
  go t 0 0l acc

let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let cardinal t = fold (fun _ _ acc -> acc + 1) t 0
