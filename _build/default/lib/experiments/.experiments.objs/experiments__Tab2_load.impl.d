lib/experiments/tab2_load.ml: Lifeguard List Stats Workloads
