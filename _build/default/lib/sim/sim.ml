(** Discrete-event simulation: a single shared clock driving the BGP
    network, monitoring loops and LIFEGUARD's control loop. *)

module Engine = Engine
