test/test_bgp_more.ml: Alcotest As_graph Asn Bgp Helpers List Net Printf QCheck QCheck_alcotest Relationship Sim Topology
