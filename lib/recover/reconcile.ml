open Net

let m_double = Obs.Metrics.counter "recover.reconcile.double_poisons"
let m_orphaned = Obs.Metrics.counter "recover.reconcile.orphaned"

type t = {
  records : int;
  replayed : int;
  fresh : int;
  poisons : int;
  unpoisons : int;
  double_poisons : int;
  orphaned : int;
  settling : int;
  active_at_horizon : Asn.t option;
  clean : bool;
}

(* Walk the journal as a state machine over the single active-poison
   slot the controller maintains. A Poison_announce while any episode is
   still open is a double poison — exactly the bug class write-ahead
   logging plus replay is meant to exclude. *)
let scan records =
  let active = ref None in
  let poisons = ref 0 and unpoisons = ref 0 and doubles = ref 0 in
  let last_clear = ref neg_infinity in
  List.iter
    (fun r ->
      match r.Record.action with
      | Record.Poison_announce { poison; _ } ->
          incr poisons;
          (match !active with Some _ -> incr doubles | None -> ());
          active := Some poison
      | Record.Unpoison { poison = _; _ } ->
          incr unpoisons;
          last_clear := r.Record.at;
          active := None
      | Record.Poison_reannounce _ | Record.Breaker_trip _ | Record.Plan_demotion _
      | Record.Outcome _ ->
          ())
    records;
  (!active, !poisons, !unpoisons, !doubles, !last_clear)

let check ?(replayed = 0) ?(grace = 0.0) ~horizon ~poisoned_views records =
  let active, poisons, unpoisons, doubles, last_clear = scan records in
  (* A view still carrying a poison the journal says was withdrawn is an
     orphan — unless the withdrawal happened inside the final [grace]
     window, where the view is merely still converging at the horizon. *)
  let orphaned, settling =
    List.fold_left
      (fun (orphaned, settling) (_vp, carried) ->
        match carried with
        | None -> (orphaned, settling)
        | Some p -> begin
            match active with
            | Some a when Asn.equal a p -> (orphaned, settling)
            | _ ->
                if horizon -. last_clear <= grace then (orphaned, settling + 1)
                else (orphaned + 1, settling)
          end)
      (0, 0) poisoned_views
  in
  Obs.Metrics.add m_double doubles;
  Obs.Metrics.add m_orphaned orphaned;
  {
    records = List.length records;
    replayed;
    fresh = List.length records - replayed;
    poisons;
    unpoisons;
    double_poisons = doubles;
    orphaned;
    settling;
    active_at_horizon = active;
    clean = doubles = 0 && orphaned = 0;
  }

let render t =
  Printf.sprintf
    "records=%d replayed=%d fresh=%d poisons=%d unpoisons=%d double_poisons=%d orphaned=%d \
     settling=%d active=%s clean=%b"
    t.records t.replayed t.fresh t.poisons t.unpoisons t.double_poisons t.orphaned t.settling
    (match t.active_at_horizon with None -> "-" | Some a -> Asn.to_string a)
    t.clean
