test/test_measurement.ml: Alcotest Array Asn Bgp Dataplane Helpers Ipv4 List Measurement Net Prefix Printf Prng Sim Topology
