(** Per-AS routing policy: import filtering, preference assignment and
    export filtering.

    The defaults implement the standard Gao–Rexford economics (prefer
    customer routes, export provider/peer routes only to customers) plus
    strict loop prevention. The quirks the paper encountered in the wild
    (§7.1) are configuration knobs: ASes that accept their own number in a
    path up to [k] times (defeated by inserting it twice), ASes that
    reject customer announcements containing one of their peers
    (Cogent-style filtering that limited poisoning via Georgia Tech), and
    ASes that strip community tags (which is why communities are not a
    dependable avoidance signal). *)

open Net
open Topology

type damping = {
  penalty_per_flap : float;  (** Added on each route change (RFC 2439 uses 1000). *)
  suppress_threshold : float;  (** Suppress the route above this (2000). *)
  reuse_threshold : float;  (** Re-enable once decayed below this (750). *)
  half_life : float;  (** Exponential decay half-life, seconds (900). *)
}
(** Route-flap damping parameters. The paper had to keep each poisoned
    announcement in place for 90 minutes precisely to stay clear of
    this mechanism: flapping a prefix quickly accumulates penalty until
    routers suppress it entirely. *)

val default_damping : damping

type config = {
  loop_limit : int;
      (** Reject a path containing our own ASN [loop_limit] or more times.
          1 = standard BGP loop prevention; 2 models ASes like AS286 that
          allow one occurrence for multi-site setups. *)
  reject_peers_in_customer_paths : bool;
      (** Cogent-style: refuse updates from customers whose path contains
          one of our peers. *)
  strip_communities : bool;  (** Drop community tags when re-exporting. *)
  honor_no_export_to_peers : bool;
      (** Honor the ["us:666"] community asking us not to export to
          peers. *)
  default_provider : Asn.t option;
      (** Data-plane default route: where to send packets with no matching
          FIB entry (common in stubs; makes them "captive" behind their
          provider). *)
  local_pref_override : (Asn.t * int) list;
      (** Per-neighbor local-preference overrides, replacing the
          relationship-based default. *)
  damping : damping option;
      (** Enable RFC 2439-style route-flap damping ([None] = off, the
          default — damping deployment declined sharply after 2006, but
          enough remained in 2012 to constrain the paper's announcement
          schedule). *)
  pref_jitter : int;
      (** Deterministic per-neighbor perturbation added to the
          relationship-based local preference, in [\[0, pref_jitter\]].
          Stands in for the per-peer traffic engineering real ISPs apply
          within a relationship class; non-zero values make forward and
          reverse AS paths asymmetric, as on the real Internet. 0 (the
          default) keeps preferences purely relationship-based. Must stay
          below the 100-point class separation. *)
}

val default : config
(** Strict loop prevention, no quirks, no default route. *)

val local_pref_for : config -> self:Asn.t -> neighbor:Asn.t -> rel:Relationship.t -> int
(** The local preference assigned to a route from this neighbor,
    including the configured jitter. *)

type import_verdict = Accepted of int | Rejected of string
(** [Accepted local_pref], or a rejection with the reason (for logs and
    tests). *)

val import :
  config ->
  self:Asn.t ->
  peers_of_self:Asn.Set.t ->
  neighbor:Asn.t ->
  rel:Relationship.t ->
  Route.announcement ->
  import_verdict
(** Import policy for an announcement received from [neighbor]. Checks
    loop prevention against [loop_limit], then the Cogent quirk against
    [peers_of_self]. *)

val export_allowed :
  config ->
  self:Asn.t ->
  entry:Route.entry ->
  to_neighbor:Asn.t ->
  to_rel:Relationship.t ->
  bool
(** The per-neighbor half of {!export}: valley-free check, no-echo back to
    the learning neighbor, community blocks. Cheap — no allocation. *)

val export_ann : config -> self:Asn.t -> entry:Route.entry -> Route.announcement
(** The neighbor-independent half of {!export}: the announcement actually
    sent when {!export_allowed} holds (prepends [self] unless the entry is
    local, strips communities when configured, clears MED). Compute it
    once per prefix and reuse it for every permitted neighbor. *)

val export :
  config ->
  self:Asn.t ->
  entry:Route.entry ->
  to_neighbor:Asn.t ->
  to_rel:Relationship.t ->
  Route.announcement option
(** Export policy: Gao–Rexford valley-free export of the loc-RIB [entry]
    toward a neighbor, prepending [self], honoring NO_EXPORT and the
    no-export-to-peers community, and stripping communities when
    configured. [None] when the route must not be sent. Never exports back
    to the neighbor the route was learned from. *)
