lib/sim/engine.mli:
