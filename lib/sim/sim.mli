(** Discrete-event simulation: a single shared clock driving the BGP
    network, monitoring loops and LIFEGUARD's control loop.

    This interface pins the library surface to the event engine alone;
    any future internals stay private to the library. *)

module Engine = Engine
