lib/dataplane/probe.ml: As_graph Asn Bgp Failure Forward List Net Option Topology
