(* The domain worker pool: submission-order results, determinism across
   jobs counts, failure propagation, and lifecycle. The experiment-level
   checks render full result tables and require them byte-identical for
   jobs 1, 2 and 4 — the pool's core contract. *)

let test_default_jobs () =
  Alcotest.(check bool) "at least one worker" true (Par.Pool.default_jobs () >= 1)

(* Uneven workloads: early items are the slowest, so with several workers
   completions happen far out of submission order. *)
let spin_then_square i =
  let acc = ref 0 in
  for j = 1 to (64 - i) * 20_000 do
    acc := (!acc + j) mod 7919
  done;
  ignore !acc;
  i * i

let test_map_order () =
  let xs = List.init 64 (fun i -> i) in
  let expected = List.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "submission order at jobs=%d" jobs)
            expected
            (Par.Pool.map pool spin_then_square xs)))
    [ 1; 2; 4 ]

let test_run_trials () =
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      let thunks = List.init 10 (fun i () -> 2 * i) in
      Alcotest.(check (list int))
        "thunk results in order"
        (List.init 10 (fun i -> 2 * i))
        (Par.Pool.run_trials pool thunks);
      Alcotest.(check (list int)) "empty batch" [] (Par.Pool.run_trials pool []))

let test_exception_earliest () =
  (* Two failing trials: the one submitted first must surface, no matter
     how the workers interleave. *)
  let thunks =
    List.init 8 (fun i () ->
        if i = 2 || i = 6 then failwith (Printf.sprintf "trial-%d" i) else i)
  in
  List.iter
    (fun jobs ->
      match Par.Pool.with_pool ~jobs (fun pool -> Par.Pool.run_trials pool thunks) with
      | _ -> Alcotest.fail "expected a failure to propagate"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "earliest failure at jobs=%d" jobs)
            "trial-2" msg)
    [ 1; 4 ]

let test_pool_reuse () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "jobs recorded" 2 (Par.Pool.jobs pool);
      Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] (Par.Pool.map pool succ [ 1; 2; 3 ]);
      Alcotest.(check (list string))
        "second batch, different type" [ "1"; "2" ]
        (Par.Pool.map pool string_of_int [ 1; 2 ]);
      Alcotest.(check (list int)) "empty input" [] (Par.Pool.map pool succ []))

let test_shutdown () =
  let pool = Par.Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "works before shutdown" [ 1 ] (Par.Pool.map pool succ [ 0 ]);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* Idempotent. *)
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Par.Pool.map: pool is shut down") (fun () ->
      ignore (Par.Pool.map pool succ [ 0 ]))

(* ------------------------------------------------------------------ *)
(* Experiment-level determinism: the rendered tables — every digit —
   must not depend on the jobs count. *)

let render tables = String.concat "\n" (List.map Stats.Table.render tables)

let check_jobs_invariant name run_and_render =
  let reference = run_and_render 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s: jobs=%d matches jobs=1" name jobs)
        reference (run_and_render jobs))
    [ 2; 4 ]

let test_fig6_jobs_invariant () =
  check_jobs_invariant "fig6" (fun jobs ->
      render
        (Experiments.Fig6_convergence.to_tables
           (Experiments.Fig6_convergence.run ~ases:100 ~max_poisons:2 ~jobs ~seed:11 ())))

let test_efficacy_jobs_invariant () =
  check_jobs_invariant "efficacy" (fun jobs ->
      render
        (Experiments.Sec51_efficacy.to_tables
           (Experiments.Sec51_efficacy.run ~ases:100 ~max_poisons:3 ~jobs ~seed:11 ())))

let suite =
  [
    Alcotest.test_case "default_jobs sane" `Quick test_default_jobs;
    Alcotest.test_case "map keeps submission order" `Quick test_map_order;
    Alcotest.test_case "run_trials" `Quick test_run_trials;
    Alcotest.test_case "earliest failure wins" `Quick test_exception_earliest;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown;
    Alcotest.test_case "fig6 invariant under jobs" `Slow test_fig6_jobs_invariant;
    Alcotest.test_case "efficacy invariant under jobs" `Slow test_efficacy_jobs_invariant;
  ]
