(** Statistics toolkit for the LIFEGUARD reproduction: descriptive
    statistics, empirical CDFs (plain and mass-weighted) and plain-text
    table rendering for experiment output. *)

module Descriptive = Descriptive
module Ecdf = Ecdf
module Table = Table
