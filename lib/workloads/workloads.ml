(** Workload generation: outage datasets calibrated to the paper's EC2
    measurements and scenario builders standing in for its testbeds
    (PlanetLab mesh, BGP-Mux deployment, the §6 case study), plus the
    continuous Poisson arrival process the fleet service runs on. *)

module Outage_gen = Outage_gen
module Arrivals = Arrivals
module Scenarios = Scenarios
