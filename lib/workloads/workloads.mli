(** Workload generation: outage datasets calibrated to the paper's EC2
    measurements and scenario builders standing in for its testbeds
    (PlanetLab mesh, BGP-Mux deployment, the §6 case study). This
    interface pins the library surface to exactly these two modules. *)

module Outage_gen = Outage_gen
module Scenarios = Scenarios
