(** Policy-compliant path existence and traceroute splicing.

    Two pieces of the paper live here. First, the valley-free reachability
    check used by §5.1's large-scale poisoning simulation and by
    LIFEGUARD's "will an alternate path exist if I poison?" decision:
    {!policy_reachable} asks whether a Gao–Rexford-compliant path exists
    between two ASes while avoiding a set of ASes (the poisoned one, plus
    optionally one endpoint's provider). Second, the §2.2 splicing study:
    {!splice_around} tries to join an observed path from the source with an
    observed path to the destination at a shared hop, accepting the joint
    only when its three-AS subpath centered at the splice point was
    observed in some real path (the "three-tuple test" that stands in for
    unknown export policies). *)

open Net

val valley_free : As_graph.t -> Asn.t list -> bool
(** Whether an AS path (listed source first) obeys Gao–Rexford export
    rules given the graph's relationships: uphill (customer-to-provider)
    segments, at most one peering edge, then downhill. Unknown links make
    the path invalid. Sibling edges are neutral. *)

val policy_reachable : As_graph.t -> src:Asn.t -> dst:Asn.t -> avoiding:Asn.Set.t -> bool
(** Is there a valley-free path from [src] to [dst] that touches no AS in
    [avoiding]? Implemented as a two-phase BFS ("still allowed to go up"
    vs. "now strictly downhill"), linear in the number of links. [src] or
    [dst] being in [avoiding] yields [false]; [src = dst] yields [true]
    (when not avoided). *)

val policy_path : As_graph.t -> src:Asn.t -> dst:Asn.t -> avoiding:Asn.Set.t -> Asn.t list option
(** Like {!policy_reachable} but materializes a shortest such path
    (source first). *)

(** The three-tuple export-policy test over a corpus of observed paths. *)
module Tuples : sig
  type t

  val of_paths : Asn.t list list -> t
  (** Index every length-3 AS subpath (and the length-2 prefixes/suffixes
      at path ends) of the observed paths. *)

  val observed : t -> Asn.t -> Asn.t -> Asn.t -> bool
  (** [observed t a b c] holds when the subpath [a-b-c] (or its reverse)
      appears in some observed path. *)
end

val splice_around :
  from_src:Asn.t list list ->
  to_dst:Asn.t list list ->
  tuples:Tuples.t ->
  avoid:Asn.t ->
  dst:Asn.t ->
  Asn.t list option
(** [splice_around ~from_src ~to_dst ~tuples ~avoid ~dst] looks for a
    working path from the source built by joining a prefix of some
    observed source path with a suffix of some observed path toward [dst],
    intersecting at a shared AS hop, avoiding [avoid] entirely, reaching
    [dst], and passing the three-tuple test at the splice point. Returns
    the first (shortest splice) found, source first. *)
