(** Table 1: the paper's headline results, aggregated from the individual
    experiments. One row per claim, paper value vs. measured value. *)

type result = {
  efficacy : Sec51_efficacy.result;
  convergence : Fig6_convergence.result;
  loss : Sec52_loss.result;
  selective : Sec52_selective.result;
  accuracy : Sec53_accuracy.result;
  scalability : Sec54_scalability.result;
}

let of_parts ~efficacy ~convergence ~loss ~selective ~accuracy ~scalability =
  { efficacy; convergence; loss; selective; accuracy; scalability }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Table 1: key LIFEGUARD results (paper vs measured)"
      ~columns:[ "criteria"; "summary"; "paper"; "measured" ]
  in
  let prepend_nc =
    List.find (fun s -> s.Fig6_convergence.label = "Prepend, no change")
      r.convergence.Fig6_convergence.series
  in
  Stats.Table.add_rows t
    [
      [
        "Effectiveness";
        "peers find routes avoiding poisoned ASes";
        "77% live / 90% simulated";
        Printf.sprintf "%s live / %s simulated"
          (Stats.Table.cell_pct r.efficacy.Sec51_efficacy.fraction_rerouted)
          (Stats.Table.cell_pct r.efficacy.Sec51_efficacy.fraction_sim);
      ];
      [
        "Disruptiveness";
        "unaffected routes reconverge instantly";
        "95% instant";
        Stats.Table.cell_pct prepend_nc.Fig6_convergence.instant;
      ];
      [
        "Disruptiveness";
        "minimal loss during convergence";
        "<2% loss in 98% of cases";
        Printf.sprintf "<2%% loss in %s of cases"
          (Stats.Table.cell_pct r.loss.Sec52_loss.fraction_under_2pct);
      ];
      [
        "Disruptiveness";
        "selective poisoning avoids first-hop links";
        "73%";
        Stats.Table.cell_pct r.selective.Sec52_selective.fraction_reverse;
      ];
      [
        "Accuracy";
        "isolation consistent with ground truth";
        "93% (169/182)";
        Stats.Table.cell_pct r.accuracy.Sec53_accuracy.fraction_consistent;
      ];
      [
        "Accuracy";
        "differs from traceroute-only diagnosis";
        "40%";
        Stats.Table.cell_pct r.accuracy.Sec53_accuracy.fraction_traceroute_differs;
      ];
      [
        "Scalability";
        "isolation latency / probes per outage";
        "140 s / ~280 probes";
        Printf.sprintf "%.0f s / %.0f probes"
          r.scalability.Sec54_scalability.isolation_elapsed_mean
          r.scalability.Sec54_scalability.isolation_probes_mean;
      ];
    ];
  [ t ]
