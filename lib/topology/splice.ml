open Net

(* Valley-free check: walk the path tracking whether we are still allowed
   to go "up" (customer->provider) or sideways (one peer edge), after which
   only "down" (provider->customer) edges are legal. *)
let valley_free graph path =
  let rec go can_go_up = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> begin
        match As_graph.relationship graph ~a ~b with
        | None -> false
        | Some rel -> begin
            match rel with
            | Relationship.Provider -> can_go_up && go true rest
            | Relationship.Peer -> can_go_up && go false rest
            | Relationship.Customer -> go false rest
            | Relationship.Sibling -> go can_go_up rest
          end
      end
  in
  go true path

(* Two-phase BFS. State = (asn, phase) where phase Up means we may still
   traverse provider/peer edges; Down means only customer edges remain.
   Predecessors are recorded to materialize paths. *)
type phase = Up | Down

let search graph ~src ~dst ~avoiding =
  if Asn.Set.mem src avoiding || Asn.Set.mem dst avoiding then None
  else if Asn.equal src dst then Some [ src ]
  else begin
    let key asn phase = (Asn.to_int asn * 2) + match phase with Up -> 0 | Down -> 1 in
    let visited = Hashtbl.create 1024 in
    let queue = Queue.create () in
    let pred = Hashtbl.create 1024 in
    Hashtbl.replace visited (key src Up) ();
    Queue.push (src, Up) queue;
    let found = ref None in
    let visit (asn, phase) (next, next_phase) =
      let k = key next next_phase in
      if (not (Hashtbl.mem visited k)) && not (Asn.Set.mem next avoiding) then begin
        Hashtbl.replace visited k ();
        Hashtbl.replace pred k (asn, phase);
        if Asn.equal next dst then found := Some (next, next_phase)
        else Queue.push (next, next_phase) queue
      end
    in
    while Option.is_none !found && not (Queue.is_empty queue) do
      let ((asn, phase) as state) = Queue.pop queue in
      let step (next, rel) =
        match (phase, (rel : Relationship.t)) with
        | Up, Provider -> visit state (next, Up)
        | Up, Peer -> visit state (next, Down)
        | _, Customer -> visit state (next, Down)
        | _, Sibling -> visit state (next, phase)
        | Down, (Provider | Peer) -> ()
      in
      List.iter step (As_graph.neighbors graph asn)
    done;
    match !found with
    | None -> None
    | Some (asn, phase) ->
        let rec unwind acc (asn, phase) =
          if Asn.equal asn src && phase = Up then src :: acc
          else begin
            match Hashtbl.find_opt pred (key asn phase) with
            | Some prev -> unwind (asn :: acc) prev
            | None -> asn :: acc
          end
        in
        Some (unwind [] (asn, phase))
  end

let policy_path graph ~src ~dst ~avoiding = search graph ~src ~dst ~avoiding
let policy_reachable graph ~src ~dst ~avoiding =
  Option.is_some (search graph ~src ~dst ~avoiding)

module Tuples = struct
  (* Keys are (a,b,c) triples of raw ASN ints, stored in both orientations
     so that reverse traversals also count as observed. *)
  module Triple_tbl = Hashtbl.Make (struct
    type t = int * int * int

    let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2

    let hash (a, b, c) =
      ((((a * 0x9E3779B1) lxor b) * 0x85EBCA77) lxor c) land max_int
  end)

  type t = unit Triple_tbl.t

  let wildcard = -1

  let add t a b c =
    Triple_tbl.replace t (a, b, c) ();
    Triple_tbl.replace t (c, b, a) ()

  let of_paths paths =
    let t = Triple_tbl.create 4096 in
    let add_path path =
      let arr = Array.of_list (List.map Asn.to_int path) in
      let n = Array.length arr in
      for i = 0 to n - 3 do
        add t arr.(i) arr.(i + 1) arr.(i + 2)
      done;
      (* Path-end pairs: an AS at the end of an observed path has been seen
         exporting to/importing from its neighbor, recorded with a
         wildcard third element. *)
      if n >= 2 then begin
        add t wildcard arr.(0) arr.(1);
        add t arr.(n - 2) arr.(n - 1) wildcard
      end
    in
    List.iter add_path paths;
    t

  let observed t a b c =
    let a = Asn.to_int a and b = Asn.to_int b and c = Asn.to_int c in
    Triple_tbl.mem t (a, b, c)
    || Triple_tbl.mem t (wildcard, b, c)
    || Triple_tbl.mem t (a, b, wildcard)
end

let splice_around ~from_src ~to_dst ~tuples ~avoid ~dst =
  (* Index positions of each AS in the destination-bound paths. *)
  let suffix_at path asn =
    let rec go = function
      | [] -> None
      | hd :: _ as rest when Asn.equal hd asn -> Some rest
      | _ :: rest -> go rest
    in
    go path
  in
  let path_avoids path = not (List.exists (Asn.equal avoid) path) in
  let try_pair src_path dst_path =
    (* Walk the source path hop by hop; at each hop, attempt to continue
       along the destination-bound path from that hop. *)
    let rec go prefix_rev before = function
      | [] -> None
      | hop :: rest -> begin
          let candidate =
            if Asn.equal hop avoid then None
            else begin
              match suffix_at dst_path hop with
              | None -> None
              | Some suffix -> begin
                  let joined = List.rev_append prefix_rev suffix in
                  if (not (path_avoids joined)) || not (List.exists (Asn.equal dst) suffix)
                  then None
                  else begin
                    (* Three-tuple check at the splice point: the subpath
                       (before, hop, after) must have been observed. *)
                    let after =
                      match suffix with
                      | _ :: next :: _ -> Some next
                      | _ -> None
                    in
                    match (before, after) with
                    | Some b, Some a ->
                        if Asn.equal b a || Tuples.observed tuples b hop a then Some joined
                        else None
                    | _ -> Some joined
                  end
                end
            end
          in
          match candidate with
          | Some _ as found -> found
          | None ->
              if Asn.equal hop avoid then None
              else go (hop :: prefix_rev) (Some hop) rest
        end
    in
    go [] None src_path
  in
  let rec first_some f = function
    | [] -> None
    | x :: rest -> begin
        match f x with
        | Some _ as found -> found
        | None -> first_some f rest
      end
  in
  first_some (fun sp -> first_some (fun dp -> try_pair sp dp) to_dst) from_src
