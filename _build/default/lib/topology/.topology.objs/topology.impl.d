lib/topology/topology.ml: As_graph Relationship Splice Topo_gen
