(** Deterministic time-barrier scheduler for domain-partitioned worlds.

    A sharded world splits its state over [shards] independent
    {!Sim.Engine} event queues that may run concurrently on {!Par.Pool}
    domains, synchronising at {e time barriers}: windows of simulated
    time no wider than the [lookahead] (the minimum cross-shard message
    latency). Within a window the shards are causally independent — any
    message emitted inside the window arrives at or after the window's
    end — so the windows can execute in parallel and still replay
    identically at any shard count.

    The barrier owns the cross-window message flow:

    + {b sweep} — drain every shard's outbox of messages emitted since
      the previous barrier;
    + {b order} — merge them into the backlog in the canonical order
      [(arrival time, src, dst, payload)] supplied by the embedder's
      [order] hook, with a stable sort so equal keys keep their
      per-source emission order;
    + {b inject} — hand each message whose arrival falls inside the next
      window back to the embedder (which schedules it on the destination
      shard's engine, re-interning any shared values on shard entry);
    + {b advance} — run every shard engine up to the window end
      ({!Sim.Engine.run_before}), in parallel when a pool is installed,
      inline otherwise — with identical results either way.

    Windows are {e adaptive}: the next window starts at the earliest
    pending work (shard event or backlog arrival) rather than on a fixed
    grid, so an idle expanse of simulated time costs one barrier, not
    [expanse / lookahead] of them. The barrier drives itself as an event
    on the [control] engine (the {e pump}), so existing
    [Sim.Engine.run]-based call sites need no new driver loop; it never
    advances the shards past the control engine's next pending event, so
    control-plane code always observes shard state no further along than
    its own clock.

    Observability: each barrier records into [shard.barriers] (counter),
    [shard.cut_msgs] / [shard.local_msgs] (messages swept whose source
    and destination shard differ / coincide) and [shard.barrier_wait]
    (histogram of the simulated-time width of each window — the
    virtual-time slack a lagging shard would have to wait out at the
    barrier). All are deterministic, simulation-derived quantities, so
    enabling metrics keeps tables byte-identical at any [--shards] and
    [--jobs] value. *)

type 'msg hooks = {
  next_work : int -> float option;
      (** Earliest pending local event of a shard; [None] when idle. *)
  advance : int -> before:float -> unit;
      (** Run one shard's events strictly before the barrier time and
          leave its clock there ({!Sim.Engine.run_before}). May be
          called from a pool domain; must touch only that shard's
          state. *)
  drain : int -> 'msg list;
      (** Take (and clear) a shard's outbox, in emission order. Called
          from the control domain while shards are quiescent. *)
  inject : 'msg -> unit;
      (** Schedule one due message on its destination shard's engine.
          Called from the control domain, in canonical order. *)
  arrival : 'msg -> float;  (** Simulated delivery time. *)
  src_shard : 'msg -> int;
  dst_shard : 'msg -> int;
  order : 'msg -> 'msg -> int;
      (** Canonical tiebreak among messages with equal arrival times,
          e.g. [(src_asn, dst_asn, prefix)]. Sorting is stable, so
          returning 0 preserves per-source emission order. *)
}

type 'msg t

val create :
  control:Sim.Engine.t -> lookahead:float -> shards:int -> ?record_history:bool ->
  'msg hooks -> 'msg t
(** A barrier over [shards] shard engines, pumped from [control].
    [lookahead] must be positive and no larger than the minimum
    cross-shard message latency; the caller is responsible for that
    bound. With [record_history] (tests only) every barrier appends a
    [(window start, injected, cut)] row to {!history}. The pump starts
    dormant: call {!poke} once work exists. *)

val poke : 'msg t -> unit
(** Arm the pump (an event on the control engine at the current control
    time) unless it is already armed. Call after any control-plane
    action that created shard work — an emitted message, a scheduled
    shard event — so a dormant barrier wakes up. Idempotent. *)

val sync_all : 'msg t -> now:float -> unit
(** Run the barrier loop inline (windows, exchanges, injections) until
    the frontier reaches [now], leaving every shard's clock there. The
    window sequence is exactly what the pump would have produced, so
    calling this eagerly — before a control-plane read or write at
    control time [now] — changes freshness, never results. No-op when
    the frontier is already at or past [now]. *)

val frontier : 'msg t -> float
(** The time every shard has been advanced to: all events strictly
    before it have run, none at or after it. *)

val backlog : 'msg t -> int
(** Messages swept but not yet injected (in flight across windows). *)

val barriers : 'msg t -> int
(** Barriers executed so far (windows with work; frontier-only hops at
    idle times are not counted). *)

val cut_messages : 'msg t -> int
(** Messages swept whose source and destination shards differ. *)

val history : 'msg t -> (float * int * int) list
(** With [record_history]: per-barrier [(window start, messages
    injected, cut messages injected)] rows, oldest first. Empty
    otherwise. *)

val set_pool : 'msg t -> Par.Pool.t option -> unit
(** Install (or remove, with [None]) the worker pool the [advance] fan
    -out runs on. Without a pool shards advance inline on the control
    domain — byte-identical results, no parallelism. The caller owns
    the pool's lifecycle and must keep it alive while installed. *)
