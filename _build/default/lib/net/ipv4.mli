(** IPv4 addresses.

    Addresses identify routers and probe sources/destinations in the data
    plane. Stored as a raw 32-bit quantity; all arithmetic treats it as
    unsigned. *)

type t
(** An IPv4 address. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d]; each octet must be in
    [\[0, 255\]]. *)

val of_string : string -> t option
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t
(** Like {!of_string}, raising [Invalid_argument] on a malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val compare : t -> t -> int
(** Unsigned comparison, so ["10.0.0.1" < "192.0.2.1" < "224.0.0.1"]. *)

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add t n] offsets the address by [n] (unsigned wraparound). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
