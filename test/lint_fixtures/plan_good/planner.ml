(* A planner that IS a pure function of the world: every input arrives
   as an argument, nothing mutable or ambient is touched. LG-PLAN-STALE
   must stay silent. *)

let remedy_for ~avoid target = (target, avoid, "poison")

let build ~targets ~avoid = List.map (remedy_for ~avoid) targets

let feasible ~reachable ~avoid target = reachable target && avoid <> target
