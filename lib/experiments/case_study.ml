(** §6 case study: repairing the Taiwan <-> Wisconsin outage end to end.

    A LIFEGUARD origin announces production + sentinel prefixes via its
    Wisconsin provider and monitors a Taiwanese site. At 8:15pm the
    site's reverse path — which runs through UUNET — silently dies:
    UUNET keeps announcing routes but drops packets toward the origin.
    LIFEGUARD detects the outage within minutes, isolates a reverse-path
    failure in UUNET using spoofed probes and its path atlas, poisons
    UUNET, and connectivity returns over the academic path. Hours later
    UUNET recovers; sentinel probes notice, and LIFEGUARD reverts to the
    unpoisoned baseline. *)

open Net
open Workloads

type phase_check = {
  label : string;
  time : float;
  reachable : bool;  (** Taiwan -> production delivery at that instant. *)
  via : Asn.t list;  (** Taiwan's AS path toward the production prefix. *)
}

type result = {
  events : (float * Lifeguard.Orchestrator.event) list;
  checks : phase_check list;
  diagnosis_blames_uunet : bool;
  repaired : bool;  (** Poisoning restored Taiwan's connectivity. *)
  unpoisoned_after_repair : bool;
  detection_to_repair : float option;  (** Seconds from outage detection to working path. *)
}

let taiwan_route cs =
  let open Scenarios.Case_study in
  match
    Bgp.Network.best_route cs.bed.Scenarios.net cs.taiwan Scenarios.production_prefix
  with
  | Some entry -> Bgp.As_path.to_list entry.Bgp.Route.ann.Bgp.Route.path
  | None -> []

let check cs label =
  let open Scenarios.Case_study in
  let bed = cs.bed in
  let production_address = Prefix.nth_address Scenarios.production_prefix 1 in
  {
    label;
    time = Sim.Engine.now bed.Scenarios.engine;
    reachable =
      Dataplane.Forward.delivers bed.Scenarios.net bed.Scenarios.failures ~src:cs.taiwan
        ~dst:production_address;
    via = taiwan_route cs;
  }

let run () =
  let cs = Scenarios.Case_study.build () in
  let open Scenarios.Case_study in
  let bed = cs.bed in
  let engine = bed.Scenarios.engine in
  let net = bed.Scenarios.net in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let orchestrator =
    Lifeguard.Orchestrator.create
      ~config:
        {
          Lifeguard.Orchestrator.default_config with
          Lifeguard.Orchestrator.decide =
            { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 240.0 };
        }
      ~env:bed.Scenarios.probe ~atlas ~responsiveness ~plan:cs.plan
      ~vantage_points:bed.Scenarios.vantage_points ()
  in
  Bgp.Network.run_until_quiet net;
  Lifeguard.Orchestrator.watch orchestrator ~targets:[ cs.taiwan ];
  (* Let a month... a while of quiet monitoring pass, then break UUNET at
     "8:15pm". *)
  Sim.Engine.run ~until:1800.0 engine;
  let checks = ref [ check cs "before failure" ] in
  let record c = checks := !checks @ [ c ] in
  let failure = uunet_failure cs in
  Dataplane.Failure.inject net bed.Scenarios.failures failure;
  record (check cs "failure injected");
  (* Detection (4 x 30 s) + isolation + decision gate + convergence. *)
  Sim.Engine.run ~until:3600.0 engine;
  let repaired_check = check cs "after LIFEGUARD reacts" in
  record repaired_check;
  (* UUNET fixes itself hours later. *)
  Sim.Engine.run ~until:(1800.0 +. (6.0 *. 3600.0)) engine;
  Dataplane.Failure.heal net bed.Scenarios.failures failure;
  Sim.Engine.run ~until:(1800.0 +. (8.0 *. 3600.0)) engine;
  record (check cs "after repair + unpoison");
  let events = Lifeguard.Orchestrator.events orchestrator in
  let diagnosis_blames_uunet =
    List.exists
      (fun (_, e) ->
        match e with
        | Lifeguard.Orchestrator.Diagnosed d -> (
            match Lifeguard.Isolation.blamed_as d.Lifeguard.Isolation.blame with
            | Some blamed -> Asn.equal blamed cs.uunet
            | None -> false)
        | _ -> false)
      events
  in
  let poison_time =
    List.find_map
      (fun (t, e) ->
        match e with
        | Lifeguard.Orchestrator.Poison_announced _ -> Some t
        | _ -> None)
      events
  in
  let detect_time =
    List.find_map
      (fun (t, e) ->
        match e with
        | Lifeguard.Orchestrator.Outage_detected _ -> Some t
        | _ -> None)
      events
  in
  let unpoisoned =
    List.exists
      (fun (_, e) -> e = Lifeguard.Orchestrator.Unpoisoned)
      events
  in
  {
    events;
    checks = !checks;
    diagnosis_blames_uunet;
    repaired = repaired_check.reachable;
    unpoisoned_after_repair = unpoisoned;
    detection_to_repair =
      (match (detect_time, poison_time) with
      | Some d, Some p -> Some (p -. d)
      | _ -> None);
  }

let to_tables r =
  let timeline =
    Stats.Table.create ~title:"Sec 6 case study timeline" ~columns:[ "t (s)"; "event" ]
  in
  List.iter
    (fun (t, e) ->
      Stats.Table.add_row timeline
        [
          Stats.Table.cell_float ~decimals:0 t;
          Format.asprintf "%a" Lifeguard.Orchestrator.pp_event e;
        ])
    r.events;
  let checks =
    Stats.Table.create ~title:"Sec 6 connectivity checks"
      ~columns:[ "t (s)"; "phase"; "taiwan -> production"; "via AS path" ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row checks
        [
          Stats.Table.cell_float ~decimals:0 c.time;
          c.label;
          (if c.reachable then "delivered" else "FAILED");
          String.concat " "
            (List.map (fun a -> string_of_int (Net.Asn.to_int a)) c.via);
        ])
    r.checks;
  let verdict =
    Stats.Table.create ~title:"Sec 6 verdict (paper vs measured)"
      ~columns:[ "claim"; "paper"; "measured" ]
  in
  Stats.Table.add_rows verdict
    [
      [
        "reverse failure isolated to UUNET";
        "yes";
        (if r.diagnosis_blames_uunet then "yes" else "NO");
      ];
      [ "poisoning restored connectivity"; "yes"; (if r.repaired then "yes" else "NO") ];
      [
        "sentinel detected repair; unpoisoned";
        "yes (8h later)";
        (if r.unpoisoned_after_repair then "yes" else "NO");
      ];
      [
        "detection -> repair (s)";
        "minutes";
        (match r.detection_to_repair with
        | Some s -> Stats.Table.cell_float ~decimals:0 s
        | None -> "-");
      ];
    ];
  [ timeline; checks; verdict ]
