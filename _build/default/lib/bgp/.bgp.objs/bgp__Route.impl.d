lib/bgp/route.ml: As_path Asn Community Format Int List Net Option Prefix Relationship Topology
