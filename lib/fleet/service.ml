open Net
open Workloads

(* Fleet observability: per-run totals recorded at teardown so a trial
   world's whole story lands in one snapshot (merged across domains by
   Obs when trials run in parallel). *)
let m_injected = Obs.Metrics.counter "fleet.outages.injected"
let m_detected = Obs.Metrics.counter "fleet.outages.detected"
let m_repaired = Obs.Metrics.counter "fleet.repaired"
let m_stood_down = Obs.Metrics.counter "fleet.stood_down"
let m_gave_up = Obs.Metrics.counter "fleet.gave_up"
let m_poisons = Obs.Metrics.counter "fleet.poisons"
let m_unpoisons = Obs.Metrics.counter "fleet.unpoisons"
let m_monitor_pairs = Obs.Metrics.counter "fleet.monitor.pairs"
let m_monitor_skipped = Obs.Metrics.counter "fleet.monitor.skipped"
let m_budget_denied = Obs.Metrics.counter "fleet.budget.denied"
let m_isolation_retries = Obs.Metrics.counter "fleet.isolation.retries"
let m_vp_crashes = Obs.Metrics.counter "fleet.chaos.vp_crashes"
let m_reannounced = Obs.Metrics.counter "fleet.watchdog.reannounced"
let m_rolled_back = Obs.Metrics.counter "fleet.watchdog.rolled_back"
let m_breaker_trips = Obs.Metrics.counter "fleet.watchdog.breaker_trips"
let m_session_flaps = Obs.Metrics.counter "fleet.faults.session_flaps"
let m_router_crashes = Obs.Metrics.counter "fleet.faults.router_crashes"
let m_plan_hits = Obs.Metrics.counter "fleet.plan.hits"
let m_plan_misses = Obs.Metrics.counter "fleet.plan.misses"
let m_plan_invalidations = Obs.Metrics.counter "fleet.plan.invalidations"
let m_plan_demotions = Obs.Metrics.counter "fleet.plan.demotions"

type config = {
  ases : int;
  target_count : int;
  duration : float;
  outages_per_day : float;
  monitor_interval : float;
  atlas_refresh_interval : float;
  probe_rate : float;
  probe_burst : float;
  per_vp_rate : float;
  per_vp_burst : float;
  isolation_cost : int;
  announce_spacing : float;
  min_outage_age : float;
  recheck_interval : float;
  retry : Retry.policy;
  chaos : Chaos.config;
  faults : Bgp.Faults.config;
  planning : bool;
      (** Precompute remediation plans offline and consult the plan cache
          before every fresh decision (default false: the legacy
          compute-every-time pipeline, byte-identical to before the knob
          existed). *)
  decision_latency : float;
      (** Modeled cost of a fresh decision (simulated seconds); plan hits
          skip it. Default 0. *)
  shards : int option;
      (** [Some k]: run the world sharded over [k] domains with barrier
          exchange (see [Shard.Barrier]); results are byte-identical at
          any [k]. [None] (default): the legacy single-queue engine. *)
}

let default_config =
  {
    ases = 150;
    target_count = 25;
    duration = 86400.0;
    outages_per_day = 12.0;
    monitor_interval = 30.0;
    atlas_refresh_interval = 3600.0;
    probe_rate = 8.0;
    probe_burst = 400.0;
    per_vp_rate = infinity;
    per_vp_burst = infinity;
    isolation_cost = 35;
    announce_spacing = 5400.0;
    min_outage_age = 300.0;
    recheck_interval = 120.0;
    retry = Retry.default;
    chaos = Chaos.none;
    faults = Bgp.Faults.none;
    planning = false;
    decision_latency = 0.0;
    shards = None;
  }

type report = {
  days : float;
  injected : int;
  drawn : int;
  unplaceable : int;
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  unfinished : int;
  poisons : int;
  unpoisons : int;
  time_to_repair : float list;
  time_to_confirm : float list;
  monitor_pairs : int;
  monitor_skipped : int;
  probes_sent : int;
  budget_granted : int;
  budget_denied : int;
  isolation_retries : int;
  vp_crashes : int;
  lost_probes : int;
  stale_refreshes : int;
  collector_updates : int;
  injected_ge15 : int;
  injected_h15 : float;
  measured_updates_per_day : float;
  predicted_updates_per_day : float;
  reannounced : int;
  rolled_back : int;
  breaker_trips : int;
  session_flaps : int;
  link_failures : int;
  router_crashes : int;
  updates_dropped : int;
  updates_duplicated : int;
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_demotions : int;
}

(* Predicted daily update load, per the paper's Table 2 model with i = t
   = 1 (this deployment handles every outage it detects, toward every
   target): the anchor is the run's own injected rate of outages >= 15
   min scaled to the poisonable-direction share (Hubble's H counts
   poisonable outages only), d is the age an outage must actually reach
   before the poison goes out — the decision gate plus the detection lag
   — and each remediated outage costs two announcements (poison +
   unpoison). *)
let predict_updates_per_day ~seed ~h15 ~min_outage_age ~monitor_interval =
  if h15 <= 0.0 then 0.0
  else begin
    let durations = Outage_gen.durations ~seed:(seed + 77) ~n:4096 () in
    let poisonable_direction_share = 0.6 (* 40% reverse + 20% bidirectional *) in
    let params =
      {
        Lifeguard.Load_model.h15_per_day = h15 *. poisonable_direction_share;
        ih = 1.0;
        th = 1.0;
        updates_per_poison = 2.0;
      }
    in
    let detection_lag = 4.0 *. monitor_interval (* the monitor's threshold crossing *) in
    Lifeguard.Load_model.daily_path_changes params ~durations ~i:1.0 ~t:1.0
      ~d_minutes:((min_outage_age +. detection_lag) /. 60.0)
  end

(* FNV-1a over a canonical rendering of every config knob plus the seed:
   the resume guard. A snapshot taken under one (config, seed) must never
   be verified against a run under another — replay would diverge in
   confusing ways; the fingerprint turns that into an immediate error. *)
let config_fingerprint ~config ~seed =
  let b = Buffer.create 512 in
  let f x = Buffer.add_string b (Printf.sprintf "%h;" x) in
  let i x = Buffer.add_string b (string_of_int x ^ ";") in
  i seed;
  i config.ases;
  i config.target_count;
  f config.duration;
  f config.outages_per_day;
  f config.monitor_interval;
  f config.atlas_refresh_interval;
  f config.probe_rate;
  f config.probe_burst;
  f config.per_vp_rate;
  f config.per_vp_burst;
  i config.isolation_cost;
  f config.announce_spacing;
  f config.min_outage_age;
  f config.recheck_interval;
  i config.retry.Retry.max_attempts;
  f config.retry.Retry.base_delay;
  f config.retry.Retry.multiplier;
  f config.retry.Retry.max_delay;
  f config.chaos.Chaos.probe_loss;
  f config.chaos.Chaos.vp_mtbf;
  f config.chaos.Chaos.vp_mttr;
  f config.chaos.Chaos.atlas_staleness;
  f config.faults.Bgp.Faults.session_flap_mtbf;
  f config.faults.Bgp.Faults.session_flap_downtime;
  f config.faults.Bgp.Faults.link_mtbf;
  f config.faults.Bgp.Faults.link_mttr;
  f config.faults.Bgp.Faults.router_mtbf;
  f config.faults.Bgp.Faults.router_mttr;
  f config.faults.Bgp.Faults.update_loss;
  f config.faults.Bgp.Faults.update_dup;
  Buffer.add_string b (if config.planning then "planning;" else "fresh;");
  f config.decision_latency;
  i (match config.shards with None -> 0 | Some k -> k);
  (* FNV-1a offset basis truncated to OCaml's 63-bit int. *)
  let h = ref 0xbf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    (Buffer.contents b);
  Printf.sprintf "%016x" (!h land max_int)

(* Byte-stable report codec: one [key value] line per field, floats as
   hex floats, lists comma-joined. This is what a snapshot's head-segment
   report is stored as, and what the crash tests compare byte-for-byte. *)
let render_report r =
  let fl = Printf.sprintf "%h" in
  let fll xs = match xs with [] -> "-" | _ -> String.concat "," (List.map fl xs) in
  [
    "days " ^ fl r.days;
    "injected " ^ string_of_int r.injected;
    "drawn " ^ string_of_int r.drawn;
    "unplaceable " ^ string_of_int r.unplaceable;
    "detected " ^ string_of_int r.detected;
    "repaired " ^ string_of_int r.repaired;
    "stood_down " ^ string_of_int r.stood_down;
    "gave_up " ^ string_of_int r.gave_up;
    "unfinished " ^ string_of_int r.unfinished;
    "poisons " ^ string_of_int r.poisons;
    "unpoisons " ^ string_of_int r.unpoisons;
    "time_to_repair " ^ fll r.time_to_repair;
    "time_to_confirm " ^ fll r.time_to_confirm;
    "monitor_pairs " ^ string_of_int r.monitor_pairs;
    "monitor_skipped " ^ string_of_int r.monitor_skipped;
    "probes_sent " ^ string_of_int r.probes_sent;
    "budget_granted " ^ string_of_int r.budget_granted;
    "budget_denied " ^ string_of_int r.budget_denied;
    "isolation_retries " ^ string_of_int r.isolation_retries;
    "vp_crashes " ^ string_of_int r.vp_crashes;
    "lost_probes " ^ string_of_int r.lost_probes;
    "stale_refreshes " ^ string_of_int r.stale_refreshes;
    "collector_updates " ^ string_of_int r.collector_updates;
    "injected_ge15 " ^ string_of_int r.injected_ge15;
    "injected_h15 " ^ fl r.injected_h15;
    "measured_updates_per_day " ^ fl r.measured_updates_per_day;
    "predicted_updates_per_day " ^ fl r.predicted_updates_per_day;
    "reannounced " ^ string_of_int r.reannounced;
    "rolled_back " ^ string_of_int r.rolled_back;
    "breaker_trips " ^ string_of_int r.breaker_trips;
    "session_flaps " ^ string_of_int r.session_flaps;
    "link_failures " ^ string_of_int r.link_failures;
    "router_crashes " ^ string_of_int r.router_crashes;
    "updates_dropped " ^ string_of_int r.updates_dropped;
    "updates_duplicated " ^ string_of_int r.updates_duplicated;
    "plan_hits " ^ string_of_int r.plan_hits;
    "plan_misses " ^ string_of_int r.plan_misses;
    "plan_invalidations " ^ string_of_int r.plan_invalidations;
    "plan_demotions " ^ string_of_int r.plan_demotions;
  ]

let parse_report lines =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | Some i ->
          Hashtbl.replace tbl
            (String.sub line 0 i)
            (String.sub line (i + 1) (String.length line - i - 1))
      | None -> ())
    lines;
  let ( let* ) = Option.bind in
  let int k = Option.bind (Hashtbl.find_opt tbl k) int_of_string_opt in
  let flt k = Option.bind (Hashtbl.find_opt tbl k) float_of_string_opt in
  let fll k =
    let* raw = Hashtbl.find_opt tbl k in
    if String.equal raw "-" then Some []
    else
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* x = float_of_string_opt part in
          Some (x :: acc))
        (Some [])
        (String.split_on_char ',' raw)
      |> Option.map List.rev
  in
  let* days = flt "days" in
  let* injected = int "injected" in
  let* drawn = int "drawn" in
  let* unplaceable = int "unplaceable" in
  let* detected = int "detected" in
  let* repaired = int "repaired" in
  let* stood_down = int "stood_down" in
  let* gave_up = int "gave_up" in
  let* unfinished = int "unfinished" in
  let* poisons = int "poisons" in
  let* unpoisons = int "unpoisons" in
  let* time_to_repair = fll "time_to_repair" in
  let* time_to_confirm = fll "time_to_confirm" in
  let* monitor_pairs = int "monitor_pairs" in
  let* monitor_skipped = int "monitor_skipped" in
  let* probes_sent = int "probes_sent" in
  let* budget_granted = int "budget_granted" in
  let* budget_denied = int "budget_denied" in
  let* isolation_retries = int "isolation_retries" in
  let* vp_crashes = int "vp_crashes" in
  let* lost_probes = int "lost_probes" in
  let* stale_refreshes = int "stale_refreshes" in
  let* collector_updates = int "collector_updates" in
  let* injected_ge15 = int "injected_ge15" in
  let* injected_h15 = flt "injected_h15" in
  let* measured_updates_per_day = flt "measured_updates_per_day" in
  let* predicted_updates_per_day = flt "predicted_updates_per_day" in
  let* reannounced = int "reannounced" in
  let* rolled_back = int "rolled_back" in
  let* breaker_trips = int "breaker_trips" in
  let* session_flaps = int "session_flaps" in
  let* link_failures = int "link_failures" in
  let* router_crashes = int "router_crashes" in
  let* updates_dropped = int "updates_dropped" in
  let* updates_duplicated = int "updates_duplicated" in
  let* plan_hits = int "plan_hits" in
  let* plan_misses = int "plan_misses" in
  let* plan_invalidations = int "plan_invalidations" in
  let* plan_demotions = int "plan_demotions" in
  Some
    {
      days;
      injected;
      drawn;
      unplaceable;
      detected;
      repaired;
      stood_down;
      gave_up;
      unfinished;
      poisons;
      unpoisons;
      time_to_repair;
      time_to_confirm;
      monitor_pairs;
      monitor_skipped;
      probes_sent;
      budget_granted;
      budget_denied;
      isolation_retries;
      vp_crashes;
      lost_probes;
      stale_refreshes;
      collector_updates;
      injected_ge15;
      injected_h15;
      measured_updates_per_day;
      predicted_updates_per_day;
      reannounced;
      rolled_back;
      breaker_trips;
      session_flaps;
      link_failures;
      router_crashes;
      updates_dropped;
      updates_duplicated;
      plan_hits;
      plan_misses;
      plan_invalidations;
      plan_demotions;
    }

(* Segment-report merge: counters and lists form a monoid (sums and
   concatenation); point-in-time fields take the right operand (the later
   segment's horizon view); derived rates are recomputed from the merged
   raw sums — never averaged — so merge is associative and
   [merge head tail] of a split run reproduces the uninterrupted report
   byte-for-byte when the window boundaries are exact binary fractions
   of a day. *)
let merge ~seed ~config a b =
  let days = a.days +. b.days in
  let poisons = a.poisons + b.poisons in
  let unpoisons = a.unpoisons + b.unpoisons in
  let injected_ge15 = a.injected_ge15 + b.injected_ge15 in
  let injected_h15 =
    if days <= 0.0 then 0.0 else float_of_int injected_ge15 /. days
  in
  {
    days;
    injected = a.injected + b.injected;
    drawn = a.drawn + b.drawn;
    unplaceable = a.unplaceable + b.unplaceable;
    detected = a.detected + b.detected;
    repaired = a.repaired + b.repaired;
    stood_down = a.stood_down + b.stood_down;
    gave_up = a.gave_up + b.gave_up;
    unfinished = b.unfinished;
    poisons;
    unpoisons;
    time_to_repair = a.time_to_repair @ b.time_to_repair;
    time_to_confirm = a.time_to_confirm @ b.time_to_confirm;
    monitor_pairs = a.monitor_pairs + b.monitor_pairs;
    monitor_skipped = a.monitor_skipped + b.monitor_skipped;
    probes_sent = a.probes_sent + b.probes_sent;
    budget_granted = a.budget_granted + b.budget_granted;
    budget_denied = a.budget_denied + b.budget_denied;
    isolation_retries = a.isolation_retries + b.isolation_retries;
    vp_crashes = a.vp_crashes + b.vp_crashes;
    lost_probes = a.lost_probes + b.lost_probes;
    stale_refreshes = a.stale_refreshes + b.stale_refreshes;
    collector_updates = a.collector_updates + b.collector_updates;
    injected_ge15;
    injected_h15;
    measured_updates_per_day =
      (if days <= 0.0 then 0.0 else float_of_int (poisons + unpoisons) /. days);
    predicted_updates_per_day =
      predict_updates_per_day ~seed ~h15:injected_h15
        ~min_outage_age:config.min_outage_age ~monitor_interval:config.monitor_interval;
    reannounced = a.reannounced + b.reannounced;
    rolled_back = a.rolled_back + b.rolled_back;
    breaker_trips = a.breaker_trips + b.breaker_trips;
    session_flaps = a.session_flaps + b.session_flaps;
    link_failures = a.link_failures + b.link_failures;
    router_crashes = a.router_crashes + b.router_crashes;
    updates_dropped = a.updates_dropped + b.updates_dropped;
    updates_duplicated = a.updates_duplicated + b.updates_duplicated;
    plan_hits = a.plan_hits + b.plan_hits;
    plan_misses = a.plan_misses + b.plan_misses;
    plan_invalidations = a.plan_invalidations + b.plan_invalidations;
    plan_demotions = a.plan_demotions + b.plan_demotions;
  }

let pick_targets rng mux ~count =
  let bed = mux.Scenarios.bed in
  let vps = Asn.Set.of_list bed.Scenarios.vantage_points in
  let pool =
    match bed.Scenarios.gen with
    | Some gen ->
        List.filter
          (fun a -> not (Asn.Set.mem a vps) && not (Asn.equal a mux.Scenarios.origin))
          gen.Topology.Topo_gen.stub_list
    | None -> []
  in
  if pool = [] then invalid_arg "Service: testbed has no stub pool to monitor";
  let count = min count (List.length pool) in
  Array.to_list (Prng.sample_without_replacement rng count (Array.of_list pool))

(* Durable-run plumbing threaded into [run_in]: the write-ahead journal
   every orchestrator action flows through, the snapshot cadence, the
   snapshot to verify replay fidelity against when resuming, and where
   captured snapshots go. *)
type durable = {
  d_journal : Recover.Journal.t;
  d_snapshot_every : float option;
  d_verify : Recover.Snapshot.t option;
  d_on_snapshot : Recover.Snapshot.t -> unit;
}

type recovery = {
  rc_reconcile : Recover.Reconcile.t;
  rc_journal : string list;
  rc_replayed : int;
  rc_marks : int;
  rc_tail : report option;
}

type outcome =
  | Finished of { report : report; recovery : recovery }
  | Interrupted of {
      boundary : Recover.Crash.boundary;
      append : int;
      journal : string list;
      snapshot : Recover.Snapshot.t option;
    }

let run_in ?(config = default_config) ?durable ~seed ~shard_pool () =
  let retry = Retry.validate config.retry in
  let mux =
    Scenarios.bgpmux ~ases:config.ases ~infrastructure:Scenarios.No_infrastructure
      ?shards:config.shards ?shard_pool ~seed ()
  in
  let bed = mux.Scenarios.bed in
  let engine = bed.Scenarios.engine in
  let origin = mux.Scenarios.origin in
  let pick_rng = Prng.create ~seed:(seed + 1013) in
  let targets = pick_targets pick_rng mux ~count:config.target_count in
  (* Announce only what the fleet probes: the origin's spaces plus the
     monitored targets' and vantage points' infrastructure prefixes. *)
  Dataplane.Forward.announce_infrastructure_for bed.Scenarios.net
    ((origin :: bed.Scenarios.vantage_points) @ targets);
  Bgp.Network.run_until_quiet ~timeout:36000.0 bed.Scenarios.net;
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let chaos =
    Chaos.create ~config:config.chaos ~rng:(Prng.create ~seed:(seed + 2027)) ~engine ()
  in
  let faults =
    Bgp.Faults.create ~config:config.faults
      ~rng:(Prng.create ~seed:(seed + 4057))
      ~net:bed.Scenarios.net ()
  in
  let sched =
    Budget.scheduler ~per_vp_rate:config.per_vp_rate ~per_vp_burst:config.per_vp_burst
      ~global:(Budget.create ~rate:config.probe_rate ~burst:config.probe_burst ()) ()
  in
  let decide_config =
    { Lifeguard.Decide.default_config with min_outage_age = config.min_outage_age }
  in
  (* The plan cache: seeded offline by the planner over this world's
     graph, fingerprinted on the structural fault counters (links and
     routers — session flaps only flush announcements, which the watchdog
     already repairs) so topology churn invalidates it. *)
  let cache =
    if not config.planning then None
    else begin
      let net = bed.Scenarios.net in
      let graph = Bgp.Network.graph net in
      let paths = Bgp.Network.path_store net in
      let seed_plans =
        Plan.Planner.build ~graph ~store:paths ~plan:mux.Scenarios.plan ~targets
      in
      let fingerprint () =
        Bgp.Faults.link_failure_count faults + Bgp.Faults.router_crash_count faults
      in
      Some
        (Plan.Cache.create ~fingerprint ~seed:seed_plans ~config:decide_config ~origin
           ~paths ())
    end
  in
  let hooks =
    {
      Lifeguard.Orchestrator.probe_gate =
        Some (fun ~now ~cost -> Budget.admit_vp sched ~vp:origin ~now ~cost);
      monitor_loss = Some (fun () -> Chaos.lose_probe chaos);
      isolation_attempt =
        Some
          (fun ~target:_ ~attempt:_ ->
            let now = Sim.Engine.now engine in
            if not (Budget.admit_vp sched ~vp:origin ~now ~cost:config.isolation_cost) then
              `Denied
            else if Chaos.lose_probe chaos then `Lost
            else `Proceed);
      vantage_filter = Some (fun vp -> Chaos.vp_alive chaos vp);
      plan_consult =
        (match cache with
        | None -> None
        | Some c ->
            let graph = Bgp.Network.graph bed.Scenarios.net in
            Some
              (fun ~target ~diagnosis ~outage_age ~breaker_open ->
                Plan.Cache.lookup c graph ~now:(Sim.Engine.now engine) ~target ~diagnosis
                  ~outage_age ~breaker_open));
      plan_record =
        (match cache with
        | None -> None
        | Some c ->
            Some
              (fun ~target ~diagnosis ~verdict ->
                Plan.Cache.record c ~target ~diagnosis ~verdict));
      plan_outcome =
        (match cache with
        | None -> None
        | Some c -> Some (fun ~poison outcome -> Plan.Cache.note_outcome c ~poison outcome));
    }
  in
  let orch_config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide = decide_config;
      decision_latency = config.decision_latency;
      recheck_interval = config.recheck_interval;
      monitor_interval = config.monitor_interval;
      announce_spacing = config.announce_spacing;
      max_isolation_attempts = retry.Retry.max_attempts;
      retry_backoff = retry.Retry.base_delay;
      backoff_multiplier = retry.Retry.multiplier;
      max_backoff = retry.Retry.max_delay;
    }
  in
  let orch =
    Lifeguard.Orchestrator.create ~config:orch_config ~hooks
      ?journal:(match durable with Some d -> Some d.d_journal | None -> None)
      ~env:bed.Scenarios.probe ~atlas ~responsiveness ~plan:mux.Scenarios.plan
      ~vantage_points:bed.Scenarios.vantage_points ()
  in
  (* Let the baseline converge before the clock starts counting. *)
  Bgp.Network.run_until_quiet ~timeout:36000.0 bed.Scenarios.net;
  Bgp.Network.Collector.clear mux.Scenarios.collector;
  let t0 = Sim.Engine.now engine in
  let horizon = t0 +. config.duration in
  Lifeguard.Orchestrator.watch orch ~targets;
  let arrivals = Arrivals.create () in
  Arrivals.start ~toward_src:Scenarios.sentinel_prefix arrivals
    ~rng:(Prng.create ~seed:(seed + 3041))
    ~bed ~src:origin ~targets
    ~mean_interarrival:(86400.0 /. config.outages_per_day)
    ~until:horizon ();
  Chaos.start chaos ~vantage_points:bed.Scenarios.vantage_points ~until:horizon;
  (* Control-plane faults begin once the baseline has converged; the
     origin itself is never crashed (the service dying is a different
     experiment), but its sessions still flap. *)
  Bgp.Faults.start faults ~protect:[ origin ] ~until:horizon ();
  (* Periodic atlas refreshes keep isolation off the on-demand slow path;
     the staleness knob makes them silently unreliable. *)
  ignore
    (Sim.Engine.every engine ~every:config.atlas_refresh_interval ~until:horizon (fun now ->
         if not (Chaos.skip_refresh chaos) then
           Measurement.Atlas.refresh_all atlas bed.Scenarios.probe ~vps:[ origin ]
             ~dsts:targets ~now;
         `Continue));
  (* Harvest, parameterized for segment reports: [skip_events] and
     [skip_outcomes] drop the prefix a snapshot already accounted for,
     [base] supplies counter baselines (constantly 0 for a whole run)
     and [days] the segment's window. Cross-boundary repairs still find
     their detection: the detection list is always searched in full.
     Everything here is a pure read, so a snapshot mark can harvest the
     head segment mid-run without perturbing it. *)
  let counter_values () =
    let plan_c f = match cache with Some c -> f c | None -> 0 in
    [
      ("arrivals.drawn", Arrivals.drawn_count arrivals);
      ( "arrivals.ge15",
        List.length
          (List.filter (fun i -> i.Arrivals.duration >= 900.0) (Arrivals.injected arrivals))
      );
      ("arrivals.injected", Arrivals.injected_count arrivals);
      ("arrivals.unplaceable", Arrivals.unplaceable_count arrivals);
      ("budget.denied", Budget.scheduler_denied sched);
      ("budget.granted", Budget.scheduler_granted sched);
      ("chaos.lost_probes", Chaos.lost_probe_count chaos);
      ("chaos.stale_refreshes", Chaos.stale_refresh_count chaos);
      ("chaos.vp_crashes", Chaos.crash_count chaos);
      ("collector.updates", List.length (Bgp.Network.Collector.log mux.Scenarios.collector));
      ("faults.link_failures", Bgp.Faults.link_failure_count faults);
      ("faults.router_crashes", Bgp.Faults.router_crash_count faults);
      ("faults.session_flaps", Bgp.Faults.session_flap_count faults);
      ("faults.updates_dropped", Bgp.Faults.updates_dropped faults);
      ("faults.updates_duplicated", Bgp.Faults.updates_duplicated faults);
      ( "monitor.pairs",
        List.fold_left
          (fun acc m -> acc + Measurement.Monitor.probe_count m)
          0
          (Lifeguard.Orchestrator.monitors orch) );
      ( "monitor.skipped",
        List.fold_left
          (fun acc m -> acc + Measurement.Monitor.skipped_count m)
          0
          (Lifeguard.Orchestrator.monitors orch) );
      ("orch.breaker_trips", Lifeguard.Orchestrator.breaker_trip_count orch);
      ("orch.reannounced", Lifeguard.Orchestrator.reannounce_count orch);
      ("orch.rolled_back", Lifeguard.Orchestrator.rollback_count orch);
      ("plan.demotions", plan_c Plan.Cache.demotions);
      ("plan.hits", plan_c Plan.Cache.hits);
      ("plan.invalidations", plan_c Plan.Cache.invalidations);
      ("plan.misses", plan_c Plan.Cache.misses);
      ("probes.sent", bed.Scenarios.probe.Dataplane.Probe.probes_sent);
    ]
  in
  let segment ~skip_events ~skip_outcomes ~base ~days () =
    let rec drop n xs =
      if n <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    let cur = counter_values () in
    let c name =
      let rec find = function
        | [] -> 0
        | (n, v) :: tl -> if String.equal n name then v else find tl
      in
      find cur - base name
    in
    let all_events = Lifeguard.Orchestrator.events orch in
    let events = drop skip_events all_events in
    let count_events f = List.length (List.filter f events) in
    let detected =
      count_events (function
        | _, Lifeguard.Orchestrator.Outage_detected _ -> true
        | _ -> false)
    in
    let poisons =
      count_events (function
        | _, Lifeguard.Orchestrator.Poison_announced _ -> true
        | _ -> false)
    in
    let unpoisons =
      count_events (function _, Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false)
    in
    let isolation_retries =
      count_events (function
        | _, Lifeguard.Orchestrator.Isolation_retry _ -> true
        | _ -> false)
    in
    let detections =
      List.filter_map
        (function
          | at, Lifeguard.Orchestrator.Outage_detected { target; _ } -> Some (at, target)
          | _ -> None)
        all_events
    in
    let detection_before ~target ~at =
      List.fold_left
        (fun acc (dt, dtarget) ->
          if Asn.equal dtarget target && dt <= at then Some dt else acc)
        None detections
    in
    let outcomes = drop skip_outcomes (Lifeguard.Orchestrator.outcomes orch) in
    let repaired = ref 0 and stood_down = ref 0 and gave_up = ref 0 in
    let ttr = ref [] in
    List.iter
      (fun (at, target, outcome) ->
        match outcome with
        | Lifeguard.Orchestrator.Repaired ->
            incr repaired;
            (match detection_before ~target ~at with
            | Some dt -> ttr := (at -. dt) :: !ttr
            | None -> ())
        | Lifeguard.Orchestrator.Stood_down _ -> incr stood_down
        | Lifeguard.Orchestrator.Gave_up_on _ -> incr gave_up)
      outcomes;
    let time_to_confirm =
      List.filter_map
        (function
          | at, Lifeguard.Orchestrator.Repair_confirmed { target; _ } -> begin
              match detection_before ~target ~at with
              | Some dt -> Some (at -. dt)
              | None -> None
            end
          | _ -> None)
        events
    in
    let injected_ge15 = c "arrivals.ge15" in
    let injected_h15 =
      if days <= 0.0 then 0.0 else float_of_int injected_ge15 /. days
    in
    let measured_updates_per_day =
      if days <= 0.0 then 0.0 else float_of_int (poisons + unpoisons) /. days
    in
    {
      days;
      injected = c "arrivals.injected";
      drawn = c "arrivals.drawn";
      unplaceable = c "arrivals.unplaceable";
      detected;
      repaired = !repaired;
      stood_down = !stood_down;
      gave_up = !gave_up;
      unfinished =
        Lifeguard.Orchestrator.active_pipelines orch
        + Lifeguard.Orchestrator.queued_poisons orch
        + Lifeguard.Orchestrator.awaiting_repair orch;
      poisons;
      unpoisons;
      time_to_repair = List.rev !ttr;
      time_to_confirm;
      monitor_pairs = c "monitor.pairs";
      monitor_skipped = c "monitor.skipped";
      probes_sent = c "probes.sent";
      budget_granted = c "budget.granted";
      budget_denied = c "budget.denied";
      isolation_retries;
      vp_crashes = c "chaos.vp_crashes";
      lost_probes = c "chaos.lost_probes";
      stale_refreshes = c "chaos.stale_refreshes";
      collector_updates = c "collector.updates";
      injected_ge15;
      injected_h15;
      measured_updates_per_day;
      predicted_updates_per_day =
        predict_updates_per_day ~seed ~h15:injected_h15 ~min_outage_age:config.min_outage_age
          ~monitor_interval:config.monitor_interval;
      reannounced = c "orch.reannounced";
      rolled_back = c "orch.rolled_back";
      breaker_trips = c "orch.breaker_trips";
      session_flaps = c "faults.session_flaps";
      link_failures = c "faults.link_failures";
      router_crashes = c "faults.router_crashes";
      updates_dropped = c "faults.updates_dropped";
      updates_duplicated = c "faults.updates_duplicated";
      plan_hits = c "plan.hits";
      plan_misses = c "plan.misses";
      plan_invalidations = c "plan.invalidations";
      plan_demotions = c "plan.demotions";
    }
  in
  (* Snapshot marks: pure-read captures on the simulation clock, armed
     after every other recurring timer so their extra heap events shift
     sequence numbers uniformly without reordering anything — a durable
     run is byte-identical to a plain one. When resuming, re-execution
     reaching the persisted snapshot's mark must capture the exact same
     bytes; anything else means replay infidelity and raises
     [Snapshot.Mismatch] rather than silently diverging. *)
  let marks_done = ref 0 in
  (match durable with
  | Some ({ d_snapshot_every = Some every_s; _ } as d) when every_s > 0.0 ->
      let fp = config_fingerprint ~config ~seed in
      ignore
        (Sim.Engine.every engine ~every:every_s ~until:horizon (fun _ ->
             let mark = !marks_done + 1 in
             let window = float_of_int mark *. every_s in
             let head =
               segment ~skip_events:0 ~skip_outcomes:0
                 ~base:(fun _ -> 0)
                 ~days:(window /. 86400.0) ()
             in
             let snap =
               {
                 Recover.Snapshot.version = Recover.Snapshot.version;
                 at = Sim.Engine.now engine;
                 mark;
                 seed;
                 config_fp = fp;
                 journal_len = Recover.Journal.length d.d_journal;
                 orch = Lifeguard.Orchestrator.capture orch;
                 counters = counter_values ();
                 buckets = Budget.capture sched;
                 plan =
                   (match cache with Some c -> Some (Plan.Cache.capture c) | None -> None);
                 head = render_report head;
               }
             in
             (match d.d_verify with
             | Some expected when expected.Recover.Snapshot.mark = mark ->
                 if not (Recover.Snapshot.equal snap expected) then
                   raise (Recover.Snapshot.Mismatch { mark })
             | _ -> ());
             marks_done := mark;
             d.d_on_snapshot snap;
             `Continue))
  | _ -> ());
  Sim.Engine.run ~until:horizon engine;
  let report =
    segment ~skip_events:0 ~skip_outcomes:0 ~base:(fun _ -> 0)
      ~days:(config.duration /. 86400.0) ()
  in
  Obs.Metrics.add m_injected report.injected;
  Obs.Metrics.add m_detected report.detected;
  Obs.Metrics.add m_repaired report.repaired;
  Obs.Metrics.add m_stood_down report.stood_down;
  Obs.Metrics.add m_gave_up report.gave_up;
  Obs.Metrics.add m_poisons report.poisons;
  Obs.Metrics.add m_unpoisons report.unpoisons;
  Obs.Metrics.add m_monitor_pairs report.monitor_pairs;
  Obs.Metrics.add m_monitor_skipped report.monitor_skipped;
  Obs.Metrics.add m_budget_denied report.budget_denied;
  Obs.Metrics.add m_isolation_retries report.isolation_retries;
  Obs.Metrics.add m_vp_crashes report.vp_crashes;
  Obs.Metrics.add m_reannounced report.reannounced;
  Obs.Metrics.add m_rolled_back report.rolled_back;
  Obs.Metrics.add m_breaker_trips report.breaker_trips;
  Obs.Metrics.add m_session_flaps report.session_flaps;
  Obs.Metrics.add m_router_crashes report.router_crashes;
  Obs.Metrics.add m_plan_hits report.plan_hits;
  Obs.Metrics.add m_plan_misses report.plan_misses;
  Obs.Metrics.add m_plan_invalidations report.plan_invalidations;
  Obs.Metrics.add m_plan_demotions report.plan_demotions;
  (* Recovery accounting: reconcile the journal against the collector's
     ground truth (the exactly-once verdict), and — when resuming — the
     tail-segment report whose merge with the snapshot's head must
     reproduce the uninterrupted report. *)
  let recovery =
    match durable with
    | None -> None
    | Some d ->
        let j = d.d_journal in
        let prefix = mux.Scenarios.plan.Lifeguard.Remediate.production in
        let watchdog = Lifeguard.Orchestrator.collector orch in
        let poisoned_views =
          List.map
            (fun vp ->
              let carried =
                match Bgp.Network.Collector.route_view watchdog ~peer:vp ~prefix with
                | Some (Some entry) -> begin
                    (* A poisoned announcement is [O; p; O]: at any view
                       the path's origin-side tail reads O, p, O (the
                       baseline's prepend padding is excluded because
                       p = O there). *)
                    match List.rev (Bgp.As_path.to_list entry.Bgp.Route.ann.Bgp.Route.path) with
                    | o2 :: p :: o1 :: _
                      when Asn.equal o1 origin && Asn.equal o2 origin
                           && not (Asn.equal p origin) ->
                        Some p
                    | _ -> None
                  end
                | Some None | None -> None
              in
              (vp, carried))
            bed.Scenarios.vantage_points
        in
        let rc =
          Recover.Reconcile.check ~replayed:(Recover.Journal.replayed j)
            ~grace:(2.0 *. config.recheck_interval)
            ~horizon:(Sim.Engine.now engine) ~poisoned_views (Recover.Journal.records j)
        in
        let tail =
          match d.d_verify with
          | None -> None
          | Some s -> begin
              match parse_report s.Recover.Snapshot.head with
              | None -> None
              | Some head ->
                  Some
                    (segment ~skip_events:s.Recover.Snapshot.orch.Recover.Snapshot.so_events
                       ~skip_outcomes:s.Recover.Snapshot.orch.Recover.Snapshot.so_outcomes
                       ~base:(Recover.Snapshot.counter s)
                       ~days:((config.duration /. 86400.0) -. head.days)
                       ())
            end
        in
        Some
          {
            rc_reconcile = rc;
            rc_journal = Recover.Journal.lines j;
            rc_replayed = Recover.Journal.replayed j;
            rc_marks = !marks_done;
            rc_tail = tail;
          }
  in
  (report, recovery)

(* Sharded runs own a worker pool for the trial's lifetime: barrier
   windows fan out on it, and it is torn down before the report returns
   so nested per-trial pools (the fleet study's outer jobs) never
   accumulate domains. Pool width changes wall-clock only, never
   results. *)
let run ?(config = default_config) ~seed () =
  match config.shards with
  | Some k when k > 1 ->
      Par.Pool.with_pool ~jobs:k (fun pool ->
          fst (run_in ~config ~seed ~shard_pool:(Some pool) ()))
  | _ -> fst (run_in ~config ~seed ~shard_pool:None ())

(* The durable entry point: same world, same schedule, plus the
   write-ahead journal, optional snapshot marks, and crash injection.
   Recovery is deterministic re-execution — the resumed run replays from
   t = 0 with the persisted journal as its expected prefix (byte-for-byte
   verified, [Journal.Divergence] otherwise) and the persisted snapshot
   as a replay-fidelity check at its mark. Because re-execution re-derives
   every action, an effect lost to an [After_write] crash is re-applied
   exactly once, and the final report is byte-identical to the
   uninterrupted run's at any jobs x shards. *)
let run_durable ?(config = default_config) ~seed ?(journal = []) ?snapshot ?crash
    ?snapshot_every ?(journal_sink = fun _ -> ()) ?(snapshot_sink = fun _ -> ()) () =
  let fp = config_fingerprint ~config ~seed in
  (match snapshot with
  | Some s when not (String.equal s.Recover.Snapshot.config_fp fp) ->
      invalid_arg "Service.run_durable: snapshot was taken under a different (config, seed)"
  | _ -> ());
  let j =
    match journal with
    | [] -> Recover.Journal.create ~sink:journal_sink ?crash ()
    | lines -> Recover.Journal.replaying ~sink:journal_sink ?crash ~expected:lines ()
  in
  let last_snap = ref snapshot in
  let durable =
    {
      d_journal = j;
      d_snapshot_every = snapshot_every;
      d_verify = snapshot;
      d_on_snapshot =
        (fun s ->
          last_snap := Some s;
          snapshot_sink s);
    }
  in
  let go () =
    match config.shards with
    | Some k when k > 1 ->
        Par.Pool.with_pool ~jobs:k (fun pool ->
            run_in ~config ~durable ~seed ~shard_pool:(Some pool) ())
    | _ -> run_in ~config ~durable ~seed ~shard_pool:None ()
  in
  match go () with
  | report, Some recovery -> Finished { report; recovery }
  | _, None -> assert false (* run_in always returns recovery when durable *)
  | exception Recover.Crash.Crashed { boundary; append } ->
      Interrupted
        { boundary; append; journal = Recover.Journal.lines j; snapshot = !last_snap }
