lib/topology/as_graph.ml: Array Asn Format Hashtbl Int Ipv4 List Net Option Printf Relationship String
