(** BGP community attributes.

    Communities are opaque [(asn, value)] tags attached to announcements.
    The paper (§2.3) found them insufficient for failure avoidance — they
    are not standardized and many ASes strip them — so this model supports
    just enough: tagging, a well-known [no_export] plus a provider-defined
    "do not export to peers" convention, and per-AS stripping. *)

type t = { asn : int; value : int }

val make : asn:int -> value:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Deterministic integer mix of both fields (announcement interning). *)

val pp : Format.formatter -> t -> unit

val no_export : t
(** Well-known NO_EXPORT (65535:65281): do not advertise beyond the
    receiving AS. *)

val no_export_to_peers : asn:int -> t
(** The SAVVIS-style provider community ["asn:666"] asking [asn] not to
    export the route to its peers. Only honored by [asn] itself. *)

val is_no_export : t -> bool
val is_no_export_to_peers : asn:int -> t -> bool
