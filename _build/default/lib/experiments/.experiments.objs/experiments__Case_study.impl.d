lib/experiments/case_study.ml: Asn Bgp Dataplane Format Lifeguard List Measurement Net Prefix Scenarios Sim Stats String Workloads
