open Net

type router = { asn : Asn.t; index : int; address : Ipv4.t }

type node = { tier : int; routers : router array; mutable adj : Relationship.t Asn.Map.t }

type t = {
  nodes : node Asn.Table.t;
  mutable links : int;
  address_owner : (int, Asn.t) Hashtbl.t;
      (* keyed by the address's int value, not the boxed int32, so lookups
         use flat int hashing *)
}

let address_key ip = Int32.to_int (Ipv4.to_int32 ip)

let create () = { nodes = Asn.Table.create 256; links = 0; address_owner = Hashtbl.create 256 }

(* Router addresses live in 10.0.0.0/8, carved by ASN: router [i] of ASN
   [n] is 10.(n lsr 8).(n land 255).(i + 1). This supports ASNs < 65536 and
   up to 254 routers per AS, far beyond what experiments use. *)
let derive_address asn index =
  let n = Asn.to_int asn in
  if n > 0xFFFF then invalid_arg "As_graph: ASN too large for address derivation";
  if index > 253 then invalid_arg "As_graph: too many routers";
  Ipv4.of_octets 10 ((n lsr 8) land 0xFF) (n land 0xFF) (index + 1)

let add_as t ?(tier = 3) ?(routers = 1) asn =
  if Asn.Table.mem t.nodes asn then
    invalid_arg (Printf.sprintf "As_graph.add_as: %s already present" (Asn.to_string asn));
  if routers < 1 then invalid_arg "As_graph.add_as: need at least one router";
  let mk index =
    let address = derive_address asn index in
    Hashtbl.replace t.address_owner (address_key address) asn;
    { asn; index; address }
  in
  Asn.Table.replace t.nodes asn { tier; routers = Array.init routers mk; adj = Asn.Map.empty }

let node t asn =
  match Asn.Table.find_opt t.nodes asn with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "As_graph: unknown %s" (Asn.to_string asn))

let mem t asn = Asn.Table.mem t.nodes asn

let add_link t ~a ~b ~rel =
  if Asn.equal a b then invalid_arg "As_graph.add_link: self link";
  let na = node t a and nb = node t b in
  if Asn.Map.mem b na.adj then
    invalid_arg
      (Printf.sprintf "As_graph.add_link: %s-%s already linked" (Asn.to_string a)
         (Asn.to_string b));
  na.adj <- Asn.Map.add b rel na.adj;
  nb.adj <- Asn.Map.add a (Relationship.invert rel) nb.adj;
  t.links <- t.links + 1

let remove_link t ~a ~b =
  let na = node t a and nb = node t b in
  if Asn.Map.mem b na.adj then begin
    na.adj <- Asn.Map.remove b na.adj;
    nb.adj <- Asn.Map.remove a nb.adj;
    t.links <- t.links - 1
  end

let relationship t ~a ~b =
  match Asn.Table.find_opt t.nodes a with
  | None -> None
  | Some na -> Asn.Map.find_opt b na.adj

let neighbors t asn =
  Asn.Map.fold (fun n rel acc -> (n, rel) :: acc) (node t asn).adj []
  |> List.rev

let neighbors_where t asn keep =
  List.filter_map (fun (n, rel) -> if keep rel then Some n else None) (neighbors t asn)

let customers t asn = neighbors_where t asn (Relationship.equal Relationship.Customer)
let providers t asn = neighbors_where t asn (Relationship.equal Relationship.Provider)
let peers t asn = neighbors_where t asn (Relationship.equal Relationship.Peer)

let tier t asn = (node t asn).tier
let routers t asn = (node t asn).routers

let router_address t asn i =
  let rs = routers t asn in
  if i < 0 || i >= Array.length rs then invalid_arg "As_graph.router_address: index";
  rs.(i).address

let owner_of_address t ip = Hashtbl.find_opt t.address_owner (address_key ip)

let as_list t =
  Asn.Table.fold (fun asn _ acc -> asn :: acc) t.nodes []
  |> List.sort Asn.compare

let as_count t = Asn.Table.length t.nodes
let link_count t = t.links
let degree t asn = Asn.Map.cardinal (node t asn).adj

let is_stub t asn =
  not (Asn.Map.exists (fun _ rel -> Relationship.equal rel Relationship.Customer) (node t asn).adj)

let copy t =
  let nodes = Asn.Table.create (Asn.Table.length t.nodes) in
  Asn.Table.iter
    (fun asn n -> Asn.Table.replace nodes asn { n with routers = Array.copy n.routers })
    t.nodes;
  { nodes; links = t.links; address_owner = Hashtbl.copy t.address_owner }

let pp_stats fmt t =
  let tiers = Hashtbl.create 8 in
  Asn.Table.iter
    (fun _ n ->
      let c = Option.value ~default:0 (Hashtbl.find_opt tiers n.tier) in
      Hashtbl.replace tiers n.tier (c + 1))
    t.nodes;
  let tier_list =
    Hashtbl.fold (fun tier c acc -> (tier, c) :: acc) tiers []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Format.fprintf fmt "%d ASes, %d links (%s)" (as_count t) t.links
    (String.concat ", "
       (List.map (fun (tier, c) -> Printf.sprintf "tier%d: %d" tier c) tier_list))
