open Net

type outage = {
  vp : Asn.t;
  target : Ipv4.t;
  started_at : float;
  detected_at : float;
  mutable ended_at : float option;
}

let duration o ~now =
  match o.ended_at with
  | Some ended -> ended -. o.started_at
  | None -> now -. o.started_at

type target_state = {
  address : Ipv4.t;
  mutable consecutive_failures : int;
  mutable first_failure_at : float;
  mutable current : outage option;
}

type t = {
  env : Dataplane.Probe.env;
  engine : Sim.Engine.t;
  interval : float;
  fail_threshold : int;
  on_outage : outage -> unit;
  on_recovery : outage -> unit;
  responsiveness : Responsiveness.t option;
  src_ip : Ipv4.t option;
  gate : (now:float -> cost:int -> bool) option;
  loss : (unit -> bool) option;
  vp : Asn.t;
  targets : target_state list;
  mutable stopped : bool;
  mutable history : outage list;  (** newest first *)
  mutable pairs_sent : int;
  mutable pairs_skipped : int;
}

let probe_target t state now =
  t.pairs_sent <- t.pairs_sent + 1;
  (* A "pair" of pings: in the simulator both probes of a pair see the
     same network state, so one delivery check decides the pair. *)
  let delivered =
    match t.src_ip with
    | Some src_ip -> Dataplane.Probe.ping_from t.env ~src:t.vp ~src_ip ~dst:state.address
    | None -> Dataplane.Probe.ping t.env ~src:t.vp ~dst:state.address
  in
  (* Chaos hook: a lost pair looks exactly like an unreachable target —
     the failure-counting logic below cannot tell the difference, which
     is the point. *)
  let ok =
    delivered && (match t.loss with Some lost -> not (lost ()) | None -> true)
  in
  (match t.responsiveness with
  | Some db -> Responsiveness.note db state.address ~now ok
  | None -> ());
  if ok then begin
    (match state.current with
    | Some o ->
        o.ended_at <- Some now;
        t.on_recovery o
    | None -> ());
    state.current <- None;
    state.consecutive_failures <- 0
  end
  else begin
    if state.consecutive_failures = 0 then state.first_failure_at <- now;
    state.consecutive_failures <- state.consecutive_failures + 1;
    if state.consecutive_failures = t.fail_threshold && Option.is_none state.current then begin
      let o =
        {
          vp = t.vp;
          target = state.address;
          started_at = state.first_failure_at;
          detected_at = now;
          ended_at = None;
        }
      in
      state.current <- Some o;
      t.history <- o :: t.history;
      t.on_outage o
    end
  end

let create ~env ~engine ?(interval = 30.0) ?(fail_threshold = 4) ?(on_outage = ignore)
    ?(on_recovery = ignore) ?responsiveness ?src_ip ?gate ?loss ~vp ~targets () =
  if interval <= 0.0 then invalid_arg "Monitor.create: interval must be positive";
  if fail_threshold < 1 then invalid_arg "Monitor.create: threshold must be >= 1";
  let t =
    {
      env;
      engine;
      interval;
      fail_threshold;
      on_outage;
      on_recovery;
      responsiveness;
      src_ip;
      gate;
      loss;
      vp;
      targets =
        List.map
          (fun address ->
            { address; consecutive_failures = 0; first_failure_at = 0.0; current = None })
          targets;
      stopped = false;
      history = [];
      pairs_sent = 0;
      pairs_skipped = 0;
    }
  in
  Sim.Engine.schedule_every engine ~every:interval (fun now ->
      if t.stopped then `Stop
      else begin
        List.iter
          (fun state ->
            (* Budget gate: a denied round is skipped outright — no probe,
               no state change — so budget pressure slows detection rather
               than fabricating failures. *)
            let granted =
              match t.gate with Some admit -> admit ~now ~cost:1 | None -> true
            in
            if granted then probe_target t state now
            else t.pairs_skipped <- t.pairs_skipped + 1)
          t.targets;
        `Continue
      end);
  t

let stop t = t.stopped <- true
let outages t = List.rev t.history
let open_outages t = List.filter (fun o -> Option.is_none o.ended_at) (outages t)
let probe_count t = t.pairs_sent
let skipped_count t = t.pairs_skipped
