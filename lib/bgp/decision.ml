open Net

(* MED is only comparable between routes learned from the same neighbor
   AS; a missing MED compares as 0 (cisco-style default). *)
let med_value = function
  | Some m -> m
  | None -> 0

(* Path length and the salted tiebreak rank are cached in the entry at
   import time (Route.make_entry); this comparison runs once per
   candidate per update, so it must not recompute either. *)
let compare_entries (a : Route.entry) (b : Route.entry) =
  match Int.compare a.local_pref b.local_pref with
  | 0 -> begin
      match Int.compare b.path_len a.path_len with
      | 0 -> begin
          let med_cmp =
            let a_first = As_path.first_hop a.ann.path
            and b_first = As_path.first_hop b.ann.path in
            if Option.equal Asn.equal a_first b_first then
              Int.compare (med_value b.ann.med) (med_value a.ann.med)
            else 0
          in
          match med_cmp with
          | 0 -> begin
              match Int.compare b.tiebreak a.tiebreak with
              | 0 -> Asn.compare b.neighbor a.neighbor
              | c -> c
            end
          | c -> c
        end
      | c -> c
    end
  | c -> c

let best entries =
  match entries with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc e -> if compare_entries e acc > 0 then e else acc)
           first rest)

let best_in_table table =
  Asn.Table.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some cur -> if compare_entries e cur > 0 then Some e else acc)
    table None
