let () = exit (Lint.main Sys.argv)
