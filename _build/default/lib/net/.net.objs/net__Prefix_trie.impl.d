lib/net/prefix_trie.ml: Int32 Ipv4 List Prefix
