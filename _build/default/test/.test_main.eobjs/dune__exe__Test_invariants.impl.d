test/test_invariants.ml: Array As_graph Asn Bgp Dataplane Lifeguard List Net Prefix Prng QCheck QCheck_alcotest Relationship Sim Splice Topo_gen Topology
