open Net

(* Atlas consultation accounting (Obs): a lookup that finds a usable
   snapshot is a hit, one that comes back empty is a miss — the ratio is
   what says whether the refresh cadence keeps isolation off the slow
   on-demand measurement path. *)
let m_hit = Obs.Metrics.counter "meas.atlas.hit"
let m_miss = Obs.Metrics.counter "meas.atlas.miss"

type snapshot = { taken_at : float; path : Asn.t list }

type pair_state = {
  mutable forward : snapshot list;  (** newest first *)
  mutable reverse : snapshot list;
}

type t = { pairs : (int, pair_state) Hashtbl.t; mutable snapshots : int }

let create () = { pairs = Hashtbl.create 256; snapshots = 0 }

(* Pack the (vp, dst) ASN pair into one immediate int key: ASNs fit in
   31 bits, so the pair fits a 63-bit OCaml int without collision. *)
let key ~vp ~dst = (Asn.to_int vp lsl 31) lor Asn.to_int dst

let state t ~vp ~dst =
  let k = key ~vp ~dst in
  match Hashtbl.find_opt t.pairs k with
  | Some s -> s
  | None ->
      let s = { forward = []; reverse = [] } in
      Hashtbl.replace t.pairs k s;
      s

(* Consecutive duplicate paths are collapsed into the newest snapshot:
   Internet paths are stable [37], so this keeps histories short without
   losing change points. *)
let push t existing ~now path =
  match existing with
  | { taken_at = _; path = prev } :: rest when List.length prev = List.length path
                                                && List.for_all2 Asn.equal prev path ->
      { taken_at = now; path } :: rest
  | _ ->
      t.snapshots <- t.snapshots + 1;
      { taken_at = now; path } :: existing

let record_forward t ~vp ~dst ~now path =
  let s = state t ~vp ~dst in
  s.forward <- push t s.forward ~now path

let record_reverse t ~vp ~dst ~now path =
  let s = state t ~vp ~dst in
  s.reverse <- push t s.reverse ~now path

let forward_history t ~vp ~dst = (state t ~vp ~dst).forward
let reverse_history t ~vp ~dst = (state t ~vp ~dst).reverse

let latest ~before history =
  let keep snap =
    match before with
    | Some limit -> snap.taken_at <= limit
    | None -> true
  in
  List.find_opt keep history

let noting_hit result =
  (match result with
  | Some _ -> Obs.Metrics.incr m_hit
  | None -> Obs.Metrics.incr m_miss);
  result

let latest_forward t ~vp ~dst ?before () =
  noting_hit (latest ~before (state t ~vp ~dst).forward)

let latest_reverse t ~vp ~dst ?before () =
  noting_hit (latest ~before (state t ~vp ~dst).reverse)

let candidate_hops t ~vp ~dst =
  let s = state t ~vp ~dst in
  let add acc snaps =
    List.fold_left
      (fun acc snap -> List.fold_left (fun acc a -> Asn.Set.add a acc) acc snap.path)
      acc snaps
  in
  add (add Asn.Set.empty s.forward) s.reverse

let refresh t env ~vp ~dst ~now =
  let dst_address = Dataplane.Forward.probe_address env.Dataplane.Probe.net dst in
  let tr = Dataplane.Probe.traceroute env ~src:vp ~dst:dst_address in
  let forward_path =
    List.map (fun th -> th.Dataplane.Probe.hop.Dataplane.Forward.asn) tr.Dataplane.Probe.hops
  in
  record_forward t ~vp ~dst ~now forward_path;
  let vp_address = Dataplane.Forward.probe_address env.Dataplane.Probe.net vp in
  match
    Dataplane.Probe.reverse_traceroute env ~vantage_points:[ vp ] ~from_:dst ~to_ip:vp_address
  with
  | Some rtrace ->
      let reverse_path =
        List.map
          (fun th -> th.Dataplane.Probe.hop.Dataplane.Forward.asn)
          rtrace.Dataplane.Probe.hops
      in
      record_reverse t ~vp ~dst ~now reverse_path
  | None -> ()

let refresh_all t env ~vps ~dsts ~now =
  List.iter (fun vp -> List.iter (fun dst -> refresh t env ~vp ~dst ~now) dsts) vps

let pair_count t = Hashtbl.length t.pairs
let snapshot_count t = t.snapshots
