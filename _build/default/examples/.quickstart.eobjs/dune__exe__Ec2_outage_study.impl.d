examples/ec2_outage_study.ml: Array Lifeguard List Printf Stats Sys Workloads
