(** Seeded crash points at journal append boundaries.

    A crash spec names the one append at which the controller process
    "dies": the journal raises {!Crashed} at the requested boundary and
    the exception unwinds out of the simulation loop. The three
    boundaries are exactly the interesting write-ahead states:

    - {!Before_write}: neither the record nor its effect happened — the
      persisted journal is one record shorter than the intent;
    - {!After_write}: the record is persisted but the effect was never
      applied — the write-ahead case recovery must re-derive;
    - {!After_effect}: record and effect both happened; the crash loses
      only in-memory state.

    The harness (tests, bench, CLI) catches {!Crashed}, keeps whatever
    the sinks persisted, and resumes via deterministic re-execution
    ({!Journal.replaying}). *)

type boundary = Before_write | After_write | After_effect

exception Crashed of { boundary : boundary; append : int }

type spec = { boundary : boundary; append : int }
(** Crash at the [append]-th logged action (1-based) at [boundary]. *)

val boundary_equal : boundary -> boundary -> bool
val boundary_to_string : boundary -> string
val boundary_of_string : string -> boundary option

val boundaries : boundary list
(** All three classes, for crash-matrix sweeps. *)
