lib/dataplane/forward.mli: Asn Bgp Failure Format Ipv4 Net Prefix
