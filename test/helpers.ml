(* Shared scaffolding for tests: small hand-built topologies and a
   convenience wrapper bundling engine + network + failures + probes. *)

open Net
open Topology

let asn = Asn.of_int
let prefix = Prefix.of_string_exn

type world = {
  engine : Sim.Engine.t;
  graph : As_graph.t;
  net : Bgp.Network.t;
  failures : Dataplane.Failure.set;
  probe : Dataplane.Probe.env;
}

let world_of_graph ?config_of ?(mrai = 5.0) graph =
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph ?config_of ~mrai () in
  let failures = Dataplane.Failure.create () in
  let probe = Dataplane.Probe.env net failures in
  { engine; graph; net; failures; probe }

let converge world = Bgp.Network.run_until_quiet world.net

let announce_all_infrastructure world =
  Dataplane.Forward.announce_infrastructure world.net;
  converge world

(* The canonical example topology, based on the paper's Fig. 2:

          E --- A --- F          A is the AS to poison; F is captive
          |     |                behind A (single-homed).
          D     B
           \     \
            C --- (B)            D-C-B chain provides the alternate route
            |
            O                    O is the origin.

   Relationships (provider edges point upward):
     B provider-of O;  A provider-of B;  C provider-of B;
     D provider-of C;  D provider-of E;  A provider-of E;  A provider-of F.

   E has two providers, A and D; both give local-pref 100, so E prefers
   the shorter path through A ([A B O], length 3) over [D C B O]
   (length 4). Poisoning A forces E onto the D route; F (single-homed
   behind A) is captive and keeps only a covering sentinel route. *)
let fig2_asns = [ 10 (* O *); 20 (* B *); 30 (* A *); 40 (* C *); 50 (* D *); 60 (* E *); 70 (* F *) ]

let o = asn 10
let b = asn 20
let a = asn 30
let c = asn 40
let d = asn 50
let e = asn 60
let f = asn 70

let fig2_graph () =
  let g = As_graph.create () in
  List.iter (fun n -> As_graph.add_as g ~tier:(if n = 10 || n = 70 then 4 else 2) (asn n)) fig2_asns;
  (* b is o's provider, etc: add_link ~a ~b ~rel where rel = what b is to a *)
  As_graph.add_link g ~a:o ~b ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:c ~rel:Relationship.Provider;
  As_graph.add_link g ~a:c ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:f ~b:a ~rel:Relationship.Provider;
  g

let fig2_world () = world_of_graph (fig2_graph ())

let production = prefix "203.0.113.0/24"
let sentinel = prefix "203.0.112.0/23"

let path_of_best = function
  | Some (entry : Bgp.Route.entry) -> Bgp.As_path.to_list entry.Bgp.Route.ann.Bgp.Route.path
  | None -> []

let check_path msg expected actual =
  Alcotest.(check (list int)) msg expected (List.map Asn.to_int actual)
