lib/topology/relationship.ml: Format
