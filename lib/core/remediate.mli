(** Remediation: the announcements LIFEGUARD makes — §3.1.

    A {!plan} describes an origin's address space: the production prefix
    carrying real traffic, an optional covering sentinel (less-specific,
    always announced unpoisoned, with an unused sub-prefix for repair
    probes), and the providers the origin announces through. The
    operations then craft the paper's announcements:

    - {!announce_baseline}: production announced as [O-O-O] so a later
      poison [O-A-O] has the same length and next hop — unaffected ASes
      converge instantly (§3.1.1);
    - {!poison}: production announced as [O-A-O] everywhere;
    - {!selective_poison}: [O-A-O] via a subset of providers and the plain
      baseline via the rest, steering the target AS off one of its links
      without cutting it off (§3.1.2, Fig. 3);
    - {!unpoison}: back to the baseline once the sentinel shows repair. *)

open Net

type plan = {
  origin : Asn.t;
  production : Prefix.t;
  sentinel : Prefix.t option;
      (** Covering less-specific; must contain [production] when given. *)
  prepend_copies : int;  (** Baseline prepending (3 gives [O-O-O]). *)
}

val plan : ?sentinel:Prefix.t -> ?prepend_copies:int -> origin:Asn.t -> production:Prefix.t -> unit -> plan
(** Validates that [sentinel] covers [production] and is strictly less
    specific. [prepend_copies] defaults to 3. *)

val sentinel_unused_address : plan -> Ipv4.t option
(** An address inside the sentinel but outside the production prefix —
    probe replies to it must ride the (unpoisoned) sentinel route, which
    is what makes repair detectable while the poison is still in place. *)

val announce_baseline : Bgp.Network.t -> plan -> unit
(** Announce production ([O-O-O]) and the sentinel (plain [O]). *)

val poison : Bgp.Network.t -> plan -> target:Asn.t -> unit
(** Re-announce production as [O-A-O] through every provider. The
    sentinel stays on its baseline. *)

val selective_poison : Bgp.Network.t -> plan -> target:Asn.t -> poisoned_via:Asn.t list -> unit
(** Poisoned announcement through the providers in [poisoned_via], the
    prepended baseline through the others. The target then only accepts
    the unpoisoned route, shifting which of its links carries the
    origin's traffic. *)

val reannounce : Bgp.Network.t -> plan -> unit
(** Idempotently re-send the production prefix's {e current}
    announcement (poisoned or baseline) toward every up neighbor, even
    where the origin's adj-RIB-out believes it was already sent
    ({!Bgp.Network.refresh}). The watchdog's repair primitive after a
    session reset flushed the poison or a fault lost the update:
    re-calling {!poison} with the same target diffs to nothing. *)

val unpoison : Bgp.Network.t -> plan -> unit
(** Revert production to the baseline announcement. *)

val is_recovered :
  Dataplane.Probe.env -> plan -> through:Asn.t -> targets:Asn.t list -> bool
(** Sentinel-based repair detection (§4.2): ping each target from the
    sentinel's unused sub-prefix; recovered when some target answers
    {e and} the poisoned AS [through] itself answers such a probe —
    i.e. replies can again traverse paths through the problem AS. Without
    an unused sub-prefix this falls back to pinging [through] from the
    production space. *)
