(* Interprocedural call graph over the library tree.

   One pass parses every .ml handed in (the driver parses once and shares
   the AST with the syntactic scan), collects the module-level value
   definitions of each file, and resolves cross-module value references —
   module-qualified paths through sibling modules ([Speaker.create]) and
   library umbrella modules ([Bgp.Speaker.create]), [open]s (file-level
   and [let open]) and module aliases ([module R = Retry]) — into edges.
   The core is functor-free, so module identity is syntactic: a file
   lib/<dir>/<mod>.ml is module <Mod> of library <dir> (library names are
   read from the dune file when it disagrees with the directory, e.g.
   lib/core -> lifeguard).

   Like the rest of lifeguard-lint this is untyped and heuristic: a
   reference that cannot be resolved becomes an "external" (Effects
   interprets the primitive ones — Unix.gettimeofday, Random.int, ...),
   and a bare name shadowed by a local binding may over-approximate an
   edge. Over-approximation errs toward reporting, and reports land in
   the baseline, not the build. *)

open Parsetree

type def = {
  id : int;
  file : string;
  path : string list;  (** module path within the file, value name last *)
  display : string;  (** e.g. ["Bgp.Speaker.create"] *)
  line : int;
  col : int;
  exported : bool;
      (** listed in the sibling [.mli] (or no [.mli]: everything is) *)
  mutable_global : bool;
      (** module-level non-function binding whose RHS builds a mutable
          container — the state [LG-EFF-GLOBALMUT] protects *)
  kind : Source_scan.file_kind;
  mutable calls : (int * int) list;  (** resolved (callee id, line), source order *)
  mutable externals : (string list * int) list;
      (** unresolved qualified/primitive references (path, line) *)
  mutable catchall_line : int option;  (** first catch-all [try] handler *)
}

type t = {
  defs : def array;
  by_display : (string, int) Hashtbl.t;
  sccs : int list list;  (** callee-first: each SCC after all it calls into *)
}

(* ---------------- small syntactic helpers (mirrors Source_scan) ------- *)

let path_of_lident li =
  let rec go acc = function
    | Longident.Lident s -> Some (s :: acc)
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> None
  in
  go [] li

let is_fun_expr e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> go e
    | _ -> false
  in
  go e

let mutable_creators =
  [ [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Buffer"; "create" ]; [ "Array"; "make" ];
    [ "Array"; "init" ]; [ "Array"; "create_float" ]; [ "Bytes"; "create" ];
    [ "Bytes"; "make" ]; [ "Queue"; "create" ]; [ "Stack"; "create" ];
    [ "Atomic"; "make" ] ]

let path_equal a b = List.equal String.equal a b
let joined p = String.concat "." p

let creates_mutable rhs =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match path_of_lident txt with
              | Some p when List.exists (path_equal p) mutable_creators -> found := true
              | _ -> ())
          | _ -> ());
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it rhs;
  !found

(* ---------------- per-file collection -------------------------------- *)

type file_info = {
  fi_path : string;
  fi_dir : string;
  fi_module : string;  (** capitalized basename *)
  fi_kind : Source_scan.file_kind;
  (* joined def path -> def id *)
  fi_defs : (string, int) Hashtbl.t;
  (* module aliases: (scope, name, target path), file order *)
  mutable fi_aliases : (string list * string * string list) list;
  (* opens: (scope they appear in, opened path) *)
  mutable fi_opens : (string list * string list) list;
}

type pre_def = {
  pd_file : string;
  pd_path : string list;
  pd_scope : string list;  (** enclosing module path (path minus name) *)
  pd_line : int;
  pd_col : int;
  pd_mutable : bool;
  pd_body : expression;
}

let module_name_of_file f =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename f))

(* The library name for a source directory: `(name X)` from its dune
   file when present (lib/core is library `lifeguard`), the directory
   basename otherwise (fixture corpora have no dune). *)
let lib_name_of_dir dir =
  let from_dune path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            let n = String.length text in
            let rec find i =
              if i + 5 > n then None
              else if String.sub text i 5 = "(name" then begin
                let rec skip j =
                  if j < n && (text.[j] = ' ' || text.[j] = '\n' || text.[j] = '\t') then
                    skip (j + 1)
                  else j
                in
                let s = skip (i + 5) in
                let rec tok j =
                  if
                    j < n
                    && (match text.[j] with
                       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
                       | _ -> false)
                  then tok (j + 1)
                  else j
                in
                let e = tok s in
                if e > s then Some (String.sub text s (e - s)) else None
              end
              else find (i + 1)
            in
            find 0)
  in
  match from_dune (Filename.concat dir "dune") with
  | Some n -> n
  | None -> Filename.basename dir

(* Exported value paths of a file, per its sibling .mli. [None] means no
   (readable) .mli: the whole surface is exported. *)
let exports_of_mli ml_path =
  let mli = Filename.remove_extension ml_path ^ ".mli" in
  if not (Sys.file_exists mli) then None
  else
    match
      let ic = open_in_bin mli in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lexbuf = Lexing.from_channel ic in
          Location.init lexbuf mli;
          Parse.interface lexbuf)
    with
    | exception _ -> None
    | items ->
        let out = Hashtbl.create 32 in
        let rec walk prefix items =
          List.iter
            (fun (si : signature_item) ->
              match si.psig_desc with
              | Psig_value vd -> Hashtbl.replace out (prefix ^ vd.pval_name.txt) ()
              | Psig_module { pmd_name = { txt = Some m; _ }; pmd_type; _ } -> (
                  match pmd_type.pmty_desc with
                  | Pmty_signature s -> walk (prefix ^ m ^ ".") s
                  | _ -> ())
              | _ -> ())
            items
        in
        walk "" items;
        Some out

(* ---------------- build ---------------------------------------------- *)

let build ~(files : (string * structure * Source_scan.file_kind) list) =
  let files = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) files in
  (* Directory tables. *)
  let dirs = Hashtbl.create 8 in (* dir -> (Module name -> file path) *)
  let lib_of_dir = Hashtbl.create 8 in
  let umbrella = Hashtbl.create 8 in (* capitalized lib name -> dir *)
  List.iter
    (fun (f, _, _) ->
      let dir = Filename.dirname f in
      let mods =
        match Hashtbl.find_opt dirs dir with
        | Some m -> m
        | None ->
            let m = Hashtbl.create 8 in
            Hashtbl.add dirs dir m;
            let lib = lib_name_of_dir dir in
            Hashtbl.add lib_of_dir dir lib;
            Hashtbl.replace umbrella (String.capitalize_ascii lib) dir;
            m
      in
      Hashtbl.replace mods (module_name_of_file f) f)
    files;
  (* Pass 1: definitions, aliases, opens. *)
  let infos = Hashtbl.create 32 in (* file -> file_info *)
  let pre = ref [] in (* pre_defs, reversed *)
  let n_defs = ref 0 in
  List.iter
    (fun (f, str, kind) ->
      let fi =
        {
          fi_path = f;
          fi_dir = Filename.dirname f;
          fi_module = module_name_of_file f;
          fi_kind = kind;
          fi_defs = Hashtbl.create 32;
          fi_aliases = [];
          fi_opens = [];
        }
      in
      Hashtbl.add infos f fi;
      let add_def scope name loc rhs =
        let path = scope @ [ name ] in
        let key = joined path in
        if not (Hashtbl.mem fi.fi_defs key) then begin
          let id = !n_defs in
          incr n_defs;
          Hashtbl.add fi.fi_defs key id;
          let p = loc.Location.loc_start in
          pre :=
            {
              pd_file = f;
              pd_path = path;
              pd_scope = scope;
              pd_line = p.Lexing.pos_lnum;
              pd_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
              pd_mutable = (not (is_fun_expr rhs)) && creates_mutable rhs;
              pd_body = rhs;
            }
            :: !pre
        end
      in
      let rec pat_names (p : pattern) =
        match p.ppat_desc with
        | Ppat_var { txt; loc } -> [ (txt, loc) ]
        | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pat_names p
        | _ -> []
      in
      let rec module_shape me =
        match me.pmod_desc with
        | Pmod_structure s -> `Structure s
        | Pmod_constraint (me, _) -> module_shape me
        | Pmod_ident { txt; _ } -> (
            match path_of_lident txt with Some p -> `Alias p | None -> `Other)
        | _ -> `Other
      in
      let rec walk_str scope items =
        List.iter
          (fun (si : structure_item) ->
            match si.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    List.iter
                      (fun (name, loc) -> add_def scope name loc vb.pvb_expr)
                      (pat_names vb.pvb_pat))
                  vbs
            | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
                match module_shape pmb_expr with
                (* lint: allow LG-PERF-APPEND (one element at bounded module depth) *)
                | `Structure s -> walk_str (scope @ [ m ]) s
                | `Alias p -> fi.fi_aliases <- (scope, m, p) :: fi.fi_aliases
                | `Other -> ())
            | Pstr_recmodule mbs ->
                List.iter
                  (fun { pmb_name; pmb_expr; _ } ->
                    match (pmb_name.txt, module_shape pmb_expr) with
                    (* lint: allow LG-PERF-APPEND (one element at bounded module depth) *)
                    | Some m, `Structure s -> walk_str (scope @ [ m ]) s
                    | Some m, `Alias p -> fi.fi_aliases <- (scope, m, p) :: fi.fi_aliases
                    | _ -> ())
                  mbs
            | Pstr_open { popen_expr; _ } -> (
                match popen_expr.pmod_desc with
                | Pmod_ident { txt; _ } -> (
                    match path_of_lident txt with
                    | Some p -> fi.fi_opens <- (scope, p) :: fi.fi_opens
                    | None -> ())
                | _ -> ())
            | Pstr_include { pincl_mod; _ } -> (
                (* `include M` re-exports M's values unqualified: treat as
                   an open for resolution purposes. *)
                match pincl_mod.pmod_desc with
                | Pmod_ident { txt; _ } -> (
                    match path_of_lident txt with
                    | Some p -> fi.fi_opens <- (scope, p) :: fi.fi_opens
                    | None -> ())
                | _ -> ())
            | _ -> ())
          items
      in
      walk_str [] str)
    files;
  let pre = Array.of_list (List.rev !pre) in
  (* Materialize defs with displays and exports. *)
  let export_tables = Hashtbl.create 32 in
  let exported (pd : pre_def) =
    let tbl =
      match Hashtbl.find_opt export_tables pd.pd_file with
      | Some t -> t
      | None ->
          let t = exports_of_mli pd.pd_file in
          Hashtbl.add export_tables pd.pd_file t;
          t
    in
    match tbl with None -> true | Some t -> Hashtbl.mem t (joined pd.pd_path)
  in
  let display_of (pd : pre_def) =
    let fi = Hashtbl.find infos pd.pd_file in
    let lib = String.capitalize_ascii (Hashtbl.find lib_of_dir fi.fi_dir) in
    let prefix = if String.equal lib fi.fi_module then [ lib ] else [ lib; fi.fi_module ] in
    joined (prefix @ pd.pd_path)
  in
  let defs =
    Array.mapi
      (fun id pd ->
        {
          id;
          file = pd.pd_file;
          path = pd.pd_path;
          display = display_of pd;
          line = pd.pd_line;
          col = pd.pd_col;
          exported = exported pd;
          mutable_global = pd.pd_mutable;
          kind = (Hashtbl.find infos pd.pd_file).fi_kind;
          calls = [];
          externals = [];
          catchall_line = None;
        })
      pre
  in
  (* ---------------- resolution --------------------------------------- *)
  let lookup_in_file file path =
    match Hashtbl.find_opt infos file with
    | None -> None
    | Some fi -> Hashtbl.find_opt fi.fi_defs (joined path)
  in
  (* Expand a leading module alias of [path] using [fi]'s alias table,
     innermost scope first. One level only; chains re-enter via retry. *)
  let expand_alias fi scope path =
    match path with
    | [] -> None
    | head :: rest ->
        let applicable (ascope, name, _) =
          String.equal name head
          &&
          let rec prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: xs, y :: ys when String.equal x y -> prefix xs ys
            | _ -> false
          in
          prefix ascope scope
        in
        (* innermost (longest scope) applicable alias wins *)
        let best =
          List.fold_left
            (fun acc ((ascope, _, _) as a) ->
              if applicable a then
                match acc with
                | Some (bscope, _, _) when List.length bscope >= List.length ascope -> acc
                | _ -> Some a
              else acc)
            None fi.fi_aliases
        in
        Option.map (fun (_, _, target) -> target @ rest) best
  in
  let module_file dir m =
    match Hashtbl.find_opt dirs dir with
    | None -> None
    | Some mods -> Hashtbl.find_opt mods m
  in
  (* Absolute resolution: sibling module of [dir], or umbrella library
     module, possibly through one alias hop inside the target file. *)
  let rec resolve_abs ~depth dir path =
    if depth > 3 then None
    else
      match path with
      | [] | [ _ ] -> None
      | m :: rest -> (
          match module_file dir m with
          | Some f' -> lookup_deep ~depth f' rest
          | None -> (
              match Hashtbl.find_opt umbrella m with
              | None -> None
              | Some dir' -> (
                  match rest with
                  | [] -> None
                  | m2 :: rest2 -> (
                      match module_file dir' m2 with
                      | Some f' when rest2 <> [] -> lookup_deep ~depth f' rest2
                      | Some f' -> lookup_in_file f' rest2
                      | None -> (
                          (* alias inside the umbrella file, e.g.
                             Experiments.R with module R = Runner *)
                          let lib = Hashtbl.find lib_of_dir dir' in
                          match module_file dir' (String.capitalize_ascii lib) with
                          | None -> None
                          | Some uf -> (
                              match Hashtbl.find_opt infos uf with
                              | None -> None
                              | Some ufi -> (
                                  match expand_alias ufi [] rest with
                                  | Some p' -> resolve_abs ~depth:(depth + 1) dir' p'
                                  | None -> None)))))))
  and lookup_deep ~depth f path =
    match lookup_in_file f path with
    | Some id -> Some id
    | None -> (
        (* nested module in f, or an alias defined in f *)
        match Hashtbl.find_opt infos f with
        | None -> None
        | Some fi -> (
            match expand_alias fi [] path with
            | Some p' when depth <= 3 ->
                resolve_abs ~depth:(depth + 1) fi.fi_dir p'
            | _ -> None))
  in
  let resolve fi ~scope ~local_opens ~local_aliases path =
    let path =
      (* local `let module R = Retry in` aliases first, then file-level *)
      match path with
      | head :: rest -> (
          match List.assoc_opt head local_aliases with
          | Some target -> target @ rest
          | None -> (
              match expand_alias fi scope path with Some p -> p | None -> path))
      | [] -> path
    in
    (* enclosing module scopes, innermost first, then the file toplevel *)
    let rec scopes acc s =
      match s with [] -> List.rev ([] :: acc) | _ :: _ -> scopes (s :: acc) (List.rev (List.tl (List.rev s)))
    in
    let in_scope =
      List.find_map (fun pre -> lookup_in_file fi.fi_path (pre @ path)) (scopes [] scope)
    in
    match in_scope with
    | Some id -> Some id
    | None -> (
        (* file-level opens applicable to this scope + local opens *)
        let opens =
          local_opens
          @ List.filter_map
              (fun (oscope, p) ->
                let rec prefix a b =
                  match (a, b) with
                  | [], _ -> true
                  | x :: xs, y :: ys when String.equal x y -> prefix xs ys
                  | _ -> false
                in
                if prefix oscope scope then Some p else None)
              fi.fi_opens
        in
        let via_open =
          List.find_map
            (fun o ->
              match lookup_in_file fi.fi_path (o @ path) with
              | Some id -> Some id
              | None -> resolve_abs ~depth:0 fi.fi_dir (o @ path))
            opens
        in
        match via_open with
        | Some id -> Some id
        | None -> resolve_abs ~depth:0 fi.fi_dir path)
  in
  (* Pass 2: edges, externals, catch-alls per definition body. *)
  Array.iteri
    (fun id pd ->
      let def = defs.(id) in
      let fi = Hashtbl.find infos pd.pd_file in
      let local_opens = ref [] in
      let local_aliases = ref [] in
      let calls = ref [] in
      let externals = ref [] in
      let seen_edges = Hashtbl.create 8 in
      let reference txt (loc : Location.t) =
        match path_of_lident txt with
        | None -> ()
        | Some p -> (
            let line = loc.Location.loc_start.Lexing.pos_lnum in
            match
              resolve fi ~scope:pd.pd_scope ~local_opens:!local_opens
                ~local_aliases:!local_aliases p
            with
            | Some callee when callee <> id ->
                if not (Hashtbl.mem seen_edges callee) then begin
                  Hashtbl.add seen_edges callee ();
                  calls := (callee, line) :: !calls
                end
            | Some _ -> ()
            | None -> if List.length p > 1 then externals := (p, line) :: !externals
              else
                (* bare names only matter when they are stdlib primitives
                   (print_endline, open_in, ...): keep them for Effects,
                   which filters against its primitive tables. *)
                externals := (p, line) :: !externals)
      in
      let is_catch_all (p : pattern) =
        let rec go p =
          match p.ppat_desc with
          | Ppat_any -> true
          | Ppat_alias (p, _) | Ppat_constraint (p, _) -> go p
          | Ppat_or (a, b) -> go a || go b
          | _ -> false
        in
        go p
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              match e.pexp_desc with
              | Pexp_ident { txt; loc } -> reference txt loc
              | Pexp_try (_, cases) ->
                  if Option.is_none def.catchall_line then
                    List.iter
                      (fun c ->
                        if is_catch_all c.pc_lhs && Option.is_none def.catchall_line then
                          def.catchall_line <-
                            Some c.pc_lhs.ppat_loc.Location.loc_start.Lexing.pos_lnum)
                      cases;
                  Ast_iterator.default_iterator.expr it e
              | Pexp_open ({ popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }, body)
                -> (
                  match path_of_lident txt with
                  | Some p ->
                      local_opens := p :: !local_opens;
                      it.expr it body;
                      local_opens := List.tl !local_opens
                  | None -> it.expr it body)
              | Pexp_letmodule
                  ({ txt = Some m; _ }, { pmod_desc = Pmod_ident { txt; _ }; _ }, body) -> (
                  match path_of_lident txt with
                  | Some p ->
                      local_aliases := (m, p) :: !local_aliases;
                      it.expr it body;
                      local_aliases := List.tl !local_aliases
                  | None -> it.expr it body)
              | _ -> Ast_iterator.default_iterator.expr it e);
        }
      in
      it.expr it pd.pd_body;
      def.calls <- List.rev !calls;
      def.externals <- List.rev !externals)
    pre;
  (* ---------------- Tarjan SCC (callee-first emission order) ---------- *)
  let n = Array.length defs in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let onstack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if onstack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      defs.(v).calls;
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            onstack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let by_display = Hashtbl.create n in
  Array.iter (fun d -> if not (Hashtbl.mem by_display d.display) then
                         Hashtbl.add by_display d.display d.id) defs;
  { defs; by_display; sccs = List.rev !sccs }

let find t display = Hashtbl.find_opt t.by_display display
