(* Path_store invariants: physical sharing within a world, world-local
   ids, share-nothing across worlds, allocation-free O(1) equality on
   interned values, and the session_down adj-out-clearing regression. *)

open Net
open Topology
open Helpers

module Store = Bgp.Path_store
module P = Bgp.As_path

let test_intern_basics () =
  let s = Store.create () in
  let p1 = P.of_list [ asn 1; asn 2; asn 3 ] in
  let p2 = P.of_list [ asn 1; asn 2; asn 3 ] in
  Alcotest.(check int) "uninterned id is -1" (-1) (P.Internal.id p1);
  let i1 = Store.intern_path s p1 in
  let i2 = Store.intern_path s p2 in
  Alcotest.(check bool) "equal paths collapse to one physical value" true (i1 == i2);
  Alcotest.(check bool) "interned id stamped" true (P.Internal.id i1 >= 0);
  Alcotest.(check bool) "interning is idempotent" true (Store.intern_path s i1 == i1);
  Alcotest.(check int) "one distinct path" 1 (Store.path_count s);
  let q = Store.intern_path s (P.of_list [ asn 9 ]) in
  Alcotest.(check bool) "distinct paths get distinct ids" true
    (P.Internal.id q <> P.Internal.id i1);
  Alcotest.(check int) "two distinct paths" 2 (Store.path_count s)

let test_intern_ann () =
  let s = Store.create () in
  let mk () =
    Bgp.Route.announcement ~prefix:production ~path:(P.of_list [ asn 1; asn 2 ]) ()
  in
  let a1 = Store.intern_ann s (mk ()) in
  let a2 = Store.intern_ann s (mk ()) in
  Alcotest.(check bool) "equal announcements collapse" true (a1 == a2);
  Alcotest.(check bool) "the announcement's path is interned too" true
    (a1.Bgp.Route.path == Store.intern_path s (P.of_list [ asn 1; asn 2 ]));
  Alcotest.(check int) "one distinct announcement" 1 (Store.ann_count s);
  Alcotest.(check bool) "announcement_equal hits the == fast path" true
    (Bgp.Route.announcement_equal a1 a2)

(* E and F both select [A B O] for the production prefix; inside one world
   the shared interner must collapse their RIB entries onto one physical
   announcement, and a fresh structural copy must intern to that value. *)
let test_world_shares_paths () =
  let w = fig2_world () in
  Bgp.Network.announce w.net ~origin:o ~prefix:production ();
  converge w;
  let store = Bgp.Network.path_store w.net in
  let best_at x =
    match Bgp.Network.best_route w.net x production with
    | Some entry -> entry.Bgp.Route.ann
    | None -> Alcotest.fail "expected a best route"
  in
  let at_e = best_at e and at_f = best_at f in
  check_path "E best is [A B O]" [ 30; 20; 10 ] (P.to_list at_e.Bgp.Route.path);
  Alcotest.(check bool) "E and F share one physical announcement" true (at_e == at_f);
  let fresh =
    Bgp.Route.announcement ~prefix:production ~path:(P.of_list [ a; b; o ]) ()
  in
  Alcotest.(check bool) "a structural copy interns to the shared value" true
    (Store.intern_ann store fresh == at_e)

let test_worlds_share_nothing () =
  let s1 = Store.create () and s2 = Store.create () in
  let p1 = Store.intern_path s1 (P.of_list [ asn 7; asn 8 ]) in
  let p2 = Store.intern_path s2 (P.of_list [ asn 7; asn 8 ]) in
  Alcotest.(check bool) "distinct stores keep distinct physical values" true
    (not (p1 == p2));
  Alcotest.(check bool) "equal still answers structurally across worlds" true
    (P.equal p1 p2);
  (* ids are assigned per store in arrival order, so two worlds that do the
     same work stamp the same ids — the property --jobs byte-identity rests on *)
  Alcotest.(check int) "ids are world-local and deterministic" (P.Internal.id p1)
    (P.Internal.id p2)

let test_equal_allocation_free () =
  let s = Store.create () in
  let long last = P.of_list (List.init 500 (fun i -> asn (if i = 499 then last else i + 1))) in
  let p = Store.intern_path s (long 500) in
  let q = Store.intern_path s (long 500) in
  Alcotest.(check bool) "interned long paths physically shared" true (p == q);
  (* same length, differs only in the final element: worst case for a
     structural walk, settled by the cached hash instead *)
  let r = Store.intern_path s (long 9999) in
  let hits = ref 0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    if P.equal p q then incr hits;
    if P.equal p r then incr hits
  done;
  let per_call = (Gc.minor_words () -. w0) /. 20_000. in
  Alcotest.(check int) "equality answers correctly" 10_000 !hits;
  Alcotest.(check bool)
    (Printf.sprintf "As_path.equal allocates nothing (%.4f words/call)" per_call)
    true (per_call < 0.01)

(* Regression for the session_down path: downing a session must drop that
   neighbor's whole adj-RIB-out, so nothing leaks to it while down and
   session_up re-advertises the *current* table rather than suppressing it
   as already-sent. *)
let test_session_down_clears_adj_out () =
  let sp =
    Bgp.Speaker.create ~asn:(asn 100) ~config:Bgp.Policy.default
      ~neighbors:[ (asn 200, Relationship.Customer); (asn 201, Relationship.Customer) ]
      ()
  in
  let plain = P.plain ~origin:(asn 100) in
  let ups =
    Bgp.Speaker.originate sp ~now:0. ~prefix:production ~per_neighbor:(fun _ -> Some plain)
  in
  Alcotest.(check int) "announced to both neighbors" 2 (List.length ups);
  let downs = Bgp.Speaker.session_down sp ~now:1. ~neighbor:(asn 200) in
  Alcotest.(check int) "leaf session_down sends nothing" 0 (List.length downs);
  let ups2 =
    Bgp.Speaker.originate sp ~now:2. ~prefix:production
      ~per_neighbor:(fun _ -> Some (P.prepended ~origin:(asn 100) ~copies:2))
  in
  Alcotest.(check bool) "no update leaks to the downed neighbor" true
    (List.for_all (fun (n, _) -> not (Asn.equal n (asn 200))) ups2);
  match Bgp.Speaker.session_up sp ~now:3. ~neighbor:(asn 200) with
  | [ (n, Bgp.Speaker.Announce ann) ] ->
      Alcotest.(check bool) "re-announce goes to the revived neighbor" true
        (Asn.equal n (asn 200));
      check_path "session_up re-sends the current (prepended) table" [ 100; 100 ]
        (P.to_list ann.Bgp.Route.path)
  | _ -> Alcotest.fail "expected exactly one re-announcement on session_up"

let suite =
  [
    Alcotest.test_case "intern_path basics" `Quick test_intern_basics;
    Alcotest.test_case "intern_ann basics" `Quick test_intern_ann;
    Alcotest.test_case "one world shares physical values" `Quick test_world_shares_paths;
    Alcotest.test_case "worlds share nothing" `Quick test_worlds_share_nothing;
    Alcotest.test_case "equality is allocation-free" `Quick test_equal_allocation_free;
    Alcotest.test_case "session_down clears adj-out" `Quick test_session_down_clears_adj_out;
  ]
