lib/bgp/as_path.ml: Asn Format List Net String
