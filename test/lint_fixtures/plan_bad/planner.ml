(* A planner that is NOT a pure function of the world: each exported
   entry point reaches one forbidden effect. LG-PLAN-STALE must fire on
   all three — including the direct clock read, which the LG-EFF family
   would skip as the syntactic rule's territory. *)

(* Direct wall-clock read: the plan is stamped with build time, so
   rebuilding it from the same world gives a different plan. *)
let build_stamped targets = (targets, Unix.gettimeofday ())

(* Laundered randomness: syntactically clean here, but the chain
   Planner.shuffle -> Jitter.pick -> Random.int taints the plan. *)
let shuffle targets = Jitter.pick targets

(* Module-level mutable memo: two planners in different worlds would
   share it, so a plan depends on what was planned before. *)
let memo = Hashtbl.create 7

let build_cached k =
  match Hashtbl.find_opt memo (k : int) with
  | Some v -> v
  | None ->
      Hashtbl.replace memo k k;
      k
