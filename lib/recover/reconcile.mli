(** Recovery reconciliation: the journal against collector ground truth.

    After a resumed run reaches its horizon, reconciliation replays the
    final journal as a state machine over the controller's single
    active-poison slot and checks it against what the BGP collector
    actually observes, delivering the exactly-once verdict:

    - {e no double poison}: a [Poison_announce] while an episode is
      still open would mean a re-issued (rather than re-derived) action;
    - {e no orphaned poison}: every vantage view still carrying a
      poisoned announcement at the horizon must belong to the journal's
      open episode — a poison the journal says was withdrawn but a view
      still carries (outside the convergence [grace] window) is stranded
      state in the global routing system, the exact failure mode a
      crashed controller would leave behind without recovery. *)

open Net

type t = {
  records : int;
  replayed : int;  (** prefix records verified by replay *)
  fresh : int;
  poisons : int;
  unpoisons : int;
  double_poisons : int;
  orphaned : int;
  settling : int;  (** views still converging after a withdrawal inside [grace] *)
  active_at_horizon : Asn.t option;  (** the journal's open episode, if any *)
  clean : bool;  (** no doubles, no orphans *)
}

val check :
  ?replayed:int ->
  ?grace:float ->
  horizon:float ->
  poisoned_views:(Asn.t * Asn.t option) list ->
  Record.t list ->
  t
(** [check ~horizon ~poisoned_views records]: [poisoned_views] gives,
    per vantage point, the poisoned AS its current route for the
    production prefix carries (as announced by the origin), [None] for
    baseline or no route. [grace] (default 0) is the settle window for
    withdrawals near the horizon. *)

val render : t -> string
(** One line, stable field order. *)
