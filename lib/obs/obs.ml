(** Observability: structured tracing + metrics for the simulator
    itself. See the interface for the layering contract. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Span = Span
