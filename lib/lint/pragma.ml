(* Comment-pragma suppressions: `(* lint: allow LG-EFF-CLOCK *)` (one or
   more rule ids, comma- or space-separated) silences matching violations
   reported on the pragma's own line or on the line directly below it —
   so the pragma can ride at the end of the offending line or sit on its
   own line above a definition.

   Parsing is a plain text scan over the file, independent of the AST
   walk: compiler-libs drops comments during parsing, and a line-based
   scan keeps the pragma usable on lines the parser attributes to a
   different location (e.g. the `let` of a multi-line binding). *)

type t = (int * string list) list
(* (line, rule ids), 1-based, ascending. *)

let marker = "lint: allow"

(* Extract rule ids out of the pragma text following [marker]: tokens
   starting with "LG-", stopping at the comment close. *)
let rules_of_tail tail =
  let tail =
    match String.index_opt tail '*' with
    | Some i when i + 1 < String.length tail && tail.[i + 1] = ')' -> String.sub tail 0 i
    | _ -> tail
  in
  String.split_on_char ' ' tail
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if String.length tok > 3 && String.sub tok 0 3 = "LG-" then Some tok else None)

let find_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else go (i + 1)
  in
  go 0

let of_lines lines =
  List.rev
  @@ snd
  @@ List.fold_left
       (fun (lineno, acc) line ->
         match find_marker line with
         | None -> (lineno + 1, acc)
         | Some i -> (
             match rules_of_tail (String.sub line i (String.length line - i)) with
             | [] -> (lineno + 1, acc)
             | rules -> (lineno + 1, (lineno, rules) :: acc)))
       (1, []) lines

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line -> go (line :: acc)
          in
          of_lines (go []))

let suppresses t ~rule ~line =
  List.exists
    (fun (pline, rules) ->
      (pline = line || pline = line - 1) && List.exists (String.equal rule) rules)
    t

(* Filter a violation list, loading each file's pragmas at most once.
   Files without the marker string cost one read and no allocation of
   pragma entries. *)
let filter violations =
  let cache : (string, t) Hashtbl.t = Hashtbl.create 8 in
  let pragmas file =
    match Hashtbl.find_opt cache file with
    | Some p -> p
    | None ->
        let p = load file in
        Hashtbl.add cache file p;
        p
  in
  List.filter
    (fun (v : Source_scan.violation) ->
      not (suppresses (pragmas v.file) ~rule:(Rule.id v.rule) ~line:v.line))
    violations
