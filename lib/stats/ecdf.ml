type t = { xs : float array; cum : float array (* normalized cumulative mass *) }

let build values weights =
  let n = Array.length values in
  if n = 0 then invalid_arg "Ecdf: empty sample";
  if Array.length weights <> n then invalid_arg "Ecdf: weight/value length mismatch";
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
  let xs = Array.map (fun i -> values.(i)) idx in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun k i ->
      let w = weights.(i) in
      if w < 0.0 then invalid_arg "Ecdf: negative weight";
      total := !total +. w;
      cum.(k) <- !total)
    idx;
  if !total <= 0.0 then invalid_arg "Ecdf: zero total weight";
  for k = 0 to n - 1 do
    cum.(k) <- cum.(k) /. !total
  done;
  { xs; cum }

let of_samples values = build values (Array.make (Array.length values) 1.0)
let weighted ~values ~weights = build values weights

let eval t x =
  (* Largest index with xs.(i) <= x, by binary search. *)
  let n = Array.length t.xs in
  if x < t.xs.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid - 1
    done;
    t.cum.(!lo)
  end

let quantile t q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Ecdf.quantile: q out of (0,1]";
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) >= q then hi := mid else lo := mid + 1
  done;
  t.xs.(!lo)

let support t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let series t ~points =
  if points < 2 then invalid_arg "Ecdf.series: need >= 2 points";
  let lo, hi = support t in
  let positions =
    if lo > 0.0 && hi > lo then begin
      let llo = log lo and lhi = log hi in
      List.init points (fun i ->
          let f = float_of_int i /. float_of_int (points - 1) in
          exp (llo +. (f *. (lhi -. llo))))
    end
    else
      List.init points (fun i ->
          let f = float_of_int i /. float_of_int (points - 1) in
          lo +. (f *. (hi -. lo)))
  in
  List.map (fun x -> (x, eval t x)) positions

let series_at t xs = List.map (fun x -> (x, eval t x)) xs
