(** Output formats for lint reports: plain text, JSON, SARIF 2.1.0 (for
    CI code-scanning upload) and GitHub workflow commands (inline diff
    annotations). *)

type format = Text | Json | Sarif | Github

val format_of_string : string -> format option
(** ["text"], ["json"], ["sarif"], ["github"]. *)

val text_line : Source_scan.violation -> string

val github_line : ?level:string -> Source_scan.violation -> string
(** A [::warning]/[::error] workflow command ([level] defaults to
    ["warning"]). *)

val render :
  format -> violations:Source_scan.violation list -> errors:(string * string) list -> string
(** Render a whole report. Deterministic for a deterministic input
    order. *)

val json_valid : string -> (unit, string) result
(** Recursive-descent JSON well-formedness check (no values
    materialized, no dependencies) — keeps the SARIF/JSON emitters
    honest at test time. *)
