lib/core/decide.ml: Array Asn Format Isolation List Net Printf Splice Stats Topology
