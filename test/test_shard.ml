(* Sharded single-world simulation: the graph partitioner, the barrier
   exchange, and the --shards byte-equality discipline. *)

open Net
open Topology
open Workloads

(* ------------------------------------------------------------------ *)
(* The partitioner. *)

let gen_318 seed =
  (Topo_gen.generate ~params:Topo_gen.default_params ~seed ()).Topo_gen.graph

let edge_count g =
  List.fold_left (fun acc a -> acc + As_graph.degree g a) 0 (As_graph.as_list g) / 2

let test_partition_deterministic () =
  let g = gen_318 42 in
  let p1 = Partition.compute g ~parts:4 ~seed:7 in
  let p2 = Partition.compute g ~parts:4 ~seed:7 in
  Alcotest.(check int) "same cut" (Partition.cut_edges p1) (Partition.cut_edges p2);
  Alcotest.(check bool)
    "same assignment" true
    (List.equal
       (fun (a1, s1) (a2, s2) -> Asn.equal a1 a2 && s1 = s2)
       (Partition.assignment p1) (Partition.assignment p2));
  let n = As_graph.as_count g in
  let total = Array.init 4 (Partition.size p1) |> Array.fold_left ( + ) 0 in
  Alcotest.(check int) "sizes partition the graph" n total

let test_partition_balanced_and_bounded () =
  let g = gen_318 42 in
  let n = As_graph.as_count g in
  let edges = edge_count g in
  List.iter
    (fun parts ->
      let p = Partition.compute g ~parts ~seed:7 in
      let cap = ((n + parts - 1) / parts) + 2 in
      for i = 0 to parts - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "shard %d/%d within cap (%d <= %d)" i parts (Partition.size p i) cap)
          true
          (Partition.size p i <= cap)
      done;
      (* BFS regions around separated high-degree cores must beat a
         random assignment, whose expected cut is edges * (parts-1)/parts. *)
      let cut = Partition.cut_edges p in
      Alcotest.(check bool)
        (Printf.sprintf "cut bounded at %d parts (%d of %d edges)" parts cut edges)
        true
        (cut * parts < edges * (parts - 1)))
    [ 2; 4; 8 ]

let test_partition_edge_cases () =
  let g = gen_318 42 in
  let n = As_graph.as_count g in
  let p1 = Partition.compute g ~parts:1 ~seed:0 in
  Alcotest.(check int) "one part has no cut" 0 (Partition.cut_edges p1);
  let huge = Partition.compute g ~parts:(10 * n) ~seed:0 in
  Alcotest.(check int) "parts clamp to the AS count" n (Partition.parts huge);
  Alcotest.(check bool)
    "rejects parts < 1" true
    (try
       ignore (Partition.compute g ~parts:0 ~seed:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sharded worlds: byte-equality across shard counts and pool widths. *)

(* A compact but busy run: announce, converge, break a boundary-crossing
   link mid-flight, converge, restore, converge. The fingerprint captures
   every observable the experiments read: message totals, each feed's
   final view, and the full collector timeline. *)
let mux_fingerprint ?shards ?shard_pool () =
  let mux =
    Scenarios.bgpmux ~ases:80 ~infrastructure:Scenarios.No_infrastructure ?shards ?shard_pool
      ~seed:3 ()
  in
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  Bgp.Network.announce net ~origin:mux.Scenarios.origin ~prefix:Scenarios.production_prefix ();
  Bgp.Network.run_until_quiet ~timeout:36000.0 net;
  (match mux.Scenarios.providers with
  | p :: _ -> begin
      Bgp.Network.fail_link net ~a:mux.Scenarios.origin ~b:p;
      Bgp.Network.run_until_quiet ~timeout:36000.0 net;
      Bgp.Network.restore_link net ~a:mux.Scenarios.origin ~b:p;
      Bgp.Network.run_until_quiet ~timeout:36000.0 net
    end
  | [] -> ());
  let route_str = function
    | None -> "-"
    | Some e -> Bgp.As_path.to_string e.Bgp.Route.ann.Bgp.Route.path
  in
  let log =
    Bgp.Network.Collector.log mux.Scenarios.collector
    |> List.map (fun r ->
           Printf.sprintf "%.3f %s %s %s" r.Bgp.Network.time
             (Asn.to_string r.Bgp.Network.speaker)
             (Prefix.to_string r.Bgp.Network.prefix)
             (route_str r.Bgp.Network.route))
  in
  let views =
    List.map
      (fun feed ->
        route_str
          (Bgp.Network.Collector.current_route mux.Scenarios.collector ~peer:feed
             ~prefix:Scenarios.production_prefix))
      mux.Scenarios.feeds
  in
  (Bgp.Network.message_count net, views, log)

let check_fingerprint_equal label (m1, v1, l1) (m2, v2, l2) =
  Alcotest.(check int) (label ^ ": message count") m1 m2;
  Alcotest.(check (list string)) (label ^ ": feed views") v1 v2;
  Alcotest.(check (list string)) (label ^ ": collector log") l1 l2

let test_shard_count_invariance () =
  let k1 = mux_fingerprint ~shards:1 () in
  let k2 = mux_fingerprint ~shards:2 () in
  let k4 = mux_fingerprint ~shards:4 () in
  check_fingerprint_equal "shards 1 vs 2" k1 k2;
  check_fingerprint_equal "shards 1 vs 4" k1 k4;
  let _, _, log = k1 in
  Alcotest.(check bool) "the run did something" true (List.length log > 10)

let test_pool_width_invariance () =
  let inline = mux_fingerprint ~shards:2 () in
  let pooled j =
    Par.Pool.with_pool ~jobs:j (fun pool -> mux_fingerprint ~shards:2 ~shard_pool:pool ())
  in
  check_fingerprint_equal "inline vs 2-domain pool" inline (pooled 2);
  check_fingerprint_equal "inline vs 4-domain pool" inline (pooled 4)

(* ------------------------------------------------------------------ *)
(* Barrier exchange: the 2-shard golden run. *)

let test_barrier_exchange_golden () =
  let mux =
    Scenarios.bgpmux ~ases:80 ~infrastructure:Scenarios.No_infrastructure ~shards:2
      ~record_barriers:true ~seed:3 ()
  in
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  Bgp.Network.announce net ~origin:mux.Scenarios.origin ~prefix:Scenarios.production_prefix ();
  Bgp.Network.run_until_quiet ~timeout:36000.0 net;
  let history = Bgp.Network.barrier_history net in
  let barriers = List.length history in
  let injected = List.fold_left (fun acc (_, i, _) -> acc + i) 0 history in
  let cut_injected = List.fold_left (fun acc (_, _, c) -> acc + c) 0 history in
  Alcotest.(check int) "barrier count" (Bgp.Network.barrier_count net) barriers;
  Alcotest.(check int)
    "every delivery crossed the barrier" (Bgp.Network.message_count net) injected;
  Alcotest.(check int) "cut messages" (Bgp.Network.cut_message_count net) cut_injected;
  Alcotest.(check bool)
    (Printf.sprintf "cut messages flowed (%d of %d)" cut_injected injected)
    true
    (cut_injected > 0 && cut_injected < injected);
  (* Golden pin: convergence of one announcement over the seed-3 80-AS
     world at 2 shards. Any change to partitioning, window placement or
     canonical ordering shows up here first. *)
  Alcotest.(check int) "golden: barriers" 79 barriers;
  Alcotest.(check int) "golden: messages" 214 injected;
  Alcotest.(check int) "golden: cut messages" 68 cut_injected;
  (* Windows start at or after the previous window's start, and nothing
     is injected before the frontier it was due at. *)
  let rec monotone = function
    | (t1, _, _) :: ((t2, _, _) :: _ as rest) -> t1 <= t2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "window starts are monotone" true (monotone history)

(* ------------------------------------------------------------------ *)
(* The fleet service, sharded: full-report equality under faults. *)

let fleet_config =
  {
    Fleet.Service.default_config with
    Fleet.Service.target_count = 6;
    duration = 10800.0;
    outages_per_day = 48.0;
    faults =
      {
        Bgp.Faults.none with
        Bgp.Faults.session_flap_mtbf = 14400.0;
        link_mtbf = 43200.0;
        router_mtbf = 86400.0;
        update_loss = 0.01;
        update_dup = 0.005;
      };
  }

let report_fingerprint (r : Fleet.Service.report) =
  Printf.sprintf
    "inj=%d drawn=%d det=%d rep=%d stood=%d gave=%d unfin=%d poi=%d unpoi=%d pairs=%d \
     skip=%d probes=%d granted=%d denied=%d retries=%d coll=%d flaps=%d links=%d crashes=%d \
     drop=%d dup=%d rean=%d roll=%d trips=%d ttr=[%s]"
    r.Fleet.Service.injected r.Fleet.Service.drawn r.Fleet.Service.detected
    r.Fleet.Service.repaired r.Fleet.Service.stood_down r.Fleet.Service.gave_up
    r.Fleet.Service.unfinished r.Fleet.Service.poisons r.Fleet.Service.unpoisons
    r.Fleet.Service.monitor_pairs r.Fleet.Service.monitor_skipped r.Fleet.Service.probes_sent
    r.Fleet.Service.budget_granted r.Fleet.Service.budget_denied
    r.Fleet.Service.isolation_retries r.Fleet.Service.collector_updates
    r.Fleet.Service.session_flaps r.Fleet.Service.link_failures
    r.Fleet.Service.router_crashes r.Fleet.Service.updates_dropped
    r.Fleet.Service.updates_duplicated r.Fleet.Service.reannounced
    r.Fleet.Service.rolled_back r.Fleet.Service.breaker_trips
    (String.concat ";" (List.map (Printf.sprintf "%.3f") r.Fleet.Service.time_to_repair))

let test_fleet_shard_invariance () =
  let run shards =
    report_fingerprint
      (Fleet.Service.run
         ~config:{ fleet_config with Fleet.Service.shards }
         ~seed:11 ())
  in
  let k1 = run (Some 1) in
  Alcotest.(check string) "shards 1 vs 2" k1 (run (Some 2));
  Alcotest.(check string) "shards 1 vs 4" k1 (run (Some 4))

let suite =
  [
    Alcotest.test_case "partitioner is deterministic" `Quick test_partition_deterministic;
    Alcotest.test_case "partitions balance and bound the cut" `Quick
      test_partition_balanced_and_bounded;
    Alcotest.test_case "partitioner edge cases" `Quick test_partition_edge_cases;
    Alcotest.test_case "shard count never changes results" `Quick test_shard_count_invariance;
    Alcotest.test_case "pool width never changes results" `Quick test_pool_width_invariance;
    Alcotest.test_case "2-shard barrier exchange golden run" `Quick
      test_barrier_exchange_golden;
    Alcotest.test_case "sharded fleet day is shard-count-invariant" `Slow
      test_fleet_shard_invariance;
  ]
