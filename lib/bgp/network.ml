open Net
open Topology

(* Wire-level accounting (Obs): per-category update counters feed the
   --metrics summary, and each delivery / MRAI batch flush emits a trace
   event. Counters shard per domain, so concurrent trial networks never
   contend; the trace's "bgp.deliver" line count equals [m_delivered]
   (and {!message_count} summed over networks) by construction. *)
let m_delivered = Obs.Metrics.counter "bgp.delivered"
let m_announce_sent = Obs.Metrics.counter "bgp.updates.announce"
let m_withdraw_sent = Obs.Metrics.counter "bgp.updates.withdraw"
let m_mrai_rounds = Obs.Metrics.counter "bgp.mrai_rounds"

type update_record = {
  time : float;
  speaker : Asn.t;
  prefix : Prefix.t;
  route : Route.entry option;
}

type session = {
  mutable last_sent : float;  (** When we last put updates on this session. *)
  pending : Speaker.action Prefix.Table.t;
      (* Keyed on Prefix.hash/equal; the MRAI flush sorts the batch by
         Prefix.compare, so batch emission order is fixed by the prefixes
         themselves rather than by hash-bucket iteration order. *)
  mutable timer_armed : bool;
  jittered_mrai : float;
}

module Asn_pair_tbl = Hashtbl.Make (struct
  type t = Asn.t * Asn.t

  let equal (a1, b1) (a2, b2) = Asn.equal a1 a2 && Asn.equal b1 b2
  let hash (a, b) = ((Asn.hash a * 0x9E3779B1) lxor Asn.hash b) land max_int
end)

module Peer_prefix_tbl = Hashtbl.Make (struct
  type t = Asn.t * Prefix.t

  let equal (a1, p1) (a2, p2) = Asn.equal a1 a2 && Prefix.equal p1 p2
  let hash (a, p) = ((Asn.hash a * 0x9E3779B1) lxor Prefix.hash p) land max_int
end)

type collector_state = {
  cname : string;
  cpeers : Asn.t list;
  peer_set : Asn.Set.t;
  mutable records : update_record list;  (** newest first *)
  clatest : Route.entry option Peer_prefix_tbl.t;
      (** Latest recorded route per (peer, prefix), so [current_route]
          answers in O(1) instead of scanning [records]. *)
}

type t = {
  engine : Sim.Engine.t;
  graph : As_graph.t;
  speakers : Speaker.t Asn.Table.t;
  store : Path_store.t;
      (** This world's path/announcement interner, shared by every speaker
          of the network and by nothing outside it. *)
  delay_of : Asn.t -> Asn.t -> float;
  sessions : session Asn_pair_tbl.t;  (** keyed (from, to) *)
  owners : Asn.t Prefix.Table.t;
  mutable originations : (Asn.t -> As_path.t option) Prefix.Map.t;
      (** Administrative intent: the latest per-neighbor path function
          each originated prefix was announced with. Survives a router
          crash (the config outlives the loc-RIB) so {!restart_node} can
          re-originate from it. *)
  mutable owner_trie : Asn.t Prefix_trie.t;
  mutable link_faults : (from:Asn.t -> to_:Asn.t -> [ `Deliver | `Drop | `Duplicate ]) option;
  mutable collectors : collector_state list;
  mutable bgp_events : int;  (** BGP events currently in the engine queue *)
  mutable delivered : int;
  mutable delivery_buckets : int array;
      (** Deliveries counted into fixed-width time buckets
          ([delivery_bucket_width] seconds each, index = floor (time /
          width)), grown on demand. Replaces an unbounded per-delivery
          [float list] that [messages_between] scanned linearly. *)
}

let delivery_bucket_width = 1.0

let record_delivery t time =
  let idx = int_of_float (time /. delivery_bucket_width) in
  let idx = if idx < 0 then 0 else idx in
  let cap = Array.length t.delivery_buckets in
  if idx >= cap then begin
    let bigger = Array.make (max (idx + 1) (2 * cap)) 0 in
    Array.blit t.delivery_buckets 0 bigger 0 cap;
    t.delivery_buckets <- bigger
  end;
  t.delivery_buckets.(idx) <- t.delivery_buckets.(idx) + 1

(* Deterministic per-pair pseudo-random factor in [0,1): mix the ASN pair
   so runs are reproducible without threading a PRNG through the hot
   path. The mix is explicit arithmetic rather than the polymorphic
   [Hashtbl.hash] so delays cannot drift with the runtime's generic
   hash. *)
let pair_hash a b =
  let z = (Asn.to_int a * 0x9E3779B1) lxor (Asn.to_int b * 0x85EBCA6B) in
  let z = z lxor (z lsr 16) in
  float_of_int (z land 0xFFFF) /. 65536.0

let default_delay a b = 0.05 +. (0.2 *. pair_hash a b)

let engine t = t.engine
let graph t = t.graph

let speaker t asn =
  match Asn.Table.find_opt t.speakers asn with
  | Some sp -> sp
  | None -> invalid_arg (Printf.sprintf "Network: unknown %s" (Asn.to_string asn))

let path_store t = t.store

let session t a b =
  match Asn_pair_tbl.find_opt t.sessions (a, b) with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Network: no session %s -> %s" (Asn.to_string a) (Asn.to_string b))

(* Forward declaration to tie the delivery/emission knot. *)
let rec deliver t ~from ~to_ action =
  t.delivered <- t.delivered + 1;
  let now = Sim.Engine.now t.engine in
  record_delivery t now;
  Obs.Metrics.incr m_delivered;
  if Obs.Trace.on () then begin
    let kind, prefix =
      match action with
      | Speaker.Announce ann -> ("announce", ann.Route.prefix)
      | Speaker.Withdraw p -> ("withdraw", p)
    in
    Obs.Trace.event ~ts:now ~span:"bgp.deliver"
      [
        ("from", Obs.Trace.Int (Asn.to_int from));
        ("to", Obs.Trace.Int (Asn.to_int to_));
        ("prefix", Obs.Trace.Str (Prefix.to_string prefix));
        ("kind", Obs.Trace.Str kind);
      ]
  end;
  let out = Speaker.receive (speaker t to_) ~now ~from action in
  emit_all t to_ out

and emit_all t from out = List.iter (fun (to_, action) -> emit t ~from ~to_ action) out

and emit t ~from ~to_ action =
  let s = session t from to_ in
  let now = Sim.Engine.now t.engine in
  let prefix =
    match action with
    | Speaker.Announce ann -> ann.Route.prefix
    | Speaker.Withdraw p -> p
  in
  if now -. s.last_sent >= s.jittered_mrai && Prefix.Table.length s.pending = 0 then begin
    s.last_sent <- now;
    schedule_delivery t ~from ~to_ action
  end
  else begin
    (* Coalesce: only the latest state per prefix matters. *)
    Prefix.Table.replace s.pending prefix action;
    if not s.timer_armed then begin
      s.timer_armed <- true;
      let fire_at = Float.max now (s.last_sent +. s.jittered_mrai) in
      t.bgp_events <- t.bgp_events + 1;
      Sim.Engine.schedule t.engine ~at:fire_at (fun () ->
          t.bgp_events <- t.bgp_events - 1;
          s.timer_armed <- false;
          s.last_sent <- Sim.Engine.now t.engine;
          let batch =
            Prefix.Table.fold (fun p a acc -> (p, a) :: acc) s.pending []
            |> List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2)
            |> List.map snd
          in
          Prefix.Table.reset s.pending;
          Obs.Metrics.incr m_mrai_rounds;
          if Obs.Trace.on () then
            Obs.Trace.event ~ts:(Sim.Engine.now t.engine) ~span:"bgp.mrai"
              [
                ("from", Obs.Trace.Int (Asn.to_int from));
                ("to", Obs.Trace.Int (Asn.to_int to_));
                ("batch", Obs.Trace.Int (List.length batch));
              ];
          List.iter (fun action -> schedule_delivery t ~from ~to_ action) batch)
    end
  end

and schedule_delivery t ~from ~to_ action =
  let delay = t.delay_of from to_ in
  (match action with
  | Speaker.Announce _ -> Obs.Metrics.incr m_announce_sent
  | Speaker.Withdraw _ -> Obs.Metrics.incr m_withdraw_sent);
  let send ~delay =
    t.bgp_events <- t.bgp_events + 1;
    Sim.Engine.schedule_after t.engine ~delay (fun () ->
        t.bgp_events <- t.bgp_events - 1;
        deliver t ~from ~to_ action)
  in
  match t.link_faults with
  | None -> send ~delay
  | Some verdict -> begin
      (* Fault injection samples once per wire message, after the MRAI
         batching decided what goes out: a dropped update is silently
         lost (the far side keeps whatever it had), a duplicated one
         arrives twice with the copy trailing by half a propagation
         delay. *)
      match verdict ~from ~to_ with
      | `Deliver -> send ~delay
      | `Drop -> ()
      | `Duplicate ->
          send ~delay;
          send ~delay:(delay *. 1.5)
    end

let create ~engine ~graph ?config_of ?(delay_of = default_delay) ?(mrai = 30.0)
    ?(fib_install_delay = 0.0) () =
  let config_of =
    match config_of with
    | Some f -> f
    | None -> fun _ -> Policy.default
  in
  let speakers = Asn.Table.create 256 in
  let store = Path_store.create () in
  List.iter
    (fun asn ->
      let sp =
        Speaker.create ~store ~asn ~config:(config_of asn)
          ~neighbors:(As_graph.neighbors graph asn) ()
      in
      Asn.Table.replace speakers asn sp)
    (As_graph.as_list graph);
  let t =
    {
      engine;
      graph;
      speakers;
      store;
      delay_of;
      sessions = Asn_pair_tbl.create 1024;
      owners = Prefix.Table.create 16;
      originations = Prefix.Map.empty;
      owner_trie = Prefix_trie.empty;
      link_faults = None;
      collectors = [];
      bgp_events = 0;
      delivered = 0;
      delivery_buckets = Array.make 1024 0;
    }
  in
  (* Collector instrumentation: every speaker reports loc-RIB changes. *)
  Asn.Table.iter
    (fun asn sp ->
      Speaker.set_on_best_change sp (fun ~now prefix route ->
          List.iter
            (fun c ->
              if Asn.Set.mem asn c.peer_set then begin
                c.records <- { time = now; speaker = asn; prefix; route } :: c.records;
                Peer_prefix_tbl.replace c.clatest (asn, prefix) route
              end)
            t.collectors);
      (* Damping reuse timers: when a speaker suppresses a route, wake it
         up to re-run its decision once the penalty has decayed. *)
      Speaker.set_reuse_scheduler sp (fun ~delay prefix ->
          t.bgp_events <- t.bgp_events + 1;
          Sim.Engine.schedule_after engine ~delay (fun () ->
              t.bgp_events <- t.bgp_events - 1;
              let out = Speaker.reevaluate sp ~now:(Sim.Engine.now engine) prefix in
              emit_all t asn out));
      if fib_install_delay > 0.0 then begin
        (* The data plane trails the control plane by a deterministic
           per-AS RIB-to-FIB install latency. *)
        let delay =
          fib_install_delay *. (0.25 +. (0.75 *. pair_hash asn asn))
        in
        Speaker.set_fib_commit_hook sp (fun prefix route ->
            Sim.Engine.schedule_after engine ~delay (fun () ->
                Speaker.install_fib sp prefix route))
      end)
    speakers;
  (* Session pacing state per directed adjacency. *)
  List.iter
    (fun a ->
      List.iter
        (fun (b, _) ->
          Asn_pair_tbl.replace t.sessions (a, b)
            {
              last_sent = neg_infinity;
              pending = Prefix.Table.create 4;
              timer_armed = false;
              jittered_mrai = mrai *. (0.75 +. (0.25 *. pair_hash a b));
            })
        (As_graph.neighbors graph a))
    (As_graph.as_list graph);
  t

let announce t ~origin ~prefix ?per_neighbor () =
  let per_neighbor =
    match per_neighbor with
    | Some f -> f
    | None ->
        let plain = Path_store.intern_path t.store (As_path.plain ~origin) in
        fun _ -> Some plain
  in
  Prefix.Table.replace t.owners prefix origin;
  t.originations <- Prefix.Map.add prefix per_neighbor t.originations;
  t.owner_trie <- Prefix_trie.add prefix origin t.owner_trie;
  let out =
    Speaker.originate (speaker t origin) ~now:(Sim.Engine.now t.engine) ~prefix ~per_neighbor
  in
  emit_all t origin out

let withdraw t ~origin ~prefix =
  Prefix.Table.remove t.owners prefix;
  t.originations <- Prefix.Map.remove prefix t.originations;
  t.owner_trie <- Prefix_trie.remove prefix t.owner_trie;
  let out = Speaker.stop_originating (speaker t origin) ~now:(Sim.Engine.now t.engine) ~prefix in
  emit_all t origin out

let refresh t ~origin ~prefix =
  let out = Speaker.refresh_prefix (speaker t origin) ~prefix in
  emit_all t origin out

let owner t prefix = Prefix.Table.find_opt t.owners prefix
let owner_of_address t ip = Prefix_trie.lookup ip t.owner_trie
let best_route t asn prefix = Speaker.best (speaker t asn) prefix
let fib_lookup t asn ip = Speaker.fib_lookup (speaker t asn) ip

let run_until_quiet ?(timeout = 3600.0) t =
  let deadline = Sim.Engine.now t.engine +. timeout in
  let continue = ref true in
  while !continue do
    if t.bgp_events = 0 then continue := false
    else if Sim.Engine.now t.engine >= deadline then continue := false
    else if not (Sim.Engine.step t.engine) then continue := false
  done

let fail_link t ~a ~b =
  let now = Sim.Engine.now t.engine in
  let out_a = Speaker.session_down (speaker t a) ~now ~neighbor:b in
  let out_b = Speaker.session_down (speaker t b) ~now ~neighbor:a in
  emit_all t a out_a;
  emit_all t b out_b

let restore_link t ~a ~b =
  let now = Sim.Engine.now t.engine in
  let out_a = Speaker.session_up (speaker t a) ~now ~neighbor:b in
  let out_b = Speaker.session_up (speaker t b) ~now ~neighbor:a in
  emit_all t a out_a;
  emit_all t b out_b

let fail_node t asn =
  List.iter (fun (n, _) -> fail_link t ~a:asn ~b:n) (As_graph.neighbors t.graph asn)

let restore_node t asn =
  List.iter (fun (n, _) -> restore_link t ~a:asn ~b:n) (As_graph.neighbors t.graph asn)

let owned_prefixes t asn =
  Prefix.Table.fold (fun p o acc -> if Asn.equal o asn then p :: acc else acc) t.owners []
  |> List.sort Prefix.compare

(* A crash loses the whole loc-RIB: sessions drop (flushing the adj-RIBs
   on both sides) and local originations are forgotten. The
   administrative intent in [originations] survives, which is what
   {!restart_node} re-originates from — so a restarted origin re-announces
   whatever it was last configured to announce (a standing poison
   included), as a router reloading its config would. *)
let crash_node t asn =
  fail_node t asn;
  let sp = speaker t asn in
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun prefix -> emit_all t asn (Speaker.stop_originating sp ~now ~prefix))
    (Speaker.originated sp)

let reoriginate t asn =
  let sp = speaker t asn in
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun prefix ->
      match Prefix.Map.find_opt prefix t.originations with
      | Some per_neighbor -> emit_all t asn (Speaker.originate sp ~now ~prefix ~per_neighbor)
      | None -> ())
    (owned_prefixes t asn)

let restart_node t asn =
  restore_node t asn;
  reoriginate t asn

let set_link_faults t f = t.link_faults <- f

module Collector = struct
  type net = t
  type t = collector_state

  let attach (net : net) ~name ~peers =
    let c =
      {
        cname = name;
        cpeers = peers;
        peer_set = List.fold_left (fun s p -> Asn.Set.add p s) Asn.Set.empty peers;
        records = [];
        clatest = Peer_prefix_tbl.create 64;
      }
    in
    net.collectors <- c :: net.collectors;
    c

  let name c = c.cname
  let peers c = c.cpeers
  let log c = List.rev c.records
  let since c time = List.rev (List.filter (fun r -> r.time >= time) c.records)
  let clear c =
    c.records <- [];
    Peer_prefix_tbl.reset c.clatest

  let current_route c ~peer ~prefix =
    match Peer_prefix_tbl.find_opt c.clatest (peer, prefix) with
    | Some route -> route
    | None -> None

  let route_view c ~peer ~prefix = Peer_prefix_tbl.find_opt c.clatest (peer, prefix)
end

let message_count t = t.delivered

let messages_between t ~since ~until =
  if until < since then 0
  else begin
    let w = delivery_bucket_width in
    let lo = max 0 (int_of_float (since /. w)) in
    let hi = min (Array.length t.delivery_buckets - 1) (int_of_float (until /. w)) in
    let total = ref 0 in
    for i = lo to hi do
      total := !total + t.delivery_buckets.(i)
    done;
    !total
  end
