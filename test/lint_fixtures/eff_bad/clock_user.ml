(* Wrapper-laundered clock: no syntactic rule fires here, but the effect
   summary must carry Clock through Clock_wrap.now — LG-EFF-CLOCK with a
   two-hop trace. *)
let run () = Clock_wrap.now () +. 1.0
