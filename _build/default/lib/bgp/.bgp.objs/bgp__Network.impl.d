lib/bgp/network.ml: As_graph As_path Asn Float Hashtbl List Net Policy Prefix Prefix_trie Printf Route Sim Speaker Topology
