lib/experiments/sec52_loss.ml: Array Asn Bgp Dataplane Float Hashtbl Lifeguard List Net Option Prefix Prng Scenarios Sim Stats Topology Workloads
