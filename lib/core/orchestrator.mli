(** The LIFEGUARD control loop, end to end.

    Wires the pieces together on the simulation clock: monitors detect an
    outage on a path to the origin's prefix, isolation locates the failing
    AS, the decision gate waits out young outages and checks that an
    alternate path exists, remediation poisons, and sentinel probes detect
    the repair and trigger unpoisoning. This is the per-prefix state
    machine a deployment runs (§4, §6's case study).

    The orchestrator is re-entrant: each affected target runs its own
    isolate/decide pipeline, so overlapping outages on disjoint prefixes
    are handled concurrently. Only one poison is announced at a time for
    the production prefix — concurrent outages blamed on the same AS
    attach to the standing announcement, different blames queue behind it
    — and announcements (poison and unpoison alike) are paced by
    [announce_spacing] to stay on the friendly side of route-flap
    damping. *)

open Net

type config = {
  decide : Decide.config;
  recheck_interval : float;  (** How often to re-test the sentinel while poisoned (s). *)
  monitor_interval : float;  (** Ping-pair period for the built-in monitors (s). *)
  announce_spacing : float;
      (** Minimum seconds between BGP announcements (poison or unpoison).
          The paper suggests ~90 min between poisonings to stay clear of
          flap damping; the default is 0 (no pacing). *)
  max_isolation_attempts : int;
      (** Isolation attempts per outage before giving up (default 3). *)
  retry_backoff : float;  (** First retry delay after a lost isolation attempt (s). *)
  backoff_multiplier : float;  (** Exponential backoff factor between retries. *)
  max_backoff : float;  (** Retry delay ceiling (s). *)
  pipeline_timeout : float;
      (** Overall per-outage deadline: a pipeline still undecided after
          this long stands down (s). *)
  poison_deadline : float;
      (** Watchdog: if no vantage feed shows the poison in force within
          this long of the first announcement, it never propagated —
          roll back (s, default 3600). *)
  max_poison_announcements : int;
      (** Watchdog: total announcements (initial + re-announces) per
          poison before the circuit breaker trips and the poison is
          rolled back (default 3). *)
  decision_latency : float;
      (** Modeled cost (simulated seconds) of computing a remediation
          from scratch; charged before acting on every fresh verdict. A
          plan-cache hit skips it — that is the fast-reroute win the
          plan experiment measures. Default 0: fresh decisions act
          inline, preserving the pre-planning event order exactly. *)
}

val default_config : config

(** Hooks let a harness (the fleet service) inject probe budgets and
    chaos without the orchestrator knowing about either. All default to
    absent = unrestricted. *)
type hooks = {
  probe_gate : (now:float -> cost:int -> bool) option;
      (** Budget admission for monitor probe pairs; refusal skips the
          round (see {!Measurement.Monitor.create}). *)
  monitor_loss : (unit -> bool) option;
      (** Chaos: sampled per monitor pair; [true] drops the pair. *)
  isolation_attempt : (target:Asn.t -> attempt:int -> [ `Proceed | `Lost | `Denied ]) option;
      (** Consulted before each isolation attempt: [`Lost] (chaos ate the
          probes) and [`Denied] (budget refused) both consume one attempt
          and back off exponentially. *)
  vantage_filter : (Asn.t -> bool) option;
      (** Chaos: which vantage points are currently alive; dead VPs are
          excluded from isolation. *)
  plan_consult :
    (target:Asn.t ->
    diagnosis:Isolation.diagnosis ->
    outage_age:float ->
    breaker_open:(Asn.t -> bool) ->
    Decide.verdict option)
    option;
      (** Consulted before every fresh decision: [Some verdict] serves a
          precomputed plan (and skips [decision_latency]); [None] falls
          through to the decision process. [breaker_open] lets the cache
          refuse to serve a plan against a breaker-open AS. *)
  plan_record :
    (target:Asn.t -> diagnosis:Isolation.diagnosis -> verdict:Decide.verdict -> unit) option;
      (** Called with every freshly-computed verdict so the cache can
          memoize it. *)
  plan_outcome : (poison:Asn.t -> [ `Confirmed | `Diverged of string ] -> unit) option;
      (** Watchdog feedback for poisons that were served from a plan:
          [`Confirmed] when the vantage feeds showed the poison in
          force, [`Diverged reason] when it was rolled back — the cache
          demotes the plan back to compute-fresh. *)
}

val no_hooks : hooks

(** Lifecycle events, recorded with their simulation time. *)
type event =
  | Outage_detected of { vp : Asn.t; target : Asn.t }
  | Diagnosed of Isolation.diagnosis
  | Decision of Decide.verdict
  | Isolation_retry of { target : Asn.t; attempt : int; delay : float }
      (** An isolation attempt was lost or denied; retrying after [delay]. *)
  | Poison_queued of { target : Asn.t; poison : Asn.t }
      (** A poison verdict is waiting (for the prefix, or for spacing). *)
  | Poison_announced of Asn.t
  | Poison_confirmed of Asn.t
      (** Every vantage feed with a route shows the poisoned path: the
          announcement took effect. *)
  | Repair_confirmed of { target : Asn.t; poison : Asn.t }
      (** Per monitored target sharing the confirmed poison: traffic to
          [target] is flowing around [poison] again. The gap between this
          and the target's detection is the repair latency the plan cache
          exists to shrink. *)
  | Poison_reannounced of { target : Asn.t; announcement : int }
      (** A vantage feed showed a route avoiding the poisoned AS (the
          poison was flushed or lost, e.g. by a session reset); the
          announcement was idempotently re-sent. [announcement] counts
          all sends of this poison including the first. *)
  | Poison_rolled_back of { target : Asn.t; reason : string }
      (** The watchdog withdrew a failed poison: collateral damage,
          never propagated within the deadline, or flushed more times
          than [max_poison_announcements] tolerates. *)
  | Breaker_open of Asn.t
      (** A poison verdict against an AS whose breaker is open was
          refused outright. *)
  | Recovery_detected of Asn.t  (** The poisoned AS works again. *)
  | Unpoisoned
  | Gave_up of string

val pp_event : Format.formatter -> event -> unit

type state = Idle | Isolating | Poisoned of Asn.t
(** Coarse position in the per-prefix machine: [Poisoned] while any
    poison is announced, else [Isolating] while any pipeline runs. *)

(** Terminal state of one target's outage: [Repaired] when the sentinel
    confirmed the repair, [Stood_down] when there was nothing to do
    (transient, hopeless diagnosis), [Gave_up_on] when the repair itself
    failed — retry budgets exhausted, the pipeline timed out, the poison
    was rolled back, or the circuit breaker refused it — with the
    give-up reason. *)
type outcome = Repaired | Stood_down of string | Gave_up_on of string

val pp_outcome : Format.formatter -> outcome -> unit

type t

val create :
  ?config:config ->
  ?hooks:hooks ->
  ?journal:Recover.Journal.t ->
  env:Dataplane.Probe.env ->
  atlas:Measurement.Atlas.t ->
  responsiveness:Measurement.Responsiveness.t ->
  plan:Remediate.plan ->
  vantage_points:Asn.t list ->
  unit ->
  t
(** Announce the plan's baseline and stand ready. The caller drives the
    engine; LIFEGUARD schedules its own follow-ups on it. With [journal],
    every externally-visible action (poison, re-announce, unpoison,
    breaker trip, plan demotion, terminal outcome) is appended to the
    write-ahead journal {e before} it takes effect; without it, the code
    path is byte-identical to the pre-journal controller. *)

val watch : t -> targets:Asn.t list -> unit
(** Start monitors from the origin toward each target's infrastructure
    address, refreshing the atlas first so isolation has history. The
    monitors inherit the [probe_gate] and [monitor_loss] hooks. *)

val notify_outage : t -> vp:Asn.t -> target:Asn.t -> unit
(** Report an externally-detected outage on the reverse path from
    [target] back to the origin (e.g. from a monitor owned by the
    caller). Starts an isolate/decide pipeline for [target] unless one is
    already running, queued, or covered by the standing poison. *)

val state : t -> state

val active_pipelines : t -> int
(** Pipelines currently isolating or awaiting decision. *)

val queued_poisons : t -> int
(** Poison verdicts waiting for the production prefix. *)

val awaiting_repair : t -> int
(** Targets attached to the standing poison, waiting on the sentinel. *)

val reannounce_count : t -> int
(** Watchdog re-announcements across the run (excluding initial sends). *)

val rollback_count : t -> int
(** Poisons the watchdog withdrew as failed. *)

val breaker_trip_count : t -> int
(** Poison verdicts refused because the target's breaker was open. *)

val breaker_open : t -> target:Asn.t -> bool
(** Whether the circuit breaker has opened for [target]. *)

val events : t -> (float * event) list
(** Timestamped event log, oldest first. *)

val outcomes : t -> (float * Asn.t * outcome) list
(** Terminal state per handled target, oldest first: [Repaired] when the
    sentinel confirmed the repair and the poison was withdrawn,
    [Stood_down] when the pipeline ended without (or before) a poison. *)

val monitors : t -> Measurement.Monitor.t list
(** Monitors started by {!watch}, oldest first. *)

val plan : t -> Remediate.plan

val collector : t -> Bgp.Network.Collector.t
(** The watchdog's vantage-feed collector — exposed so reconciliation
    can compare journal state against collector ground truth, and so
    {!restore} can re-attach to the original feed. *)

val capture : t -> Recover.Snapshot.orch
(** Declarative snapshot of the controller's own state: pipelines (with
    phase and deadline), the active poison and its watchdog deadlines,
    the poison queue, pacing, outage-start estimates, breaker set and
    counters. Pure read — capturing never perturbs the run. *)

val restore :
  ?config:config ->
  ?hooks:hooks ->
  ?journal:Recover.Journal.t ->
  env:Dataplane.Probe.env ->
  atlas:Measurement.Atlas.t ->
  responsiveness:Measurement.Responsiveness.t ->
  plan:Remediate.plan ->
  vantage_points:Asn.t list ->
  collector:Bgp.Network.Collector.t ->
  Recover.Snapshot.orch ->
  unit ->
  t
(** Warm restore from a {!capture}: rebuilds tables and re-arms every
    recorded deadline against the engine clock. Unlike {!create} it does
    {e not} re-announce the baseline or attach a new collector — the
    world is assumed to already carry whatever the journal says went
    out; pass the original [collector] (see {!val-collector}).
    In-flight pipelines are re-isolated at their recorded deadlines;
    attempts that had already passed the gate are handed back so
    re-running them cannot burn retry budget. *)
