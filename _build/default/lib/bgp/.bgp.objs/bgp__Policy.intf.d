lib/bgp/policy.mli: Asn Net Relationship Route Topology
