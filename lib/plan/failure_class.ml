open Net
open Lifeguard

type t = {
  blamed : Asn.t;
  direction : Isolation.direction;
  reversal : bool;
}

let direction_rank = function
  | Isolation.Forward_failure -> 0
  | Isolation.Reverse_failure -> 1
  | Isolation.Bidirectional -> 2
  | Isolation.Destination_unreachable -> 3
  | Isolation.No_failure -> 4

let direction_name = function
  | Isolation.Forward_failure -> "forward"
  | Isolation.Reverse_failure -> "reverse"
  | Isolation.Bidirectional -> "bidirectional"
  | Isolation.Destination_unreachable -> "unreachable"
  | Isolation.No_failure -> "none"

let compare a b =
  let c = Asn.compare a.blamed b.blamed in
  if c <> 0 then c
  else
    let c = Int.compare (direction_rank a.direction) (direction_rank b.direction) in
    if c <> 0 then c else Bool.compare a.reversal b.reversal

let equal a b = compare a b = 0

let of_diagnosis (d : Isolation.diagnosis) =
  match Isolation.blamed_as d.blame with
  | None -> None
  | Some blamed ->
      Some { blamed; direction = d.direction; reversal = Option.is_some d.working_path }

let to_string t =
  Printf.sprintf "%s/%s%s" (Asn.to_string t.blamed)
    (direction_name t.direction)
    (if t.reversal then "+rev" else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)
