lib/experiments/sec54_scalability.ml: Array Dataplane List Measurement Scenarios Sec53_accuracy Stats Workloads
