(* lifeguard-lint fixture: must pass LG-OBS-PRINTF. Writes to stderr,
   explicit channels and buffers are legal, as is a locally shadowed
   printer. *)

let print_endline _ = ()

let report oc buf x =
  Printf.eprintf "debug %d\n" x;
  Printf.fprintf oc "%d\n" x;
  Buffer.add_string buf (Printf.sprintf "%d" x);
  print_endline "shadowed"
