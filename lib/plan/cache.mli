(** The plan cache the orchestrator consults before computing a fresh
    decision, plus its invalidation and staleness layers.

    A lookup replays the memoized feasibility bit through
    [Decide.decide ~feasible], so a hit yields the byte-identical verdict
    a fresh decision would — the cache changes {e when} the answer is
    known, never {e what} it is. Three things stop a plan being served:

    - {b topology churn}: a changed [fingerprint] (wired by the fleet to
      the world's fault counters) flushes the whole map;
    - {b policy change}: an explicit {!invalidate};
    - {b breaker trips}: a plan poisoning a breaker-open AS is dropped at
      lookup and the fresh decision refuses at the breaker identically.

    Staleness: when the poison watchdog's outcome diverges from the plan
    (rollback, re-announce budget exhausted), {!note_outcome} demotes the
    poisoned AS back to compute-fresh permanently and records the reason
    — a demoted AS is never served {e or} re-memoized.

    Misses are repaired twice over: {!lookup} itself demand-plans the
    missed class with {!Planner.remedy_for_class} (still counted and
    returned as a miss this round), and {!record} lets the orchestrator
    hand back each fresh verdict for memoization (except age-gated
    [Wait]s, which carry no feasibility information) — so recurring
    outages become hits even beyond the offline planner's enumeration.

    Counters surface as [plan.hits] / [plan.misses] /
    [plan.invalidations] / [plan.demotions] metrics and every lookup
    emits a [plan.lookup] trace span when tracing is on. One cache per
    world — share-nothing, like every other per-world structure. *)

open Net
open Topology
open Lifeguard

type t

val create :
  ?fingerprint:(unit -> int) ->
  ?seed:Plan_store.t ->
  config:Decide.config ->
  origin:Asn.t ->
  paths:Bgp.Path_store.t ->
  unit ->
  t
(** [fingerprint] is sampled at creation and on every lookup; any change
    flushes the map (topology-churn invalidation). [seed] is the offline
    planner's failure map. [paths] interns memoized poison paths. *)

val lookup :
  t ->
  As_graph.t ->
  now:float ->
  target:Asn.t ->
  diagnosis:Isolation.diagnosis ->
  outage_age:float ->
  breaker_open:(Asn.t -> bool) ->
  Decide.verdict option
(** [Some verdict] on a hit — byte-identical to the fresh decision.
    [None] on miss, demoted class, breaker conflict, or unplannable
    diagnosis; the caller then computes fresh (and should {!record}). *)

val record : t -> target:Asn.t -> diagnosis:Isolation.diagnosis -> verdict:Decide.verdict -> unit
(** Memoize a fresh verdict so the next same-class outage hits. [Wait]
    verdicts and demoted classes are not memoized. *)

val note_outcome : t -> poison:Asn.t -> [ `Confirmed | `Diverged of string ] -> unit
(** Watchdog feedback for a served plan: [`Confirmed] keeps it,
    [`Diverged reason] demotes every plan poisoning that AS. *)

val invalidate : t -> reason:string -> unit
(** Policy-change invalidation: flush the whole map (demotions persist). *)

val capture : t -> string
(** Deterministic one-line rendering of the cache's mutable state
    (fingerprint, size, counters, demotion set and log) for the recovery
    snapshot schema. Pure read; spaces in demotion reasons are folded to
    ['_'] so the line stays single-token. *)

val hits : t -> int
val misses : t -> int
val invalidations : t -> int
val demotions : t -> int
val size : t -> int
val demotion_log : t -> (Asn.t * string) list
(** Oldest first. *)

val plans : t -> Plan_store.t
