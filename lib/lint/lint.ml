(* Driver for lifeguard-lint: directory walking, report rendering
   (text + JSON), baseline checking, and the CLI entry point shared by
   bin/lifeguard_lint and the test suite. *)

module Rule = Rule
module Source_scan = Source_scan
module Baseline = Baseline

let default_dirs = [ "lib"; "bin"; "bench"; "examples" ]

(* Skip hidden and build dirs so the pass can run unchanged from a dune
   sandbox (_build/default), where .objs/ etc. sit next to sources. *)
let rec collect_ml_files acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.length name = 0 || name.[0] = '.' || name.[0] = '_' then acc
           else collect_ml_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

type report = {
  violations : Source_scan.violation list;
  errors : (string * string) list;  (** file, parse error *)
}

let scan ?kind ~dirs () =
  let files = List.fold_left collect_ml_files [] dirs |> List.sort String.compare in
  let violations = ref [] in
  let errors = ref [] in
  List.iter
    (fun f ->
      match Source_scan.scan_file ?kind f with
      | Ok vs -> violations := List.rev_append vs !violations
      | Error e -> errors := (f, e) :: !errors)
    files;
  let force_lib = match kind with Some k -> k.Source_scan.in_lib | None -> false in
  let mli = Source_scan.mli_violations ~force_lib files in
  {
    violations = List.sort Source_scan.compare_violation (List.rev_append mli !violations);
    errors = List.rev !errors;
  }

let pp_violation oc (v : Source_scan.violation) =
  Printf.fprintf oc "%s:%d:%d: [%s] %s\n" v.file v.line v.col (Rule.id v.rule) v.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json oc r =
  let item (v : Source_scan.violation) =
    Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      (Rule.id v.rule) (json_escape v.file) v.line v.col (json_escape v.message)
  in
  let err (f, e) =
    Printf.sprintf "{\"file\":\"%s\",\"error\":\"%s\"}" (json_escape f) (json_escape e)
  in
  Printf.fprintf oc "{\"violations\":[%s],\"errors\":[%s]}\n"
    (String.concat "," (List.map item r.violations))
    (String.concat "," (List.map err r.errors))

let run_check ~oc ~baseline_path r =
  match Baseline.load baseline_path with
  | Error e ->
      Printf.fprintf oc "lifeguard-lint: %s\n" e;
      2
  | Ok base ->
      let verdict = Baseline.check base r.violations in
      List.iter
        (fun (k, allowed, found, vs) ->
          Printf.fprintf oc
            "lifeguard-lint: new violation(s) of %s: baseline allows %d, found %d\n" k allowed
            found;
          List.iter (pp_violation oc) vs)
        verdict.Baseline.fresh;
      List.iter
        (fun (k, allowed, found) ->
          Printf.fprintf oc
            "lifeguard-lint: note: %s improved (%d -> %d); consider --update-baseline\n" k
            allowed found)
        verdict.Baseline.stale;
      if verdict.Baseline.fresh <> [] then 1 else 0

let usage =
  "lifeguard_lint [--check | --update-baseline] [--json] [--baseline FILE]\n\
  \               [--root DIR] [--treat-as-lib] [DIR ...]\n\
   Static analysis for domain-safety, determinism and hot-path hygiene.\n\
   Default directories: lib bin bench examples."

let main ?(out = Format.std_formatter) argv =
  let check = ref false in
  let update = ref false in
  let json = ref false in
  let baseline_path = ref "lint.baseline" in
  let root = ref "" in
  let as_lib = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--check", Arg.Set check, " fail (exit 1) on violations not covered by the baseline");
      ("--update-baseline", Arg.Set update, " rewrite the baseline from the current tree");
      ("--json", Arg.Set json, " machine-readable report on stdout");
      ("--baseline", Arg.Set_string baseline_path, "FILE baseline file (default lint.baseline)");
      ("--root", Arg.Set_string root, "DIR chdir here first; paths are reported relative to it");
      ("--treat-as-lib", Arg.Set as_lib, " apply library-strict rules to every scanned file");
      ("--rules", Arg.Unit (fun () -> raise Exit), " list rule IDs and exit");
    ]
  in
  match
    Arg.parse_argv ~current:(ref 0) argv (Arg.align spec)
      (fun d -> dirs := d :: !dirs)
      usage
  with
  | exception Arg.Bad msg ->
      prerr_string msg;
      2
  | exception Arg.Help msg ->
      Format.pp_print_string out msg;
      Format.pp_print_flush out ();
      0
  | exception Exit ->
      List.iter (fun r -> Format.fprintf out "%-16s %s\n" (Rule.id r) (Rule.describe r)) Rule.all;
      Format.pp_print_flush out ();
      0
  | () ->
      let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
      let kind = if !as_lib then Some Source_scan.lib_kind else None in
      let run () =
        let r = scan ?kind ~dirs () in
        List.iter (fun (f, e) -> Printf.eprintf "lifeguard-lint: %s: parse error: %s\n" f e)
          r.errors;
        if r.errors <> [] then 2
        else if !update then begin
          Baseline.save !baseline_path (Baseline.of_violations r.violations);
          Format.fprintf out "lifeguard-lint: wrote %s (%d grandfathered violations)@."
            !baseline_path (List.length r.violations);
          0
        end
        else if !check then run_check ~oc:stdout ~baseline_path:!baseline_path r
        else begin
          if !json then print_json stdout r else List.iter (pp_violation stdout) r.violations;
          0
        end
      in
      if String.length !root = 0 then run ()
      else begin
        let cwd = Sys.getcwd () in
        Fun.protect ~finally:(fun () -> Sys.chdir cwd) (fun () -> Sys.chdir !root; run ())
      end
