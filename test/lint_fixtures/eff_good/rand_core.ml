(* Clean twin: deterministic draw from explicit state, no Random. *)
let draw state n = state mod n
