(** The AS-level Internet topology.

    An annotated undirected graph: nodes are ASes (with a tier and a small
    set of border routers carrying stable IPv4 addresses), edges carry a
    business {!Relationship.t}. All BGP and data-plane behaviour in this
    reproduction is derived from one of these graphs, whether generated
    synthetically ({!Topo_gen}) or built by hand for scenario tests. *)

open Net

type router = { asn : Asn.t; index : int; address : Ipv4.t }
(** A border router of an AS. Router addresses make traceroute output
    concrete and give the responsiveness database stable keys. *)

type t

val create : unit -> t

val add_as : t -> ?tier:int -> ?routers:int -> Asn.t -> unit
(** Add an AS with [routers] border routers (default 1) at hierarchy level
    [tier] (1 = top transit clique; default 3). Adding an existing ASN
    raises [Invalid_argument]. Router addresses are derived from the ASN so
    graphs are reproducible. *)

val add_link : t -> a:Asn.t -> b:Asn.t -> rel:Relationship.t -> unit
(** [add_link t ~a ~b ~rel] connects [a] and [b]; [rel] is what {e b} is to
    {e a} (e.g. [~rel:Customer] makes [b] a customer of [a]). Both ASes
    must exist; re-adding an existing link raises [Invalid_argument]. *)

val remove_link : t -> a:Asn.t -> b:Asn.t -> unit
(** Remove the link if present. *)

val mem : t -> Asn.t -> bool
val relationship : t -> a:Asn.t -> b:Asn.t -> Relationship.t option
(** What [b] is to [a], if adjacent. *)

val neighbors : t -> Asn.t -> (Asn.t * Relationship.t) list
(** Neighbors of an AS with their relationship (what the neighbor is to
    this AS), in ascending ASN order. Raises if the AS is unknown. *)

val customers : t -> Asn.t -> Asn.t list
val providers : t -> Asn.t -> Asn.t list
val peers : t -> Asn.t -> Asn.t list

val tier : t -> Asn.t -> int
val routers : t -> Asn.t -> router array
val router_address : t -> Asn.t -> int -> Ipv4.t
(** [router_address t asn i] is the address of router [i] of [asn]. *)

val owner_of_address : t -> Ipv4.t -> Asn.t option
(** Which AS owns a router address. *)

val as_list : t -> Asn.t list
(** All ASes, ascending. *)

val as_count : t -> int
val link_count : t -> int
val degree : t -> Asn.t -> int

val is_stub : t -> Asn.t -> bool
(** True when the AS has no customers (an edge network). *)

val copy : t -> t
(** Deep copy; mutations of the copy do not affect the original. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: AS count, link count, per-tier counts. *)
