lib/measurement/atlas.mli: Asn Dataplane Net
