lib/bgp/network.mli: As_graph As_path Asn Ipv4 Net Policy Prefix Route Sim Speaker Topology
