let pick n = Rand_core.draw n + 1
