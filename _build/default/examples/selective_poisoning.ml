(* Selective poisoning (paper §3.1.2, Fig. 3, and the Internet2 demo of
   §5.2): steer a target AS off one of its links without cutting it off
   and without touching anyone else's route.

   The topology mirrors the paper's UWash/UWisc experiment: the origin
   announces the same prefix through two providers whose paths reach the
   target AS over disjoint ingresses. Poisoning the target through one
   provider leaves it exactly one (unpoisoned) path — through the other —
   which moves its traffic onto the other ingress link.

   Run with: dune exec examples/selective_poisoning.exe *)

open Net

let asn = Asn.of_int

let () =
  let open Topology in
  let g = As_graph.create () in
  (* O multihomed to UWash and UWisc; both reach Internet2 via disjoint
     regional networks (PNW Gigapop vs WiscNet); client C sits behind
     Internet2. *)
  let o = asn 64500 in
  let uwash = asn 73 and uwisc = asn 59 in
  let pnw = asn 9201 and wiscnet = asn 2381 in
  let i2 = asn 11537 in
  let client = asn 204 in
  List.iter (fun x -> As_graph.add_as g x) [ o; uwash; uwisc; pnw; wiscnet; i2; client ];
  As_graph.add_link g ~a:o ~b:uwash ~rel:Relationship.Provider;
  As_graph.add_link g ~a:o ~b:uwisc ~rel:Relationship.Provider;
  As_graph.add_link g ~a:uwash ~b:pnw ~rel:Relationship.Provider;
  As_graph.add_link g ~a:uwisc ~b:wiscnet ~rel:Relationship.Provider;
  As_graph.add_link g ~a:pnw ~b:i2 ~rel:Relationship.Provider;
  As_graph.add_link g ~a:wiscnet ~b:i2 ~rel:Relationship.Provider;
  As_graph.add_link g ~a:client ~b:i2 ~rel:Relationship.Provider;

  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph:g ~mrai:5.0 () in
  Dataplane.Forward.announce_infrastructure net;
  Bgp.Network.run_until_quiet net;

  let production = Prefix.of_string_exn "203.0.113.0/24" in
  let plan = Lifeguard.Remediate.plan ~origin:o ~production () in
  Lifeguard.Remediate.announce_baseline net plan;
  Bgp.Network.run_until_quiet net;

  let show who =
    match Bgp.Network.best_route net who production with
    | Some entry ->
        Printf.printf "  %-8s -> [%s] (ingress %s)\n" (Asn.to_string who)
          (Bgp.As_path.to_string entry.Bgp.Route.ann.Bgp.Route.path)
          (Asn.to_string entry.Bgp.Route.neighbor)
    | None -> Printf.printf "  %-8s -> no route\n" (Asn.to_string who)
  in

  Printf.printf "Before selective poisoning (both announcements unpoisoned):\n";
  show i2;
  show client;
  show wiscnet;

  (* Suppose the Internet2 -> WiscNet direction silently fails. We want
     Internet2 to stop using WiscNet for our prefix — without poisoning
     Internet2 out of every path (clients behind it must keep working).
     Announce the poison via UWisc only: Internet2 hears a poisoned path
     from WiscNet (rejected) and a clean one from PNW Gigapop. *)
  Printf.printf
    "\nSelectively poisoning Internet2 via UWisc only (to avoid the\n\
     Internet2->WiscNet link, as if it had silently failed):\n";
  Lifeguard.Remediate.selective_poison net plan ~target:i2 ~poisoned_via:[ uwisc ];
  Bgp.Network.run_until_quiet net;
  show i2;
  show client;
  show wiscnet;
  Printf.printf
    "  => Internet2's ingress flipped to PNW Gigapop; the client behind it\n\
     followed automatically; WiscNet itself still has a route (it is not\n\
     the one being avoided).\n";

  Printf.printf "\nReverting to the baseline:\n";
  Lifeguard.Remediate.unpoison net plan;
  Bgp.Network.run_until_quiet net;
  show i2;
  show client
