lib/workloads/scenarios.ml: Array As_graph Asn Bgp Dataplane Int Lifeguard List Net Outage_gen Prefix Prng Relationship Sim Topo_gen Topology
