test/helpers.ml: Alcotest As_graph Asn Bgp Dataplane List Net Prefix Relationship Sim Topology
