(* Must-flag corpus for LG-ROB-EXN: catch-all exception handlers. *)

let swallow_unit f = try f () with _ -> ()

let swallow_default f = try f () with _ -> 0

let swallow_aliased f = try f () with _ as _e -> ()

let swallow_mixed f = try f () with Not_found -> 1 | _ -> 2
