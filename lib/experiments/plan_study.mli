(** Planned vs computed remediation on a recurring-outage workload.

    Runs the same fleet twice at identical seeds — plan cache on vs off —
    and reports the cache's hit rate plus the repair-latency distribution
    of each arm. Both arms charge {!Fleet.Service.config.decision_latency}
    simulated seconds per fresh decision round; plan hits skip it, so the
    latency table measures exactly what precomputation buys. *)

(** One arm's merged counters and pooled repair times. *)
type mode = {
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  poisons : int;
  time_to_repair : float list;  (** Pooled across worlds, ascending. *)
  time_to_confirm : float list;
      (** Detection-to-confirmed-reroute latencies, pooled, ascending —
          the window decision latency (and thus planning) moves. *)
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_demotions : int;
}

type result = {
  worlds : int;  (** Independent worlds per arm. *)
  targets : int;  (** Total targets across worlds. *)
  days : float;  (** Observation window per world, in days. *)
  decision_latency : float;  (** Cost of one fresh decision round, seconds. *)
  planned : mode;  (** Plan cache consulted before every decision. *)
  computed : mode;  (** Every remediation computed from scratch. *)
}

val default_config : Fleet.Service.config
(** Few targets failing often (recurring outages), chaos and
    control-plane faults off, [decision_latency = 120s]. *)

val run :
  ?config:Fleet.Service.config -> ?targets:int -> ?jobs:int -> seed:int -> unit -> result
(** [run ~seed ()] decomposes [targets] (default 40) into worlds of
    [config.target_count] each (world seeds [seed + shard], shared by
    both arms) and runs both arms — in parallel when [jobs > 1]. The
    result is a pure function of [(config, targets, seed)]; [jobs] never
    changes a byte of output. *)

val hit_rate : mode -> float
(** Hits over lookups, in [0, 1]; [0.] when there were no lookups. *)

val to_tables : result -> Stats.Table.t list
(** Two tables: plan-cache effectiveness (hits/misses/hit rate,
    invalidations, demotions) and planned-vs-computed repair latency
    quantiles. *)
