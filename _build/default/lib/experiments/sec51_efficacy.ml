(** §5.1 Efficacy: do ASes find routes around a poisoned AS?

    The paper announced prefixes via BGP-Mux, harvested the transit ASes
    on collector-peer paths, poisoned each in turn, and watched whether
    peers that had been routing through the poisoned AS found alternates:
    77% did (two-thirds of the failures were peers captive behind their
    only provider). A large-scale simulation over an AS topology predicted
    alternate paths in 90% of 10M cases and agreed with the live
    poisonings 92.5% of the time. *)

open Net

type result = {
  poisons_attempted : int;
  cases : int;  (** (collector peer, poisoned AS) pairs with the peer routing via it. *)
  rerouted : int;  (** Peer found a path avoiding the poisoned AS. *)
  fraction_rerouted : float;  (** Paper: 0.77. *)
  captive : int;  (** Cut-off peers that were captive (poisoned their only provider path). *)
  sim_cases : int;
  sim_with_alternate : int;
  fraction_sim : float;  (** Paper: 0.90. *)
  agreement : float;  (** Simulation prediction vs live poisoning outcome; paper: 0.925. *)
}

let paper_fraction_rerouted = 0.77
let paper_fraction_sim = 0.90
let paper_agreement = 0.925

let peer_route_contains mux peer target =
  match Bgp.Network.best_route mux.Workloads.Scenarios.bed.Workloads.Scenarios.net peer
          Workloads.Scenarios.production_prefix
  with
  | None -> None
  | Some entry ->
      Some
        (Bgp.As_path.traverses
           ~origin:mux.Workloads.Scenarios.origin ~target
           entry.Bgp.Route.ann.Bgp.Route.path)

let run ?(ases = 318) ?(max_poisons = 40) ~seed () =
  let mux = Workloads.Scenarios.bgpmux ~ases ~seed () in
  let bed = mux.Workloads.Scenarios.bed in
  let net = bed.Workloads.Scenarios.net in
  let graph = bed.Workloads.Scenarios.graph in
  let origin = mux.Workloads.Scenarios.origin in
  let plan = mux.Workloads.Scenarios.plan in
  Lifeguard.Remediate.announce_baseline net plan;
  Bgp.Network.run_until_quiet net;
  let harvest = Workloads.Scenarios.harvest_on_path_ases mux in
  let rng = Prng.create ~seed:(seed + 1) in
  let targets =
    let arr = Array.of_list harvest in
    Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min max_poisons (Array.length arr)))
  in
  let cases = ref 0 and rerouted = ref 0 and captive = ref 0 in
  let agree = ref 0 and live_cases = ref 0 in
  List.iter
    (fun target ->
      let peers_via =
        List.filter
          (fun peer -> peer_route_contains mux peer target = Some true)
          mux.Workloads.Scenarios.feeds
      in
      if peers_via <> [] then begin
        Lifeguard.Remediate.poison net plan ~target;
        Bgp.Network.run_until_quiet net;
        List.iter
          (fun peer ->
            incr cases;
            let found =
              match peer_route_contains mux peer target with
              | Some false -> true
              | Some true | None -> false
            in
            if found then incr rerouted
            else begin
              (* Captive: every policy path from the peer to the origin
                 crosses the poisoned AS. *)
              if
                not
                  (Lifeguard.Decide.alternate_path_exists graph ~src:peer ~origin
                     ~avoid:target)
              then incr captive
            end;
            let predicted =
              Lifeguard.Decide.alternate_path_exists graph ~src:peer ~origin ~avoid:target
            in
            incr live_cases;
            if predicted = found then incr agree)
          peers_via;
        Lifeguard.Remediate.unpoison net plan;
        Bgp.Network.run_until_quiet net
      end)
    targets;
  (* Large-scale simulation: every transit AS on every feed path. *)
  let sim_cases = ref 0 and sim_alt = ref 0 in
  List.iter
    (fun peer ->
      match Bgp.Network.best_route net peer Workloads.Scenarios.production_prefix with
      | None -> ()
      | Some entry ->
          let path = entry.Bgp.Route.ann.Bgp.Route.path in
          let interior =
            List.filter
              (fun a ->
                (not (Asn.equal a origin))
                && (not (Asn.equal a peer))
                && not (List.exists (Asn.equal a) mux.Workloads.Scenarios.providers))
              path
          in
          List.iter
            (fun a ->
              incr sim_cases;
              if Lifeguard.Decide.alternate_path_exists graph ~src:peer ~origin ~avoid:a
              then incr sim_alt)
            (List.sort_uniq Asn.compare interior))
    mux.Workloads.Scenarios.feeds;
  let fraction num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  {
    poisons_attempted = List.length targets;
    cases = !cases;
    rerouted = !rerouted;
    fraction_rerouted = fraction !rerouted !cases;
    captive = !captive;
    sim_cases = !sim_cases;
    sim_with_alternate = !sim_alt;
    fraction_sim = fraction !sim_alt !sim_cases;
    agreement = fraction !agree !live_cases;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.1 Efficacy (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "poisonings"; "-"; Stats.Table.cell_int r.poisons_attempted ];
      [ "peer-paths through poisoned AS"; "132"; Stats.Table.cell_int r.cases ];
      [
        "found alternate path";
        Stats.Table.cell_pct paper_fraction_rerouted;
        Stats.Table.cell_pct r.fraction_rerouted;
      ];
      [
        "of failures, captive behind only provider";
        "2/3";
        Printf.sprintf "%d/%d" r.captive (r.cases - r.rerouted);
      ];
      [
        "simulation: alternate exists";
        Stats.Table.cell_pct paper_fraction_sim;
        Stats.Table.cell_pct r.fraction_sim;
      ];
      [
        "simulation agrees with live poisoning";
        Stats.Table.cell_pct paper_agreement;
        Stats.Table.cell_pct r.agreement;
      ];
    ];
  [ t ]
