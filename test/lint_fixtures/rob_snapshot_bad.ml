(* Must-flag corpus for LG-ROB-SNAPSHOT: this file defines a snapshot
   [capture], so every mutable or container-typed field of its record
   types must be read inside it — [last], [pending] and [log] are not. *)

type t = {
  name : string;
  mutable hits : int;
  mutable last : float;
  pending : (int, int) Hashtbl.t;
  log : string list ref;
}

let capture t = Printf.sprintf "%s hits=%d" t.name t.hits
