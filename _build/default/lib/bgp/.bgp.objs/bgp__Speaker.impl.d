lib/bgp/speaker.ml: As_path Asn Decision Float Hashtbl List Net Policy Prefix Prefix_trie Printf Relationship Route Topology
