open Net

type injected = {
  at : float;
  duration : float;
  target : Asn.t;
  location : Asn.t;
  direction : Outage_gen.direction;
  spec : Dataplane.Failure.spec;
}

type t = {
  mutable injected : injected list;  (** newest first *)
  mutable drawn : int;
  mutable unplaceable : int;
}

let create () = { injected = []; drawn = 0; unplaceable = 0 }

let start ?outage_params ?toward_src t ~rng ~bed ~src ~targets ~mean_interarrival ~until () =
  if mean_interarrival <= 0.0 then
    invalid_arg "Arrivals.start: mean interarrival must be positive";
  if targets = [] then invalid_arg "Arrivals.start: no targets";
  let engine = bed.Scenarios.engine in
  let rec schedule_next at =
    if at < until then
      Sim.Engine.schedule engine ~at (fun () ->
          t.drawn <- t.drawn + 1;
          let target = Prng.pick_list rng targets in
          let shape = Outage_gen.shape ?params:outage_params rng in
          (match Scenarios.Placement.on_path rng bed ?toward_src ~src ~dst:target ~shape () with
          | Some placed ->
              let spec = placed.Scenarios.Placement.spec in
              Dataplane.Failure.add bed.Scenarios.failures spec;
              Sim.Engine.schedule_after engine ~delay:shape.Outage_gen.duration (fun () ->
                  Dataplane.Failure.remove bed.Scenarios.failures spec);
              t.injected <-
                {
                  at;
                  duration = shape.Outage_gen.duration;
                  target;
                  location = placed.Scenarios.Placement.location;
                  direction = shape.Outage_gen.direction;
                  spec;
                }
                :: t.injected
          | None -> t.unplaceable <- t.unplaceable + 1);
          schedule_next
            (Sim.Engine.now engine +. Prng.Dist.exponential rng ~mean:mean_interarrival))
  in
  schedule_next (Sim.Engine.now engine +. Prng.Dist.exponential rng ~mean:mean_interarrival)

let injected t = List.rev t.injected
let injected_count t = List.length t.injected
let drawn_count t = t.drawn
let unplaceable_count t = t.unplaceable

(* The rate the load model's H(d) talks about: injected outages per day
   that last at least [d_minutes] — reading the ledger is the ground
   truth a measured run compares its poison rate against. *)
let daily_rate_at_least t ~observed_days ~d_minutes =
  if observed_days <= 0.0 then 0.0
  else begin
    let threshold = d_minutes *. 60.0 in
    let n = List.length (List.filter (fun i -> i.duration >= threshold) t.injected) in
    float_of_int n /. observed_days
  end
