(** Internet addressing primitives: AS numbers, IPv4 addresses, CIDR
    prefixes and a longest-prefix-match trie. *)

module Asn = Asn
module Ipv4 = Ipv4
module Prefix = Prefix
module Prefix_trie = Prefix_trie
