(* must-pass fixture: has a sibling .mli. *)

let exported x = x * 2

let internal_helper x = x - 1
