lib/experiments/sec51_efficacy.ml: Array Asn Bgp Lifeguard List Net Printf Prng Stats Workloads
