(* End-to-end experiment drivers at reduced scale: the assertions check
   shape (who wins, directionally), not the paper's absolute numbers. *)

let in_unit x = x >= 0.0 && x <= 1.0

let test_fig1 () =
  let r = Experiments.Fig1_durations.run ~n:3000 ~seed:42 () in
  Alcotest.(check bool) "most events are short" true (r.Experiments.Fig1_durations.fraction_events_le_10min > 0.85);
  Alcotest.(check bool) "long events dominate unavailability" true
    (r.Experiments.Fig1_durations.unavailability_share_gt_10min > 0.5);
  Alcotest.(check bool) "the two CDFs cross the right way" true
    (r.Experiments.Fig1_durations.fraction_events_le_10min
    > 1.0 -. r.Experiments.Fig1_durations.unavailability_share_gt_10min);
  Alcotest.(check int) "series lengths match" (List.length r.Experiments.Fig1_durations.events_cdf)
    (List.length r.Experiments.Fig1_durations.unavailability_cdf);
  (* Rendering must not raise. *)
  ignore (Experiments.Fig1_durations.to_tables r)

let test_fig5 () =
  let r = Experiments.Fig5_residual.run ~n:3000 ~seed:42 () in
  Alcotest.(check bool) "5+5 survival near half" true
    (r.Experiments.Fig5_residual.survival_5_plus_5 > 0.35
    && r.Experiments.Fig5_residual.survival_5_plus_5 < 0.65);
  Alcotest.(check bool) "most unavailability is repairable" true
    (r.Experiments.Fig5_residual.repairable_share > 0.45);
  (* Residual mean must grow with elapsed time (the paper's key point). *)
  let means =
    List.map
      (fun p -> p.Experiments.Fig5_residual.mean_residual_min)
      r.Experiments.Fig5_residual.points
  in
  (match (means, List.rev means) with
  | first :: _, last :: _ -> Alcotest.(check bool) "hazard decreases" true (last > first)
  | _ -> Alcotest.fail "no points");
  ignore (Experiments.Fig5_residual.to_tables r)

let test_tab2 () =
  let r = Experiments.Tab2_load.run ~n:3000 ~seed:42 () in
  Alcotest.(check bool) "anchor near 275" true
    (r.Experiments.Tab2_load.reference_cell > 200.0 && r.Experiments.Tab2_load.reference_cell < 350.0);
  Alcotest.(check bool) "small deployments are cheap" true
    (r.Experiments.Tab2_load.overhead_small_deploy < 0.10);
  Alcotest.(check int) "full grid" 18 (List.length r.Experiments.Tab2_load.rows);
  ignore (Experiments.Tab2_load.to_tables r)

let test_efficacy () =
  let r = Experiments.Sec51_efficacy.run ~ases:150 ~max_poisons:10 ~seed:42 () in
  Alcotest.(check bool) "some poisonings observed" true (r.Experiments.Sec51_efficacy.cases > 0);
  Alcotest.(check bool) "fractions in unit range" true
    (in_unit r.Experiments.Sec51_efficacy.fraction_rerouted
    && in_unit r.Experiments.Sec51_efficacy.fraction_sim);
  Alcotest.(check bool) "simulation strongly predicts live outcomes" true
    (r.Experiments.Sec51_efficacy.agreement > 0.8);
  ignore (Experiments.Sec51_efficacy.to_tables r)

let test_fig6 () =
  let r = Experiments.Fig6_convergence.run ~ases:150 ~max_poisons:6 ~seed:42 () in
  let find label =
    List.find (fun s -> s.Experiments.Fig6_convergence.label = label)
      r.Experiments.Fig6_convergence.series
  in
  let p_nc = find "Prepend, no change" in
  let np_nc = find "No prepend, no change" in
  (* The paper's headline: prepending makes unaffected peers converge
     instantly far more often. *)
  Alcotest.(check bool) "prepending helps" true
    (p_nc.Experiments.Fig6_convergence.instant >= np_nc.Experiments.Fig6_convergence.instant);
  Alcotest.(check bool) "prepend instant is near-total" true
    (p_nc.Experiments.Fig6_convergence.instant > 0.9);
  ignore (Experiments.Fig6_convergence.to_tables r)

let test_case_study () =
  let r = Experiments.Case_study.run () in
  Alcotest.(check bool) "blames UUNET" true r.Experiments.Case_study.diagnosis_blames_uunet;
  Alcotest.(check bool) "repaired" true r.Experiments.Case_study.repaired;
  Alcotest.(check bool) "unpoisoned after repair" true
    r.Experiments.Case_study.unpoisoned_after_repair;
  (* The connectivity story: down after injection, up after reaction. *)
  let phase label =
    List.find (fun c -> c.Experiments.Case_study.label = label) r.Experiments.Case_study.checks
  in
  Alcotest.(check bool) "up before" true (phase "before failure").Experiments.Case_study.reachable;
  Alcotest.(check bool) "down during" false
    (phase "failure injected").Experiments.Case_study.reachable;
  Alcotest.(check bool) "up after reaction" true
    (phase "after LIFEGUARD reacts").Experiments.Case_study.reachable;
  Alcotest.(check bool) "up after unpoison" true
    (phase "after repair + unpoison").Experiments.Case_study.reachable;
  ignore (Experiments.Case_study.to_tables r)

let test_accuracy_small () =
  let r = Experiments.Sec53_accuracy.run ~ases:150 ~failure_count:25 ~seed:42 () in
  Alcotest.(check bool) "isolates most failures" true (r.Experiments.Sec53_accuracy.isolated > 10);
  Alcotest.(check bool) "consistency is high" true
    (r.Experiments.Sec53_accuracy.fraction_consistent > 0.7);
  Alcotest.(check bool) "nonzero probing cost" true (r.Experiments.Sec53_accuracy.mean_probes > 0.0);
  ignore (Experiments.Sec53_accuracy.to_tables r)

let test_alt_paths_small () =
  let r = Experiments.Sec22_alt_paths.run ~ases:150 ~outage_count:60 ~seed:42 () in
  Alcotest.(check bool) "alternates found for some outages" true
    (r.Experiments.Sec22_alt_paths.fraction_all > 0.2);
  Alcotest.(check bool) "fractions in range" true
    (in_unit r.Experiments.Sec22_alt_paths.fraction_all
    && in_unit r.Experiments.Sec22_alt_paths.fraction_long
    && in_unit r.Experiments.Sec22_alt_paths.persistence);
  ignore (Experiments.Sec22_alt_paths.to_tables r)

let test_sentinel_variants () =
  let r = Experiments.Sec72_sentinel.run () in
  let row v =
    List.find (fun x -> x.Experiments.Sec72_sentinel.variant = v) r.Experiments.Sec72_sentinel.rows
  in
  let covering = row Experiments.Sec72_sentinel.Covering_less_specific in
  Alcotest.(check bool) "covering: captive kept" true
    covering.Experiments.Sec72_sentinel.captive_has_route;
  Alcotest.(check bool) "covering: repair detectable" true
    covering.Experiments.Sec72_sentinel.repair_detectable;
  let disjoint = row Experiments.Sec72_sentinel.Disjoint_unused in
  Alcotest.(check bool) "disjoint: captive cut off" false
    disjoint.Experiments.Sec72_sentinel.captive_has_route;
  Alcotest.(check bool) "disjoint: repair detectable" true
    disjoint.Experiments.Sec72_sentinel.repair_detectable;
  let none = row Experiments.Sec72_sentinel.No_sentinel in
  Alcotest.(check bool) "none: captive cut off" false
    none.Experiments.Sec72_sentinel.captive_has_route;
  Alcotest.(check bool) "none: repair invisible" false
    none.Experiments.Sec72_sentinel.repair_detectable;
  ignore (Experiments.Sec72_sentinel.to_tables r)

let test_anomalies () =
  let r = Experiments.Sec71_anomalies.run ~ases:120 ~seed:42 () in
  Alcotest.(check bool) "some relaxed ASes probed" true
    (r.Experiments.Sec71_anomalies.relaxed_ases > 0);
  Alcotest.(check int) "single poison never takes on relaxed ASes"
    r.Experiments.Sec71_anomalies.relaxed_ases
    r.Experiments.Sec71_anomalies.single_poison_ineffective;
  Alcotest.(check int) "doubling the ASN always takes"
    r.Experiments.Sec71_anomalies.single_poison_ineffective
    r.Experiments.Sec71_anomalies.double_poison_effective;
  Alcotest.(check bool) "filtered branch propagates less" true
    (r.Experiments.Sec71_anomalies.tier1_poison_via_filter_reached
    < r.Experiments.Sec71_anomalies.tier1_poison_via_clean_reached);
  ignore (Experiments.Sec71_anomalies.to_tables r)

let test_ablation () =
  let r = Experiments.Ablation.run ~ases:120 ~poisons:4 ~seed:42 () in
  let find label =
    List.find (fun row -> row.Experiments.Ablation.label = label) r.Experiments.Ablation.rows
  in
  let base = find "baseline: prepend, MRAI 30, FIB instant" in
  let noprep = find "no prepending" in
  Alcotest.(check bool) "prepending never hurts instant convergence" true
    (base.Experiments.Ablation.instant_unaffected
    >= noprep.Experiments.Ablation.instant_unaffected);
  Alcotest.(check bool) "prepending shortens global convergence" true
    (base.Experiments.Ablation.global_median <= noprep.Experiments.Ablation.global_median);
  let fast = find "MRAI 5 s" in
  Alcotest.(check bool) "smaller MRAI converges faster" true
    (fast.Experiments.Ablation.global_median <= base.Experiments.Ablation.global_median);
  ignore (Experiments.Ablation.to_tables r)

let test_hubble () =
  let r = Experiments.Hubble_study.run ~ases:120 ~days:2.0 ~failures_per_day:20.0 ~seed:42 () in
  Alcotest.(check bool) "failures injected" true (r.Experiments.Hubble_study.injected > 10);
  Alcotest.(check bool) "incidents detected" true (r.Experiments.Hubble_study.detected > 0);
  Alcotest.(check bool) "H(d) decreasing in d" true
    (r.Experiments.Hubble_study.h5 >= r.Experiments.Hubble_study.h15
    && r.Experiments.Hubble_study.h15 >= r.Experiments.Hubble_study.h60);
  ignore (Experiments.Hubble_study.to_tables r)

let test_damping () =
  let r = Experiments.Damping.run ~ases:120 ~seed:42 () in
  Alcotest.(check bool) "rapid flapping trips suppression" true
    (r.Experiments.Damping.rapid_suppressors > 0);
  Alcotest.(check int) "spaced announcements never do" 0
    r.Experiments.Damping.spaced_suppressors;
  Alcotest.(check int) "nobody cut off when spaced" 0 r.Experiments.Damping.spaced_cutoff;
  ignore (Experiments.Damping.to_tables r)

let suite =
  [
    Alcotest.test_case "fig1 shape" `Quick test_fig1;
    Alcotest.test_case "fig5 shape" `Quick test_fig5;
    Alcotest.test_case "table2 anchor" `Quick test_tab2;
    Alcotest.test_case "efficacy shape" `Slow test_efficacy;
    Alcotest.test_case "fig6 shape" `Slow test_fig6;
    Alcotest.test_case "case study end-to-end" `Slow test_case_study;
    Alcotest.test_case "accuracy shape" `Slow test_accuracy_small;
    Alcotest.test_case "alt-paths shape" `Slow test_alt_paths_small;
    Alcotest.test_case "sentinel variants (sec 7.2)" `Quick test_sentinel_variants;
    Alcotest.test_case "poisoning anomalies (sec 7.1)" `Slow test_anomalies;
    Alcotest.test_case "ablation directions" `Slow test_ablation;
    Alcotest.test_case "hubble H(d) derivation" `Slow test_hubble;
    Alcotest.test_case "flap damping vs spacing" `Slow test_damping;
  ]
