(* Report rendering: the machine-readable output formats of
   lifeguard-lint (text, json, SARIF 2.1.0, GitHub workflow commands)
   plus a dependency-free JSON well-formedness checker used by the test
   suite to keep the SARIF emitter honest. *)

type format = Text | Json | Sarif | Github

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | "github" -> Some Github
  | _ -> None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let text_line (v : Source_scan.violation) =
  Printf.sprintf "%s:%d:%d: [%s] %s" v.file v.line v.col (Rule.id v.rule) v.message

(* GitHub workflow commands: one `::warning`/`::error` per violation, so
   a CI run annotates the diff at the offending line. *)
let github_line ?(level = "warning") (v : Source_scan.violation) =
  Printf.sprintf "::%s file=%s,line=%d,col=%d,title=%s::%s" level v.file v.line (v.col + 1)
    (Rule.id v.rule) v.message

let render_json ~violations ~errors =
  let item (v : Source_scan.violation) =
    Printf.sprintf "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      (Rule.id v.rule) (json_escape v.file) v.line v.col (json_escape v.message)
  in
  let err (f, e) =
    Printf.sprintf "{\"file\":\"%s\",\"error\":\"%s\"}" (json_escape f) (json_escape e)
  in
  Printf.sprintf "{\"violations\":[%s],\"errors\":[%s]}\n"
    (String.concat "," (List.map item violations))
    (String.concat "," (List.map err errors))

(* Minimal SARIF 2.1.0: one run, the full rule catalogue as tool rules,
   one result per violation. Columns are 1-based in SARIF. *)
let render_sarif ~violations ~errors =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\
     \"runs\":[{\"tool\":{\"driver\":{\"name\":\"lifeguard-lint\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}" (Rule.id r)
           (json_escape (Rule.describe r))))
    Rule.all;
  Buffer.add_string b "]}},\"results\":[";
  List.iteri
    (fun i (v : Source_scan.violation) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\":\"%s\",\"level\":\"warning\",\"message\":{\"text\":\"%s\"},\
            \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\
            \"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
           (Rule.id v.rule) (json_escape v.message) (json_escape v.file) v.line (v.col + 1)))
    violations;
  Buffer.add_string b "]";
  (match errors with
  | [] -> ()
  | errs ->
      Buffer.add_string b ",\"invocations\":[{\"executionSuccessful\":false,\
                           \"toolExecutionNotifications\":[";
      List.iteri
        (fun i (f, e) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"level\":\"error\",\"message\":{\"text\":\"%s: %s\"}}"
               (json_escape f) (json_escape e)))
        errs;
      Buffer.add_string b "]}]");
  Buffer.add_string b "}]}\n";
  Buffer.contents b

let render format ~violations ~errors =
  match format with
  | Text ->
      String.concat "" (List.map (fun v -> text_line v ^ "\n") violations)
  | Json -> render_json ~violations ~errors
  | Sarif -> render_sarif ~violations ~errors
  | Github ->
      String.concat "" (List.map (fun v -> github_line v ^ "\n") violations)

(* ---------------- JSON well-formedness -------------------------------- *)

(* A recursive-descent validator (values are not materialized): enough to
   assert at test time that the SARIF emitter produces parseable JSON
   without adding a JSON dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "offset %d: %s" !pos msg) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then begin
      advance ();
      Ok ()
    end
    else fail (Printf.sprintf "expected %c" c)
  in
  let lit word =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      Ok ()
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_tok () =
    match expect '"' with
    | Error _ as e -> e
    | Ok () ->
        let rec go () =
          if !pos >= n then fail "unterminated string"
          else
            match s.[!pos] with
            | '"' ->
                advance ();
                Ok ()
            | '\\' ->
                advance ();
                if !pos >= n then fail "bad escape"
                else begin
                  (match s.[!pos] with
                  | 'u' -> pos := !pos + 4
                  | _ -> ());
                  advance ();
                  go ()
                end
            | _ ->
                advance ();
                go ()
        in
        go ()
  in
  let number_tok () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    if !pos > start then Ok () else fail "expected number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_tok ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number_tok ()
    | _ -> fail "expected a JSON value"
  and obj () =
    match expect '{' with
    | Error _ as e -> e
    | Ok () -> (
        skip_ws ();
        match peek () with
        | Some '}' ->
            advance ();
            Ok ()
        | _ ->
            let rec members () =
              skip_ws ();
              match string_tok () with
              | Error _ as e -> e
              | Ok () -> (
                  skip_ws ();
                  match expect ':' with
                  | Error _ as e -> e
                  | Ok () -> (
                      match value () with
                      | Error _ as e -> e
                      | Ok () -> (
                          skip_ws ();
                          match peek () with
                          | Some ',' ->
                              advance ();
                              members ()
                          | Some '}' ->
                              advance ();
                              Ok ()
                          | _ -> fail "expected , or }")))
            in
            members ())
  and arr () =
    match expect '[' with
    | Error _ as e -> e
    | Ok () -> (
        skip_ws ();
        match peek () with
        | Some ']' ->
            advance ();
            Ok ()
        | _ ->
            let rec elements () =
              match value () with
              | Error _ as e -> e
              | Ok () -> (
                  skip_ws ();
                  match peek () with
                  | Some ',' ->
                      advance ();
                      elements ()
                  | Some ']' ->
                      advance ();
                      Ok ()
                  | _ -> fail "expected , or ]")
            in
            elements ())
  in
  match value () with
  | Error _ as e -> e
  | Ok () ->
      skip_ws ();
      if !pos = n then Ok () else fail "trailing garbage"
