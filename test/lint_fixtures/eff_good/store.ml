(* Clean twin: the table is created per call and threaded explicitly;
   no module-level mutable state. *)
let create () = Hashtbl.create 7

let put t k = Hashtbl.replace t k ()
