(** A Hubble-style black-hole monitoring system (Katz-Bassett et al.,
    NSDI 2008) — the study whose outage ledger anchors the paper's
    Table 2 load model ([P(d)] = poisonable outages per day lasting at
    least [d] minutes).

    A central site pings every monitored target on a fixed interval;
    after a run of failed rounds it triggers reachability checks from all
    distributed vantage points and classifies the incident: {e complete}
    (nobody reaches the target), {e partial} (some do — the class
    LIFEGUARD can repair), closing it when the central path works again.
    Incidents carry their duration, so the ledger directly yields
    [H(d)], the daily rate of poisonable incidents lasting at least
    [d]. *)

open Net

type classification =
  | Partial  (** Some vantage points still reach the target: poisonable. *)
  | Complete  (** Nobody does — nothing to reroute onto. *)

type incident = {
  target : Asn.t;
  started_at : float;
  detected_at : float;
  mutable ended_at : float option;
  mutable classification : classification;
  mutable reachable_vps : int;  (** At classification time. *)
  mutable total_vps : int;
}

val duration : incident -> now:float -> float

val is_poisonable : incident -> bool
(** Partial incidents are candidates for poisoning-based repair. *)

type t

val create :
  env:Dataplane.Probe.env ->
  engine:Sim.Engine.t ->
  ?ping_interval:float ->
  ?fail_threshold:int ->
  central:Asn.t ->
  vantage_points:Asn.t list ->
  targets:Asn.t list ->
  unit ->
  t
(** Start monitoring: the [central] site pings each target every
    [ping_interval] (default 120 s, Hubble's rate); [fail_threshold]
    (default 3) consecutive failures trigger distributed classification
    from [vantage_points]. Runs until the engine stops being driven. *)

val incidents : t -> incident list
(** All incidents, oldest first (open ones included). *)

val h_of_d : t -> observed_days:float -> d_minutes:float -> float
(** Daily rate of {e closed, poisonable} incidents lasting at least
    [d_minutes] — Hubble's [H(d)]. *)

val probe_count : t -> int
