test/test_bgp.ml: Alcotest As_graph Asn Bgp Dataplane Helpers List Net Prefix Printf Relationship Topology
