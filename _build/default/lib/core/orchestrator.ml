open Net

type config = {
  decide : Decide.config;
  recheck_interval : float;
  monitor_interval : float;
}

let default_config =
  { decide = Decide.default_config; recheck_interval = 120.0; monitor_interval = 30.0 }

type event =
  | Outage_detected of { vp : Asn.t; target : Asn.t }
  | Diagnosed of Isolation.diagnosis
  | Decision of Decide.verdict
  | Poison_announced of Asn.t
  | Recovery_detected of Asn.t
  | Unpoisoned
  | Gave_up of string

let pp_event fmt = function
  | Outage_detected { vp; target } ->
      Format.fprintf fmt "outage detected: %a cannot reach %a" Asn.pp target Asn.pp vp
  | Diagnosed d -> Format.fprintf fmt "diagnosed: %a" Isolation.pp_diagnosis d
  | Decision v -> Format.fprintf fmt "decision: %a" Decide.pp_verdict v
  | Poison_announced a -> Format.fprintf fmt "poisoned %a" Asn.pp a
  | Recovery_detected a -> Format.fprintf fmt "recovery detected through %a" Asn.pp a
  | Unpoisoned -> Format.pp_print_string fmt "unpoisoned: back to baseline"
  | Gave_up reason -> Format.fprintf fmt "gave up: %s" reason

type state = Idle | Isolating | Poisoned of Asn.t

let log_src = Logs.Src.create "lifeguard.orchestrator" ~doc:"LIFEGUARD control loop"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  config : config;
  env : Dataplane.Probe.env;
  atlas : Measurement.Atlas.t;
  responsiveness : Measurement.Responsiveness.t;
  plan : Remediate.plan;
  vantage_points : Asn.t list;
  mutable state : state;
  mutable events : (float * event) list;  (** newest first *)
  mutable monitors : Measurement.Monitor.t list;
  outage_started : (Asn.t, float) Hashtbl.t;
      (** First-failure estimate per target, persisted across isolation
          rounds so the age gate measures the true outage age. *)
}

let engine t = Bgp.Network.engine t.env.Dataplane.Probe.net
let now t = Sim.Engine.now (engine t)
let log t event =
  Log.info (fun m -> m "t=%.0f %a" (now t) pp_event event);
  t.events <- (now t, event) :: t.events

let create ?(config = default_config) ~env ~atlas ~responsiveness ~plan ~vantage_points () =
  Remediate.announce_baseline env.Dataplane.Probe.net plan;
  {
    config;
    env;
    atlas;
    responsiveness;
    plan;
    vantage_points;
    state = Idle;
    events = [];
    monitors = [];
    outage_started = Hashtbl.create 8;
  }

(* The origin's probes are sourced from its production prefix: reverse
   failures scoped to the announced space must be visible to them. *)
let origin_source t = Prefix.nth_address t.plan.Remediate.production 1

let isolation_context t =
  {
    Isolation.env = t.env;
    atlas = t.atlas;
    responsiveness = t.responsiveness;
    vantage_points = t.vantage_points;
    source_overrides = [ (t.plan.Remediate.origin, origin_source t) ];
  }

let target_address t target = Dataplane.Forward.probe_address t.env.Dataplane.Probe.net target

(* While poisoned, test the sentinel periodically; unpoison on repair. *)
let rec schedule_recovery_checks t ~target ~affected =
  Sim.Engine.schedule_after (engine t) ~delay:t.config.recheck_interval (fun () ->
      match t.state with
      | Poisoned poisoned when Asn.equal poisoned target ->
          if Remediate.is_recovered t.env t.plan ~through:target ~targets:affected then begin
            log t (Recovery_detected target);
            Remediate.unpoison t.env.Dataplane.Probe.net t.plan;
            t.state <- Idle;
            log t Unpoisoned
          end
          else schedule_recovery_checks t ~target ~affected
      | Idle | Isolating | Poisoned _ -> ())

let apply_poison t ~target ~poison_target =
  Remediate.poison t.env.Dataplane.Probe.net t.plan ~target:poison_target;
  t.state <- Poisoned poison_target;
  log t (Poison_announced poison_target);
  schedule_recovery_checks t ~target:poison_target ~affected:[ target ]

let stand_down t ~target reason =
  Hashtbl.remove t.outage_started target;
  t.state <- Idle;
  log t (Gave_up reason)

let run_pipeline t ~vp ~target ~outage_started =
  let diagnosis = Isolation.isolate (isolation_context t) ~src:vp ~dst:target in
  log t (Diagnosed diagnosis);
  let graph = Bgp.Network.graph t.env.Dataplane.Probe.net in
  let decide_now () =
    let outage_age = now t -. outage_started in
    let verdict =
      Decide.decide t.config.decide graph ~origin:t.plan.Remediate.origin ~diagnosis
        ~outage_age
    in
    log t (Decision verdict);
    verdict
  in
  (* While the verdict is Wait, keep rechecking: stand down if the outage
     resolves on its own, poison once it has aged past the gate. *)
  let rec decide_and_act () =
    match decide_now () with
    | Decide.Poison poison_target ->
        Hashtbl.remove t.outage_started target;
        apply_poison t ~target ~poison_target
    | Decide.Hopeless reason -> stand_down t ~target reason
    | Decide.Wait _ ->
        Sim.Engine.schedule_after (engine t) ~delay:t.config.recheck_interval (fun () ->
            if
              Dataplane.Probe.ping_from t.env ~src:vp ~src_ip:(origin_source t)
                ~dst:(target_address t target)
            then stand_down t ~target "outage resolved on its own"
            else decide_and_act ())
  in
  (* The decision happens once isolation completes; model its latency by
     scheduling the decision (and any poisoning) after [elapsed]. *)
  Sim.Engine.schedule_after (engine t) ~delay:diagnosis.Isolation.elapsed decide_and_act

let notify_outage t ~vp ~target =
  match t.state with
  | Isolating | Poisoned _ -> ()
  | Idle ->
      t.state <- Isolating;
      log t (Outage_detected { vp; target });
      (* The monitor crossed its threshold after several failed rounds;
         the outage began roughly threshold x interval earlier — unless a
         previous isolation round already pinned the start time. *)
      let outage_started =
        match Hashtbl.find_opt t.outage_started target with
        | Some started -> started
        | None ->
            let started = now t -. (4.0 *. t.config.monitor_interval) in
            Hashtbl.replace t.outage_started target started;
            started
      in
      run_pipeline t ~vp ~target ~outage_started

let watch t ~targets =
  let origin = t.plan.Remediate.origin in
  Measurement.Atlas.refresh_all t.atlas t.env ~vps:[ origin ] ~dsts:targets ~now:(now t);
  let monitor =
    Measurement.Monitor.create ~env:t.env ~engine:(engine t)
      ~interval:t.config.monitor_interval ~responsiveness:t.responsiveness
      ~on_outage:(fun outage ->
        match
          Bgp.Network.owner_of_address t.env.Dataplane.Probe.net
            outage.Measurement.Monitor.target
        with
        | Some (_, target_as) -> notify_outage t ~vp:origin ~target:target_as
        | None -> begin
            match
              Topology.As_graph.owner_of_address
                (Bgp.Network.graph t.env.Dataplane.Probe.net)
                outage.Measurement.Monitor.target
            with
            | Some target_as -> notify_outage t ~vp:origin ~target:target_as
            | None -> ()
          end)
      ~src_ip:(origin_source t) ~vp:origin
      ~targets:(List.map (target_address t) targets)
      ()
  in
  t.monitors <- monitor :: t.monitors

let state t = t.state
let events t = List.rev t.events
let plan t = t.plan
