(* Per-domain shards merged at read time.

   Only the owning domain ever writes a shard (it lives in that domain's
   DLS), so the record path is lock-free and allocation-free; the
   registry mutex guards only metric interning, shard registration and
   snapshot/reset. Merging sums counters and histogram buckets and takes
   the max of gauges — order-insensitive reductions, which is what keeps
   metrics-enabled output byte-identical for every --jobs value. *)

type counter = int
type gauge = int
type histogram = int

let lock = Mutex.create ()
let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let on () = Atomic.get enabled

(* Registry: name -> id per metric family, plus histogram bucket bounds.
   All access is under [lock]; ids are assigned densely in registration
   order and double as shard array indices. *)
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let gauge_ids : (string, int) Hashtbl.t = Hashtbl.create 16
let hist_ids : (string, int) Hashtbl.t = Hashtbl.create 16
let hist_bounds : (int, float array) Hashtbl.t = Hashtbl.create 16

let default_bounds = [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |]

let intern tbl name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt tbl name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length tbl in
        Hashtbl.replace tbl name id;
        id
  in
  Mutex.unlock lock;
  id

let counter name = intern counter_ids name
let gauge name = intern gauge_ids name

let histogram ?bounds name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt hist_ids name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length hist_ids in
        Hashtbl.replace hist_ids name id;
        let bounds =
          match bounds with
          | Some b -> Array.copy b
          | None -> default_bounds
        in
        Hashtbl.replace hist_bounds id bounds;
        id
  in
  Mutex.unlock lock;
  id

type shard = {
  mutable c : int array;  (* counter id -> count *)
  mutable g : int array;  (* gauge id -> high-watermark *)
  mutable h : int array array;  (* hist id -> bucket counts (bounds+1) *)
  mutable hb : float array array;  (* hist id -> cached bucket bounds *)
}

let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { c = [||]; g = [||]; h = [||]; hb = [||] } in
      Mutex.lock lock;
      shards := s :: !shards;
      Mutex.unlock lock;
      s)

let grow_int_array a n =
  let bigger = Array.make (max n (2 * Array.length a + 8)) 0 in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let add c n =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard_key in
    if c >= Array.length s.c then s.c <- grow_int_array s.c (c + 1);
    Array.unsafe_set s.c c (Array.unsafe_get s.c c + n)
  end

let incr c = add c 1

let observe_max g v =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard_key in
    if g >= Array.length s.g then s.g <- grow_int_array s.g (g + 1);
    if v > Array.unsafe_get s.g g then Array.unsafe_set s.g g v
  end

let bucket_of bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > Array.unsafe_get bounds !i do Stdlib.incr i done;
  !i

let observe h v =
  if Atomic.get enabled then begin
    let s = Domain.DLS.get shard_key in
    if h >= Array.length s.h then begin
      let bigger = Array.make (max (h + 1) (2 * Array.length s.h + 4)) [||] in
      Array.blit s.h 0 bigger 0 (Array.length s.h);
      s.h <- bigger;
      let bb = Array.make (Array.length bigger) [||] in
      Array.blit s.hb 0 bb 0 (Array.length s.hb);
      s.hb <- bb
    end;
    if Array.length s.h.(h) = 0 then begin
      (* First observation on this domain: cache the registered bounds
         and size the row (registration is rare; take the lock once). *)
      Mutex.lock lock;
      let bounds = Hashtbl.find hist_bounds h in
      Mutex.unlock lock;
      s.hb.(h) <- bounds;
      s.h.(h) <- Array.make (Array.length bounds + 1) 0
    end;
    let row = s.h.(h) in
    let b = bucket_of s.hb.(h) v in
    Array.unsafe_set row b (Array.unsafe_get row b + 1)
  end

let local_value c =
  let s = Domain.DLS.get shard_key in
  if c < Array.length s.c then s.c.(c) else 0

type hist_row = {
  hname : string;
  bounds : float array;
  counts : int array;
  total : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : hist_row list;
}

let sorted_names tbl =
  Hashtbl.fold (fun name id acc -> (name, id) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  Mutex.lock lock;
  let all = !shards in
  let counters =
    List.map
      (fun (name, id) ->
        let total =
          List.fold_left
            (fun acc s -> if id < Array.length s.c then acc + s.c.(id) else acc)
            0 all
        in
        (name, total))
      (sorted_names counter_ids)
  in
  let gauges =
    List.map
      (fun (name, id) ->
        let hi =
          List.fold_left
            (fun acc s -> if id < Array.length s.g then max acc s.g.(id) else acc)
            0 all
        in
        (name, hi))
      (sorted_names gauge_ids)
  in
  let hists =
    List.map
      (fun (name, id) ->
        let bounds = Hashtbl.find hist_bounds id in
        let counts = Array.make (Array.length bounds + 1) 0 in
        List.iter
          (fun s ->
            if id < Array.length s.h && Array.length s.h.(id) > 0 then
              Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) s.h.(id))
          all;
        { hname = name; bounds = Array.copy bounds; counts; total = Array.fold_left ( + ) 0 counts })
      (sorted_names hist_ids)
  in
  Mutex.unlock lock;
  { counters; gauges; hists }

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let reset () =
  Mutex.lock lock;
  List.iter
    (fun s ->
      Array.fill s.c 0 (Array.length s.c) 0;
      Array.fill s.g 0 (Array.length s.g) 0;
      Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) s.h)
    !shards;
  Mutex.unlock lock
