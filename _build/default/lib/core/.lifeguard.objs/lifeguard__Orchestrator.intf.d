lib/core/orchestrator.mli: Asn Dataplane Decide Format Isolation Measurement Net Remediate
