lib/workloads/outage_gen.mli: Prng
