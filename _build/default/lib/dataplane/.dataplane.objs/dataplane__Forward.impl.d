lib/dataplane/forward.ml: Array As_graph Asn Bgp Failure Format Hashtbl Ipv4 List Net Prefix String Topology
