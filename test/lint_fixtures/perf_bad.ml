(* must-flag fixture: hot-path hygiene rule family, LG-PERF rules. *)

let rec dedup acc = function
  | [] -> acc
  | x :: tl -> if List.mem x acc then dedup acc tl else dedup (acc @ [ x ]) tl

let index pairs keys = List.map (fun k -> List.assoc k pairs) keys

let flatten groups = List.fold_left (fun acc g -> acc @ g) [] groups
