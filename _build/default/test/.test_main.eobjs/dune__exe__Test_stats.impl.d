test/test_stats.ml: Alcotest Float List Printf QCheck QCheck_alcotest Stats String
