(* Two hops from the Random seed: LG-EFF-RANDOM with the full chain
   Rand_top.choose -> Rand_mid.pick -> Rand_core.draw -> Random.int. *)
let choose () = Rand_mid.pick 3
