lib/bgp/convergence.mli: Asn Net Network Prefix
