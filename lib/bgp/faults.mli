(** Seeded control-plane fault injection.

    The measurement-plane chaos of the fleet layer perturbs probes and
    vantage points; this module makes the {e control plane} itself a
    fault domain, the way §5's case studies and the poisoning literature
    observe in the wild: sessions flap (RIB flush on both sides, full
    re-sync on re-establishment), links fail and are repaired
    mid-convergence, routers crash losing their loc-RIB and restart
    re-originating from configuration, and individual updates are lost or
    duplicated on the wire.

    Every fault is drawn from the caller's seeded {!Prng.t} on the
    simulation clock, so a fault schedule is deterministic and — because
    each trial world owns its injector, like [Fleet.Chaos] — invariant
    under [--jobs] sharding. With {!none} (all rates zero) [start]
    schedules nothing and draws nothing: a fault-free run is
    byte-identical to a build without this module. *)

open Net

type config = {
  session_flap_mtbf : float;
      (** Mean seconds between BGP session flaps, per link; [0] disables
          flaps. A flap drops both directions of the session (adj-RIBs
          flushed) and re-establishes after a short downtime. *)
  session_flap_downtime : float;  (** Mean seconds a flapped session stays down. *)
  link_mtbf : float;
      (** Mean uptime seconds per link for long link failures; [0]
          disables them. Same mechanics as a flap, but the downtime is
          long enough for full re-convergence both ways. *)
  link_mttr : float;  (** Mean seconds to repair a failed link. *)
  router_mtbf : float;
      (** Mean uptime seconds per router; [0] disables crashes. A crash
          loses the loc-RIB ({!Network.crash_node}); the restart
          re-learns and re-originates. *)
  router_mttr : float;  (** Mean seconds a crashed router stays down. *)
  update_loss : float;  (** Per-message probability an update is silently lost. *)
  update_dup : float;  (** Per-message probability an update is delivered twice. *)
}

val none : config
(** All rates and probabilities zero: no faults, no draws. *)

val validate : config -> config
(** Raise [Invalid_argument] on out-of-domain knobs (negative MTBFs,
    probabilities outside [0,1], loss+dup > 1, non-positive repair times
    when the class is enabled). *)

val scale : config -> float -> config
(** [scale c k] multiplies every fault {e rate} by [k]: MTBFs divide by
    [k] and the wire probabilities multiply (clamped so the config stays
    valid); repair times are unchanged. [scale c 0.] is fault-free. The
    fault study's intensity axis. *)

type t

val create : ?config:config -> rng:Prng.t -> net:Network.t -> unit -> t
(** Validates the config and binds the injector to a network. Nothing is
    scheduled until {!start}. *)

val start : t -> ?protect:Asn.t list -> until:float -> unit -> unit
(** Arm one renewal process per link (flaps and failures) and per router
    (crashes) up to the horizon, and install the wire-fault hook when
    loss/duplication is on. ASes in [protect] are never crashed (the
    LIFEGUARD origin: the service dying is a different experiment), but
    their links still flap — a reset of the origin's provider session is
    precisely the case the remediation watchdog exists for. Disabled
    classes schedule nothing. *)

val session_flap_count : t -> int
val link_failure_count : t -> int
val router_crash_count : t -> int
val updates_dropped : t -> int
val updates_duplicated : t -> int
