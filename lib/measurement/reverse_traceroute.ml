open Net

type how = Spoofed_record_route | Timestamp | Assumed_symmetric | Confirmed_cached

let how_to_string = function
  | Spoofed_record_route -> "rr"
  | Timestamp -> "ts"
  | Assumed_symmetric -> "sym"
  | Confirmed_cached -> "cached"

type hop = { asn : Asn.t; how : how }

type measurement = {
  path : hop list;
  complete : bool;
  probes_used : int;
  assumed_hops : int;
}

type config = { rr_support : float; ts_support : float; rr_range : int }

let default_config = { rr_support = 0.75; ts_support = 0.55; rr_range = 8 }

type t = {
  config : config;
  env : Dataplane.Probe.env;
  vantage_points : Asn.t list;
}

let create ?(config = default_config) ~env ~vantage_points () =
  { config; env; vantage_points }

(* Option support is a stable property of a router: derive it from an
   explicit integer mix of its address so measurements are reproducible
   and cannot drift with the runtime's generic [Hashtbl.hash]. *)
let support_hash t asn salt =
  let address = Dataplane.Forward.probe_address t.env.Dataplane.Probe.net asn in
  let z = (Int32.to_int (Ipv4.to_int32 address) * 0x9E3779B1) lxor (salt * 0x85EBCA6B) in
  let z = z lxor (z lsr 16) in
  float_of_int (z land 0xFFFF) /. 65536.0

let supports_rr t asn = support_hash t asn 0x5252 < t.config.rr_support
let supports_ts t asn = support_hash t asn 0x5453 < t.config.ts_support

let spend t n = t.env.Dataplane.Probe.probes_sent <- t.env.Dataplane.Probe.probes_sent + n

(* The data-plane truth: the AS-level path a packet from [hop] takes
   toward [to_ip], as a list with [hop] first. *)
let actual_path_from t hop ~to_ip =
  let walk =
    Dataplane.Forward.walk t.env.Dataplane.Probe.net t.env.Dataplane.Probe.failures ~src:hop
      ~dst:to_ip ()
  in
  (Dataplane.Forward.as_path_of_walk walk, walk.Dataplane.Forward.outcome)

let next_hop_of t hop ~to_ip =
  match actual_path_from t hop ~to_ip with
  | _ :: next :: _, _ -> Some next
  | _, _ -> None

let hop_distance t ~from_ ~to_asn =
  let address = Dataplane.Forward.probe_address t.env.Dataplane.Probe.net to_asn in
  let walk =
    Dataplane.Forward.walk t.env.Dataplane.Probe.net t.env.Dataplane.Probe.failures ~src:from_
      ~dst:address ()
  in
  match walk.Dataplane.Forward.outcome with
  | Dataplane.Forward.Delivered ->
      Some (List.length (Dataplane.Forward.as_path_of_walk walk) - 1)
  | Dataplane.Forward.No_route _ | Dataplane.Forward.Loop | Dataplane.Forward.Dropped _ ->
      None

(* Per-hop probe budgets, calibrated so a from-scratch measurement of a
   typical 5-6 hop reverse path costs ~35 probes (the paper's figure) and
   a cache-confirmed one ~10. *)
let rr_cost = 5
let ts_cost = 6
let sym_cost = 1
let confirm_cost = 1

(* Reveal the next reverse hop after [current]. The reply to a spoofed RR
   ping must actually reach the source network, so RR also requires the
   current hop to still have a working path to [to_ip]. *)
let reveal t ~current ~to_ip ~forward_mirror ~position =
  match next_hop_of t current ~to_ip with
  | None -> None
  | Some truth ->
      let rr_feasible =
        supports_rr t truth
        && List.exists
             (fun vp ->
               match hop_distance t ~from_:vp ~to_asn:current with
               | Some d -> d <= t.config.rr_range - 1
               | None -> false)
             t.vantage_points
      in
      if rr_feasible then begin
        spend t rr_cost;
        Some { asn = truth; how = Spoofed_record_route }
      end
      else if supports_ts t truth then begin
        spend t ts_cost;
        Some { asn = truth; how = Timestamp }
      end
      else begin
        (* Assume symmetry for this hop: take the mirrored forward-path
           hop, which is simply wrong when routing is asymmetric. *)
        spend t sym_cost;
        match List.nth_opt forward_mirror position with
        | Some assumed -> Some { asn = assumed; how = Assumed_symmetric }
        | None -> Some { asn = truth; how = Assumed_symmetric }
      end

let measure t ~from_ ~to_ip ?(cached = []) () =
  let net = t.env.Dataplane.Probe.net in
  let from_address = Dataplane.Forward.probe_address net from_ in
  (* Feasibility: some vantage point must deliver spoofed stimuli. *)
  let feasible =
    List.exists
      (fun vp ->
        Dataplane.Forward.delivers net t.env.Dataplane.Probe.failures ~src:vp
          ~dst:from_address)
      t.vantage_points
  in
  if not feasible then None
  else begin
    let probes_at_start = t.env.Dataplane.Probe.probes_sent in
    spend t 2 (* stimulus setup *);
    let source_as = Option.map snd (Bgp.Network.owner_of_address net to_ip) in
    (* Forward path from the source toward the destination, reversed: the
       mirror used by symmetry assumptions. *)
    let forward_mirror =
      match source_as with
      | Some src ->
          let walk =
            Dataplane.Forward.walk net t.env.Dataplane.Probe.failures ~src ~dst:from_address ()
          in
          List.rev (Dataplane.Forward.as_path_of_walk walk)
      | None -> []
    in
    let truth_path, _ = actual_path_from t from_ ~to_ip in
    (* Cache confirmation: one probe per hop while the cached path still
       matches reality. *)
    let rec confirm cached truth acc position =
      match (cached, truth) with
      | c :: crest, tr :: trest when Asn.equal c tr ->
          spend t confirm_cost;
          confirm crest trest ({ asn = c; how = Confirmed_cached } :: acc) (position + 1)
      | _ -> (List.rev acc, position)
    in
    let confirmed, start_position =
      if cached = [] then ([], 1) else confirm cached truth_path [] 0
    in
    let start_position = max 1 start_position in
    let delivered current =
      match source_as with
      | Some src -> Asn.equal current src
      | None -> false
    in
    (* Walk outward from the last known hop, revealing one hop at a
       time. *)
    let rec go current acc position steps =
      if steps > 30 then (List.rev acc, false)
      else if delivered current then (List.rev acc, true)
      else begin
        match reveal t ~current ~to_ip ~forward_mirror ~position with
        | None -> (List.rev acc, false)
        | Some hop -> go hop.asn (hop :: acc) (position + 1) (steps + 1)
      end
    in
    let start_hop, start_acc =
      match List.rev confirmed with
      | last :: _ -> (last.asn, List.rev confirmed)
      | [] -> (from_, [ { asn = from_; how = Spoofed_record_route } ])
    in
    let tail, complete = go start_hop [] start_position 0 in
    let path = start_acc @ tail in
    let assumed_hops =
      List.length (List.filter (fun h -> h.how = Assumed_symmetric) path)
    in
    Some
      {
        path;
        complete;
        probes_used = t.env.Dataplane.Probe.probes_sent - probes_at_start;
        assumed_hops;
      }
  end
