examples/quickstart.mli:
