let run ~name ?(kv = []) f =
  if not (Trace.on ()) then f ()
  else begin
    let t0 = Clock.now () in
    Trace.event ~ts:t0 ~span:name (("phase", Trace.Str "begin") :: kv);
    let finish ok =
      let t1 = Clock.now () in
      Trace.event ~ts:t1 ~span:name
        (("phase", Trace.Str "end")
        :: ("dur", Trace.Float (t1 -. t0))
        :: ("ok", Trace.Bool ok)
        :: kv)
    in
    match f () with
    | r ->
        finish true;
        r
    | exception e ->
        finish false;
        raise e
  end
