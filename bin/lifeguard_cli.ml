(* lifeguard — command-line front end to the reproduction.

   Subcommands run individual experiments (one per paper table/figure),
   replay the case study, or poke at a simulated Internet interactively
   enough for demos:

     lifeguard fig1 --seed 42 --outages 10308
     lifeguard efficacy --ases 318 --poisons 25
     lifeguard case-study
     lifeguard topo --ases 200 --seed 7
     lifeguard poison --ases 150 --seed 7 --target 123 *)

open Cmdliner

let print_tables tables = List.iter Stats.Table.print tables

(* Common options *)
let seed =
  let doc = "PRNG seed; every experiment is deterministic given its seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let ases =
  let doc = "Approximate AS count of the synthetic Internet." in
  Arg.(value & opt int 318 & info [ "ases" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for trial-level parallelism (default: the machine's \
     recommended domain count). Results are identical for every value; \
     1 forces the sequential path."
  in
  Arg.(value & opt int (Par.Pool.default_jobs ()) & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Partition each simulated world over $(docv) shard domains advanced \
     between deterministic time barriers. Tables are byte-identical for \
     every $(docv) >= 1 and compose with $(b,--jobs); 0 (the default) \
     keeps the legacy single-queue engine."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)

(* Observability options, shared by every experiment subcommand. *)
type obs_opts = { trace : string option; metrics : bool }

let obs_term =
  let trace =
    let doc =
      "Stream structured JSONL trace events to $(docv) (implies $(b,--metrics)). \
       One JSON object per line: ts, domain, span, kv."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc = "Record Obs counters during the run and print a summary table after it." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let v trace metrics = { trace; metrics } in
  Term.(const v $ trace $ metrics)

let print_metrics_summary () =
  let snap = Obs.Metrics.snapshot () in
  let table =
    Stats.Table.create ~title:"Obs metrics (merged over domains)"
      ~columns:[ "metric"; "kind"; "value" ]
  in
  List.iter
    (fun (n, v) -> Stats.Table.add_row table [ n; "counter"; string_of_int v ])
    snap.Obs.Metrics.counters;
  List.iter
    (fun (n, v) -> Stats.Table.add_row table [ n; "gauge (max)"; string_of_int v ])
    snap.Obs.Metrics.gauges;
  List.iter
    (fun (h : Obs.Metrics.hist_row) ->
      Stats.Table.add_row table [ h.hname; "histogram"; Printf.sprintf "n=%d" h.total ])
    snap.Obs.Metrics.hists;
  Stats.Table.print table

let with_obs o f =
  if o.metrics || o.trace <> None then begin
    (* Libraries only read time through the injected Obs.Clock; the
       binary is the one place the real clock is installed. *)
    Obs.Clock.set Unix.gettimeofday;
    Obs.Metrics.enable ()
  end;
  (match o.trace with Some path -> Obs.Trace.enable_file path | None -> ());
  Fun.protect
    ~finally:(fun () -> Obs.Trace.close ())
    (fun () ->
      let r = f () in
      if o.metrics then print_metrics_summary ();
      r)

let fig1_cmd =
  let outages =
    Arg.(value & opt int 10308 & info [ "outages" ] ~docv:"N" ~doc:"Dataset size.")
  in
  let run obs seed outages =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Fig1_durations.to_tables (Experiments.Fig1_durations.run ~n:outages ~seed ())))
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Outage duration CDF vs unavailability (paper Fig. 1)")
    Term.(const run $ obs_term $ seed $ outages)

let fig5_cmd =
  let outages =
    Arg.(value & opt int 10308 & info [ "outages" ] ~docv:"N" ~doc:"Dataset size.")
  in
  let run obs seed outages =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Fig5_residual.to_tables (Experiments.Fig5_residual.run ~n:outages ~seed ())))
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Residual outage durations (paper Fig. 5)")
    Term.(const run $ obs_term $ seed $ outages)

let alt_paths_cmd =
  let outages =
    Arg.(value & opt int 400 & info [ "outages" ] ~docv:"N" ~doc:"Failures to inject.")
  in
  let run obs seed ases outages =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec22_alt_paths.to_tables
             (Experiments.Sec22_alt_paths.run ~ases ~outage_count:outages ~seed ())))
  in
  Cmd.v
    (Cmd.info "alt-paths" ~doc:"Alternate policy-compliant path existence (paper sec. 2.2)")
    Term.(const run $ obs_term $ seed $ ases $ outages)

let poisons_arg =
  Arg.(value & opt int 25 & info [ "poisons" ] ~docv:"N" ~doc:"ASes to poison.")

let efficacy_cmd =
  let run obs seed ases poisons jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec51_efficacy.to_tables
             (Experiments.Sec51_efficacy.run ~ases ~max_poisons:poisons ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "efficacy" ~doc:"Poisoning efficacy, live + simulated (paper sec. 5.1)")
    Term.(const run $ obs_term $ seed $ ases $ poisons_arg $ jobs)

let fig6_cmd =
  let run obs seed ases poisons jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Fig6_convergence.to_tables
             (Experiments.Fig6_convergence.run ~ases ~max_poisons:poisons ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Convergence after poisoned announcements (paper Fig. 6)")
    Term.(const run $ obs_term $ seed $ ases $ poisons_arg $ jobs)

let loss_cmd =
  let run obs seed ases poisons jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec52_loss.to_tables
             (Experiments.Sec52_loss.run ~ases ~max_poisons:poisons ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "loss" ~doc:"Packet loss during convergence (paper sec. 5.2)")
    Term.(const run $ obs_term $ seed $ ases $ poisons_arg $ jobs)

let selective_cmd =
  let feeds = Arg.(value & opt int 40 & info [ "feeds" ] ~docv:"N" ~doc:"Feed ASes to test.") in
  let run obs seed ases feeds jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec52_selective.to_tables
             (Experiments.Sec52_selective.run ~ases ~max_feeds:feeds ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "selective" ~doc:"Selective poisoning + forward diversity (paper sec. 5.2/2.3)")
    Term.(const run $ obs_term $ seed $ ases $ feeds $ jobs)

let accuracy_cmd =
  let failures =
    Arg.(value & opt int 120 & info [ "failures" ] ~docv:"N" ~doc:"Failures to isolate.")
  in
  let run obs seed ases failures jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec53_accuracy.to_tables
             (Experiments.Sec53_accuracy.run ~ases ~failure_count:failures ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "accuracy" ~doc:"Failure isolation accuracy (paper sec. 5.3)")
    Term.(const run $ obs_term $ seed $ ases $ failures $ jobs)

let scalability_cmd =
  let run obs seed ases jobs =
    with_obs obs (fun () ->
        let accuracy = Experiments.Sec53_accuracy.run ~ases ~failure_count:60 ~jobs ~seed () in
        print_tables
          (Experiments.Sec54_scalability.to_tables
             (Experiments.Sec54_scalability.run ~ases ~seed ~accuracy ())))
  in
  Cmd.v
    (Cmd.info "scalability" ~doc:"Atlas refresh + isolation overhead (paper sec. 5.4)")
    Term.(const run $ obs_term $ seed $ ases $ jobs)

let load_cmd =
  let run obs seed =
    with_obs obs (fun () ->
        print_tables (Experiments.Tab2_load.to_tables (Experiments.Tab2_load.run ~seed ())))
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Update load at deployment scale (paper Table 2)")
    Term.(const run $ obs_term $ seed)

let hubble_cmd =
  let days = Arg.(value & opt float 7.0 & info [ "days" ] ~docv:"D" ~doc:"Observation window.") in
  let run obs seed ases days jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Hubble_study.to_tables
             (Experiments.Hubble_study.run ~ases:(min ases 220) ~days ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "hubble" ~doc:"Hubble-style monitoring week: derive H(d) for Table 2")
    Term.(const run $ obs_term $ seed $ ases $ days $ jobs)

let anomalies_cmd =
  let run obs seed ases jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Sec71_anomalies.to_tables
             (Experiments.Sec71_anomalies.run ~ases:(min ases 220) ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "anomalies" ~doc:"Poisoning anomalies: loop-limit + Cogent filters (paper sec. 7.1)")
    Term.(const run $ obs_term $ seed $ ases $ jobs)

let sentinel_cmd =
  let run obs () =
    with_obs obs (fun () ->
        print_tables (Experiments.Sec72_sentinel.to_tables (Experiments.Sec72_sentinel.run ())))
  in
  Cmd.v
    (Cmd.info "sentinel" ~doc:"Sentinel prefix variants (paper sec. 7.2)")
    Term.(const run $ obs_term $ const ())

let ablation_cmd =
  let poisons = Arg.(value & opt int 8 & info [ "poisons" ] ~docv:"N" ~doc:"Poisonings per row.") in
  let run obs seed ases poisons jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Ablation.to_tables
             (Experiments.Ablation.run ~ases:(min ases 220) ~poisons ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Prepending / MRAI / FIB-latency ablation grid")
    Term.(const run $ obs_term $ seed $ ases $ poisons $ jobs)

let damping_cmd =
  let run obs seed ases jobs =
    with_obs obs (fun () ->
        print_tables
          (Experiments.Damping.to_tables
             (Experiments.Damping.run ~ases:(min ases 150) ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "damping" ~doc:"Route-flap damping vs announcement spacing")
    Term.(const run $ obs_term $ seed $ ases $ jobs)

let case_study_cmd =
  let run obs () =
    with_obs obs (fun () ->
        print_tables (Experiments.Case_study.to_tables (Experiments.Case_study.run ())))
  in
  Cmd.v
    (Cmd.info "case-study" ~doc:"Replay the Taiwan/Wisconsin incident (paper sec. 6)")
    Term.(const run $ obs_term $ const ())

let topo_cmd =
  let run seed ases =
    let gen = Topology.Topo_gen.generate ~params:(Topology.Topo_gen.sized ases) ~seed () in
    Format.printf "%a@." Topology.As_graph.pp_stats gen.Topology.Topo_gen.graph;
    let g = gen.Topology.Topo_gen.graph in
    let degrees =
      List.map (fun a -> float_of_int (Topology.As_graph.degree g a)) (Topology.As_graph.as_list g)
      |> Array.of_list
    in
    Printf.printf "degree: mean %.1f, median %.0f, max %.0f\n"
      (Stats.Descriptive.mean degrees)
      (Stats.Descriptive.median degrees)
      (snd (Stats.Descriptive.min_max degrees))
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate a synthetic AS topology and print its shape")
    Term.(const run $ seed $ ases)

let poison_cmd =
  let target =
    Arg.(value & opt (some int) None & info [ "target" ] ~docv:"ASN" ~doc:"AS to poison (default: first harvested).")
  in
  let run seed ases target =
    let mux = Workloads.Scenarios.bgpmux ~ases ~seed () in
    let net = mux.Workloads.Scenarios.bed.Workloads.Scenarios.net in
    Lifeguard.Remediate.announce_baseline net mux.Workloads.Scenarios.plan;
    Bgp.Network.run_until_quiet net;
    let harvest = Workloads.Scenarios.harvest_on_path_ases mux in
    let target =
      match target with
      | Some t -> Net.Asn.of_int t
      | None -> List.hd harvest
    in
    Format.printf "Poisoning %a on a %d-AS Internet...@." Net.Asn.pp target ases;
    let before =
      List.filter
        (fun feed ->
          match Bgp.Network.best_route net feed Workloads.Scenarios.production_prefix with
          | Some e ->
              Bgp.As_path.traverses ~origin:mux.Workloads.Scenarios.origin ~target
                e.Bgp.Route.ann.Bgp.Route.path
          | None -> false)
        mux.Workloads.Scenarios.feeds
    in
    Lifeguard.Remediate.poison net mux.Workloads.Scenarios.plan ~target;
    Bgp.Network.run_until_quiet net;
    List.iter
      (fun feed ->
        match Bgp.Network.best_route net feed Workloads.Scenarios.production_prefix with
        | Some e ->
            Format.printf "  %a rerouted to [%a]@." Net.Asn.pp feed Bgp.As_path.pp
              e.Bgp.Route.ann.Bgp.Route.path
        | None -> Format.printf "  %a cut off (captive)@." Net.Asn.pp feed)
      before;
    if before = [] then
      Format.printf "  (no collector feed was routing through %a)@." Net.Asn.pp target
  in
  Cmd.v
    (Cmd.info "poison" ~doc:"Poison one AS on a synthetic Internet and show who reroutes")
    Term.(const run $ seed $ ases $ target)

(* Flag-domain validation: cmdliner catches malformed values (a
   non-numeric seed), but in-domain nonsense (negative durations, zero
   targets) must not reach the simulator. One line on stderr, exit 2. *)
let check cond msg =
  if not cond then begin
    prerr_endline ("lifeguard: " ^ msg);
    exit 2
  end

let check_positive_f flag v = check (v > 0.0) (Printf.sprintf "%s must be positive (got %g)" flag v)
let check_positive_i flag v = check (v > 0) (Printf.sprintf "%s must be positive (got %d)" flag v)

let check_rate flag v =
  check (v >= 0.0) (Printf.sprintf "%s must be non-negative (got %g)" flag v)

let check_probability flag v =
  check (v >= 0.0 && v <= 1.0) (Printf.sprintf "%s must be within [0,1] (got %g)" flag v)

let shards_opt shards =
  check (shards >= 0) (Printf.sprintf "--shards must be >= 0 (got %d)" shards);
  if shards = 0 then None else Some shards

let fleet_cmd =
  let duration =
    Arg.(
      value
      & opt float 86400.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated observation window per world.")
  in
  let targets =
    Arg.(value & opt int 250 & info [ "targets" ] ~docv:"N" ~doc:"Monitored networks fleet-wide.")
  in
  let outages =
    Arg.(
      value
      & opt float 12.0
      & info [ "outages-per-day" ] ~docv:"R" ~doc:"Poisson outage arrival rate per world.")
  in
  let probe_loss =
    Arg.(
      value
      & opt float 0.0
      & info [ "probe-loss" ] ~docv:"P" ~doc:"Chaos: per-probe-pair loss probability.")
  in
  let vp_mtbf =
    Arg.(
      value
      & opt float 0.0
      & info [ "vp-mtbf" ] ~docv:"SECONDS"
          ~doc:"Chaos: mean vantage-point uptime between crashes (0 disables).")
  in
  let staleness =
    Arg.(
      value
      & opt float 0.0
      & info [ "atlas-staleness" ] ~docv:"P"
          ~doc:"Chaos: probability an atlas refresh is skipped.")
  in
  let planning =
    Arg.(
      value & flag
      & info [ "planning" ]
          ~doc:"Consult the precomputed remediation plan cache before fresh decisions.")
  in
  let journal_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Daemon mode: run one durable world and persist the write-ahead operations journal \
             to $(docv) (one line per controller action, flushed before each effect).")
  in
  let resume_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Daemon mode: resume a crashed durable run from the journal in $(docv) (replay is \
             verified byte-for-byte; the continued journal is written back to $(b,--journal), \
             defaulting to $(docv) itself).")
  in
  let snapshot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Daemon mode: rewrite $(docv) with the latest state snapshot at every mark; on \
             $(b,--resume), an existing $(docv) is loaded and verified against re-execution.")
  in
  let snapshot_every =
    Arg.(
      value
      & opt float 0.0
      & info [ "snapshot-every" ] ~docv:"SECONDS"
          ~doc:"Daemon mode: capture a snapshot every $(docv) simulated seconds (0 disables).")
  in
  let crash_at =
    Arg.(
      value
      & opt int 0
      & info [ "crash-at" ] ~docv:"N"
          ~doc:
            "Crash injection: die at the $(docv)-th journal append (1-based; 0 disables), at \
             the boundary chosen by $(b,--crash-boundary). Exits 3 with a resume hint.")
  in
  let crash_boundary =
    Arg.(
      value
      & opt (enum [ ("before", "before-write"); ("write", "after-write"); ("effect", "after-effect") ])
          "after-write"
      & info [ "crash-boundary" ] ~docv:"B"
          ~doc:
            "Where the injected crash fires relative to the journal append: $(b,before) (record \
             lost), $(b,write) (record persisted, effect lost) or $(b,effect) (both landed).")
  in
  let read_lines file =
    let ic = open_in_bin file in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let read_all file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* Daemon mode: one durable world. The journal file is rewritten from
     its (verified) replayed prefix and appended live, flushed per line
     so a kill leaves at worst one torn final line — which resume
     tolerates. The snapshot file is atomically rewritten per mark. *)
  let run_daemon ~config ~seed ~journal_file ~resume_file ~snapshot_file ~snapshot_every ~crash =
    let journal_lines = match resume_file with None -> [] | Some f -> read_lines f in
    let resuming = journal_lines <> [] in
    let snapshot =
      match snapshot_file with
      | Some f when resuming && Sys.file_exists f -> begin
          match Recover.Snapshot.parse_result (read_all f) with
          | Ok s -> Some s
          | Error e ->
              prerr_endline ("lifeguard: unreadable snapshot " ^ f ^ ": " ^ e);
              exit 2
        end
      | _ -> None
    in
    let out_journal =
      match (journal_file, resume_file) with
      | Some f, _ -> f
      | None, Some f -> f
      | None, None -> assert false
    in
    let oc = open_out_bin out_journal in
    let journal_sink line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    let snapshot_sink s =
      match snapshot_file with
      | None -> ()
      | Some f ->
          let tmp = f ^ ".tmp" in
          let sc = open_out_bin tmp in
          output_string sc (Recover.Snapshot.render s);
          close_out sc;
          Sys.rename tmp f
    in
    let snapshot_every = if snapshot_every > 0.0 then Some snapshot_every else None in
    let outcome =
      Fleet.Service.run_durable ~config ~seed ~journal:journal_lines ?snapshot ?crash
        ?snapshot_every ~journal_sink ~snapshot_sink ()
    in
    close_out oc;
    match outcome with
    | Fleet.Service.Finished { report; recovery } ->
        List.iter print_endline (Fleet.Service.render_report report);
        Format.printf "journal %d lines (%d replayed), %d snapshot marks@."
          (List.length recovery.Fleet.Service.rc_journal)
          recovery.Fleet.Service.rc_replayed recovery.Fleet.Service.rc_marks;
        Format.printf "reconcile %s@." (Recover.Reconcile.render recovery.Fleet.Service.rc_reconcile)
    | Fleet.Service.Interrupted { boundary; append; journal; _ } ->
        Format.eprintf "lifeguard: crashed at journal append %d (%s); %d lines persisted@."
          append
          (Recover.Crash.boundary_to_string boundary)
          (List.length journal);
        Format.eprintf "lifeguard: resume with: lifeguard fleet --resume %s%s@." out_journal
          (match snapshot_file with Some f -> " --snapshot " ^ f | None -> "");
        exit 3
  in
  let run obs seed duration targets outages probe_loss vp_mtbf staleness planning jobs shards
      journal_file resume_file snapshot_file snapshot_every crash_at crash_boundary =
    check_positive_f "--duration" duration;
    check_positive_i "--targets" targets;
    check_rate "--outages-per-day" outages;
    check_probability "--probe-loss" probe_loss;
    check_rate "--vp-mtbf" vp_mtbf;
    check_positive_i "--jobs" jobs;
    check_probability "--atlas-staleness" staleness;
    check (crash_at >= 0) (Printf.sprintf "--crash-at must be >= 0 (got %d)" crash_at);
    check (snapshot_every >= 0.0)
      (Printf.sprintf "--snapshot-every must be >= 0 (got %g)" snapshot_every);
    let shards = shards_opt shards in
    with_obs obs (fun () ->
        let config =
          {
            Fleet.Service.default_config with
            Fleet.Service.duration;
            outages_per_day = outages;
            chaos =
              { Fleet.Chaos.none with Fleet.Chaos.probe_loss; vp_mtbf; atlas_staleness = staleness };
            planning;
            shards;
          }
        in
        match (journal_file, resume_file) with
        | None, None ->
            check (crash_at = 0) "--crash-at requires daemon mode (--journal or --resume)";
            check (snapshot_every = 0.0)
              "--snapshot-every requires daemon mode (--journal or --resume)";
            print_tables
              (Experiments.Fleet_study.to_tables
                 (Experiments.Fleet_study.run ~config ~targets ~jobs ~seed ()))
        | _ ->
            let crash =
              if crash_at = 0 then None
              else
                match Recover.Crash.boundary_of_string crash_boundary with
                | Some boundary -> Some { Recover.Crash.boundary; append = crash_at }
                | None ->
                    check false ("unknown crash boundary " ^ crash_boundary);
                    None
            in
            run_daemon
              ~config:{ config with Fleet.Service.target_count = targets }
              ~seed ~journal_file ~resume_file ~snapshot_file ~snapshot_every ~crash)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Continuous fleet operations: budgeted monitoring, concurrent repair pipelines, \
          damping-paced announcements, optional chaos; --journal/--resume run one durable \
          crash-tolerant world")
    Term.(
      const run $ obs_term $ seed $ duration $ targets $ outages $ probe_loss $ vp_mtbf $ staleness
      $ planning $ jobs $ shards_arg $ journal_file $ resume_file $ snapshot_file $ snapshot_every
      $ crash_at $ crash_boundary)

let faults_cmd =
  let duration =
    Arg.(
      value
      & opt float 21600.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated observation window per world.")
  in
  let targets =
    Arg.(value & opt int 50 & info [ "targets" ] ~docv:"N" ~doc:"Monitored networks fleet-wide.")
  in
  let outages =
    Arg.(
      value
      & opt float 12.0
      & info [ "outages-per-day" ] ~docv:"R" ~doc:"Poisson outage arrival rate per world.")
  in
  let intensities =
    Arg.(
      value
      & opt (list float) Experiments.Fault_study.default_intensities
      & info [ "intensities" ] ~docv:"I,..."
          ~doc:"Fault intensities to sweep; 0 is the fault-free control.")
  in
  let flap_mtbf =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.session_flap_mtbf
      & info [ "flap-mtbf" ] ~docv:"SECONDS"
          ~doc:"Mean seconds between BGP session flaps per link at intensity 1 (0 disables).")
  in
  let flap_downtime =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.session_flap_downtime
      & info [ "flap-downtime" ] ~docv:"SECONDS" ~doc:"Mean seconds a flapped session stays down.")
  in
  let link_mtbf =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.link_mtbf
      & info [ "link-mtbf" ] ~docv:"SECONDS"
          ~doc:"Mean link uptime at intensity 1 (0 disables link failures).")
  in
  let link_mttr =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.link_mttr
      & info [ "link-mttr" ] ~docv:"SECONDS" ~doc:"Mean seconds to repair a failed link.")
  in
  let router_mtbf =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.router_mtbf
      & info [ "router-mtbf" ] ~docv:"SECONDS"
          ~doc:"Mean router uptime at intensity 1 (0 disables crashes).")
  in
  let router_mttr =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.router_mttr
      & info [ "router-mttr" ] ~docv:"SECONDS" ~doc:"Mean seconds a crashed router stays down.")
  in
  let update_loss =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.update_loss
      & info [ "update-loss" ] ~docv:"P"
          ~doc:"Per-message update loss probability at intensity 1.")
  in
  let update_dup =
    Arg.(
      value
      & opt float Experiments.Fault_study.default_profile.Bgp.Faults.update_dup
      & info [ "update-dup" ] ~docv:"P"
          ~doc:"Per-message update duplication probability at intensity 1.")
  in
  let run obs seed duration targets outages intensities flap_mtbf flap_downtime link_mtbf
      link_mttr router_mtbf router_mttr update_loss update_dup jobs shards =
    check_positive_f "--duration" duration;
    check_positive_i "--targets" targets;
    check_rate "--outages-per-day" outages;
    check (intensities <> []) "--intensities must list at least one intensity";
    List.iter
      (fun i -> check (i >= 0.0) (Printf.sprintf "--intensities must be >= 0 (got %g)" i))
      intensities;
    check_rate "--flap-mtbf" flap_mtbf;
    check_rate "--link-mtbf" link_mtbf;
    check_rate "--router-mtbf" router_mtbf;
    check_probability "--update-loss" update_loss;
    check_probability "--update-dup" update_dup;
    check_positive_i "--jobs" jobs;
    let shards = shards_opt shards in
    let profile =
      {
        Bgp.Faults.session_flap_mtbf = flap_mtbf;
        session_flap_downtime = flap_downtime;
        link_mtbf;
        link_mttr;
        router_mtbf;
        router_mttr;
        update_loss;
        update_dup;
      }
    in
    (* Cross-field domain errors (loss + dup > 1, non-positive repair
       times on an enabled class) surface from the library's validator. *)
    let profile =
      try Bgp.Faults.validate profile
      with Invalid_argument msg ->
        prerr_endline ("lifeguard: " ^ msg);
        exit 2
    in
    with_obs obs (fun () ->
        let config =
          {
            Fleet.Service.default_config with
            Fleet.Service.duration;
            outages_per_day = outages;
            shards;
          }
        in
        print_tables
          (Experiments.Fault_study.to_tables
             (Experiments.Fault_study.run ~config ~profile ~intensities ~targets ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault study: fleet operations under control-plane fault injection (session flaps, \
          link failures, router crashes, update loss/duplication) at increasing intensity")
    Term.(
      const run $ obs_term $ seed $ duration $ targets $ outages $ intensities $ flap_mtbf
      $ flap_downtime $ link_mtbf $ link_mttr $ router_mtbf $ router_mttr $ update_loss
      $ update_dup $ jobs $ shards_arg)

let plan_cmd =
  let duration =
    Arg.(
      value
      & opt float Experiments.Plan_study.default_config.Fleet.Service.duration
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated observation window per world.")
  in
  let targets =
    Arg.(value & opt int 40 & info [ "targets" ] ~docv:"N" ~doc:"Monitored networks fleet-wide.")
  in
  let outages =
    Arg.(
      value
      & opt float Experiments.Plan_study.default_config.Fleet.Service.outages_per_day
      & info [ "outages-per-day" ] ~docv:"R" ~doc:"Poisson outage arrival rate per world.")
  in
  let latency =
    Arg.(
      value
      & opt float Experiments.Plan_study.default_config.Fleet.Service.decision_latency
      & info [ "decision-latency" ] ~docv:"SECONDS"
          ~doc:"Simulated cost of one fresh decision round; plan hits skip it.")
  in
  let run obs seed duration targets outages latency jobs shards =
    check_positive_f "--duration" duration;
    check_positive_i "--targets" targets;
    check_rate "--outages-per-day" outages;
    check_rate "--decision-latency" latency;
    check_positive_i "--jobs" jobs;
    let shards = shards_opt shards in
    with_obs obs (fun () ->
        let config =
          {
            Experiments.Plan_study.default_config with
            Fleet.Service.duration;
            outages_per_day = outages;
            decision_latency = latency;
            shards;
          }
        in
        print_tables
          (Experiments.Plan_study.to_tables
             (Experiments.Plan_study.run ~config ~targets ~jobs ~seed ())))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Plan study: precomputed remediation plans vs compute-from-scratch on a \
          recurring-outage workload (hit rate, invalidations, repair latency)")
    Term.(
      const run $ obs_term $ seed $ duration $ targets $ outages $ latency $ jobs $ shards_arg)

let main =
  let doc = "LIFEGUARD (SIGCOMM 2012) reproduction: failure localization and BGP-poisoning repair" in
  Cmd.group (Cmd.info "lifeguard" ~version:"1.0.0" ~doc)
    [
      fig1_cmd;
      fig5_cmd;
      alt_paths_cmd;
      efficacy_cmd;
      fig6_cmd;
      loss_cmd;
      selective_cmd;
      accuracy_cmd;
      scalability_cmd;
      load_cmd;
      hubble_cmd;
      anomalies_cmd;
      sentinel_cmd;
      ablation_cmd;
      damping_cmd;
      fleet_cmd;
      faults_cmd;
      plan_cmd;
      case_study_cmd;
      topo_cmd;
      poison_cmd;
    ]

let () = exit (Cmd.eval main)
