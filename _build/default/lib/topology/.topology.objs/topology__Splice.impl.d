lib/topology/splice.ml: Array As_graph Asn Hashtbl List Net Queue Relationship
