lib/dataplane/probe.mli: Asn Bgp Failure Forward Ipv4 Net
