type t = Customer | Provider | Peer | Sibling

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer
  | Sibling -> Sibling

let equal a b =
  match (a, b) with
  | Customer, Customer | Provider, Provider | Peer, Peer | Sibling, Sibling -> true
  | (Customer | Provider | Peer | Sibling), _ -> false

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"
  | Sibling -> "sibling"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let local_pref = function
  | Customer | Sibling -> 300
  | Peer -> 200
  | Provider -> 100

let export_ok ~learned_from ~to_ =
  match learned_from with
  | Customer | Sibling -> true
  | Peer | Provider -> begin
      match to_ with
      | Customer | Sibling -> true
      | Peer | Provider -> false
    end
