(* lib/plan: precomputed remediation plans — the planner's failure map,
   the cache's byte-identical hit path, its invalidation layers (topology
   churn, breaker trips), watchdog-divergence demotion, and the plan
   study's determinism across jobs and shards. *)

open Net
open Helpers

let decide_config = Lifeguard.Decide.default_config
let verdict_str v = Format.asprintf "%a" Lifeguard.Decide.pp_verdict v
let no_breaker _ = false

(* The fig. 2 world with O running LIFEGUARD, exactly as the core tests
   build it: baseline announced, atlas populated, isolation context up. *)
let plan_world () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let rplan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  Lifeguard.Remediate.announce_baseline w.net rplan;
  converge w;
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh_all atlas w.probe ~vps:[ o ] ~dsts:[ e; d; f ] ~now:0.0;
  let responsiveness = Measurement.Responsiveness.create () in
  let ctx =
    {
      Lifeguard.Isolation.env = w.probe;
      atlas;
      responsiveness;
      vantage_points = [ o; d; c ];
      source_overrides = [ (o, Prefix.nth_address production 1) ];
    }
  in
  (w, rplan, ctx)

let reverse_failure_spec = Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a)

let seeded_cache ?fingerprint w rplan =
  let store = Bgp.Network.path_store w.net in
  let seed = Plan.Planner.build ~graph:w.graph ~store ~plan:rplan ~targets:[ e; f ] in
  Plan.Cache.create ?fingerprint ~seed ~config:decide_config ~origin:o ~paths:store ()

(* The offline planner enumerates (target, class) pairs for fig. 2: the
   reverse-failure class blaming A must carry a feasible poison for E
   (E can re-route via D) and a hopeless remedy for every class blaming
   B (O's sole provider). *)
let test_planner_failure_map () =
  let w, rplan, _ = plan_world () in
  let store = Bgp.Network.path_store w.net in
  let seed = Plan.Planner.build ~graph:w.graph ~store ~plan:rplan ~targets:[ e; f ] in
  Alcotest.(check bool) "map is non-empty" true (Plan.Plan_store.cardinal seed > 0);
  let cls_rev blamed =
    { Plan.Failure_class.blamed; direction = Lifeguard.Isolation.Reverse_failure; reversal = true }
  in
  (match Plan.Plan_store.find seed ~target:e ~cls:(cls_rev a) with
  | Some remedy ->
      Alcotest.(check bool) "poisoning A is feasible for E" true
        (Plan.Plan_store.feasible remedy);
      Alcotest.(check bool) "remedy is a poison" true (Plan.Plan_store.poisons remedy)
  | None -> Alcotest.fail "expected a plan for (E, reverse blaming A)");
  (match Plan.Plan_store.find seed ~target:e ~cls:(cls_rev b) with
  | Some remedy ->
      Alcotest.(check bool) "no path around B (sole provider)" false
        (Plan.Plan_store.feasible remedy)
  | None -> Alcotest.fail "expected a plan for (E, reverse blaming B)")

(* A hit must replay into the byte-identical verdict the fresh decision
   process produces — at every outage age (Wait before the gate, Poison
   after) and for infeasible blames (Hopeless with the same reason). *)
let test_hit_byte_identical () =
  let w, rplan, ctx = plan_world () in
  let cache = seeded_cache w rplan in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  List.iter
    (fun age ->
      let fresh =
        Lifeguard.Decide.decide decide_config w.graph ~origin:o ~diagnosis ~outage_age:age
      in
      match
        Plan.Cache.lookup cache w.graph ~now:0.0 ~target:e ~diagnosis ~outage_age:age
          ~breaker_open:no_breaker
      with
      | None -> Alcotest.failf "expected a plan hit at age %.0f" age
      | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "verdict at age %.0f" age)
            (verdict_str fresh) (verdict_str v))
    [ 60.0; 400.0 ];
  Alcotest.(check int) "both lookups hit" 2 (Plan.Cache.hits cache);
  (* Captive blame: B is O's sole provider, so fresh and planned must
     agree on the hopeless reason string too. *)
  let captive = { diagnosis with Lifeguard.Isolation.blame = Lifeguard.Isolation.Blamed_as b } in
  let fresh =
    Lifeguard.Decide.decide decide_config w.graph ~origin:o ~diagnosis:captive ~outage_age:400.0
  in
  match
    Plan.Cache.lookup cache w.graph ~now:0.0 ~target:e ~diagnosis:captive ~outage_age:400.0
      ~breaker_open:no_breaker
  with
  | None -> Alcotest.fail "expected a plan hit for the captive blame"
  | Some v -> Alcotest.(check string) "hopeless verdicts agree" (verdict_str fresh) (verdict_str v)

(* An unseeded cache misses once, demand-plans the class, and serves the
   byte-identical verdict from then on. *)
let test_miss_demand_plans_then_hits () =
  let w, _, ctx = plan_world () in
  let store = Bgp.Network.path_store w.net in
  let cache = Plan.Cache.create ~config:decide_config ~origin:o ~paths:store () in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  let lookup () =
    Plan.Cache.lookup cache w.graph ~now:0.0 ~target:e ~diagnosis ~outage_age:400.0
      ~breaker_open:no_breaker
  in
  (match lookup () with
  | None -> ()
  | Some _ -> Alcotest.fail "an empty cache must miss");
  Alcotest.(check int) "one miss" 1 (Plan.Cache.misses cache);
  let fresh =
    Lifeguard.Decide.decide decide_config w.graph ~origin:o ~diagnosis ~outage_age:400.0
  in
  (match lookup () with
  | None -> Alcotest.fail "the demand-planned class must hit"
  | Some v -> Alcotest.(check string) "verdicts agree" (verdict_str fresh) (verdict_str v));
  Alcotest.(check int) "one hit" 1 (Plan.Cache.hits cache)

(* Topology churn: a fingerprint change flushes the whole map; the next
   lookup computes fresh (a miss) and re-plans. *)
let test_invalidation_on_churn () =
  let w, rplan, ctx = plan_world () in
  let churn = ref 0 in
  let cache = seeded_cache ~fingerprint:(fun () -> !churn) w rplan in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  let lookup () =
    Plan.Cache.lookup cache w.graph ~now:0.0 ~target:e ~diagnosis ~outage_age:400.0
      ~breaker_open:no_breaker
  in
  (match lookup () with
  | Some _ -> ()
  | None -> Alcotest.fail "seeded class must hit before the churn");
  incr churn;
  (match lookup () with
  | None -> ()
  | Some _ -> Alcotest.fail "churn must flush the map: stale plans must not be served");
  Alcotest.(check int) "one invalidation" 1 (Plan.Cache.invalidations cache);
  match lookup () with
  | Some _ -> ()
  | None -> Alcotest.fail "the re-planned class must hit again"

(* Breaker trips: a plan poisoning a breaker-open AS must not be served —
   the entry is dropped, the lookup misses, and the fresh decision path
   (which refuses at the breaker) takes over. *)
let test_no_service_when_breaker_open () =
  let w, rplan, ctx = plan_world () in
  let cache = seeded_cache w rplan in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  let size_before = Plan.Cache.size cache in
  (match
     Plan.Cache.lookup cache w.graph ~now:0.0 ~target:e ~diagnosis ~outage_age:400.0
       ~breaker_open:(fun x -> Asn.equal x a)
   with
  | None -> ()
  | Some _ -> Alcotest.fail "a plan against a breaker-open AS must not be served");
  Alcotest.(check int) "no hit" 0 (Plan.Cache.hits cache);
  Alcotest.(check int) "counted as invalidation" 1 (Plan.Cache.invalidations cache);
  Alcotest.(check bool) "plans poisoning the open AS were dropped" true
    (Plan.Cache.size cache < size_before)

(* Watchdog divergence, end to end: the poison is served from the plan,
   never propagates (the O->B wire is down), the watchdog rolls it back —
   and the cache must demote the blamed AS back to compute-fresh. *)
let test_watchdog_divergence_demotes () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let rplan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let decide = { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 } in
  let store = Bgp.Network.path_store w.net in
  let seed = Plan.Planner.build ~graph:w.graph ~store ~plan:rplan ~targets:[ e ] in
  let cache = Plan.Cache.create ~seed ~config:decide ~origin:o ~paths:store () in
  let hooks =
    {
      Lifeguard.Orchestrator.no_hooks with
      Lifeguard.Orchestrator.plan_consult =
        Some
          (fun ~target ~diagnosis ~outage_age ~breaker_open ->
            Plan.Cache.lookup cache w.graph ~now:(Sim.Engine.now w.engine) ~target ~diagnosis
              ~outage_age ~breaker_open);
      plan_record =
        Some (fun ~target ~diagnosis ~verdict -> Plan.Cache.record cache ~target ~diagnosis ~verdict);
      plan_outcome = Some (fun ~poison outcome -> Plan.Cache.note_outcome cache ~poison outcome);
    }
  in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide;
      announce_spacing = 1800.0;
      poison_deadline = 3600.0;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~hooks ~env:w.probe ~atlas ~responsiveness ~plan:rplan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e ];
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Bgp.Network.set_link_faults w.net
    (Some (fun ~from ~to_ -> if Asn.equal from o && Asn.equal to_ b then `Drop else `Deliver));
  Sim.Engine.run ~until:9000.0 w.engine;
  Alcotest.(check bool) "the poison verdict was served from the plan" true
    (Plan.Cache.hits cache > 0);
  Alcotest.(check int) "the watchdog rolled the poison back" 1
    (Lifeguard.Orchestrator.rollback_count orc);
  Alcotest.(check int) "divergence demoted the plan" 1 (Plan.Cache.demotions cache);
  (match Plan.Cache.demotion_log cache with
  | [ (poison, reason) ] ->
      Alcotest.(check int) "A was demoted" 30 (Asn.to_int poison);
      Alcotest.(check bool) "reason recorded" true (String.length reason > 0)
  | log -> Alcotest.failf "expected one demotion, got %d" (List.length log));
  (* Demoted classes are never served again: a direct lookup for the
     blamed class must miss even though the class was once planned. *)
  let diagnosis =
    {
      Lifeguard.Isolation.src = o;
      dst = e;
      direction = Lifeguard.Isolation.Reverse_failure;
      blame = Lifeguard.Isolation.Blamed_as a;
      suspects = [];
      working_path = None;
      traceroute_blame = None;
      probes_used = 0;
      elapsed = 0.0;
    }
  in
  match
    Plan.Cache.lookup cache w.graph ~now:9000.0 ~target:e ~diagnosis ~outage_age:400.0
      ~breaker_open:no_breaker
  with
  | None -> ()
  | Some _ -> Alcotest.fail "a demoted plan must not be served"

(* The plan experiment's rendered tables are a pure function of
   (config, targets, seed): byte-identical at any --jobs and any shard
   count. *)
let small_config =
  {
    Experiments.Plan_study.default_config with
    Fleet.Service.target_count = 10;
    duration = 10800.0;
  }

let render_tables config ~jobs =
  String.concat "\n"
    (List.map Stats.Table.render
       (Experiments.Plan_study.to_tables
          (Experiments.Plan_study.run ~config ~targets:20 ~jobs ~seed:7 ())))

let test_tables_jobs_and_shards_invariant () =
  let base = render_tables small_config ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "tables at jobs=%d" jobs)
        base
        (render_tables small_config ~jobs))
    [ 2; 4 ];
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Printf.sprintf "tables at shards=%d" k)
        base
        (render_tables { small_config with Fleet.Service.shards = Some k } ~jobs:2))
    [ 1; 2 ]

(* The headline claims on the recurring-outage workload, pinned at the
   benchmark's default scale: most lookups are served from plan, and the
   planned arm's median reroute is strictly faster than computing every
   remediation from scratch. *)
let test_recurring_workload_wins () =
  let r = Experiments.Plan_study.run ~jobs:2 ~seed:42 () in
  let planned = r.Experiments.Plan_study.planned in
  let computed = r.Experiments.Plan_study.computed in
  Alcotest.(check bool) "hit rate >= 60%" true
    (Experiments.Plan_study.hit_rate planned >= 0.6);
  let median = function
    | [] -> Alcotest.fail "expected confirmed reroutes"
    | samples -> Stats.Ecdf.quantile (Stats.Ecdf.of_samples (Array.of_list samples)) 0.5
  in
  Alcotest.(check bool) "planned median reroute strictly faster" true
    (median planned.Experiments.Plan_study.time_to_confirm
    < median computed.Experiments.Plan_study.time_to_confirm)

let suite =
  [
    Alcotest.test_case "planner: fig2 failure map" `Quick test_planner_failure_map;
    Alcotest.test_case "hit path is byte-identical to compute-fresh" `Quick
      test_hit_byte_identical;
    Alcotest.test_case "miss demand-plans, then hits" `Quick test_miss_demand_plans_then_hits;
    Alcotest.test_case "topology churn invalidates" `Quick test_invalidation_on_churn;
    Alcotest.test_case "breaker-open plans are not served" `Quick
      test_no_service_when_breaker_open;
    Alcotest.test_case "watchdog divergence demotes to compute-fresh" `Quick
      test_watchdog_divergence_demotes;
    Alcotest.test_case "experiment tables: jobs/shards invariant" `Quick
      test_tables_jobs_and_shards_invariant;
    Alcotest.test_case "recurring workload: hit rate + faster reroute" `Quick
      test_recurring_workload_wins;
  ]
