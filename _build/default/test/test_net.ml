(* Addressing primitives: IPv4, prefixes, the LPM trie. *)

open Net

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (ip s)))
    [ "0.0.0.0"; "10.1.2.3"; "192.0.2.255"; "255.255.255.255" ];
  Alcotest.(check bool) "bad input" true (Ipv4.of_string "1.2.3" = None);
  Alcotest.(check bool) "octet overflow" true (Ipv4.of_string "1.2.3.256" = None);
  Alcotest.(check bool) "garbage" true (Ipv4.of_string "a.b.c.d" = None)

let test_ipv4_unsigned_order () =
  Alcotest.(check bool) "10.0.0.1 < 192.0.2.1" true (Ipv4.compare (ip "10.0.0.1") (ip "192.0.2.1") < 0);
  Alcotest.(check bool) "192.0.2.1 < 224.0.0.1" true
    (Ipv4.compare (ip "192.0.2.1") (ip "224.0.0.1") < 0);
  Alcotest.(check bool) "224 > 10 (unsigned, not signed)" true
    (Ipv4.compare (ip "224.0.0.1") (ip "10.0.0.1") > 0)

let test_ipv4_arith () =
  Alcotest.(check string) "succ" "10.0.0.2" (Ipv4.to_string (Ipv4.succ (ip "10.0.0.1")));
  Alcotest.(check string) "add carries" "10.0.1.0" (Ipv4.to_string (Ipv4.add (ip "10.0.0.255") 1));
  Alcotest.(check string) "wraparound" "0.0.0.0"
    (Ipv4.to_string (Ipv4.succ (ip "255.255.255.255")))

let test_prefix_parse_canonicalize () =
  let p = pfx "10.1.2.3/24" in
  Alcotest.(check string) "host bits cleared" "10.1.2.0/24" (Prefix.to_string p);
  Alcotest.(check int) "length" 24 (Prefix.length p);
  Alcotest.(check bool) "bad length" true (Prefix.of_string "10.0.0.0/33" = None);
  Alcotest.(check bool) "no slash" true (Prefix.of_string "10.0.0.0" = None)

let test_prefix_membership () =
  let p = pfx "203.0.112.0/23" in
  Alcotest.(check bool) "first in" true (Prefix.mem (ip "203.0.112.0") p);
  Alcotest.(check bool) "last in" true (Prefix.mem (ip "203.0.113.255") p);
  Alcotest.(check bool) "next out" false (Prefix.mem (ip "203.0.114.0") p);
  Alcotest.(check bool) "covers production" true
    (Prefix.contains_prefix ~outer:p ~inner:(pfx "203.0.113.0/24"));
  Alcotest.(check bool) "not covered the other way" false
    (Prefix.contains_prefix ~outer:(pfx "203.0.113.0/24") ~inner:p);
  Alcotest.(check bool) "self covers self" true (Prefix.contains_prefix ~outer:p ~inner:p)

let test_prefix_split_and_addresses () =
  let p = pfx "203.0.112.0/23" in
  (match Prefix.split p with
  | Some (low, high) ->
      Alcotest.(check string) "low half" "203.0.112.0/24" (Prefix.to_string low);
      Alcotest.(check string) "high half" "203.0.113.0/24" (Prefix.to_string high)
  | None -> Alcotest.fail "split failed");
  Alcotest.(check bool) "/32 does not split" true (Prefix.split (pfx "10.0.0.1/32") = None);
  Alcotest.(check int) "size /23" 512 (Prefix.size p);
  Alcotest.(check string) "first" "203.0.112.0" (Ipv4.to_string (Prefix.first_address p));
  Alcotest.(check string) "last" "203.0.113.255" (Ipv4.to_string (Prefix.last_address p));
  Alcotest.(check string) "nth" "203.0.112.7" (Ipv4.to_string (Prefix.nth_address p 7))

let test_trie_lpm () =
  let open Prefix_trie in
  let t =
    empty
    |> add (pfx "10.0.0.0/8") "eight"
    |> add (pfx "10.1.0.0/16") "sixteen"
    |> add (pfx "10.1.2.0/24") "twentyfour"
  in
  let lookup_name a =
    match lookup (ip a) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "most specific wins" "twentyfour" (lookup_name "10.1.2.3");
  Alcotest.(check string) "mid" "sixteen" (lookup_name "10.1.3.1");
  Alcotest.(check string) "outer" "eight" (lookup_name "10.2.0.1");
  Alcotest.(check string) "miss" "none" (lookup_name "11.0.0.1");
  Alcotest.(check int) "cardinal" 3 (cardinal t);
  let t' = remove (pfx "10.1.2.0/24") t in
  Alcotest.(check string) "after remove, falls back" "sixteen"
    (match lookup (ip "10.1.2.3") t' with
    | Some (_, v) -> v
    | None -> "none");
  Alcotest.(check bool) "find_exact present" true (find_exact (pfx "10.1.0.0/16") t' = Some "sixteen");
  Alcotest.(check bool) "find_exact removed" true (find_exact (pfx "10.1.2.0/24") t' = None)

let test_trie_lookup_prefix () =
  let open Prefix_trie in
  let t = empty |> add (pfx "10.0.0.0/8") 8 |> add (pfx "10.1.0.0/16") 16 in
  (match lookup_prefix (pfx "10.1.2.0/24") t with
  | Some (_, v) -> Alcotest.(check int) "covering /16" 16 v
  | None -> Alcotest.fail "no covering prefix");
  match lookup_prefix (pfx "10.0.0.0/8") t with
  | Some (_, v) -> Alcotest.(check int) "self match" 8 v
  | None -> Alcotest.fail "no self match"

let test_default_route_prefix () =
  (* A /0 matches everything: usable as a default route entry. *)
  let open Prefix_trie in
  let t = empty |> add (pfx "0.0.0.0/0") "default" in
  match lookup (ip "198.51.100.77") t with
  | Some (_, v) -> Alcotest.(check string) "default matches" "default" v
  | None -> Alcotest.fail "default route missed"

(* Random prefixes for property tests. *)
let arbitrary_prefix =
  QCheck.map
    (fun (a, b, c, len) -> Prefix.make (Ipv4.of_octets a b c 0) len)
    QCheck.(quad (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 24))

let prop_trie_matches_naive =
  QCheck.Test.make ~name:"trie lookup = naive longest match" ~count:300
    QCheck.(pair (small_list arbitrary_prefix) (quad (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 255)))
    (fun (prefixes, (a, b, c, d)) ->
      let address = Ipv4.of_octets a b c d in
      let trie =
        List.fold_left (fun t p -> Prefix_trie.add p (Prefix.to_string p) t) Prefix_trie.empty
          prefixes
      in
      let naive =
        List.filter (fun p -> Prefix.mem address p) prefixes
        |> List.sort (fun p q -> Int.compare (Prefix.length q) (Prefix.length p))
        |> function
        | best :: _ -> Some (Prefix.length best)
        | [] -> None
      in
      let via_trie = Option.map (fun (p, _) -> Prefix.length p) (Prefix_trie.lookup address trie) in
      naive = via_trie)

let prop_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:300 arbitrary_prefix (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Some q -> Prefix.equal p q
      | None -> false)

let prop_split_partitions =
  QCheck.Test.make ~name:"split halves partition the parent" ~count:300
    QCheck.(pair arbitrary_prefix (int_range 0 10000))
    (fun (p, offset) ->
      match Prefix.split p with
      | None -> Prefix.length p = 32
      | Some (low, high) ->
          let address = Ipv4.add (Prefix.first_address p) (offset mod Prefix.size p) in
          let in_low = Prefix.mem address low and in_high = Prefix.mem address high in
          Prefix.mem address p && (in_low <> in_high))

let suite =
  [
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 unsigned order" `Quick test_ipv4_unsigned_order;
    Alcotest.test_case "ipv4 arithmetic" `Quick test_ipv4_arith;
    Alcotest.test_case "prefix parse/canonicalize" `Quick test_prefix_parse_canonicalize;
    Alcotest.test_case "prefix membership" `Quick test_prefix_membership;
    Alcotest.test_case "prefix split/addresses" `Quick test_prefix_split_and_addresses;
    Alcotest.test_case "trie longest-prefix match" `Quick test_trie_lpm;
    Alcotest.test_case "trie lookup_prefix" `Quick test_trie_lookup_prefix;
    Alcotest.test_case "default route /0" `Quick test_default_route_prefix;
    QCheck_alcotest.to_alcotest prop_trie_matches_naive;
    QCheck_alcotest.to_alcotest prop_prefix_roundtrip;
    QCheck_alcotest.to_alcotest prop_split_partitions;
  ]
