type t = int32

let of_int32 x = x
let to_int32 t = t

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range" in
  check a;
  check b;
  check c;
  check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octet t shift = Int32.to_int (Int32.logand (Int32.shift_right_logical t shift) 0xFFl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 24) (octet t 16) (octet t 8) (octet t 0)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255
        ->
          Some (of_octets a b c d)
      | _ -> None
    end
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg ("Ipv4.of_string_exn: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal = Int32.equal
let compare = Int32.unsigned_compare
let succ t = Int32.add t 1l
let add t n = Int32.add t (Int32.of_int n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
