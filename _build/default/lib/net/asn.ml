type t = int

let of_int n =
  if n < 0 then invalid_arg "Asn.of_int: negative ASN";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.fprintf fmt "AS%d" t
let to_string t = "AS" ^ string_of_int t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Table = Hashtbl.Make (Int)
