(** The failure map: a deterministic table from (target, failure class)
    to the precomputed remediation.

    Backed by a total-order map over {!Failure_class.compare}, so folds
    and {!entries} enumerate in one canonical order regardless of
    insertion order — the plan subsystem's analogue of the repo-wide
    byte-identical-tables invariant. Poisoned AS paths inside remedies
    are interned through the owning world's [Bgp.Path_store], so a plan
    hit announces the same physical path a fresh decision would. *)

open Net

type remedy =
  | Poison of { path : Bgp.As_path.t }
      (** Poison the blamed AS; [path] is the interned [O-A-O]
          announcement the remediation will make. *)
  | Selective_poison of { path : Bgp.As_path.t; via : Asn.t list }
      (** Poison through the providers in [via] only (§3.1.2). *)
  | Alternate_path
      (** Forward failure: the origin should switch egress rather than
          poison (§2.3). *)
  | Hopeless of string  (** Poisoning cannot help; the reason is served verbatim. *)

val feasible : remedy -> bool
(** The memoized alternate-path feasibility bit a served plan replays
    through [Decide.decide ~feasible]. *)

val poisons : remedy -> bool
(** Does this remedy announce a poison? (Breaker invalidation applies.) *)

val remedy_name : remedy -> string

type t

val empty : t
val add : t -> target:Asn.t -> cls:Failure_class.t -> remedy -> t
val find : t -> target:Asn.t -> cls:Failure_class.t -> remedy option
val cardinal : t -> int

val entries : t -> ((Asn.t * Failure_class.t) * remedy) list
(** Canonical (target, class) order. *)

val fold : (target:Asn.t -> cls:Failure_class.t -> remedy -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (target:Asn.t -> cls:Failure_class.t -> remedy -> bool) -> t -> t
