(* The AST pass behind lifeguard-lint.

   Purely syntactic: we parse with compiler-libs ([Parse.implementation])
   and walk the Parsetree with [Ast_iterator], so the pass needs no type
   information, no build artifacts, and no opam deps beyond the compiler
   itself. The price is that every rule is a heuristic over names and
   shapes; the rules below are tuned so that false positives land in the
   checked-in baseline rather than blocking builds. *)

open Parsetree

type file_kind = {
  in_lib : bool;
  prng_exempt : bool;
  obs_exempt : bool;
  bgp_exempt : bool;
}

let classify path =
  let segs = String.split_on_char '/' path in
  let rec in_lib = function
    | [] | [ _ ] -> false (* a trailing "lib" is a file name, not a dir *)
    | "lib" :: _ -> true
    | _ :: rest -> in_lib rest
  in
  let rec under_lib name = function
    | "lib" :: d :: _ when String.equal d name -> true
    | _ :: rest -> under_lib name rest
    | [] -> false
  in
  {
    in_lib = in_lib segs;
    prng_exempt = under_lib "prng" segs;
    (* lib/obs IS the sanctioned home for cross-domain observability
       state (per-domain shards merged at read time) and for the sink
       that owns the output channel, so the domain-safety and printing
       rules do not apply to it. *)
    obs_exempt = under_lib "obs" segs;
    (* lib/bgp owns the interned representations, so its internals (the
       interner, the structural fallback in As_path.equal) legitimately
       compare structurally; the STRUCTEQ rule applies everywhere else. *)
    bgp_exempt = under_lib "bgp" segs;
  }

let lib_kind = { in_lib = true; prng_exempt = false; obs_exempt = false; bgp_exempt = false }

type violation = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  message : string;
}

let violation rule file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  { rule; file; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol; message }

(* [Longident.flatten] raises on [Lapply]; this returns None instead. *)
let path_of_lident li =
  let rec go acc = function
    | Longident.Lident s -> Some (s :: acc)
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> None
  in
  go [] li

let callee_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> path_of_lident txt
  | _ -> None

let last_component p =
  let rec go = function [] -> None | [ x ] -> Some x | _ :: rest -> go rest in
  go p

(* Closures handed to these (by final path component) iterate a
   collection: List.mem inside one is a nested scan. *)
let iteration_components =
  [ "iter"; "iteri"; "map"; "mapi"; "filter"; "filter_map"; "concat_map"; "for_all";
    "exists"; "find"; "find_opt"; "find_map"; "partition"; "init" ]

let fold_components = [ "fold"; "fold_left"; "fold_right" ]

let mutable_creators =
  [ [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Buffer"; "create" ]; [ "Array"; "make" ];
    [ "Array"; "init" ]; [ "Array"; "create_float" ]; [ "Bytes"; "create" ];
    [ "Bytes"; "make" ]; [ "Queue"; "create" ]; [ "Stack"; "create" ] ]

let clock_paths = [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

(* Stdout writers a library has no business calling directly: results go
   through the table writers, diagnostics through Obs. [Printf.eprintf]
   and [Printf.sprintf]/[fprintf] stay legal. *)
let printf_qualified = [ [ "Printf"; "printf" ]; [ "Format"; "printf" ] ]

let printf_bare =
  [ "print_endline"; "print_string"; "print_newline"; "print_int"; "print_float"; "print_char" ]

(* Key types over which polymorphic Hashtbl hashing is flat and cheap. *)
let flat_key_types = [ "int"; "string"; "bool"; "char"; "Asn.t" ]

let path_equal a b = List.equal String.equal a b
let path_mem p l = List.exists (path_equal p) l

let joined p = String.concat "." p

let is_fun_expr e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> go e
    | _ -> false
  in
  go e

(* [with _ ->] and its aliases/disguises: a handler arm that matches
   every exception. [with e ->] (a variable) is left alone — binding the
   exception usually means it is logged or re-raised. *)
let is_catch_all_pattern (p : pattern) =
  let rec go p =
    match p.ppat_desc with
    | Ppat_any -> true
    | Ppat_alias (p, _) | Ppat_constraint (p, _) -> go p
    | Ppat_or (a, b) -> go a || go b
    | _ -> false
  in
  go p

let is_option_sentinel (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("None" | "Some"); _ }, _) -> true
  | _ -> false

(* [As_path] functions whose result is an [As_path.t] (not a projection
   like [length] or a conversion like [to_list]) — comparing one of these
   structurally defeats the interned O(1) equality. *)
let as_path_t_constructors =
  [ "empty"; "plain"; "prepended"; "poisoned"; "poisoned_multi"; "prepend"; "traversed";
    "of_list" ]

(* Does this expression syntactically denote an interned BGP value? Purely
   syntactic (no types): a field access reaching through [Route]
   ([e.Bgp.Route.path], [e.Route.ann]) or an [As_path]-qualified
   identifier/application returning a path. *)
let is_bgp_valued (e : expression) =
  let from_as_path p =
    List.exists (String.equal "As_path") p
    &&
    match last_component p with
    | Some c -> List.exists (String.equal c) as_path_t_constructors
    | None -> false
  in
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match path_of_lident txt with
      | Some p -> (
          List.exists (String.equal "Route") p
          &&
          match last_component p with
          | Some ("path" | "ann") -> true
          | _ -> false)
      | None -> false)
  | Pexp_ident { txt; _ } -> (
      match path_of_lident txt with Some p -> from_as_path p | None -> false)
  | Pexp_apply (f, _) -> (
      match callee_path f with Some p -> from_as_path p | None -> false)
  | _ -> false

let flat_key (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> (
      match path_of_lident txt with
      | Some p -> List.exists (String.equal (joined p)) flat_key_types
      | None -> false)
  | _ -> false

let scan_structure ~kind ~file str =
  let out = ref [] in
  let add rule loc msg = out := violation rule file loc msg :: !out in
  (* Modules that define their own [compare] / [hash] may use the bare
     name; only unqualified uses of the *polymorphic* ones are flagged. *)
  let toplevel_names = Hashtbl.create 16 in
  let rec collect_names items =
    List.iter
      (fun (si : structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> Hashtbl.replace toplevel_names txt ()
                | _ -> ())
              vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } -> collect_names s
        | _ -> ())
      items
  in
  collect_names str;
  let locally_defined name = Hashtbl.mem toplevel_names name in
  let rec_depth = ref 0 in
  let loop_depth = ref 0 in
  let fold_depth = ref 0 in
  let check_ident_path p loc =
    if (not kind.prng_exempt) && (match p with "Random" :: _ -> true | _ -> false) then
      add Rule.Det_random loc "use the seeded Prng instead of Random"
    else if kind.in_lib then begin
      if path_mem p clock_paths then
        add Rule.Det_clock loc
          (Printf.sprintf "%s reads the wall clock; thread simulation time instead" (joined p));
      if
        (path_equal p [ "compare" ] && not (locally_defined "compare"))
        || path_equal p [ "Stdlib"; "compare" ]
        || path_equal p [ "Pervasives"; "compare" ]
      then add Rule.Det_polyeq loc "polymorphic compare; use the module-specific compare"
      else if path_equal p [ "Hashtbl"; "hash" ] && not (locally_defined "hash") then
        add Rule.Det_polyeq loc "polymorphic Hashtbl.hash; use a module-specific hash";
      if not kind.obs_exempt then begin
        let bare_printer =
          match p with
          | [ name ] -> List.exists (String.equal name) printf_bare && not (locally_defined name)
          | [ "Stdlib"; name ] -> List.exists (String.equal name) printf_bare
          | _ -> false
        in
        if path_mem p printf_qualified || bare_printer then
          add Rule.Obs_printf loc
            (Printf.sprintf
               "%s writes to stdout from a library; use the table writers or Obs tracing"
               (joined p))
      end
    end
  in
  let check_apply f args loc =
    match callee_path f with
    | None -> ()
    | Some p ->
        if kind.in_lib && (path_equal p [ "=" ] || path_equal p [ "<>" ]) then begin
          if List.exists (fun (_, a) -> is_option_sentinel a) args then
            add Rule.Det_polyeq loc
              "polymorphic (in)equality against None/Some; use Option.is_some/is_none or a \
               module equal";
          if (not kind.bgp_exempt) && List.exists (fun (_, a) -> is_bgp_valued a) args then
            add Rule.Perf_structeq loc
              "structural (in)equality on an interned BGP value defeats O(1) hash-consed \
               comparison; use As_path.equal / Route.announcement_equal"
        end
        else if
          kind.in_lib
          && (not kind.bgp_exempt)
          && (path_equal p [ "compare" ] || path_equal p [ "Stdlib"; "compare" ]
            || path_equal p [ "Pervasives"; "compare" ])
          && List.exists (fun (_, a) -> is_bgp_valued a) args
        then
          add Rule.Perf_structeq loc
            "structural compare on an interned BGP value walks the whole path; compare \
             through As_path.equal / the cached hash instead"
        else if path_equal p [ "@" ] || path_equal p [ "List"; "append" ] then begin
          if !rec_depth > 0 || !fold_depth > 0 then
            add Rule.Perf_append loc
              "@ inside a let rec or fold is quadratic; accumulate with :: and List.rev"
        end
        else if
          (match p with
          | [ "List"; ("mem" | "assoc" | "assoc_opt" | "mem_assoc") ] -> true
          | _ -> false)
          && (!rec_depth > 0 || !loop_depth > 0 || !fold_depth > 0)
        then
          add Rule.Perf_scan loc
            (Printf.sprintf "%s inside a loop is a quadratic scan; use a Set/Map/Hashtbl"
               (joined p))
  in
  let expr_iter =
    {
      Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } -> (
                match path_of_lident txt with
                | Some p -> check_ident_path p loc
                | None -> ())
            | Pexp_let (rf, vbs, body) ->
                let bump = match rf with Asttypes.Recursive -> true | _ -> false in
                if bump then incr rec_depth;
                List.iter (fun vb -> it.value_binding it vb) vbs;
                if bump then decr rec_depth;
                it.expr it body
            | Pexp_try (_, cases) ->
                if kind.in_lib then
                  List.iter
                    (fun c ->
                      if is_catch_all_pattern c.pc_lhs then
                        add Rule.Rob_exn c.pc_lhs.ppat_loc
                          "catch-all exception handler swallows programming errors along \
                           with the expected failure; match the specific exceptions")
                    cases;
                Ast_iterator.default_iterator.expr it e
            | Pexp_apply (f, args) ->
                check_apply f args e.pexp_loc;
                it.expr it f;
                let comp =
                  match callee_path f with Some p -> last_component p | None -> None
                in
                let depth =
                  match comp with
                  | Some c when List.exists (String.equal c) fold_components -> Some fold_depth
                  | Some c when List.exists (String.equal c) iteration_components ->
                      Some loop_depth
                  | _ -> None
                in
                List.iter
                  (fun (_, a) ->
                    match depth with
                    | Some d when is_fun_expr a ->
                        incr d;
                        it.expr it a;
                        decr d
                    | _ -> it.expr it a)
                  args
            | _ -> Ast_iterator.default_iterator.expr it e);
        typ =
          (fun it t ->
            (match t.ptyp_desc with
            | Ptyp_constr ({ txt; loc }, key :: _) when kind.in_lib -> (
                match path_of_lident txt with
                | Some [ "Hashtbl"; "t" ] ->
                    if not (flat_key key) then
                      add Rule.Det_hashkey loc
                        "Hashtbl keyed by a structured/boxed type; polymorphic hash walks \
                         the key — use int keys or a keyed table module"
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.typ it t);
    }
  in
  let it = expr_iter in
  (* A binding whose RHS is (syntactically) a function allocates at call
     time, not load time; anything else evaluated at module level that
     builds a mutable container is shared across domains. *)
  let scan_mutable_rhs rhs =
    let mut_it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun mit e ->
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> ()
            | Pexp_apply (f, _) ->
                (match callee_path f with
                | Some p when path_mem p mutable_creators ->
                    add Rule.Dom_mut e.pexp_loc
                      (Printf.sprintf
                         "module-level %s: mutable state shared across Par worker domains"
                         (joined p))
                | _ -> ());
                Ast_iterator.default_iterator.expr mit e
            | _ -> Ast_iterator.default_iterator.expr mit e);
      }
    in
    mut_it.expr mut_it rhs
  in
  let rec walk_structure items = List.iter walk_item items
  and walk_item (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (rf, vbs) ->
        if kind.in_lib && not kind.obs_exempt then
          List.iter (fun vb -> if not (is_fun_expr vb.pvb_expr) then scan_mutable_rhs vb.pvb_expr) vbs;
        let bump = match rf with Asttypes.Recursive -> true | _ -> false in
        if bump then incr rec_depth;
        List.iter (fun vb -> it.value_binding it vb) vbs;
        if bump then decr rec_depth
    | Pstr_module mb -> walk_module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module_expr mb.pmb_expr) mbs
    | Pstr_include incl -> walk_module_expr incl.pincl_mod
    | _ -> Ast_iterator.default_iterator.structure_item it si
  and walk_module_expr me =
    match me.pmod_desc with
    (* A nested module's structure is still module level; a functor body
       is re-evaluated per application, so only expression rules apply. *)
    | Pmod_structure s -> walk_structure s
    | Pmod_constraint (me, _) -> walk_module_expr me
    | _ -> it.module_expr it me
  in
  walk_structure str;
  (* LG-ROB-SNAPSHOT: a file defining a toplevel [capture] has opted into
     the crash-recovery snapshot contract — every mutable (or
     container-typed, hence mutable-inside) field of every record type
     the file declares must be read somewhere in [capture]'s body, or a
     restore silently resets it. Purely syntactic like everything else
     here: "read" means the field's name appears as an identifier, field
     access/update, or record-pattern label inside [capture]. *)
  if kind.in_lib then begin
    let container_types = [ "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "ref" ] in
    let is_container (t : core_type) =
      let rec go (t : core_type) =
        match t.ptyp_desc with
        | Ptyp_constr ({ txt; _ }, args) -> (
            (match path_of_lident txt with
            | Some p -> List.exists (String.equal (joined p)) container_types
            | None -> false)
            || List.exists go args)
        | _ -> false
      in
      go t
    in
    let flagged_fields = ref [] in
    let capture_bodies = ref [] in
    let rec collect items =
      List.iter
        (fun (si : structure_item) ->
          match si.pstr_desc with
          | Pstr_type (_, tds) ->
              List.iter
                (fun td ->
                  match td.ptype_kind with
                  | Ptype_record labels ->
                      List.iter
                        (fun (ld : label_declaration) ->
                          let mutable_field =
                            match ld.pld_mutable with
                            | Asttypes.Mutable -> true
                            | Asttypes.Immutable -> false
                          in
                          if mutable_field || is_container ld.pld_type then
                            flagged_fields :=
                              (ld.pld_name.Asttypes.txt, ld.pld_loc) :: !flagged_fields)
                        labels
                  | _ -> ())
                tds
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = "capture"; _ } -> capture_bodies := vb.pvb_expr :: !capture_bodies
                  | _ -> ())
                vbs
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } -> collect s
          | _ -> ())
        items
    in
    collect str;
    match !capture_bodies with
    | [] -> ()
    | bodies ->
        let referenced = Hashtbl.create 32 in
        let note = function
          | Some p -> (
              match last_component p with
              | Some name -> Hashtbl.replace referenced name ()
              | None -> ())
          | None -> ()
        in
        let ref_it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun rit e ->
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } -> note (path_of_lident txt)
                | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) ->
                    note (path_of_lident txt)
                | Pexp_record (fields, _) ->
                    List.iter (fun ({ Location.txt; _ }, _) -> note (path_of_lident txt)) fields
                | _ -> ());
                Ast_iterator.default_iterator.expr rit e);
            pat =
              (fun rit p ->
                (match p.ppat_desc with
                | Ppat_record (fields, _) ->
                    List.iter (fun ({ Location.txt; _ }, _) -> note (path_of_lident txt)) fields
                | Ppat_var { txt; _ } -> Hashtbl.replace referenced txt ()
                | _ -> ());
                Ast_iterator.default_iterator.pat rit p);
          }
        in
        List.iter (fun body -> ref_it.expr ref_it body) bodies;
        List.iter
          (fun (name, loc) ->
            if not (Hashtbl.mem referenced name) then
              add Rule.Rob_snapshot loc
                (Printf.sprintf
                   "mutable field %s is not read by this file's snapshot [capture]; restore \
                    would silently reset it"
                   name))
          (List.rev !flagged_fields)
  end;
  List.rev !out

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

let parse_file path =
  match parse_impl path with
  | ast -> Ok ast
  | exception e -> Error (Printexc.to_string e)

let scan_ast ?kind ~file ast =
  let kind = match kind with Some k -> k | None -> classify file in
  scan_structure ~kind ~file ast

let scan_file ?kind path =
  match parse_file path with
  | Ok ast -> Ok (scan_ast ?kind ~file:path ast)
  | Error e -> Error e

let mli_violations ?(force_lib = false) files =
  List.filter_map
    (fun f ->
      let kind = if force_lib then lib_kind else classify f in
      if
        kind.in_lib
        && Filename.check_suffix f ".ml"
        && not (Sys.file_exists (Filename.chop_suffix f ".ml" ^ ".mli"))
      then
        Some
          {
            rule = Rule.Mli_missing;
            file = f;
            line = 1;
            col = 0;
            message = "library module has no .mli; its whole surface is public";
          }
      else None)
    files

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (Rule.id a.rule) (Rule.id b.rule)
